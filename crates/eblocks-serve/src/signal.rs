//! SIGTERM/SIGINT handling for the daemon: a process-global signal
//! counter the supervisor loop polls. One signal requests a graceful
//! drain, two or more harden it.
//!
//! The handler body only bumps an atomic (async-signal-safe); all real
//! work happens on the polling thread.

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

    static SIGNALS: AtomicU32 = AtomicU32::new(0);

    extern "C" fn on_signal(_signum: i32) {
        SIGNALS.fetch_add(1, Ordering::Relaxed);
    }

    extern "C" {
        // `signal(2)` from libc (already linked by std). Handler and
        // return value travel as addresses.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Guards against double installation (idempotent across servers in
    /// one process).
    static INSTALLED: AtomicUsize = AtomicUsize::new(0);

    pub fn install() {
        if INSTALLED.swap(1, Ordering::SeqCst) == 0 {
            unsafe {
                signal(SIGTERM, on_signal as *const () as usize);
                signal(SIGINT, on_signal as *const () as usize);
            }
        }
    }

    pub fn count() -> u32 {
        SIGNALS.load(Ordering::Relaxed)
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}

    pub fn count() -> u32 {
        0
    }
}

pub(crate) use imp::{count, install};
