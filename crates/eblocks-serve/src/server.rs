//! The daemon itself: shared state, worker pool, admission control,
//! lifecycle.

use crate::config::ServeConfig;
use crate::queue::WorkQueue;
use crate::{signal, spool};
use eblocks_farm::api::{self, BatchRequest, JobSpec, ServeStats, SynthRequest, SynthResponse};
use eblocks_farm::{run_batch, run_batch_with_progress, BatchReport, FarmConfig, JsonOptions};
use eblocks_lint::lint_design;
use eblocks_synth::{StageReport, StageTimings};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A payload request admitted to the work queue.
pub(crate) enum Payload {
    /// A whole batch; answered with a `BatchResponse`.
    Batch(BatchRequest),
    /// One design through the full pipeline; answered with a
    /// `SynthResponse`.
    Synth(SynthRequest),
}

/// Where a request's replies go.
pub(crate) enum Sink {
    /// Answer into `<spool>/outbox/<name>`; `claimed` is the in-flight
    /// copy of the input, deleted once the response is in place.
    Spool { name: String, claimed: PathBuf },
    /// Answer as `ReplyEnvelope` lines on a socket connection, with
    /// streamed per-job progress.
    #[cfg(unix)]
    Socket {
        id: String,
        writer: Arc<Mutex<std::os::unix::net::UnixStream>>,
    },
}

/// One queued unit of work.
pub(crate) struct Work {
    pub(crate) payload: Payload,
    pub(crate) sink: Sink,
}

/// How a payload run ended, before delivery.
enum RunOutcome {
    Batch(BatchReport),
    Synth(Result<SynthResponse, String>),
}

/// State shared by the spool pump, the socket threads, and the workers.
pub(crate) struct ServerState {
    pub(crate) config: ServeConfig,
    pub(crate) queue: WorkQueue<Work>,
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    in_flight: AtomicUsize,
    draining: AtomicBool,
    /// The farm-level drain hook: set on a hardened drain, it makes
    /// running batches stop claiming new jobs.
    hard_stop: Arc<AtomicBool>,
    /// Per-stage aggregates merged from every completed job.
    timings: Mutex<StageTimings>,
    /// Monotonic sequence for claimed-file and temp-file names, so
    /// duplicate inbox filenames never collide in flight.
    sequence: AtomicU64,
}

impl ServerState {
    fn new(config: ServeConfig) -> Self {
        let capacity = config.queue_capacity;
        Self {
            config,
            queue: WorkQueue::new(capacity),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            hard_stop: Arc::new(AtomicBool::new(false)),
            timings: Mutex::new(StageTimings::new()),
            sequence: AtomicU64::new(0),
        }
    }

    /// The farm config every request runs under.
    fn farm_config(&self) -> FarmConfig {
        FarmConfig {
            workers: self.config.farm_workers,
            max_retries: self.config.max_retries,
            job_timeout: self.config.job_timeout,
            stop: Some(Arc::clone(&self.hard_stop)),
            ..FarmConfig::default()
        }
    }

    /// Starts the graceful drain: no further admissions; queued and
    /// in-flight work still completes. Idempotent.
    pub(crate) fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Hardens a drain: running batches stop claiming new jobs and
    /// report the rest as cancelled.
    pub(crate) fn harden_drain(&self) {
        self.hard_stop.store(true, Ordering::SeqCst);
    }

    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    pub(crate) fn count_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// The next claim/temp-file sequence number.
    pub(crate) fn next_sequence(&self) -> u64 {
        self.sequence.fetch_add(1, Ordering::Relaxed)
    }

    /// The current counter snapshot.
    pub(crate) fn stats(&self) -> ServeStats {
        ServeStats {
            queue_depth: self.queue.depth(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            stages: ServeStats::summarize_stages(&self.timings.lock().expect("timings lock")),
        }
    }

    /// The admission lint gate: with [`ServeConfig::admission_lint`]
    /// set, lints every loadable design in `payload` and returns the
    /// rejection detail for the first design the configured deny level
    /// rejects. Designs that fail to *load* pass — the farm reports
    /// those deterministically, keeping responses identical to the
    /// one-shot paths.
    pub(crate) fn lint_reject_detail(&self, payload: &Payload) -> Option<String> {
        let config = self.config.admission_lint?;
        let specs: Vec<JobSpec> = match payload {
            Payload::Batch(request) => request.jobs.clone(),
            Payload::Synth(request) => vec![JobSpec {
                name: None,
                source: request.source.clone(),
                partitioner: request.partitioner.clone(),
                options: request.options,
            }],
        };
        for spec in specs {
            let job = spec.to_job();
            let Ok(design) = job.load_design() else {
                continue;
            };
            let report = lint_design(&design, &config);
            if report.rejects(config.deny) {
                return Some(format!("job `{}`: {}", job.name, report.outcome()));
            }
        }
        None
    }

    /// Merges a finished batch's stage timings into the daemon-wide
    /// aggregates.
    fn absorb_report(&self, report: &BatchReport) {
        let merged = report.stage_timings();
        self.timings.lock().expect("timings lock").merge(&merged);
    }

    /// Merges a synth response's stage rows (already rounded to
    /// milliseconds) into the daemon-wide aggregates.
    fn absorb_synth(&self, response: &SynthResponse) {
        let mut timings = self.timings.lock().expect("timings lock");
        for row in &response.stages_ms {
            timings.reports.push(StageReport {
                stage: row.stage,
                elapsed: Duration::from_secs_f64(row.ms / 1e3),
                detail: row.detail.clone(),
            });
        }
    }
}

/// What one daemon lifetime did, returned by
/// [`ServerHandle::join`]/[`serve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Payload requests admitted to the queue.
    pub accepted: u64,
    /// Payload requests turned away (queue full, lint rejection,
    /// malformed spool files).
    pub rejected: u64,
    /// Accepted requests fully answered.
    pub completed: u64,
}

/// A running daemon (see [`spawn`]).
pub struct ServerHandle {
    state: Arc<ServerState>,
    threads: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// Requests a graceful drain, as if a `"shutdown"` request arrived:
    /// admission stops, queued and in-flight work completes, the outbox
    /// flushes, and [`join`](Self::join) returns.
    pub fn shutdown(&self) {
        self.state.begin_drain();
    }

    /// Hardens a drain: running batches stop claiming new jobs and
    /// report never-claimed jobs as cancelled. Call after
    /// [`shutdown`](Self::shutdown) when finishing the backlog would
    /// take too long.
    pub fn shutdown_now(&self) {
        self.state.begin_drain();
        self.state.harden_drain();
    }

    /// The daemon's current [`ServeStats`] (what a `"stats"` request
    /// answers).
    pub fn stats(&self) -> ServeStats {
        self.state.stats()
    }

    /// Blocks until the daemon drains (a `"shutdown"` request, a
    /// signal under [`ServeConfig::handle_signals`], or
    /// [`shutdown`](Self::shutdown)), then returns the final counters.
    ///
    /// # Errors
    ///
    /// A message naming the daemon thread that panicked, if one did.
    pub fn join(self) -> Result<ServeSummary, String> {
        let mut panicked = 0usize;
        for thread in self.threads {
            panicked += usize::from(thread.join().is_err());
        }
        // The listener is joined above, so no new connections appear
        // while we drain this list.
        let connections = std::mem::take(&mut *self.connections.lock().expect("connection list"));
        for thread in connections {
            panicked += usize::from(thread.join().is_err());
        }
        if panicked > 0 {
            return Err(format!("{panicked} daemon thread(s) panicked"));
        }
        Ok(ServeSummary {
            accepted: self.state.accepted.load(Ordering::Relaxed),
            rejected: self.state.rejected.load(Ordering::Relaxed),
            completed: self.state.completed.load(Ordering::Relaxed),
        })
    }
}

/// Starts a daemon for `config` and returns its handle. Spool
/// directories are created if missing; config edge cases (0 workers, 0
/// queue capacity) are clamped, mirroring the farm's `with_workers(0)`.
///
/// # Errors
///
/// A human-readable message: spool directories that cannot be created,
/// or a socket path that cannot be bound.
pub fn spawn(config: ServeConfig) -> Result<ServerHandle, String> {
    let config = config.clamped();
    for dir in [
        config.inbox(),
        config.outbox(),
        config.rejected(),
        config.claimed(),
    ] {
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create spool directory {}: {e}", dir.display()))?;
    }
    if config.handle_signals {
        signal::install();
    }

    let state = Arc::new(ServerState::new(config));
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut threads = Vec::new();

    for _ in 0..state.config.workers {
        let state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || worker_loop(&state)));
    }

    if let Some(path) = state.config.socket.clone() {
        #[cfg(unix)]
        {
            // A stale socket file from a previous run would make bind
            // fail with AddrInUse; replace it.
            if path.exists() {
                std::fs::remove_file(&path)
                    .map_err(|e| format!("cannot remove stale socket {}: {e}", path.display()))?;
            }
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .map_err(|e| format!("cannot bind socket {}: {e}", path.display()))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| format!("cannot configure socket {}: {e}", path.display()))?;
            let state = Arc::clone(&state);
            let connections = Arc::clone(&connections);
            threads.push(std::thread::spawn(move || {
                crate::socket::listen(&state, listener, &connections, &path)
            }));
        }
        #[cfg(not(unix))]
        {
            return Err(format!(
                "socket front end requires a Unix platform ({})",
                path.display()
            ));
        }
    }

    {
        let state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || pump_loop(&state)));
    }

    Ok(ServerHandle {
        state,
        threads,
        connections,
    })
}

/// [`spawn`] + [`ServerHandle::join`]: runs the daemon until something
/// requests its shutdown, then returns the final counters. What
/// `eblocks-cli serve` calls.
///
/// # Errors
///
/// See [`spawn`] and [`ServerHandle::join`].
pub fn serve(config: ServeConfig) -> Result<ServeSummary, String> {
    spawn(config)?.join()
}

/// The supervisor loop: scans the spool inbox and watches for signals
/// until the drain begins.
fn pump_loop(state: &Arc<ServerState>) {
    loop {
        if state.config.handle_signals {
            let signals = signal::count();
            if signals >= 2 {
                state.harden_drain();
            }
            if signals >= 1 {
                state.begin_drain();
            }
        }
        if state.draining() {
            return;
        }
        spool::scan_once(state);
        if state.draining() {
            return;
        }
        std::thread::sleep(state.config.poll_interval);
    }
}

/// One daemon worker: pops queued requests and answers them until the
/// queue closes and drains.
fn worker_loop(state: &Arc<ServerState>) {
    while let Some(work) = state.queue.pop() {
        state.in_flight.fetch_add(1, Ordering::Relaxed);
        execute(state, work);
        state.in_flight.fetch_sub(1, Ordering::Relaxed);
        state.completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Runs one request and delivers its final reply. The run itself sits
/// inside `catch_unwind` — the farm already isolates job panics, but the
/// daemon additionally guarantees that *nothing* a request does can take
/// a worker down silently: a panic becomes an error reply and the input
/// is still accounted for.
fn execute(state: &Arc<ServerState>, work: Work) {
    let Work { payload, sink } = work;
    match sink {
        Sink::Spool { name, claimed } => {
            let outcome = catch_unwind(AssertUnwindSafe(|| run_payload(state, payload, None)));
            match outcome {
                Ok(RunOutcome::Batch(report)) => {
                    spool::write_response(
                        state,
                        &name,
                        &format!("{}\n", report.to_json(&JsonOptions::default())),
                    );
                }
                Ok(RunOutcome::Synth(Ok(response))) => {
                    spool::write_response(
                        state,
                        &name,
                        &format!("{}\n", serde::json::to_string_pretty(&response)),
                    );
                }
                Ok(RunOutcome::Synth(Err(error))) => {
                    spool::write_error_response(state, &name, &error);
                }
                Err(payload) => {
                    spool::write_error_response(
                        state,
                        &name,
                        &format!("internal panic: {}", panic_message(&payload)),
                    );
                }
            }
            let _ = std::fs::remove_file(&claimed);
        }
        #[cfg(unix)]
        Sink::Socket { id, writer } => {
            use eblocks_farm::api::{BatchResponse, ReplyEnvelope, ServeReply};
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                run_payload(state, payload, Some((id.as_str(), &writer)))
            }));
            let reply = match outcome {
                Ok(RunOutcome::Batch(report)) => {
                    ServeReply::Batch(BatchResponse::from_report(&report, &JsonOptions::default()))
                }
                Ok(RunOutcome::Synth(Ok(response))) => ServeReply::Synth(response),
                Ok(RunOutcome::Synth(Err(error))) => ServeReply::Error(error),
                Err(payload) => {
                    ServeReply::Error(format!("internal panic: {}", panic_message(&payload)))
                }
            };
            crate::socket::send(
                &writer,
                &ReplyEnvelope {
                    id: Some(id),
                    reply,
                },
            );
        }
    }
}

/// Runs the payload through the farm (batches, with streamed progress
/// when a socket is attached) or the one-shot request API (synth).
fn run_payload(
    state: &Arc<ServerState>,
    payload: Payload,
    stream: Option<(&str, &Arc<Mutex<std::os::unix::net::UnixStream>>)>,
) -> RunOutcome {
    match payload {
        Payload::Batch(request) => {
            let batch = request.to_batch();
            let config = state.farm_config();
            let report = match stream {
                #[cfg(unix)]
                Some((id, writer)) => {
                    let streamer = crate::socket::ProgressStreamer::new(id, writer);
                    run_batch_with_progress(&batch, &config, &streamer)
                }
                _ => run_batch(&batch, &config),
            };
            state.absorb_report(&report);
            RunOutcome::Batch(report)
        }
        Payload::Synth(request) => {
            let result = api::synthesize(&request);
            if let Ok(response) = &result {
                state.absorb_synth(response);
            }
            RunOutcome::Synth(result)
        }
    }
}

/// A panic payload's message, for error replies.
fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
