//! The spool front door: claim request files from `inbox/`, answer into
//! `outbox/`, quarantine malformed inputs under `rejected/`.
//!
//! Every filesystem hand-off is a rename: inputs move atomically from
//! `inbox/` to `claimed/` (so two scans never double-process a file),
//! and responses are written to a temp file in `outbox/` and renamed
//! into place (so a reader never sees a partial response).

use crate::server::{Payload, ServerState, Sink, Work};
use eblocks_farm::api::{BatchRequest, ErrorReply, ServeReply, ServeRequest, ServeStats};
use std::path::Path;
use std::sync::Arc;

/// One inbox scan: claims and dispatches every ready request file, in
/// name order. Stops early when the drain begins or the queue has no
/// room (backpressure: unclaimed files simply wait in `inbox/` for the
/// next scan).
pub(crate) fn scan_once(state: &Arc<ServerState>) {
    let inbox = state.config.inbox();
    let Ok(entries) = std::fs::read_dir(&inbox) else {
        return;
    };
    let mut names: Vec<String> = entries
        .filter_map(|entry| entry.ok())
        .filter(|entry| entry.file_type().is_ok_and(|t| t.is_file()))
        .filter_map(|entry| entry.file_name().into_string().ok())
        .collect();
    names.sort();
    for name in names {
        if state.draining() || !state.queue.has_room() {
            return;
        }
        // Atomic claim: a rename either wins the file or loses it to a
        // concurrent writer still producing it — either way, move on.
        let claimed = state
            .config
            .claimed()
            .join(format!("{:06}-{name}", state.next_sequence()));
        if std::fs::rename(inbox.join(&name), &claimed).is_err() {
            continue;
        }
        process(state, &name, &claimed);
    }
}

/// Parses and dispatches one claimed request file.
fn process(state: &Arc<ServerState>, name: &str, claimed: &Path) {
    let bytes = match std::fs::read(claimed) {
        Ok(bytes) => bytes,
        Err(e) => {
            reject(state, name, claimed, &format!("cannot read request: {e}"));
            return;
        }
    };
    let text = match String::from_utf8(bytes) {
        Ok(text) => text,
        Err(_) => {
            reject(state, name, claimed, "request is not valid UTF-8");
            return;
        }
    };
    let request = match parse_request(&text) {
        Ok(request) => request,
        Err(error) => {
            reject(state, name, claimed, &error);
            return;
        }
    };
    match request {
        ServeRequest::Stats => {
            let stats = state.stats();
            write_response(state, name, &format!("{}\n", stats_json(&stats)));
            let _ = std::fs::remove_file(claimed);
        }
        ServeRequest::Shutdown => {
            // Acknowledge, then drain: the ack is the last admission
            // this daemon makes.
            write_response(
                state,
                name,
                &format!("{}\n", serde::json::to_string(&ServeReply::Shutdown)),
            );
            let _ = std::fs::remove_file(claimed);
            state.begin_drain();
        }
        ServeRequest::Batch(request) => {
            admit(state, name, claimed, Payload::Batch(request));
        }
        ServeRequest::Synth(request) => {
            admit(state, name, claimed, Payload::Synth(request));
        }
    }
}

/// Admits a payload request from the spool: lint gate, then a blocking
/// push (the file is already claimed; backpressure happens before the
/// claim, so blocking here is only a momentary race with socket
/// clients).
fn admit(state: &Arc<ServerState>, name: &str, claimed: &Path, payload: Payload) {
    if let Some(detail) = state.lint_reject_detail(&payload) {
        reject(state, name, claimed, &format!("lint-rejected: {detail}"));
        return;
    }
    let work = Work {
        payload,
        sink: Sink::Spool {
            name: name.to_string(),
            claimed: claimed.to_path_buf(),
        },
    };
    match state.queue.push_wait(work) {
        Ok(()) => state.count_accepted(),
        Err(_work) => {
            // Closed while waiting: the daemon is draining. Still
            // answer the input — every claimed file gets a verdict.
            reject(state, name, claimed, "server is draining");
        }
    }
}

/// Parses a spool request file: a [`ServeRequest`] (`{"batch": …}`,
/// `{"synth": …}`, `"stats"`, `"shutdown"`), or — the common case for
/// hand-written files — a bare [`BatchRequest`] (`{"jobs": […]}`).
fn parse_request(text: &str) -> Result<ServeRequest, String> {
    let envelope_error = match serde::json::from_str::<ServeRequest>(text) {
        Ok(request) => return Ok(request),
        Err(e) => e,
    };
    let bare_error = match serde::json::from_str::<BatchRequest>(text) {
        Ok(request) => return Ok(ServeRequest::Batch(request)),
        Err(e) => e,
    };
    // Two parses failed; report the error for the shape the file most
    // resembles. A top-level `jobs` key means a bare batch request.
    let looks_bare = serde::json::parse(text)
        .map(|value| value.get("jobs").is_some())
        .unwrap_or(false);
    if looks_bare {
        Err(format!("invalid batch request: {bare_error}"))
    } else {
        Err(format!("invalid request: {envelope_error}"))
    }
}

/// Moves a claimed input to `rejected/<name>` and writes the structured
/// error next to it as `rejected/<name>.error.json`.
pub(crate) fn reject(state: &Arc<ServerState>, name: &str, claimed: &Path, error: &str) {
    let rejected = state.config.rejected();
    let _ = std::fs::rename(claimed, rejected.join(name));
    let reply = ErrorReply {
        error: error.to_string(),
    };
    let _ = std::fs::write(
        rejected.join(format!("{name}.error.json")),
        format!("{}\n", serde::json::to_string(&reply)),
    );
    state.count_rejected();
}

/// Writes `outbox/<name>` atomically (temp file + rename). Duplicate
/// input filenames resolve last-wins, matching what a caller spooling
/// the same name twice would expect.
pub(crate) fn write_response(state: &Arc<ServerState>, name: &str, text: &str) {
    let outbox = state.config.outbox();
    let tmp = outbox.join(format!(".tmp-{:06}-{name}", state.next_sequence()));
    if std::fs::write(&tmp, text).is_ok() {
        let _ = std::fs::rename(&tmp, outbox.join(name));
    }
}

/// Writes an [`ErrorReply`] response for `name` (a request that failed
/// outside the farm: synth errors, internal panics).
pub(crate) fn write_error_response(state: &Arc<ServerState>, name: &str, error: &str) {
    let reply = ErrorReply {
        error: error.to_string(),
    };
    write_response(
        state,
        name,
        &format!("{}\n", serde::json::to_string(&reply)),
    );
}

/// The stats response body: the bare [`ServeStats`] object,
/// pretty-printed like the other human-facing spool responses.
fn stats_json(stats: &ServeStats) -> String {
    serde::json::to_string_pretty(stats)
}
