//! The service mode: a long-running synthesis daemon over the typed
//! request API (`eblocks_farm::api`).
//!
//! A [`Server`](ServerHandle) accepts work through two front doors:
//!
//! * **A spool directory** — the daemon watches `<spool>/inbox/`,
//!   atomically claims request files (rename into `<spool>/claimed/`),
//!   and answers every input: responses land in `<spool>/outbox/` under
//!   the input's file name (written to a temp file and renamed, so
//!   readers never see partial JSON), and malformed inputs move to
//!   `<spool>/rejected/` next to a structured `<name>.error.json`. A
//!   request file holds a [`ServeRequest`](eblocks_farm::api::ServeRequest)
//!   (`{"batch": …}`, `{"synth": …}`, `"stats"`, `"shutdown"`) or, as a
//!   convenience, a bare
//!   [`BatchRequest`](eblocks_farm::api::BatchRequest) — the same JSON
//!   `eblocks-cli batch` accepts.
//!   A batch response file is byte-identical to `eblocks-cli batch
//!   --json` output for the same request.
//! * **A Unix-domain socket** — line-delimited JSON, one
//!   [`RequestEnvelope`](eblocks_farm::api::RequestEnvelope) per line in,
//!   one [`ReplyEnvelope`](eblocks_farm::api::ReplyEnvelope) per line
//!   out. Every payload request gets an immediate admission verdict
//!   (`accepted` / `queue-full` / `lint-rejected`), streamed per-job
//!   `progress` events while its batch runs, and exactly one final
//!   reply, all correlated by the client's request id (the server
//!   assigns `r0`, `r1`, … when the client sends none).
//!
//! Production shape:
//!
//! * **Bounded queue, explicit backpressure** — the work queue holds at
//!   most [`ServeConfig::queue_capacity`] requests. Socket clients get a
//!   `queue-full` admission reply; the spool watcher simply stops
//!   claiming files until a slot frees, so unclaimed inputs wait in
//!   `inbox/` and are never dropped.
//! * **Lint before enqueue** — with [`ServeConfig::admission_lint`] set,
//!   every loadable design in a request is linted at the configured deny
//!   level *before* the request is queued, so garbage costs no
//!   synthesis. (Designs that fail to load pass admission and fail
//!   deterministically in the farm, keeping responses identical to the
//!   one-shot paths.)
//! * **Deadlines** — [`ServeConfig::job_timeout`] reuses the farm's
//!   cooperative per-attempt deadline for every job the daemon runs.
//! * **Stats** — a `"stats"` request answers immediately with queue
//!   depth, accepted/rejected/completed counters, and per-stage
//!   wall-clock aggregates over everything the daemon has run.
//! * **Graceful drain** — SIGTERM (via [`ServeConfig::handle_signals`])
//!   or a `"shutdown"` request stops admission, finishes everything
//!   already accepted, flushes the outbox, and exits cleanly. A second
//!   SIGTERM hardens the drain: running batches stop claiming new jobs
//!   ([`FarmConfig::stop`](eblocks_farm::FarmConfig::stop)) and
//!   never-claimed jobs report as cancelled.
//!
//! # Example
//!
//! ```
//! use eblocks_serve::{spawn, ServeConfig};
//!
//! let spool = std::env::temp_dir().join(format!("serve-doc-{}", std::process::id()));
//! let server = spawn(ServeConfig::new(&spool)).unwrap();
//! // Producers write-then-rename into the inbox: the rename is atomic,
//! // so the scanner never claims a half-written request.
//! let staging = spool.join(".staging-request");
//! std::fs::write(&staging, r#"{"jobs": [{"source": {"library": "Carpool Alert"}}]}"#).unwrap();
//! std::fs::rename(&staging, spool.join("inbox/request.json")).unwrap();
//! while !spool.join("outbox/request.json").exists() {
//!     std::thread::sleep(std::time::Duration::from_millis(10));
//! }
//! server.shutdown();
//! let summary = server.join().unwrap();
//! assert_eq!(summary.completed, 1);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod queue;
mod server;
mod signal;
mod socket;
mod spool;

pub use config::ServeConfig;
pub use server::{serve, spawn, ServeSummary, ServerHandle};
