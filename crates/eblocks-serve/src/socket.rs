//! The socket front door: line-delimited JSON over a Unix-domain
//! socket. One [`RequestEnvelope`] per line in, [`ReplyEnvelope`] lines
//! out; batch requests additionally stream per-job progress events
//! between the admission verdict and the final response.
#![cfg(unix)]

use crate::server::{Payload, ServerState, Sink, Work};
use eblocks_farm::api::{
    Admission, AdmissionReply, ProgressEvent, ReplyEnvelope, RequestEnvelope, ServeReply,
    ServeRequest,
};
use eblocks_farm::{BatchProgress, Job, JobReport};
use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Serializes `envelope` as one JSON line and writes it under the
/// writer lock. Write errors are ignored: a client that hung up stops
/// caring about its replies, and the worker must not die with it.
pub(crate) fn send(writer: &Arc<Mutex<UnixStream>>, envelope: &ReplyEnvelope) {
    let line = format!("{}\n", serde::json::to_string(envelope));
    let mut stream = writer.lock().expect("socket writer lock");
    let _ = stream.write_all(line.as_bytes());
}

/// Forwards farm progress callbacks as `progress` reply lines tagged
/// with the request id.
pub(crate) struct ProgressStreamer {
    id: String,
    writer: Arc<Mutex<UnixStream>>,
}

impl ProgressStreamer {
    pub(crate) fn new(id: &str, writer: &Arc<Mutex<UnixStream>>) -> Self {
        Self {
            id: id.to_string(),
            writer: Arc::clone(writer),
        }
    }

    fn emit(&self, event: ProgressEvent) {
        send(
            &self.writer,
            &ReplyEnvelope {
                id: Some(self.id.clone()),
                reply: ServeReply::Progress(event),
            },
        );
    }
}

impl BatchProgress for ProgressStreamer {
    fn job_started(&self, index: usize, job: &Job) {
        self.emit(ProgressEvent::started(index, job));
    }

    fn job_finished(&self, index: usize, report: &JobReport) {
        self.emit(ProgressEvent::finished(index, report));
    }
}

/// The accept loop: hands each connection to its own thread until the
/// drain begins, then removes the socket file.
pub(crate) fn listen(
    state: &Arc<ServerState>,
    listener: UnixListener,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    path: &Path,
) {
    loop {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let state = Arc::clone(state);
                let handle = std::thread::spawn(move || connection(&state, stream));
                connections.lock().expect("connection list").push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if state.draining() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                if state.draining() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    drop(listener);
    let _ = std::fs::remove_file(path);
}

/// One client connection: reads request lines until EOF or the drain,
/// auto-assigning ids `r0`, `r1`, … to envelopes that carry none.
fn connection(state: &Arc<ServerState>, stream: UnixStream) {
    // A short read timeout keeps the loop responsive to the drain flag
    // even while the client is idle.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let mut reader = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut buffer = [0u8; 4096];
    let mut next_id = 0usize;
    loop {
        match reader.read(&mut buffer) {
            Ok(0) => break,
            Ok(n) => {
                pending.extend_from_slice(&buffer[..n]);
                while let Some(newline) = pending.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = pending.drain(..=newline).collect();
                    handle_line(state, &writer, &line[..newline], &mut next_id);
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if state.draining() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Parses and dispatches one request line.
fn handle_line(
    state: &Arc<ServerState>,
    writer: &Arc<Mutex<UnixStream>>,
    line: &[u8],
    next_id: &mut usize,
) {
    let Ok(text) = std::str::from_utf8(line) else {
        send(
            writer,
            &ReplyEnvelope {
                id: None,
                reply: ServeReply::Error("request line is not valid UTF-8".to_string()),
            },
        );
        return;
    };
    if text.trim().is_empty() {
        return;
    }
    // An envelope, or — for quick manual sessions — a bare request.
    let envelope = match serde::json::from_str::<RequestEnvelope>(text) {
        Ok(envelope) => envelope,
        Err(envelope_error) => match serde::json::from_str::<ServeRequest>(text) {
            Ok(request) => RequestEnvelope { id: None, request },
            Err(_) => {
                send(
                    writer,
                    &ReplyEnvelope {
                        id: None,
                        reply: ServeReply::Error(format!("invalid request: {envelope_error}")),
                    },
                );
                return;
            }
        },
    };
    let id = envelope.id.unwrap_or_else(|| {
        let id = format!("r{next_id}");
        *next_id += 1;
        id
    });
    match envelope.request {
        ServeRequest::Stats => {
            send(
                writer,
                &ReplyEnvelope {
                    id: Some(id),
                    reply: ServeReply::Stats(state.stats()),
                },
            );
        }
        ServeRequest::Shutdown => {
            send(
                writer,
                &ReplyEnvelope {
                    id: Some(id),
                    reply: ServeReply::Shutdown,
                },
            );
            state.begin_drain();
        }
        ServeRequest::Batch(request) => {
            admit(state, writer, id, Payload::Batch(request));
        }
        ServeRequest::Synth(request) => {
            admit(state, writer, id, Payload::Synth(request));
        }
    }
}

/// Admission control for a socket payload: lint gate, then a
/// non-blocking push — a full queue is an explicit `queue-full` verdict,
/// never a silent wait.
fn admit(state: &Arc<ServerState>, writer: &Arc<Mutex<UnixStream>>, id: String, payload: Payload) {
    if let Some(detail) = state.lint_reject_detail(&payload) {
        state.count_rejected();
        send(
            writer,
            &ReplyEnvelope {
                id: Some(id),
                reply: ServeReply::Admission(AdmissionReply {
                    status: Admission::LintRejected,
                    detail: Some(detail),
                }),
            },
        );
        return;
    }
    let work = Work {
        payload,
        sink: Sink::Socket {
            id: id.clone(),
            writer: Arc::clone(writer),
        },
    };
    // Hold the writer lock across push + admission reply so the verdict
    // reaches the client before any progress event a fast worker emits.
    let mut stream = writer.lock().expect("socket writer lock");
    let reply = match state.queue.try_push(work) {
        Ok(()) => {
            state.count_accepted();
            ServeReply::Admission(AdmissionReply {
                status: Admission::Accepted,
                detail: None,
            })
        }
        Err(crate::queue::PushError::Full(_)) => {
            state.count_rejected();
            ServeReply::Admission(AdmissionReply {
                status: Admission::QueueFull,
                detail: Some(format!("queue at capacity {}", state.config.queue_capacity)),
            })
        }
        Err(crate::queue::PushError::Closed(_)) => {
            state.count_rejected();
            ServeReply::Error("server is draining".to_string())
        }
    };
    let line = format!(
        "{}\n",
        serde::json::to_string(&ReplyEnvelope {
            id: Some(id),
            reply,
        })
    );
    let _ = stream.write_all(line.as_bytes());
}
