//! The bounded work queue: a Mutex/Condvar MPMC channel with explicit
//! backpressure and a close-for-drain protocol.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
pub(crate) enum PushError<T> {
    /// The queue is at capacity; the item is handed back. Socket clients
    /// surface this as a `queue-full` admission reply; the spool watcher
    /// never sees it (it checks [`WorkQueue::has_room`] before
    /// claiming).
    Full(T),
    /// The queue was closed for drain; nothing is admitted anymore.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    /// False once the drain began: pushes fail, pops return the
    /// remaining items and then `None`.
    accepting: bool,
}

/// A bounded MPMC queue. Capacity is fixed at construction (already
/// clamped to at least 1 by [`ServeConfig::clamped`](crate::ServeConfig)).
pub(crate) struct WorkQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> WorkQueue<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                accepting: true,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking; refuses when full or closed.
    pub(crate) fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if !inner.accepting {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Enqueues, blocking until a slot frees; fails only when the queue
    /// closes while waiting (the item is handed back). The spool
    /// watcher's push: an already-claimed input must not be dropped on a
    /// momentary full queue.
    pub(crate) fn push_wait(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if !inner.accepting {
                return Err(item);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                drop(inner);
                self.ready.notify_one();
                return Ok(());
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Dequeues, blocking while the queue is empty but open. `None`
    /// means the queue closed and fully drained — the worker's exit
    /// signal.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                // A pop frees a slot; wake one blocked pusher (or
                // another worker when closing).
                self.ready.notify_one();
                return Some(item);
            }
            if !inner.accepting {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue for the drain: pushes fail from now on, pops
    /// drain the backlog and then return `None`.
    pub(crate) fn close(&self) {
        self.inner.lock().expect("queue lock").accepting = false;
        self.ready.notify_all();
    }

    /// Items currently waiting (not counting in-flight work).
    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// True when a `try_push` would be admitted right now.
    pub(crate) fn has_room(&self) -> bool {
        let inner = self.inner.lock().expect("queue lock");
        inner.accepting && inner.items.len() < self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn capacity_is_enforced_and_pops_free_slots() {
        let queue = WorkQueue::new(2);
        queue.try_push(1).ok().unwrap();
        queue.try_push(2).ok().unwrap();
        let Err(PushError::Full(3)) = queue.try_push(3) else {
            panic!("expected Full");
        };
        assert_eq!(queue.depth(), 2);
        assert!(!queue.has_room());
        assert_eq!(queue.pop(), Some(1));
        assert!(queue.has_room());
        queue.try_push(3).ok().unwrap();
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_ends() {
        let queue = WorkQueue::new(4);
        queue.try_push("a").ok().unwrap();
        queue.close();
        let Err(PushError::Closed("b")) = queue.try_push("b") else {
            panic!("expected Closed");
        };
        assert_eq!(queue.pop(), Some("a"));
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.pop(), None, "stays closed");
    }

    #[test]
    fn push_wait_blocks_until_space_or_close() {
        let queue = Arc::new(WorkQueue::new(1));
        queue.try_push(0).ok().unwrap();
        let pusher = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push_wait(1))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(queue.pop(), Some(0), "pusher was blocked on a full queue");
        pusher.join().unwrap().ok().unwrap();
        assert_eq!(queue.pop(), Some(1));

        // A close while blocked hands the item back.
        queue.try_push(2).ok().unwrap();
        let pusher = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push_wait(3))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        queue.close();
        assert_eq!(pusher.join().unwrap(), Err(3));
    }
}
