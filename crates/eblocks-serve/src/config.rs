//! Daemon configuration.

use eblocks_lint::LintConfig;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Configuration for one daemon (see [`spawn`](crate::spawn)).
///
/// Edge cases are clamped, not rejected, mirroring the farm's
/// `with_workers(0)` behavior: a queue capacity of 0 becomes 1, a worker
/// count of 0 becomes 1, and missing spool directories are created on
/// startup.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The spool root; `inbox/`, `outbox/`, `rejected/`, and `claimed/`
    /// are created under it if missing.
    pub spool: PathBuf,
    /// Bind a Unix-domain socket at this path (a stale socket file from
    /// a previous run is removed first). `None` (the default) serves the
    /// spool only.
    pub socket: Option<PathBuf>,
    /// Daemon worker threads executing queued requests. 0 clamps to 1.
    /// Default 1: one request at a time, in admission order.
    pub workers: usize,
    /// Bounded work-queue capacity. 0 clamps to 1. Default 64.
    pub queue_capacity: usize,
    /// How often the spool watcher scans `inbox/`. Default 20ms.
    pub poll_interval: Duration,
    /// Lint every loadable design in a request at this deny level
    /// *before* enqueueing; rejections are turned away at admission
    /// (`lint-rejected`) without running any synthesis. `None` (the
    /// default) admits everything, which keeps daemon responses
    /// byte-identical to the one-shot `batch`/`synth` paths.
    pub admission_lint: Option<LintConfig>,
    /// Per-job retry budget for every request the daemon runs
    /// ([`FarmConfig::max_retries`](eblocks_farm::FarmConfig::max_retries)).
    pub max_retries: u32,
    /// Cooperative per-attempt deadline for every job
    /// ([`FarmConfig::job_timeout`](eblocks_farm::FarmConfig::job_timeout)).
    pub job_timeout: Option<Duration>,
    /// Worker threads of the *farm pool inside one batch request*;
    /// `None` uses all cores. Reports are deterministic either way.
    pub farm_workers: Option<usize>,
    /// Install SIGTERM/SIGINT handlers: the first signal starts a
    /// graceful drain, a second hardens it (running batches cancel
    /// never-claimed jobs). Default false — embedders and tests drive
    /// shutdown through [`ServerHandle::shutdown`](crate::ServerHandle)
    /// or a `"shutdown"` request; the CLI sets it.
    pub handle_signals: bool,
}

impl ServeConfig {
    /// A default config serving the spool rooted at `spool`.
    pub fn new(spool: impl AsRef<Path>) -> Self {
        Self {
            spool: spool.as_ref().to_path_buf(),
            socket: None,
            workers: 1,
            queue_capacity: 64,
            poll_interval: Duration::from_millis(20),
            admission_lint: None,
            max_retries: 0,
            job_timeout: None,
            farm_workers: None,
            handle_signals: false,
        }
    }

    /// Also serve the line-delimited JSON protocol on a Unix socket at
    /// `path` (see [`ServeConfig::socket`]).
    pub fn socket(mut self, path: impl AsRef<Path>) -> Self {
        self.socket = Some(path.as_ref().to_path_buf());
        self
    }

    /// Sets the daemon worker count (see [`ServeConfig::workers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the bounded queue capacity (see
    /// [`ServeConfig::queue_capacity`]).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the spool scan period (see [`ServeConfig::poll_interval`]).
    pub fn poll_interval(mut self, interval: Duration) -> Self {
        self.poll_interval = interval;
        self
    }

    /// Turns on the admission lint gate (see
    /// [`ServeConfig::admission_lint`]).
    pub fn admission_lint(mut self, config: LintConfig) -> Self {
        self.admission_lint = Some(config);
        self
    }

    /// Sets the per-job retry budget (see [`ServeConfig::max_retries`]).
    pub fn retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets the per-attempt deadline (see [`ServeConfig::job_timeout`]).
    pub fn job_timeout(mut self, limit: Duration) -> Self {
        self.job_timeout = Some(limit);
        self
    }

    /// The config with its edge cases clamped (workers and queue
    /// capacity at least 1).
    pub(crate) fn clamped(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.queue_capacity = self.queue_capacity.max(1);
        self
    }

    /// `<spool>/inbox`.
    pub(crate) fn inbox(&self) -> PathBuf {
        self.spool.join("inbox")
    }

    /// `<spool>/outbox`.
    pub(crate) fn outbox(&self) -> PathBuf {
        self.spool.join("outbox")
    }

    /// `<spool>/rejected`.
    pub(crate) fn rejected(&self) -> PathBuf {
        self.spool.join("rejected")
    }

    /// `<spool>/claimed`.
    pub(crate) fn claimed(&self) -> PathBuf {
        self.spool.join("claimed")
    }
}
