//! Integration tests for the spool front door: round trips, structured
//! rejection, config edge cases, and the seeded corrupt-file storm.

use eblocks_farm::api::{BatchRequest, SynthRequest};
use eblocks_farm::{run_batch, FarmConfig, JsonOptions};
use eblocks_serve::{spawn, ServeConfig};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn tempdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("eblocks-serve-spool-{tag}-{}", std::process::id()));
    // A stale directory from a previous run would leak old spool files
    // into the assertions.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A fast-polling config for tests.
fn config(spool: &Path) -> ServeConfig {
    ServeConfig::new(spool).poll_interval(Duration::from_millis(2))
}

/// Drops a request into the inbox the way real producers must: write
/// the bytes elsewhere, then rename into place. A plain `fs::write`
/// into a watched inbox races the scanner, which may claim the file
/// before its content lands.
fn spool_file(spool: &Path, name: &str, bytes: impl AsRef<[u8]>) {
    let staging = spool.join(format!(".staging-{name}"));
    std::fs::write(&staging, bytes.as_ref()).unwrap();
    std::fs::rename(&staging, spool.join("inbox").join(name)).unwrap();
}

/// Waits for `path` to appear (responses are rename-published, so
/// existence implies complete content).
fn wait_for(path: &Path) -> Vec<u8> {
    let deadline = Instant::now() + Duration::from_secs(60);
    while Instant::now() < deadline {
        if let Ok(bytes) = std::fs::read(path) {
            return bytes;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for {}", path.display());
}

/// Every file in `dir`, name → bytes.
fn dir_map(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut map = BTreeMap::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().into_string().unwrap();
            map.insert(name, std::fs::read(entry.path()).unwrap());
        }
    }
    map
}

const BATCH_REQUEST: &str = r#"{"jobs": [
  {"source": {"library": "Carpool Alert"}},
  {"name": "g8", "source": {"generated": {"inner": 8, "seed": 3}},
   "options": {"mode": "partition"}}
]}"#;

#[test]
fn round_trips_batch_and_synth_requests_through_the_spool() {
    let spool = tempdir("roundtrip");
    let handle = spawn(config(&spool)).unwrap();

    spool_file(&spool, "batch.json", BATCH_REQUEST);
    let synth = r#"{"synth": {"source": {"library": "Carpool Alert"}}}"#;
    spool_file(&spool, "synth.json", synth);

    // The batch response is byte-identical to the one-shot path: the
    // same request through `run_batch` + `to_json`.
    let got = wait_for(&spool.join("outbox/batch.json"));
    let request: BatchRequest = serde::json::from_str(BATCH_REQUEST).unwrap();
    let report = run_batch(&request.to_batch(), &FarmConfig::default());
    let expected = format!("{}\n", report.to_json(&JsonOptions::default()));
    assert_eq!(String::from_utf8(got).unwrap(), expected);

    // The synth response is the pretty-printed `SynthResponse`, the same
    // shape `eblocks-cli synth --json` prints. Its `stages_ms` rows are
    // wall-clock (never byte-stable), so compare with them cleared.
    let got = String::from_utf8(wait_for(&spool.join("outbox/synth.json"))).unwrap();
    assert!(got.ends_with('\n'), "{got:?}");
    let mut got: eblocks_farm::api::SynthResponse = serde::json::from_str(&got).unwrap();
    let request: SynthRequest =
        serde::json::from_str(r#"{"source": {"library": "Carpool Alert"}}"#).unwrap();
    let mut expected = eblocks_farm::api::synthesize(&request).unwrap();
    got.stages_ms.clear();
    expected.stages_ms.clear();
    assert_eq!(got, expected);

    handle.shutdown();
    let summary = handle.join().unwrap();
    assert_eq!(
        (summary.accepted, summary.rejected, summary.completed),
        (2, 0, 2)
    );
}

#[test]
fn rejects_malformed_inputs_with_structured_errors() {
    let spool = tempdir("reject");
    let handle = spawn(config(&spool)).unwrap();

    spool_file(&spool, "garbage.json", "{{{ not json");
    spool_file(&spool, "binary.json", [0xffu8, 0xfe, 0x00, 0x80]);
    spool_file(&spool, "reboot.json", r#"{"reboot": {}}"#);
    spool_file(
        &spool,
        "badjobs.json",
        r#"{"jobs": [{"source": {"warp": 9}}]}"#,
    );

    let garbage =
        String::from_utf8(wait_for(&spool.join("rejected/garbage.json.error.json"))).unwrap();
    assert!(garbage.contains("invalid request"), "{garbage}");
    let binary =
        String::from_utf8(wait_for(&spool.join("rejected/binary.json.error.json"))).unwrap();
    assert!(binary.contains("not valid UTF-8"), "{binary}");
    let reboot =
        String::from_utf8(wait_for(&spool.join("rejected/reboot.json.error.json"))).unwrap();
    assert!(reboot.contains("invalid request"), "{reboot}");
    // A top-level `jobs` key reads as a bare batch request, so the error
    // talks about the batch shape, not the envelope.
    let badjobs =
        String::from_utf8(wait_for(&spool.join("rejected/badjobs.json.error.json"))).unwrap();
    assert!(badjobs.contains("invalid batch request"), "{badjobs}");

    // The originals are preserved next to their error files.
    assert_eq!(
        wait_for(&spool.join("rejected/garbage.json")),
        b"{{{ not json"
    );

    // A stats request through the spool reports the rejection counters.
    spool_file(&spool, "stats.json", "\"stats\"");
    let stats = String::from_utf8(wait_for(&spool.join("outbox/stats.json"))).unwrap();
    assert!(stats.contains("\"rejected\": 4"), "{stats}");
    assert!(stats.contains("\"accepted\": 0"), "{stats}");

    // A spooled shutdown drains the daemon; the ack is the unit variant.
    spool_file(&spool, "zz-shutdown.json", "\"shutdown\"");
    let ack = wait_for(&spool.join("outbox/zz-shutdown.json"));
    assert_eq!(ack, b"\"shutdown\"\n");
    let summary = handle.join().unwrap();
    assert_eq!(
        (summary.accepted, summary.rejected, summary.completed),
        (0, 4, 0)
    );
}

#[test]
fn clamps_config_edge_cases_and_creates_missing_directories() {
    let root = tempdir("clamp");
    // The spool root itself does not exist yet — spawn creates the whole
    // tree. Zero workers and zero queue capacity clamp to 1, mirroring
    // the farm's `with_workers(0)`.
    let spool = root.join("deep/never/made");
    let handle = spawn(config(&spool).workers(0).queue_capacity(0)).unwrap();
    for dir in ["inbox", "outbox", "rejected", "claimed"] {
        assert!(spool.join(dir).is_dir(), "{dir} auto-created");
    }

    spool_file(
        &spool,
        "one.json",
        r#"{"jobs": [{"source": {"library": "Carpool Alert"}}]}"#,
    );
    let response = String::from_utf8(wait_for(&spool.join("outbox/one.json"))).unwrap();
    assert!(response.contains(r#""succeeded":1"#), "{response}");

    handle.shutdown();
    let summary = handle.join().unwrap();
    assert_eq!((summary.accepted, summary.completed), (1, 1));
}

#[test]
fn duplicate_inbox_filenames_resolve_last_wins() {
    let spool = tempdir("dup");
    let handle = spawn(config(&spool)).unwrap();

    spool_file(
        &spool,
        "job.json",
        r#"{"jobs": [{"source": {"library": "Carpool Alert"}}]}"#,
    );
    let first = String::from_utf8(wait_for(&spool.join("outbox/job.json"))).unwrap();
    assert!(first.contains(r#""jobs":1"#), "{first}");

    // The same filename again, now with two jobs: the claimed-file
    // sequence number keeps the in-flight copies distinct, and the
    // second response overwrites the first in the outbox.
    spool_file(
        &spool,
        "job.json",
        r#"{"jobs": [
            {"source": {"library": "Carpool Alert"}},
            {"source": {"generated": {"inner": 6, "seed": 1}}, "options": {"mode": "partition"}}
        ]}"#,
    );
    let deadline = Instant::now() + Duration::from_secs(60);
    let second = loop {
        let text = String::from_utf8(wait_for(&spool.join("outbox/job.json"))).unwrap();
        if text.contains(r#""jobs":2"#) {
            break text;
        }
        assert!(
            Instant::now() < deadline,
            "second response never landed: {text}"
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(second.contains(r#""succeeded":2"#), "{second}");

    handle.shutdown();
    let summary = handle.join().unwrap();
    assert_eq!((summary.accepted, summary.completed), (2, 2));
}

/// The acceptance storm: 256 seeded corruptions of a valid request, every
/// one answered or rejected — no panics, no lost inputs — and the whole
/// outcome byte-identical on a second run over the same bytes.
#[test]
fn corrupt_spool_storm_accounts_for_every_input() {
    // Cheap base request so the (rare) still-parseable corruptions run
    // in microseconds.
    let base = br#"{"jobs": [{"source": {"generated": {"inner": 4, "seed": 1}}, "options": {"mode": "partition", "verify": false}}]}"#;
    let variants = eblocks_chaos::corrupt::storm(0..256, base);

    let run_storm = |tag: &str| -> (BTreeMap<String, Vec<u8>>, BTreeMap<String, Vec<u8>>) {
        let spool = tempdir(tag);
        let handle = spawn(config(&spool).workers(4)).unwrap();
        for (seed, bytes) in &variants {
            spool_file(&spool, &format!("storm-{seed:03}.json"), bytes);
        }
        // Every input lands in exactly one of outbox/ or rejected/.
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let outbox = dir_map(&spool.join("outbox"));
            let rejected: Vec<String> = dir_map(&spool.join("rejected"))
                .into_keys()
                .filter(|name| !name.ends_with(".error.json"))
                .collect();
            if outbox.len() + rejected.len() == variants.len() {
                for (seed, _) in &variants {
                    let name = format!("storm-{seed:03}.json");
                    let answered = outbox.contains_key(&name) || rejected.contains(&name);
                    assert!(answered, "seed {seed} unaccounted for");
                }
                break;
            }
            assert!(
                Instant::now() < deadline,
                "storm stalled: {} answered of {}",
                outbox.len() + rejected.len(),
                variants.len()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        handle.shutdown();
        let summary = handle.join().unwrap();
        assert_eq!(summary.accepted + summary.rejected, 256, "{summary:?}");
        assert_eq!(summary.completed, summary.accepted, "{summary:?}");
        (
            dir_map(&spool.join("outbox")),
            dir_map(&spool.join("rejected")),
        )
    };

    let (outbox_a, rejected_a) = run_storm("storm-a");
    let (outbox_b, rejected_b) = run_storm("storm-b");
    assert_eq!(outbox_a, outbox_b, "responses replay byte-identically");
    assert_eq!(rejected_a, rejected_b, "rejections replay byte-identically");
}
