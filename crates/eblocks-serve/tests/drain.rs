//! Graceful-drain determinism: a pinned-seed storm of valid and
//! corrupted requests followed immediately by a shutdown must produce
//! the same outbox/rejected file set — byte for byte — no matter how
//! many daemon workers race over the queue.

use eblocks_serve::{spawn, ServeConfig};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn tempdir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("eblocks-serve-drain-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dir_map(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut map = BTreeMap::new();
    for entry in std::fs::read_dir(dir).unwrap().flatten() {
        let name = entry.file_name().into_string().unwrap();
        map.insert(name, std::fs::read(entry.path()).unwrap());
    }
    map
}

#[test]
fn drained_spool_is_byte_identical_across_worker_counts() {
    let valid = br#"{"jobs": [
        {"source": {"library": "Carpool Alert"}},
        {"source": {"generated": {"inner": 10, "seed": 7}}, "options": {"mode": "partition"}}
    ]}"#;
    // Pinned corruption seeds: deterministic malformed variants of the
    // same request, rejected identically on every run.
    let corrupted = eblocks_chaos::corrupt::storm(40..44, valid);

    let run_drain = |workers: usize| {
        let spool = tempdir(&format!("w{workers}"));
        let inbox = spool.join("inbox");
        std::fs::create_dir_all(&inbox).unwrap();
        // Everything is spooled before the daemon starts, shutdown file
        // sorted last: one scan admits the storm, then begins the drain
        // while batches are still mid-flight. The drain must still
        // answer every admitted request.
        for i in 0..4 {
            std::fs::write(inbox.join(format!("req-{i}.json")), valid).unwrap();
        }
        for (seed, bytes) in &corrupted {
            std::fs::write(inbox.join(format!("storm-{seed}.json")), bytes).unwrap();
        }
        std::fs::write(inbox.join("zz-shutdown.json"), "\"shutdown\"").unwrap();

        let handle = spawn(
            ServeConfig::new(&spool)
                .workers(workers)
                .poll_interval(Duration::from_millis(2)),
        )
        .unwrap();
        let summary = handle.join().unwrap();
        // The 4 valid requests are admitted; each corrupted variant is
        // either rejected or (if it still parses) admitted — but always
        // the same way, which the cross-worker comparison below pins.
        assert!(summary.accepted >= 4, "workers={workers}: {summary:?}");
        assert_eq!(summary.accepted + summary.rejected, 8, "{summary:?}");
        assert_eq!(
            summary.completed, summary.accepted,
            "drain answers the backlog: {summary:?}"
        );
        (
            dir_map(&spool.join("outbox")),
            dir_map(&spool.join("rejected")),
        )
    };

    let baseline = run_drain(1);
    for workers in [2, 8] {
        let got = run_drain(workers);
        assert_eq!(got.0, baseline.0, "outbox differs at {workers} workers");
        assert_eq!(got.1, baseline.1, "rejected differs at {workers} workers");
    }
    assert!(baseline.0.len() >= 5, "4 responses + 1 shutdown ack");
}
