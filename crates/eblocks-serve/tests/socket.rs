//! Integration tests for the Unix-socket front door: the line-delimited
//! protocol, streamed progress, explicit backpressure, and the seeded
//! client storm.
#![cfg(unix)]

use eblocks_farm::api::{Admission, BatchRequest, BatchResponse, ReplyEnvelope, ServeReply};
use eblocks_farm::{run_batch, FarmConfig, JsonOptions};
use eblocks_serve::{spawn, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eblocks-serve-sock-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Connects to `path`, retrying while the daemon finishes binding.
fn connect(path: &PathBuf) -> UnixStream {
    for _ in 0..500 {
        if let Ok(stream) = UnixStream::connect(path) {
            return stream;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never bound {}", path.display());
}

fn read_reply(reader: &mut BufReader<UnixStream>) -> ReplyEnvelope {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    serde::json::from_str(&line).unwrap_or_else(|e| panic!("bad reply line {line:?}: {e}"))
}

// One physical line: the protocol frames on newlines.
const BATCH_REQUEST: &str = r#"{"jobs": [{"source": {"library": "Carpool Alert"}}, {"name": "g8", "source": {"generated": {"inner": 8, "seed": 3}}, "options": {"mode": "partition"}}]}"#;

#[test]
fn socket_protocol_streams_progress_and_matches_the_one_shot_report() {
    let spool = tempdir("protocol");
    let socket = spool.join("daemon.sock");
    let handle = spawn(
        ServeConfig::new(&spool)
            .socket(&socket)
            .poll_interval(Duration::from_millis(2)),
    )
    .unwrap();

    let mut stream = connect(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let line = format!("{{\"id\": \"req-1\", \"request\": {{\"batch\": {BATCH_REQUEST}}}}}\n");
    stream.write_all(line.as_bytes()).unwrap();

    // Reply order per request: admission verdict first, then streamed
    // progress (started+finished per job), then exactly one final reply.
    let admission = read_reply(&mut reader);
    assert_eq!(admission.id.as_deref(), Some("req-1"));
    let ServeReply::Admission(verdict) = &admission.reply else {
        panic!("expected admission first, got {admission:?}");
    };
    assert_eq!(verdict.status, Admission::Accepted);

    let mut started = 0;
    let mut finished = 0;
    let response = loop {
        let reply = read_reply(&mut reader);
        assert_eq!(reply.id.as_deref(), Some("req-1"));
        match reply.reply {
            ServeReply::Progress(event) => match event.event {
                eblocks_farm::api::ProgressKind::Started => started += 1,
                eblocks_farm::api::ProgressKind::Finished => finished += 1,
            },
            ServeReply::Batch(response) => break response,
            other => panic!("unexpected reply {other:?}"),
        }
    };
    assert_eq!((started, finished), (2, 2), "one started+finished per job");

    // The embedded BatchResponse is byte-identical to the one-shot path.
    let request: BatchRequest = serde::json::from_str(BATCH_REQUEST).unwrap();
    let report = run_batch(&request.to_batch(), &FarmConfig::default());
    let expected = BatchResponse::from_report(&report, &JsonOptions::default());
    assert_eq!(
        serde::json::to_string(&response),
        serde::json::to_string(&expected)
    );

    // A bare control request (no envelope) gets an auto-assigned id.
    stream.write_all(b"\"stats\"\n").unwrap();
    let stats = read_reply(&mut reader);
    assert_eq!(stats.id.as_deref(), Some("r0"));
    let ServeReply::Stats(stats) = stats.reply else {
        panic!("expected stats");
    };
    assert_eq!((stats.accepted, stats.completed), (1, 1));
    assert!(!stats.stages.is_empty(), "stage aggregates accumulated");

    // Malformed lines are answered, not fatal: the connection lives on.
    stream.write_all(b"{{{ not json\n").unwrap();
    let error = read_reply(&mut reader);
    assert!(matches!(error.reply, ServeReply::Error(_)), "{error:?}");

    stream
        .write_all(b"{\"id\": \"bye\", \"request\": \"shutdown\"}\n")
        .unwrap();
    let ack = read_reply(&mut reader);
    assert_eq!(ack.id.as_deref(), Some("bye"));
    assert!(matches!(ack.reply, ServeReply::Shutdown));

    let summary = handle.join().unwrap();
    assert_eq!(
        (summary.accepted, summary.rejected, summary.completed),
        (1, 0, 1)
    );
}

#[test]
fn full_queue_is_an_explicit_verdict_and_every_accepted_request_is_answered() {
    let spool = tempdir("backpressure");
    let socket = spool.join("daemon.sock");
    // One worker, one queue slot: a burst of requests must overflow, and
    // the overflow must be an explicit queue-full verdict, not a hang.
    let handle = spawn(
        ServeConfig::new(&spool)
            .socket(&socket)
            .workers(1)
            .queue_capacity(1)
            .poll_interval(Duration::from_millis(2)),
    )
    .unwrap();

    let mut stream = connect(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    const BURST: usize = 12;
    for i in 0..BURST {
        let line =
            format!("{{\"id\": \"burst-{i}\", \"request\": {{\"batch\": {BATCH_REQUEST}}}}}\n");
        stream.write_all(line.as_bytes()).unwrap();
    }

    let mut accepted = 0usize;
    let mut queue_full = 0usize;
    let mut final_replies = 0usize;
    // Every request gets an admission verdict; every accepted one also
    // gets a final reply (progress events stream in between).
    while final_replies < BURST - queue_full || accepted + queue_full < BURST {
        let reply = read_reply(&mut reader);
        match reply.reply {
            ServeReply::Admission(verdict) => match verdict.status {
                Admission::Accepted => accepted += 1,
                Admission::QueueFull => {
                    queue_full += 1;
                    assert!(
                        verdict.detail.as_deref() == Some("queue at capacity 1"),
                        "{verdict:?}"
                    );
                }
                Admission::LintRejected => panic!("no lint gate configured"),
            },
            ServeReply::Batch(_) => final_replies += 1,
            ServeReply::Progress(_) => {}
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(accepted + queue_full, BURST);
    assert!(accepted >= 1, "the first request is always admitted");
    assert!(
        queue_full >= 1,
        "a 12-request burst into a 1-slot queue must overflow"
    );

    stream.write_all(b"\"shutdown\"\n").unwrap();
    let summary = handle.join().unwrap();
    assert_eq!(summary.accepted as usize, accepted);
    assert_eq!(summary.rejected as usize, queue_full);
    assert_eq!(summary.completed as usize, accepted);
}

#[test]
fn seeded_client_storms_never_kill_the_daemon() {
    let spool = tempdir("client-storm");
    let socket = spool.join("daemon.sock");
    let handle = spawn(
        ServeConfig::new(&spool)
            .socket(&socket)
            .workers(2)
            .poll_interval(Duration::from_millis(2)),
    )
    .unwrap();

    // Corrupted request lines from pinned seeds: every line gets an
    // answer (an error reply, or a verdict when it still parses), and
    // the daemon survives all of them.
    let base = br#"{"id": "x", "request": {"batch": {"jobs": [{"source": {"generated": {"inner": 4, "seed": 1}}, "options": {"mode": "partition"}}]}}}"#;
    for (seed, mut bytes) in eblocks_chaos::corrupt::storm(0..64, base) {
        // Keep the line framing intact: the protocol splits on newlines,
        // so an injected newline would just read as two lines.
        bytes.retain(|&b| b != b'\n');
        let mut stream = connect(&socket);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        stream.write_all(&bytes).unwrap();
        stream.write_all(b"\n").unwrap();
        // Whatever the corruption produced, the first reply line must
        // arrive and parse as a ReplyEnvelope.
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(
            serde::json::from_str::<ReplyEnvelope>(&line).is_ok(),
            "seed {seed}: unparseable reply {line:?}"
        );
    }

    // The daemon is still fully functional after the storm.
    let mut stream = connect(&socket);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream.write_all(b"\"stats\"\n").unwrap();
    let stats = read_reply(&mut reader);
    assert!(matches!(stats.reply, ServeReply::Stats(_)), "{stats:?}");

    stream.write_all(b"\"shutdown\"\n").unwrap();
    handle.join().unwrap();
}
