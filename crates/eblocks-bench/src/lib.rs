//! Shared harness code for regenerating the paper's evaluation (§5).
//!
//! The binaries in `src/bin/` print the paper's tables from live runs:
//!
//! * `table1` — exhaustive vs PareDown on the 15 library designs,
//! * `table2` — the random-design sweep (per-size averages), run as
//!   partition-mode batches on the `eblocks-farm` worker pool,
//! * `scaling` — §5.2 runtime claims, including the 465-inner-node design,
//!   plus batch-synthesis speedup (sequential vs N farm workers) over the
//!   15 Table-1 designs,
//! * `codesize` — §3.3's 2 KB-program-memory assumption, checked on every
//!   partition of every library design,
//! * `ablation` — the §4.2 tie-break rules and constraint variants,
//! * `optimality` — the extension quality ladder (aggregation → PareDown →
//!   refine → anneal → optimal) with runtimes,
//! * `families` — per-topology behavior over the structured design
//!   families (chain / wide / tree / reconvergent / layered),
//! * `catalog` — the §6 multi-type block-catalog cost study,
//! * `energy` — the abstract's power claim: packet counts and estimated
//!   energy before vs after synthesis on every library design.
//!
//! Absolute times will differ from the paper's 2 GHz Athlon XP + Java
//! numbers by orders of magnitude; the *shape* (exhaustive explodes past
//! ~11–13 inner blocks, PareDown stays near-instant and near-optimal) is
//! the reproduction target. See `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use eblocks_core::Design;
use eblocks_farm::{run_batch, Batch, FarmConfig, Job, JobMode};
use eblocks_partition::strategy::Exhaustive;
use eblocks_partition::{
    ExhaustiveOptions, PartitionConstraints, Partitioner, Partitioning, Registry,
};
use eblocks_synth::Stage;
use std::time::{Duration, Instant};

/// The paper's Table 2 sweep: `(inner blocks, number of designs)`.
pub const TABLE2_COUNTS: [(usize, usize); 17] = [
    (3, 1531),
    (4, 982),
    (5, 542),
    (6, 432),
    (7, 447),
    (8, 350),
    (9, 340),
    (10, 199),
    (11, 170),
    (12, 31),
    (13, 6),
    (14, 1311),
    (15, 1184),
    (20, 928),
    (25, 691),
    (35, 354),
    (45, 165),
];

/// Inner-block count beyond which the paper stopped running the exhaustive
/// search ("--" rows in Table 2).
pub const EXHAUSTIVE_CUTOFF: usize = 13;

/// Timed single-algorithm run.
#[derive(Debug, Clone)]
pub struct Timed {
    /// The partitioning result.
    pub result: Partitioning,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// Runs one algorithm with timing.
pub fn timed<F: FnOnce() -> Partitioning>(f: F) -> Timed {
    let start = Instant::now();
    let result = f();
    Timed {
        result,
        elapsed: start.elapsed(),
    }
}

/// Runs a [`Partitioner`] strategy on `design`, timed. The sweeps drive
/// every algorithm through this one entry point, so adding a strategy to
/// the registry automatically makes it benchmarkable.
pub fn run_partitioner(
    design: &Design,
    constraints: &PartitionConstraints,
    partitioner: &dyn Partitioner,
) -> Timed {
    timed(|| partitioner.partition(design, constraints))
}

/// The exhaustive strategy with a per-design time budget (it returns its
/// incumbent on expiry).
pub fn exhaustive_with_limit(limit: Duration) -> Exhaustive {
    Exhaustive {
        options: ExhaustiveOptions {
            time_limit: Some(limit),
            ..Default::default()
        },
    }
}

/// Accumulated averages for one (size, algorithm) cell of Table 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct Averages {
    /// Designs measured.
    pub designs: usize,
    /// Mean *Inner Blocks (Total)* after partitioning.
    pub total: f64,
    /// Mean *Inner Blocks (Prog.)* (number of partitions).
    pub prog: f64,
    /// Mean per-design wall-clock time.
    pub time: Duration,
    /// How many exhaustive runs hit the time limit (0 for heuristics).
    pub timeouts: usize,
}

impl Averages {
    /// Folds a run into the averages.
    pub fn add(&mut self, timed: &Timed) {
        self.fold(
            timed.result.inner_total(),
            timed.result.num_partitions(),
            timed.result.is_complete(),
            timed.elapsed,
        );
    }

    /// Folds one measurement into the averages from its raw parts — the
    /// farm-driven sweep feeds per-job report rows through this.
    pub fn fold(&mut self, total: usize, prog: usize, complete: bool, elapsed: Duration) {
        let n = self.designs as f64;
        self.total = (self.total * n + total as f64) / (n + 1.0);
        self.prog = (self.prog * n + prog as f64) / (n + 1.0);
        self.time = Duration::from_secs_f64(
            (self.time.as_secs_f64() * n + elapsed.as_secs_f64()) / (n + 1.0),
        );
        if !complete {
            self.timeouts += 1;
        }
        self.designs += 1;
    }
}

/// One row of the Table 2 reproduction.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Inner blocks per design.
    pub inner: usize,
    /// Designs measured.
    pub designs: usize,
    /// Exhaustive averages, when run at this size.
    pub exhaustive: Option<Averages>,
    /// PareDown averages.
    pub pare_down: Averages,
}

impl SweepRow {
    /// Mean block overhead of PareDown vs the optimum.
    pub fn block_overhead(&self) -> Option<f64> {
        self.exhaustive.map(|e| self.pare_down.total - e.total)
    }

    /// Percent overhead of PareDown vs the optimum.
    pub fn percent_overhead(&self) -> Option<f64> {
        self.exhaustive.map(|e| {
            if e.total == 0.0 {
                0.0
            } else {
                100.0 * (self.pare_down.total - e.total) / e.total
            }
        })
    }
}

/// Runs the Table 2 sweep on the farm engine: every (design, algorithm)
/// measurement is one partition-mode [`Job`] and each size row is a
/// [`Batch`] drained by `workers` threads. `scale` multiplies the paper's
/// per-size design counts (1.0 = full paper scale); `per_design_limit`
/// bounds each exhaustive run. Per-design times come from the farm's
/// partition-stage timings, so they measure the algorithm, not the pool.
pub fn table2_sweep(
    counts: &[(usize, usize)],
    scale: f64,
    per_design_limit: Duration,
    workers: usize,
    mut progress: impl FnMut(usize, usize),
) -> Vec<SweepRow> {
    let mut registry = Registry::builtin();
    registry.register("exhaustive-limited", move || {
        Box::new(exhaustive_with_limit(per_design_limit))
    });
    let config = FarmConfig {
        workers: Some(workers),
        registry,
        ..FarmConfig::default()
    };
    let mut rows = Vec::new();
    for &(inner, paper_count) in counts {
        let count = ((paper_count as f64 * scale).round() as usize).max(1);
        let mut jobs = Vec::new();
        for i in 0..count {
            // Seed derived from (size, index) so rows are independent.
            let seed = (inner as u64) << 32 | i as u64;
            let job = Job::generated(inner, seed).with_mode(JobMode::Partition);
            if inner <= EXHAUSTIVE_CUTOFF {
                jobs.push(job.clone().with_partitioner("exhaustive-limited"));
            }
            jobs.push(job.with_partitioner("pare-down"));
        }
        let report = run_batch(&Batch::new(jobs), &config);
        let mut exh = Averages::default();
        let mut pd = Averages::default();
        for job in &report.jobs {
            let stats = job
                .stats
                .as_ref()
                .unwrap_or_else(|| panic!("{}: {:?}", job.name, job.status));
            let elapsed = stats
                .timings
                .get(Stage::Partition)
                .map(|r| r.elapsed)
                .unwrap_or_default();
            let avg = if job.partitioner == "exhaustive-limited" {
                &mut exh
            } else {
                &mut pd
            };
            avg.fold(stats.inner_after, stats.partitions, stats.complete, elapsed);
        }
        progress(inner, count);
        rows.push(SweepRow {
            inner,
            designs: count,
            exhaustive: (inner <= EXHAUSTIVE_CUTOFF).then_some(exh),
            pare_down: pd,
        });
    }
    rows
}

/// Formats a duration like the paper's Time column (`<1ms`, `4.53s`, …).
pub fn fmt_time(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1000 {
        // The paper's smallest bucket.
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1000.0)
    } else if us < 60_000_000 {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{:.2}min", d.as_secs_f64() / 60.0)
    }
}

/// Renders the Table 2 reproduction as fixed-width text.
pub fn render_table2(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "inner  designs |   exh.total  exh.prog    exh.time |    pd.total   pd.prog     pd.time | overhead  %overhead\n",
    );
    out.push_str(&"-".repeat(110));
    out.push('\n');
    for row in rows {
        let (et, ep, etime) = match row.exhaustive {
            Some(e) => (
                format!("{:.2}", e.total),
                format!("{:.2}", e.prog),
                fmt_time(e.time),
            ),
            None => ("--".into(), "--".into(), "--".into()),
        };
        let (bo, po) = match (row.block_overhead(), row.percent_overhead()) {
            (Some(b), Some(p)) => (format!("{b:.2}"), format!("{p:.0}%")),
            _ => ("--".into(), "--".into()),
        };
        out.push_str(&format!(
            "{:>5}  {:>7} | {:>11} {:>9} {:>11} | {:>11} {:>9} {:>11} | {:>8} {:>10}\n",
            row.inner,
            row.designs,
            et,
            ep,
            etime,
            format!("{:.2}", row.pare_down.total),
            format!("{:.2}", row.pare_down.prog),
            fmt_time(row.pare_down.time),
            bo,
            po,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_gen::GeneratorConfig;
    use eblocks_partition::strategy::PareDown;

    #[test]
    fn averages_fold_correctly() {
        let d = eblocks_gen::generate(&GeneratorConfig::new(5), 1);
        let c = PartitionConstraints::default();
        let mut avg = Averages::default();
        let r = run_partitioner(&d, &c, &PareDown);
        let total = r.result.inner_total() as f64;
        avg.add(&r);
        avg.add(&r);
        assert_eq!(avg.designs, 2);
        assert!((avg.total - total).abs() < 1e-9);
    }

    #[test]
    fn small_sweep_has_expected_shape() {
        let rows = table2_sweep(
            &[(3, 5), (14, 3)],
            1.0,
            Duration::from_secs(2),
            2,
            |_, _| {},
        );
        assert_eq!(rows.len(), 2);
        assert!(rows[0].exhaustive.is_some(), "n=3 gets exhaustive data");
        assert!(rows[1].exhaustive.is_none(), "n=14 is past the cutoff");
        assert_eq!(rows[0].pare_down.designs, 5);
        assert_eq!(rows[0].exhaustive.unwrap().designs, 5);
        // PareDown can never beat the (completed) optimum.
        if rows[0].exhaustive.unwrap().timeouts == 0 {
            assert!(rows[0].block_overhead().unwrap() >= -1e-9);
        }
        let text = render_table2(&rows);
        assert!(text.contains("--"), "{text}");
    }

    #[test]
    fn sweep_is_worker_count_independent() {
        let sequential = table2_sweep(&[(4, 4)], 1.0, Duration::from_secs(2), 1, |_, _| {});
        let parallel = table2_sweep(&[(4, 4)], 1.0, Duration::from_secs(2), 8, |_, _| {});
        let key = |rows: &[SweepRow]| {
            rows.iter()
                .map(|r| {
                    (
                        r.inner,
                        r.pare_down.total,
                        r.pare_down.prog,
                        r.exhaustive.map(|e| (e.total, e.prog)),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&sequential), key(&parallel));
    }

    #[test]
    fn time_formatting_buckets() {
        assert_eq!(fmt_time(Duration::from_micros(250)), "250us");
        assert_eq!(fmt_time(Duration::from_micros(2500)), "2.50ms");
        assert_eq!(fmt_time(Duration::from_secs(5)), "5.00s");
        assert_eq!(fmt_time(Duration::from_secs(120)), "2.00min");
    }
}
