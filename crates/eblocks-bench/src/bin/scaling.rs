//! Reproduces the §5.2 runtime claims:
//!
//! * exhaustive search is fine to ~10 inner blocks, painful at 11–13, and
//!   hopeless beyond ("did not conclude after four hours" at 14);
//! * PareDown "continues to process large designs in a reasonable amount of
//!   time", including a 465-inner-node design (80 s on the paper's 2 GHz
//!   Athlon XP under Java; far faster here — the *shape* is the claim).
//!
//! Plus two north-star scaling sections beyond the paper: parallel anneal
//! restarts, and batch-synthesis speedup (sequential vs N farm workers over
//! all 15 Table-1 designs, checking the per-job results stay identical).
//!
//! Usage: `cargo run --release -p eblocks-bench --bin scaling [exh_limit_s]`

use eblocks_bench::{exhaustive_with_limit, fmt_time, run_partitioner};
use eblocks_farm::{run_batch, Batch, FarmConfig, Job, JsonOptions};
use eblocks_gen::{generate, GeneratorConfig};
use eblocks_partition::strategy::{Anneal, PareDown};
use eblocks_partition::{AnnealConfig, PartitionConstraints};
use std::time::Duration;

fn main() {
    let exh_limit_s: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    let constraints = PartitionConstraints::default();

    println!("Exhaustive search scaling (time limit {exh_limit_s}s per design):");
    println!(
        "{:>6} {:>14} {:>10} | {:>16} {:>10}",
        "inner", "pruned", "complete?", "paper-faithful", "complete?"
    );
    for inner in [6, 8, 10, 11, 12, 13, 14] {
        let design = generate(&GeneratorConfig::new(inner), 4242 + inner as u64);
        let t = run_partitioner(
            &design,
            &constraints,
            &exhaustive_with_limit(Duration::from_secs(exh_limit_s)),
        );
        // Paper-faithful mode: only the §4.1 symmetry pruning, no incumbent
        // seeding — the configuration whose runtime Table 2 reports.
        let start = std::time::Instant::now();
        let raw = eblocks_partition::exhaustive(
            &design,
            &constraints,
            eblocks_partition::ExhaustiveOptions {
                time_limit: Some(Duration::from_secs(exh_limit_s)),
                paper_pruning_only: true,
                ..Default::default()
            },
        );
        let raw_elapsed = start.elapsed();
        println!(
            "{:>6} {:>14} {:>10} | {:>16} {:>10}",
            inner,
            fmt_time(t.elapsed),
            if t.result.is_complete() {
                "yes"
            } else {
                "TIMEOUT"
            },
            fmt_time(raw_elapsed),
            if raw.is_complete() { "yes" } else { "TIMEOUT" }
        );
    }

    println!("\nPareDown scaling (same seeds, plus the paper's 465-node point):");
    println!("{:>6} {:>14} {:>8} {:>8}", "inner", "time", "total", "prog");
    for inner in [6, 10, 14, 20, 25, 35, 45, 100, 200, 465] {
        let design = generate(&GeneratorConfig::new(inner), 4242 + inner as u64);
        let t = run_partitioner(&design, &constraints, &PareDown);
        println!(
            "{:>6} {:>14} {:>8} {:>8}",
            inner,
            fmt_time(t.elapsed),
            t.result.inner_total(),
            t.result.num_partitions()
        );
    }

    // The ROADMAP's "parallel annealing restarts" win: N independent walks
    // on scoped threads cost roughly one walk of wall-clock while the
    // best-of-N objective only improves.
    println!("\nParallel anneal restarts (100-inner design, best-of-N):");
    println!(
        "{:>9} {:>14} {:>8} {:>8}",
        "restarts", "time", "total", "prog"
    );
    let design = generate(&GeneratorConfig::new(100), 4242 + 100);
    for restarts in [1u32, 2, 4, 8] {
        let anneal = Anneal {
            config: AnnealConfig {
                iterations: 10_000,
                restarts,
                ..Default::default()
            },
        };
        let t = run_partitioner(&design, &constraints, &anneal);
        println!(
            "{restarts:>9} {:>14} {:>8} {:>8}",
            fmt_time(t.elapsed),
            t.result.inner_total(),
            t.result.num_partitions()
        );
    }

    // Batch synthesis on the farm: the full pipeline (partition, merge,
    // rewrite, co-simulated verification, C emission) over every Table-1
    // design, sequential vs N workers. Per-job results must be identical
    // across worker counts — only the wall clock moves.
    println!("\nBatch synthesis over the 15 Table-1 designs (farm engine, full pipeline):");
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    println!("detected cores: {cores} (speedups below are relative to 1 worker on this machine)");
    println!("{:>8} {:>14} {:>9}", "workers", "time", "speedup");
    let batch = Batch::new(
        eblocks_designs::all()
            .iter()
            .map(|entry| Job::library(entry.name))
            .collect(),
    );
    let deterministic = JsonOptions::default();
    let mut baseline: Option<(Duration, String)> = None;
    let mut identical = true;
    for workers in [1usize, 2, 4, 8] {
        let report = run_batch(&batch, &FarmConfig::with_workers(workers));
        assert!(report.all_ok(), "{}", report.render_text(false));
        let json = report.to_json(&deterministic);
        let speedup = match &baseline {
            None => {
                baseline = Some((report.elapsed, json));
                "1.00x".to_string()
            }
            Some((sequential, sequential_json)) => {
                identical &= json == *sequential_json;
                format!(
                    "{:.2}x",
                    sequential.as_secs_f64() / report.elapsed.as_secs_f64()
                )
            }
        };
        println!(
            "{workers:>8} {:>14} {:>9}",
            fmt_time(report.elapsed),
            speedup
        );
    }
    println!(
        "per-job results identical across worker counts: {}",
        if identical { "yes" } else { "NO — BUG" }
    );
}
