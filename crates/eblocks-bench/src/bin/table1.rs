//! Regenerates the paper's Table 1: exhaustive search vs PareDown on the 15
//! reconstructed library designs (2-in/2-out programmable block).
//!
//! Usage: `cargo run --release -p eblocks-bench --bin table1`

use eblocks_bench::{exhaustive_with_limit, fmt_time, run_partitioner};
use eblocks_partition::strategy::PareDown;
use eblocks_partition::PartitionConstraints;
use std::time::Duration;

fn main() {
    let constraints = PartitionConstraints::default();
    let exhaustive = exhaustive_with_limit(Duration::from_secs(60));

    println!("Table 1 — exhaustive search and PareDown on the design library");
    println!(
        "{:<26} {:>5} | {:>9} {:>8} {:>10} | {:>9} {:>8} {:>10} | {:>8} {:>9}",
        "design",
        "inner",
        "exh.tot",
        "exh.prog",
        "exh.time",
        "pd.tot",
        "pd.prog",
        "pd.time",
        "overhead",
        "%overhead"
    );
    println!("{}", "-".repeat(126));

    for entry in eblocks_designs::all() {
        let inner = entry.design.inner_blocks().count();
        let run_exhaustive = entry.expected.exhaustive.is_some();

        let pd = run_partitioner(&entry.design, &constraints, &PareDown);
        let (exh_cols, overhead_cols) = if run_exhaustive {
            let exh = run_partitioner(&entry.design, &constraints, &exhaustive);
            let overhead = pd.result.inner_total() as i64 - exh.result.inner_total() as i64;
            let pct = if exh.result.inner_total() == 0 {
                0.0
            } else {
                100.0 * overhead as f64 / exh.result.inner_total() as f64
            };
            (
                format!(
                    "{:>9} {:>8} {:>10}",
                    exh.result.inner_total(),
                    exh.result.num_partitions(),
                    fmt_time(exh.elapsed)
                ),
                format!("{overhead:>8} {pct:>8.0}%"),
            )
        } else {
            (
                format!("{:>9} {:>8} {:>10}", "--", "--", "--"),
                format!("{:>8} {:>9}", "--", "--"),
            )
        };

        println!(
            "{:<26} {:>5} | {} | {:>9} {:>8} {:>10} | {}",
            entry.name,
            inner,
            exh_cols,
            pd.result.inner_total(),
            pd.result.num_partitions(),
            fmt_time(pd.elapsed),
            overhead_cols,
        );

        // Cross-check against the pinned expectations from the paper.
        let got = (pd.result.inner_total(), pd.result.num_partitions());
        if got != entry.expected.pare_down {
            println!(
                "  !! PareDown deviates from pinned Table 1 row: got {:?}, expected {:?}",
                got, entry.expected.pare_down
            );
        }
        if let Some(note) = entry.expected.note {
            println!("  note: {note}");
        }
    }
}
