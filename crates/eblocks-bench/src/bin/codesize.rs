//! Checks §3.3's practical assumption: no partition's generated program
//! exceeds the PIC16F628's 2 KB program memory. Synthesizes every library
//! design and prints each programmable block's size estimate, then the
//! largest program found on a batch of big random designs.
//!
//! Usage: `cargo run --release -p eblocks-bench --bin codesize`

use eblocks_codegen::PIC16F628_PROGRAM_WORDS;
use eblocks_gen::{generate, GeneratorConfig};
use eblocks_synth::{synthesize, SynthesisOptions};

fn main() {
    let options = SynthesisOptions {
        verify: false, // size audit only; equivalence covered by tests
        ..Default::default()
    };

    println!("Library designs (budget: {PIC16F628_PROGRAM_WORDS} instruction words):");
    println!(
        "{:<26} {:<8} {:>7} {:>12} {:>6}",
        "design", "block", "words", "state bytes", "fits?"
    );
    let mut worst = 0usize;
    for entry in eblocks_designs::all() {
        match synthesize(&entry.design, &options) {
            Ok(result) => {
                if result.size_estimates.is_empty() {
                    println!("{:<26} (no partitions)", entry.name);
                }
                for (block, est) in &result.size_estimates {
                    worst = worst.max(est.words);
                    println!(
                        "{:<26} {:<8} {:>7} {:>12} {:>6}",
                        entry.name,
                        block,
                        est.words,
                        est.state_bytes,
                        if est.fits_pic16f628() { "yes" } else { "NO" }
                    );
                }
            }
            Err(e) => println!("{:<26} synthesis failed: {e}", entry.name),
        }
    }

    println!("\nRandom designs (inner = 45, 20 seeds):");
    for seed in 0..20 {
        let design = generate(&GeneratorConfig::new(45), seed);
        if let Ok(result) = synthesize(&design, &options) {
            for (_, est) in &result.size_estimates {
                worst = worst.max(est.words);
            }
        }
    }
    println!(
        "largest generated program: {worst} words ({:.1}% of the PIC16F628 store)",
        100.0 * worst as f64 / PIC16F628_PROGRAM_WORDS as f64
    );

    // Behavior-tree optimizer ablation: total words with the optimizer on
    // vs off, summed over the whole library.
    let mut with_opt = 0usize;
    let mut without_opt = 0usize;
    for entry in eblocks_designs::all() {
        let on = SynthesisOptions {
            verify: false,
            optimize: true,
            ..Default::default()
        };
        let off = SynthesisOptions {
            verify: false,
            optimize: false,
            ..Default::default()
        };
        if let (Ok(a), Ok(b)) = (
            synthesize(&entry.design, &on),
            synthesize(&entry.design, &off),
        ) {
            with_opt += a.size_estimates.iter().map(|(_, e)| e.words).sum::<usize>();
            without_opt += b.size_estimates.iter().map(|(_, e)| e.words).sum::<usize>();
        }
    }
    println!(
        "optimizer ablation (library total): {without_opt} words unoptimized -> {with_opt} optimized ({:.1}% saved)",
        100.0 * (without_opt.saturating_sub(with_opt)) as f64 / without_opt.max(1) as f64
    );
}
