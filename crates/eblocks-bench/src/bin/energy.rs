//! Quantifies the paper's headline power claim: synthesis reduces "network
//! size and hence network cost and power" (abstract). For every library
//! design, the original and the synthesized network run the same
//! all-sensors stimulus; packets transmitted and estimated energy are
//! compared.
//!
//! Usage: `cargo run --release -p eblocks-bench --bin energy`

use eblocks_sim::{estimate_energy, EnergyModel, Simulator, Stimulus, Time};
use eblocks_synth::{exercise_all_sensors, synthesize, SynthesisOptions};

fn main() {
    let model = EnergyModel::default();
    let options = SynthesisOptions {
        verify: false, // equivalence is covered by the test suite
        ..Default::default()
    };

    println!("Per-design energy, same stimulus on both networks:");
    println!(
        "{:<26} | {:>7} {:>7} | {:>9} {:>9} | {:>7}",
        "design", "pkts", "pkts'", "energy nJ", "energy' nJ", "saved"
    );

    let (mut total_before, mut total_after) = (0.0f64, 0.0f64);
    for entry in eblocks_designs::all() {
        let design = entry.design;
        let result = match synthesize(&design, &options) {
            Ok(r) => r,
            Err(e) => {
                println!("{:<26} synthesis failed: {e}", entry.name);
                continue;
            }
        };
        let stim: Stimulus = exercise_all_sensors(&design, 64);
        let until: Time = stim.end_time().unwrap_or(0) + 128;

        let before_sim = Simulator::new(&design).expect("library designs simulate");
        let before_trace = before_sim.run(&stim, until).expect("healthy run");
        let before = estimate_energy(&design, &before_trace, &model, until);

        let after_sim = Simulator::with_programs(&result.synthesized, result.programs)
            .expect("synthesized designs simulate");
        let after_trace = after_sim.run(&stim, until).expect("healthy run");
        let after = estimate_energy(&result.synthesized, &after_trace, &model, until);

        total_before += before.total_nj();
        total_after += after.total_nj();
        println!(
            "{:<26} | {:>7} {:>7} | {:>9.0} {:>9.0} | {:>6.1}%",
            entry.name,
            before_trace.total_transmissions(),
            after_trace.total_transmissions(),
            before.total_nj(),
            after.total_nj(),
            100.0 * (before.total_nj() - after.total_nj()) / before.total_nj()
        );
    }
    println!(
        "\nlibrary total: {total_before:.0} nJ -> {total_after:.0} nJ ({:.1}% saved)",
        100.0 * (total_before - total_after) / total_before
    );
}
