//! Ablation study over random designs:
//!
//! * the §4.2 rank tie-break rules (greatest indegree/outdegree, highest
//!   level) on vs. off,
//! * the aggregation strawman vs. PareDown vs. the optimum,
//! * convexity / connectivity constraints vs. the paper's defaults.
//!
//! Usage: `cargo run --release -p eblocks-bench --bin ablation [count]`

use eblocks_gen::{generate, GeneratorConfig};
use eblocks_partition::{
    aggregation, exhaustive, pare_down, pare_down_no_tie_breaks, ExhaustiveOptions,
    PartitionConstraints,
};
use std::time::Duration;

fn main() {
    let count: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    let constraints = PartitionConstraints::default();

    println!("Tie-break & algorithm ablation over {count} random designs per size:");
    println!(
        "{:>5} | {:>8} {:>8} {:>8} {:>8} | {:>10} {:>10}",
        "inner", "optimal", "PD", "PD-noTB", "agg", "TB wins", "TB losses"
    );

    for inner in [6usize, 9, 12] {
        let (mut opt_sum, mut pd_sum, mut notb_sum, mut agg_sum) = (0usize, 0, 0, 0);
        let (mut tb_wins, mut tb_losses) = (0usize, 0usize);
        for seed in 0..count {
            let d = generate(&GeneratorConfig::new(inner), 7000 + seed);
            let opt = exhaustive(
                &d,
                &constraints,
                ExhaustiveOptions {
                    time_limit: Some(Duration::from_secs(5)),
                    ..Default::default()
                },
            );
            let pd = pare_down(&d, &constraints);
            let notb = pare_down_no_tie_breaks(&d, &constraints);
            let agg = aggregation(&d, &constraints);
            opt_sum += opt.inner_total();
            pd_sum += pd.inner_total();
            notb_sum += notb.inner_total();
            agg_sum += agg.inner_total();
            match pd.inner_total().cmp(&notb.inner_total()) {
                std::cmp::Ordering::Less => tb_wins += 1,
                std::cmp::Ordering::Greater => tb_losses += 1,
                std::cmp::Ordering::Equal => {}
            }
        }
        let avg = |s: usize| s as f64 / count as f64;
        println!(
            "{inner:>5} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {tb_wins:>10} {tb_losses:>10}",
            avg(opt_sum),
            avg(pd_sum),
            avg(notb_sum),
            avg(agg_sum)
        );
    }

    println!("\nConstraint ablation (PareDown, n=20, {count} designs):");
    println!(
        "{:>16} {:>10} {:>10}",
        "constraints", "avg total", "avg prog"
    );
    for (label, c) in [
        ("paper", PartitionConstraints::default()),
        (
            "convex",
            PartitionConstraints {
                require_convex: true,
                ..Default::default()
            },
        ),
        (
            "connected",
            PartitionConstraints {
                require_connected: true,
                ..Default::default()
            },
        ),
    ] {
        let (mut total, mut prog) = (0usize, 0usize);
        for seed in 0..count {
            let d = generate(&GeneratorConfig::new(20), 8000 + seed);
            let r = pare_down(&d, &c);
            total += r.inner_total();
            prog += r.num_partitions();
        }
        println!(
            "{label:>16} {:>10.2} {:>10.2}",
            total as f64 / count as f64,
            prog as f64 / count as f64
        );
    }
}
