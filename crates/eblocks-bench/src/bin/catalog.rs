//! Multi-type catalog study (§6 future work, implemented): what does a
//! richer menu of programmable block shapes buy, in network cost?
//!
//! Sweeps random and structured designs against three catalogs:
//!
//! * **paper** — one 2-in/2-out block at 1.5× a pre-defined block,
//! * **three-tier** — 1/1 at 1.2×, 2/2 at 1.5×, 4/4 at 2.5×,
//! * **big-only** — a single 4-in/4-out block at 2.5×,
//!
//! reporting the average total network *cost* (not block count — with
//! heterogeneous prices, cost is the objective §6 names).
//!
//! Usage: `cargo run --release -p eblocks-bench --bin catalog [count]`

use eblocks_core::ProgrammableSpec;
use eblocks_gen::{generate, generate_family, Family, GeneratorConfig};
use eblocks_partition::{pare_down_multi, BlockCatalog, PartitionConstraints};

fn big_only() -> BlockCatalog {
    BlockCatalog {
        programmable: vec![(ProgrammableSpec::new(4, 4), 2.5)],
        predefined_cost: 1.0,
    }
}

fn main() {
    let count: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    let constraints = PartitionConstraints::default();
    let catalogs = [
        ("paper", BlockCatalog::paper_default()),
        ("three-tier", BlockCatalog::three_tier()),
        ("big-only", big_only()),
    ];

    println!("Average network cost over {count} random designs per size");
    println!("(baseline = every inner block stays pre-defined at cost 1.0):");
    println!(
        "{:>5} {:>9} | {:>10} {:>10} {:>10}",
        "inner", "baseline", "paper", "three-tier", "big-only"
    );
    for inner in [8usize, 15, 25, 40] {
        let mut sums = [0.0f64; 3];
        for seed in 0..count {
            let d = generate(&GeneratorConfig::new(inner), 61_000 + seed);
            for (i, (_, catalog)) in catalogs.iter().enumerate() {
                sums[i] += pare_down_multi(&d, &constraints, catalog).total_cost;
            }
        }
        let avg = |s: f64| s / count as f64;
        println!(
            "{inner:>5} {:>9.2} | {:>10.2} {:>10.2} {:>10.2}",
            inner as f64,
            avg(sums[0]),
            avg(sums[1]),
            avg(sums[2])
        );
    }

    println!("\nPer-family cost at n=12 ({count} seeds):");
    println!(
        "{:>13} | {:>10} {:>10} {:>10}",
        "family", "paper", "three-tier", "big-only"
    );
    for family in Family::ALL {
        let mut sums = [0.0f64; 3];
        for seed in 0..count {
            let d = generate_family(family, 12, 62_000 + seed);
            for (i, (_, catalog)) in catalogs.iter().enumerate() {
                sums[i] += pare_down_multi(&d, &constraints, catalog).total_cost;
            }
        }
        let avg = |s: f64| s / count as f64;
        println!(
            "{:>13} | {:>10.2} {:>10.2} {:>10.2}",
            family.name(),
            avg(sums[0]),
            avg(sums[1]),
            avg(sums[2])
        );
    }
}
