//! Regenerates the committed `netlists/` directory from the design library
//! (Table 1 systems plus the §1 intro systems). `tests/netlist_goldens.rs`
//! enforces the sync.

fn main() {
    std::fs::create_dir_all("netlists").unwrap();
    for entry in eblocks_designs::all() {
        let file = format!("netlists/{}.netlist", entry.design.name());
        std::fs::write(&file, eblocks_core::netlist::to_netlist(&entry.design)).unwrap();
        println!("wrote {file}");
    }
    for (_, design) in eblocks_designs::all_intro() {
        let file = format!("netlists/{}.netlist", design.name());
        std::fs::write(&file, eblocks_core::netlist::to_netlist(&design)).unwrap();
        println!("wrote {file}");
    }
}
