//! Per-family partitioning behavior: where does PareDown's border-rank
//! heuristic shine, and where does structure starve it?
//!
//! Sweeps the structured design families (`eblocks_gen::family`) — chain,
//! wide, tree, reconvergent, layered — at a fixed inner-block count,
//! reporting each tier's average totals and, at small sizes, the optimum.
//!
//! Usage: `cargo run --release -p eblocks-bench --bin families [count]`

use eblocks_gen::{generate_family, Family};
use eblocks_partition::{
    anneal, exhaustive, pare_down, pare_down_refined, AnnealConfig, ExhaustiveOptions,
    PartitionConstraints,
};
use std::time::Duration;

fn main() {
    let count: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50);
    let constraints = PartitionConstraints::default();
    let anneal_cfg = AnnealConfig::with_iterations(10_000);

    println!("Family sweep, n=10 inner blocks, {count} seeds each (avg totals):");
    println!(
        "{:>13} | {:>8} {:>8} {:>8} {:>8}",
        "family", "PD", "PD+ref", "anneal", "optimal"
    );
    for family in Family::ALL {
        let mut sums = [0usize; 4];
        for seed in 0..count {
            let d = generate_family(family, 10, 51_000 + seed);
            sums[0] += pare_down(&d, &constraints).inner_total();
            sums[1] += pare_down_refined(&d, &constraints).inner_total();
            sums[2] += anneal(&d, &constraints, &anneal_cfg).inner_total();
            sums[3] += exhaustive(
                &d,
                &constraints,
                ExhaustiveOptions {
                    time_limit: Some(Duration::from_secs(10)),
                    ..Default::default()
                },
            )
            .inner_total();
        }
        let avg = |s: usize| s as f64 / count as f64;
        println!(
            "{:>13} | {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            family.name(),
            avg(sums[0]),
            avg(sums[1]),
            avg(sums[2]),
            avg(sums[3]),
        );
    }

    println!("\nLarge designs, n=40, heuristics only:");
    println!(
        "{:>13} | {:>8} {:>8} {:>8}",
        "family", "PD", "PD+ref", "anneal"
    );
    for family in Family::ALL {
        let mut sums = [0usize; 3];
        for seed in 0..count {
            let d = generate_family(family, 40, 52_000 + seed);
            sums[0] += pare_down(&d, &constraints).inner_total();
            sums[1] += pare_down_refined(&d, &constraints).inner_total();
            sums[2] += anneal(&d, &constraints, &anneal_cfg).inner_total();
        }
        let avg = |s: usize| s as f64 / count as f64;
        println!(
            "{:>13} | {:>8.2} {:>8.2} {:>8.2}",
            family.name(),
            avg(sums[0]),
            avg(sums[1]),
            avg(sums[2]),
        );
    }
}
