//! The solution-quality ladder: how close does each heuristic tier get to
//! the optimum, and at what runtime cost?
//!
//! Extends the paper's two-point comparison (PareDown vs. exhaustive) with
//! the intermediate tiers this reproduction adds: deterministic local
//! refinement (`refine`) and simulated annealing (`anneal`). For sizes the
//! exhaustive search can still handle, overhead is reported against the
//! true optimum; beyond that, against the best heuristic answer seen.
//!
//! Usage: `cargo run --release -p eblocks-bench --bin optimality [count]`

use eblocks_bench::timed;
use eblocks_gen::{generate, GeneratorConfig};
use eblocks_partition::{
    aggregation, anneal, exhaustive, pare_down, pare_down_refined, AnnealConfig, ExhaustiveOptions,
    PartitionConstraints,
};
use std::time::Duration;

fn main() {
    let count: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    let constraints = PartitionConstraints::default();
    let anneal_cfg = AnnealConfig::with_iterations(10_000);

    println!("Quality ladder over {count} random designs per size (avg inner-block totals):");
    println!(
        "{:>5} | {:>8} {:>8} {:>8} {:>8} {:>8} | {:>9} {:>9} {:>9}",
        "inner", "agg", "PD", "PD+ref", "anneal", "optimal", "PD time", "ann time", "opt time"
    );

    for inner in [6usize, 8, 10, 12] {
        let mut sums = [0usize; 5];
        let mut times = [Duration::ZERO; 3];
        for seed in 0..count {
            let d = generate(&GeneratorConfig::new(inner), 31_000 + seed);
            let agg = aggregation(&d, &constraints);
            let pd = timed(|| pare_down(&d, &constraints));
            let refined = pare_down_refined(&d, &constraints);
            let ann = timed(|| anneal(&d, &constraints, &anneal_cfg));
            let opt = timed(|| {
                exhaustive(
                    &d,
                    &constraints,
                    ExhaustiveOptions {
                        time_limit: Some(Duration::from_secs(10)),
                        ..Default::default()
                    },
                )
            });
            sums[0] += agg.inner_total();
            sums[1] += pd.result.inner_total();
            sums[2] += refined.inner_total();
            sums[3] += ann.result.inner_total();
            sums[4] += opt.result.inner_total();
            times[0] += pd.elapsed;
            times[1] += ann.elapsed;
            times[2] += opt.elapsed;
        }
        let avg = |s: usize| s as f64 / count as f64;
        let ms = |d: Duration| d.as_secs_f64() * 1e3 / count as f64;
        println!(
            "{inner:>5} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} | {:>7.3}ms {:>7.3}ms {:>7.3}ms",
            avg(sums[0]),
            avg(sums[1]),
            avg(sums[2]),
            avg(sums[3]),
            avg(sums[4]),
            ms(times[0]),
            ms(times[1]),
            ms(times[2]),
        );
    }

    println!("\nBeyond the exhaustive wall (no optimum column):");
    println!(
        "{:>5} | {:>8} {:>8} {:>8} | {:>9} {:>9}",
        "inner", "PD", "PD+ref", "anneal", "PD time", "ann time"
    );
    for inner in [20usize, 35, 60] {
        let mut sums = [0usize; 3];
        let mut times = [Duration::ZERO; 2];
        for seed in 0..count {
            let d = generate(&GeneratorConfig::new(inner), 32_000 + seed);
            let pd = timed(|| pare_down(&d, &constraints));
            let refined = pare_down_refined(&d, &constraints);
            let ann = timed(|| anneal(&d, &constraints, &anneal_cfg));
            sums[0] += pd.result.inner_total();
            sums[1] += refined.inner_total();
            sums[2] += ann.result.inner_total();
            times[0] += pd.elapsed;
            times[1] += ann.elapsed;
        }
        let avg = |s: usize| s as f64 / count as f64;
        let ms = |d: Duration| d.as_secs_f64() * 1e3 / count as f64;
        println!(
            "{inner:>5} | {:>8.2} {:>8.2} {:>8.2} | {:>7.3}ms {:>7.3}ms",
            avg(sums[0]),
            avg(sums[1]),
            avg(sums[2]),
            ms(times[0]),
            ms(times[1]),
        );
    }
}
