//! Fleet co-simulation scaling: one global clock over 10/100/1000 nodes.
//!
//! Spins up relay fleets of Night Lamp Controller nodes on a grid
//! substrate via the declarative [`FleetRequest`] spec, runs each to the
//! horizon twice, and reports engine events per second. The second run
//! doubles as the determinism acceptance check: the deterministic JSON
//! report must be byte-identical regardless of fleet size.
//!
//! Usage: `cargo run --release -p eblocks-bench --bin fleet_scaling [until]`

use eblocks_net::{FleetRequest, FleetSource};
use std::time::{Duration, Instant};

fn fmt_time(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-3 {
        format!("{:.1} us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

fn main() {
    let until: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);

    println!("Fleet co-simulation scaling (Night Lamp Controller relay ring on a grid):");
    println!("horizon = {until} ticks, seed = 7, default link (latency 1, 8 bits/tick)");
    println!(
        "{:>7} {:>12} {:>10} {:>8} {:>10} {:>12} {:>10}",
        "nodes", "topology", "events", "sent", "delivered", "time", "events/s"
    );

    let mut all_identical = true;
    for nodes in [10u32, 100, 1000] {
        let spec = FleetRequest {
            name: Some(format!("scale-{nodes}")),
            nodes,
            topology: "grid".into(),
            design: FleetSource::Library("Night Lamp Controller".into()),
            until: Some(until),
            seed: Some(7),
            latency: None,
            bits_per_tick: None,
            packet_bits: None,
            loss_pm: None,
            stimulus_period: None,
        };
        let fleet = spec
            .build(std::path::Path::new("."))
            .expect("library fleet builds");

        let start = Instant::now();
        let first = fleet.run(until).expect("fleet run");
        let elapsed = start.elapsed();
        let second = fleet.run(until).expect("fleet rerun");
        all_identical &= first.report.to_json() == second.report.to_json();

        let report = first.report;
        let rate = report.events as f64 / elapsed.as_secs_f64();
        println!(
            "{:>7} {:>12} {:>10} {:>8} {:>10} {:>12} {:>10.0}",
            nodes,
            report.topology,
            report.events,
            report.packets_sent,
            report.packets_delivered,
            fmt_time(elapsed),
            rate
        );
    }
    println!(
        "reports byte-identical across paired runs: {}",
        if all_identical { "yes" } else { "NO — BUG" }
    );
}
