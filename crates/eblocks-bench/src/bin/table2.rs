//! Regenerates the paper's Table 2: exhaustive search vs PareDown on
//! randomly generated designs, averaged per inner-block count. The sweep
//! runs on the `eblocks-farm` batch engine: each (design, algorithm)
//! measurement is one partition-mode job, drained by a worker pool.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p eblocks-bench --bin table2 [scale] [limit_ms] [workers]
//! ```
//!
//! `scale` multiplies the paper's per-size design counts (default 0.05 — a
//! ~470-design sweep; pass 1.0 for the full ~9,500-design sweep). `limit_ms`
//! bounds each exhaustive run (default 10000 ms; runs that hit the limit
//! report their best-so-far and are counted in the timeout column).
//! `workers` sizes the farm's pool (default: all cores); per-design times
//! come from the partition-stage observer, so averages measure the
//! algorithm, not the pool.

use eblocks_bench::{render_table2, table2_sweep, TABLE2_COUNTS};
use std::time::Duration;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0.05);
    let limit_ms: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(10_000);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });

    println!(
        "Table 2 — random designs, scale {scale} of the paper's counts, exhaustive limit {limit_ms} ms, {workers} farm worker(s)"
    );
    let rows = table2_sweep(
        &TABLE2_COUNTS,
        scale,
        Duration::from_millis(limit_ms),
        workers,
        |inner, count| eprintln!("  finished inner={inner} ({count} designs)"),
    );
    println!("{}", render_table2(&rows));

    let timeouts: usize = rows
        .iter()
        .filter_map(|r| r.exhaustive.map(|e| e.timeouts))
        .sum();
    if timeouts > 0 {
        println!(
            "note: {timeouts} exhaustive run(s) hit the per-design time limit; their rows are lower bounds on the optimum's cost"
        );
    }
}
