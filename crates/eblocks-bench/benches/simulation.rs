//! Criterion benchmarks for the simulator and the full synthesis pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eblocks_gen::{generate, GeneratorConfig};
use eblocks_sim::{Simulator, Stimulus};
use eblocks_synth::{exercise_all_sensors, synthesize, SynthesisOptions};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    for inner in [10usize, 45] {
        let design = generate(&GeneratorConfig::new(inner), 7);
        let sim = Simulator::new(&design).expect("generated designs simulate");
        let stim = exercise_all_sensors(&design, 20);
        let horizon = stim.end_time().unwrap_or(0) + 100;
        group.bench_with_input(BenchmarkId::from_parameter(inner), &sim, |b, sim| {
            b.iter(|| black_box(sim.run(&stim, horizon).expect("runs")))
        });
    }
    group.finish();
}

fn bench_full_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    group.sample_size(10);
    // With verification (the default, co-simulates both networks) and
    // without (partition + codegen + rewrite only).
    let design = eblocks_designs::podium_timer_3();
    group.bench_function("podium_timer_3_verified", |b| {
        b.iter(|| black_box(synthesize(&design, &SynthesisOptions::default()).expect("synth")))
    });
    let no_verify = SynthesisOptions {
        verify: false,
        ..Default::default()
    };
    group.bench_function("podium_timer_3_unverified", |b| {
        b.iter(|| black_box(synthesize(&design, &no_verify).expect("synth")))
    });
    group.finish();
}

fn bench_single_block_throughput(c: &mut Criterion) {
    // Packets per second through a long chain: stresses the event queue.
    let mut group = c.benchmark_group("chain_throughput");
    let mut d = eblocks_core::Design::new("chain");
    let s = d.add_block("s", eblocks_core::SensorKind::Button);
    let mut prev = s;
    for i in 0..50 {
        let g = d.add_block(format!("g{i}"), eblocks_core::ComputeKind::Not);
        d.connect((prev, 0), (g, 0)).unwrap();
        prev = g;
    }
    let o = d.add_block("led", eblocks_core::OutputKind::Led);
    d.connect((prev, 0), (o, 0)).unwrap();
    let sim = Simulator::new(&d).unwrap();
    let mut stim = Stimulus::new();
    for k in 0..100 {
        stim = stim.set(10 + 2 * k, "s", k % 2 == 0);
    }
    group.bench_function("50_block_chain_100_edges", |b| {
        b.iter(|| black_box(sim.run(&stim, 1000).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_full_synthesis,
    bench_single_block_throughput
);
criterion_main!(benches);
