//! Criterion benchmarks for the simulator and the full synthesis pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eblocks_gen::{generate, GeneratorConfig};
use eblocks_sim::{Simulator, Stimulus};
use eblocks_synth::{exercise_all_sensors, synthesize, SynthesisOptions};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    for inner in [10usize, 45] {
        let design = generate(&GeneratorConfig::new(inner), 7);
        let sim = Simulator::new(&design).expect("generated designs simulate");
        let stim = exercise_all_sensors(&design, 20);
        let horizon = stim.end_time().unwrap_or(0) + 100;
        group.bench_with_input(BenchmarkId::from_parameter(inner), &sim, |b, sim| {
            b.iter(|| black_box(sim.run(&stim, horizon).expect("runs")))
        });
    }
    group.finish();
}

fn bench_full_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    group.sample_size(10);
    // With verification (the default, co-simulates both networks) and
    // without (partition + codegen + rewrite only).
    let design = eblocks_designs::podium_timer_3();
    group.bench_function("podium_timer_3_verified", |b| {
        b.iter(|| black_box(synthesize(&design, &SynthesisOptions::default()).expect("synth")))
    });
    let no_verify = SynthesisOptions {
        verify: false,
        ..Default::default()
    };
    group.bench_function("podium_timer_3_unverified", |b| {
        b.iter(|| black_box(synthesize(&design, &no_verify).expect("synth")))
    });
    group.finish();
}

fn bench_single_block_throughput(c: &mut Criterion) {
    // Packets per second through the event queue, across the three shapes
    // that stress it differently: a deep chain (long same-instant cascades),
    // a wide fan-out (many sinks per transmission), and a dense tick load
    // (every instant has calendar events).
    let mut group = c.benchmark_group("chain_throughput");

    // Deep chain: 100 stimulus edges, each cascading through 50 inverters.
    let mut d = eblocks_core::Design::new("chain");
    let s = d.add_block("s", eblocks_core::SensorKind::Button);
    let mut prev = s;
    for i in 0..50 {
        let g = d.add_block(format!("g{i}"), eblocks_core::ComputeKind::Not);
        d.connect((prev, 0), (g, 0)).unwrap();
        prev = g;
    }
    let o = d.add_block("led", eblocks_core::OutputKind::Led);
    d.connect((prev, 0), (o, 0)).unwrap();
    let sim = Simulator::new(&d).unwrap();
    let mut stim = Stimulus::new();
    for k in 0..100 {
        stim = stim.set(10 + 2 * k, "s", k % 2 == 0);
    }
    group.bench_function("50_block_chain_100_edges", |b| {
        b.iter(|| black_box(sim.run(&stim, 1000).unwrap()))
    });

    // Wide fan-out: a splitter tree (depth 5, 32 leaves) so every edge at
    // the root transmits to an exponentially widening cone of sinks.
    let mut d = eblocks_core::Design::new("fanout");
    let s = d.add_block("s", eblocks_core::SensorKind::Button);
    let mut frontier = vec![(s, 0u8)];
    for level in 0..5 {
        let mut next = Vec::new();
        for (i, &(src, port)) in frontier.iter().enumerate() {
            let sp = d.add_block(
                format!("sp{level}_{i}"),
                eblocks_core::ComputeKind::Splitter,
            );
            d.connect((src, port), (sp, 0)).unwrap();
            next.push((sp, 0u8));
            next.push((sp, 1u8));
        }
        frontier = next;
    }
    for (i, &(src, port)) in frontier.iter().enumerate() {
        let led = d.add_block(format!("led{i}"), eblocks_core::OutputKind::Led);
        d.connect((src, port), (led, 0)).unwrap();
    }
    let sim = Simulator::new(&d).unwrap();
    let mut stim = Stimulus::new();
    for k in 0..50 {
        stim = stim.set(10 + 2 * k, "s", k % 2 == 0);
    }
    group.bench_function("wide_fanout_32_leaves_50_edges", |b| {
        b.iter(|| black_box(sim.run(&stim, 500).unwrap()))
    });

    // Dense ticks: 24 independent pulse-generator columns all ticking at
    // period 1, so every instant drains a populated calendar bucket.
    let mut d = eblocks_core::Design::new("ticks");
    for i in 0..24 {
        let b = d.add_block(format!("b{i}"), eblocks_core::SensorKind::Button);
        let p = d.add_block(
            format!("p{i}"),
            eblocks_core::ComputeKind::PulseGen { ticks: 5 },
        );
        let o = d.add_block(format!("led{i}"), eblocks_core::OutputKind::Led);
        d.connect((b, 0), (p, 0)).unwrap();
        d.connect((p, 0), (o, 0)).unwrap();
    }
    let sim = Simulator::new(&d).unwrap();
    let mut stim = Stimulus::new();
    for i in 0..24 {
        stim = stim.pulse(10 + 7 * i, 3, format!("b{i}"));
    }
    group.bench_function("dense_tick_24_pulsegens", |b| {
        b.iter(|| black_box(sim.run(&stim, 400).unwrap()))
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_full_synthesis,
    bench_single_block_throughput
);
criterion_main!(benches);
