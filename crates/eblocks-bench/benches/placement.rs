//! Criterion benchmarks for the placement extension (§6 future work):
//! greedy construction vs. annealing improvement across substrate shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eblocks_gen::{generate, GeneratorConfig};
use eblocks_place::{anneal_place, greedy_place, PlaceAnnealConfig, PlacementProblem, Topology};
use eblocks_synth::{synthesize, SynthesisOptions};
use std::hint::black_box;

/// A synthesized random design and a grid just big enough to host it.
fn prepared(inner: usize) -> (eblocks_core::Design, Topology) {
    let design = generate(&GeneratorConfig::new(inner), 77);
    let result = synthesize(
        &design,
        &SynthesisOptions {
            verify: false,
            ..Default::default()
        },
    )
    .expect("synthesis succeeds on generated designs");
    let blocks = result.synthesized.num_blocks();
    let side = (blocks as f64).sqrt().ceil() as usize;
    (result.synthesized, Topology::grid(side, side + 1))
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("place_greedy");
    for inner in [10usize, 25, 45] {
        let (design, topo) = prepared(inner);
        let problem = PlacementProblem::new(&design, &topo).expect("fits");
        group.bench_with_input(BenchmarkId::from_parameter(inner), &problem, |b, p| {
            b.iter(|| black_box(greedy_place(p).expect("placeable")))
        });
    }
    group.finish();
}

fn bench_anneal(c: &mut Criterion) {
    let mut group = c.benchmark_group("place_anneal");
    group.sample_size(10);
    let config = PlaceAnnealConfig::with_iterations(5_000);
    for inner in [10usize, 25] {
        let (design, topo) = prepared(inner);
        let problem = PlacementProblem::new(&design, &topo).expect("fits");
        group.bench_with_input(BenchmarkId::from_parameter(inner), &problem, |b, p| {
            b.iter(|| black_box(anneal_place(p, &config).expect("placeable")))
        });
    }
    group.finish();
}

fn bench_topology_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("place_shapes");
    let (design, _) = prepared(20);
    let blocks = design.num_blocks();
    let shapes: Vec<(&str, Topology)> = vec![
        ("line", Topology::line(blocks)),
        ("grid", {
            let side = (blocks as f64).sqrt().ceil() as usize;
            Topology::grid(side, side + 1)
        }),
        ("star", Topology::star(blocks.saturating_sub(1).max(1), 4)),
    ];
    for (name, topo) in shapes {
        let problem = PlacementProblem::new(&design, &topo).expect("fits");
        group.bench_with_input(BenchmarkId::from_parameter(name), &problem, |b, p| {
            b.iter(|| black_box(greedy_place(p).expect("placeable")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy, bench_anneal, bench_topology_shapes);
criterion_main!(benches);
