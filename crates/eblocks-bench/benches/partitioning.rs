//! Criterion benchmarks for the partitioning algorithms, including the
//! ablations DESIGN.md calls out (convexity / connectivity constraints).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eblocks_gen::{generate, GeneratorConfig};
use eblocks_partition::{
    aggregation, anneal, exhaustive, pare_down, refine, AnnealConfig, ExhaustiveOptions,
    PartitionConstraints,
};
use std::hint::black_box;
use std::time::Duration;

fn bench_pare_down_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pare_down");
    let constraints = PartitionConstraints::default();
    for inner in [5usize, 10, 20, 45, 100, 465] {
        let design = generate(&GeneratorConfig::new(inner), 99);
        group.bench_with_input(BenchmarkId::from_parameter(inner), &design, |b, d| {
            b.iter(|| black_box(pare_down(d, &constraints)))
        });
    }
    group.finish();
}

fn bench_exhaustive_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));
    let constraints = PartitionConstraints::default();
    for inner in [5usize, 8, 10, 12] {
        let design = generate(&GeneratorConfig::new(inner), 99);
        let options = ExhaustiveOptions {
            time_limit: Some(Duration::from_secs(30)),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(inner), &design, |b, d| {
            b.iter(|| black_box(exhaustive(d, &constraints, options)))
        });
    }
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation");
    let constraints = PartitionConstraints::default();
    for inner in [10usize, 45] {
        let design = generate(&GeneratorConfig::new(inner), 99);
        group.bench_with_input(BenchmarkId::from_parameter(inner), &design, |b, d| {
            b.iter(|| black_box(aggregation(d, &constraints)))
        });
    }
    group.finish();
}

fn bench_constraint_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("pare_down_ablations");
    let design = generate(&GeneratorConfig::new(45), 99);
    let paper = PartitionConstraints::default();
    let convex = PartitionConstraints {
        require_convex: true,
        ..Default::default()
    };
    let connected = PartitionConstraints {
        require_connected: true,
        ..Default::default()
    };
    group.bench_function("paper_constraints", |b| {
        b.iter(|| black_box(pare_down(&design, &paper)))
    });
    group.bench_function("require_convex", |b| {
        b.iter(|| black_box(pare_down(&design, &convex)))
    });
    group.bench_function("require_connected", |b| {
        b.iter(|| black_box(pare_down(&design, &connected)))
    });
    group.finish();
}

fn bench_library_designs(c: &mut Criterion) {
    let mut group = c.benchmark_group("library_pare_down");
    let constraints = PartitionConstraints::default();
    for entry in eblocks_designs::all() {
        if matches!(
            entry.name,
            "Podium Timer 3" | "Two-Zone Security" | "Timed Passage"
        ) {
            group.bench_function(entry.name, |b| {
                b.iter(|| black_box(pare_down(&entry.design, &constraints)))
            });
        }
    }
    group.finish();
}

fn bench_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("refine");
    let constraints = PartitionConstraints::default();
    for inner in [10usize, 45, 100] {
        let design = generate(&GeneratorConfig::new(inner), 99);
        let seed = pare_down(&design, &constraints);
        group.bench_with_input(
            BenchmarkId::from_parameter(inner),
            &(design, seed),
            |b, (d, s)| b.iter(|| black_box(refine(d, &constraints, s))),
        );
    }
    group.finish();
}

fn bench_anneal(c: &mut Criterion) {
    let mut group = c.benchmark_group("anneal");
    group.sample_size(10);
    let constraints = PartitionConstraints::default();
    let config = AnnealConfig::with_iterations(10_000);
    for inner in [10usize, 45] {
        let design = generate(&GeneratorConfig::new(inner), 99);
        group.bench_with_input(BenchmarkId::from_parameter(inner), &design, |b, d| {
            b.iter(|| black_box(anneal(d, &constraints, &config)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pare_down_scaling,
    bench_exhaustive_scaling,
    bench_aggregation,
    bench_constraint_ablations,
    bench_library_designs,
    bench_refine,
    bench_anneal
);
criterion_main!(benches);
