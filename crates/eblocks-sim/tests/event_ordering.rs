//! Golden traces pinning the simulator's observable event-ordering
//! semantics.
//!
//! These tests were written against the original `BinaryHeap`-based engine
//! and must pass **byte-identically** after any event-queue rewrite. Each
//! scenario renders the full trace (every packet received by every output,
//! in recorded order, plus per-block transmission counts) to a string and
//! compares it against a golden literal. The pinned contract:
//!
//! * **sensor-before-eval** — all sensor changes of an instant are applied
//!   before any block evaluates in that instant,
//! * **topo-rank cascade** — zero-latency propagation settles in one sweep
//!   per instant, blocks evaluating in topological order,
//! * **same-instant coalescing** — all packets reaching a block in one
//!   instant produce a single evaluation with the settled input values,
//! * **tick-before-deliver** — a block's `on tick` runs before its
//!   same-instant deliveries are applied,
//! * **power-on announcement** — at t=0 a sensor first announces its
//!   initial `false`, then any t=0 stimulus value, in that order,
//! * **FIFO tie-break** — packets that agree on (time, stage, rank, port)
//!   keep their push order.

use eblocks_core::{CommKind, ComputeKind, Design, OutputKind, SensorKind};
use eblocks_sim::{Fault, FaultPlan, Simulator, Stimulus, Trace};

/// Renders every observable of a trace in deterministic order.
fn render(trace: &Trace) -> String {
    let mut s = String::new();
    for name in trace.outputs() {
        s.push_str(name);
        s.push(':');
        for &(t, v) in trace.history(name) {
            s.push_str(&format!(" ({t},{})", if v { 1 } else { 0 }));
        }
        s.push('\n');
    }
    let mut tx: Vec<(&str, u64)> = trace.transmissions_by_block().collect();
    tx.sort();
    for (name, count) in tx {
        s.push_str(&format!("tx {name}={count}\n"));
    }
    s
}

#[test]
fn power_on_announcement_precedes_t0_stimulus() {
    // A t=0 stimulus value arrives *after* the power-on `false`
    // announcement of the same sensor: the output sees both packets, in
    // that order, at the same instant.
    let mut d = Design::new("t0");
    let s = d.add_block("s", SensorKind::Button);
    let o = d.add_block("led", OutputKind::Led);
    d.connect((s, 0), (o, 0)).unwrap();
    let sim = Simulator::new(&d).unwrap();
    let trace = sim.run(&Stimulus::new().set(0, "s", true), 10).unwrap();
    assert_eq!(render(&trace), "led: (0,0) (0,1)\ntx s=2\n");
}

#[test]
fn same_instant_changes_coalesce_into_one_evaluation() {
    // Both AND inputs rise in the same instant: one evaluation with the
    // settled values, no (true, stale-false) glitch packet. A later
    // simultaneous swap (a falls, b stays) keeps the output constant and
    // produces no packet at all.
    let mut d = Design::new("coalesce");
    let a = d.add_block("a", SensorKind::Button);
    let b = d.add_block("b", SensorKind::Motion);
    let g = d.add_block("g", ComputeKind::and2());
    let o = d.add_block("led", OutputKind::Led);
    d.connect((a, 0), (g, 0)).unwrap();
    d.connect((b, 0), (g, 1)).unwrap();
    d.connect((g, 0), (o, 0)).unwrap();
    let sim = Simulator::new(&d).unwrap();
    let stim = Stimulus::new()
        .set(10, "a", true)
        .set(10, "b", true)
        .set(20, "a", false)
        .set(30, "a", true);
    let trace = sim.run(&stim, 50).unwrap();
    assert_eq!(
        render(&trace),
        "led: (0,0) (10,1) (20,0) (30,1)\ntx a=4 tx b=2 tx g=4\n".replace(" tx", "\ntx")
    );
}

#[test]
fn glitch_free_reconvergence_through_splitter() {
    // s -> splitter -> (direct, inverted) -> xor: the settled xor(v, !v)
    // is constant true, so the LED sees exactly one packet regardless of
    // how many times s toggles. Transmission counts pin the fan-out
    // accounting (the splitter drives two wires per change).
    let mut d = Design::new("haz");
    let s = d.add_block("s", SensorKind::Button);
    let sp = d.add_block("sp", ComputeKind::Splitter);
    let n = d.add_block("n", ComputeKind::Not);
    let x = d.add_block("x", ComputeKind::xor2());
    let o = d.add_block("led", OutputKind::Led);
    d.connect((s, 0), (sp, 0)).unwrap();
    d.connect((sp, 0), (n, 0)).unwrap();
    d.connect((sp, 1), (x, 0)).unwrap();
    d.connect((n, 0), (x, 1)).unwrap();
    d.connect((x, 0), (o, 0)).unwrap();
    let sim = Simulator::new(&d).unwrap();
    let stim = Stimulus::new().set(10, "s", true).set(20, "s", false);
    let trace = sim.run(&stim, 60).unwrap();
    assert_eq!(
        render(&trace),
        "led: (0,1)\ntx n=3\ntx s=3\ntx sp=6\ntx x=1\n"
    );
}

#[test]
fn tick_runs_before_same_instant_delivery() {
    // A pulse generator whose tick instant coincides with an input edge:
    // the tick (remaining still 0, no change) is processed first, then the
    // delivery starts the pulse. With tick_period=4 and ticks=3 the pulse
    // started at t=8 expires on the tick at t=20 — if the delivery were
    // applied before the tick, the countdown would start one period early.
    let mut d = Design::new("tick-order");
    let b = d.add_block("btn", SensorKind::Button);
    let p = d.add_block("pg", ComputeKind::PulseGen { ticks: 3 });
    let o = d.add_block("led", OutputKind::Led);
    d.connect((b, 0), (p, 0)).unwrap();
    d.connect((p, 0), (o, 0)).unwrap();
    let mut sim = Simulator::new(&d).unwrap();
    sim.tick_period = 4;
    let trace = sim.run(&Stimulus::new().set(8, "btn", true), 40).unwrap();
    assert_eq!(
        render(&trace),
        "led: (0,0) (8,1) (20,0)\ntx btn=2\ntx pg=3\n"
    );
}

#[test]
fn tick_and_input_can_emit_two_packets_in_one_instant() {
    // At t=8 the running pulse (ticks=1) expires on the tick handler
    // (emits false) and a fresh rising edge arrives in the same instant
    // (emits true): the output records *both* packets at t=8, tick first —
    // the FIFO tie-break pinned as observable packet order.
    let mut d = Design::new("two-packets");
    let b = d.add_block("btn", SensorKind::Button);
    let p = d.add_block("pg", ComputeKind::PulseGen { ticks: 1 });
    let o = d.add_block("led", OutputKind::Led);
    d.connect((b, 0), (p, 0)).unwrap();
    d.connect((p, 0), (o, 0)).unwrap();
    let mut sim = Simulator::new(&d).unwrap();
    sim.tick_period = 4;
    let stim = Stimulus::new()
        .set(4, "btn", true)
        .set(6, "btn", false)
        .set(8, "btn", true);
    let trace = sim.run(&stim, 20).unwrap();
    assert_eq!(
        render(&trace),
        "led: (0,0) (4,1) (8,0) (8,1) (12,0)\ntx btn=4\ntx pg=5\n"
    );
}

#[test]
fn delayed_packets_arrive_out_of_send_order() {
    // A delay fault makes a packet sent at t=10 arrive *after* a packet
    // sent at t=15: the calendar must deliver by arrival time, and the
    // output records the late packet last.
    let mut d = Design::new("reorder");
    let b = d.add_block("btn", SensorKind::Button);
    let tx = d.add_block("radio", CommKind::WirelessTx);
    let o = d.add_block("led", OutputKind::Led);
    d.connect((b, 0), (tx, 0)).unwrap();
    d.connect((tx, 0), (o, 0)).unwrap();
    let sim = Simulator::new(&d).unwrap();
    let plan = FaultPlan::new().with(Fault::DelayPackets {
        block: "radio".into(),
        from: 9,
        to: 11,
        extra: 10,
    });
    let stim = Stimulus::new().set(10, "btn", true).set(15, "btn", false);
    let trace = sim.run_with_faults(&stim, 60, &plan).unwrap();
    // Sent: t=0 false (arrives 3), t=10 true (delayed, arrives 23),
    // t=15 false (arrives 18).
    assert_eq!(
        render(&trace),
        "led: (3,0) (18,0) (23,1)\ntx btn=3\ntx radio=3\n"
    );
}

#[test]
fn delay_block_with_coarse_ticks() {
    // The delay block propagates the settled input 2 ticks after its last
    // change; with tick_period=5 the edge at t=7 counts down on the ticks
    // at t=10 and t=15, so the LED rises at t=15.
    let mut d = Design::new("delay");
    let b = d.add_block("btn", SensorKind::Button);
    let dl = d.add_block("dl", ComputeKind::Delay { ticks: 2 });
    let o = d.add_block("led", OutputKind::Led);
    d.connect((b, 0), (dl, 0)).unwrap();
    d.connect((dl, 0), (o, 0)).unwrap();
    let mut sim = Simulator::new(&d).unwrap();
    sim.tick_period = 5;
    let trace = sim.run(&Stimulus::new().set(7, "btn", true), 40).unwrap();
    assert_eq!(render(&trace), "led: (0,0) (15,1)\ntx btn=2\ntx dl=2\n");
}

#[test]
fn long_chain_cascades_within_one_instant() {
    // A 10-inverter chain: every stimulus edge reaches the LED in the same
    // instant (zero-latency wires, one topological sweep). Ten inverters
    // flip the value back, so the LED tracks the button exactly.
    let mut d = Design::new("chain");
    let s = d.add_block("s", SensorKind::Button);
    let mut prev = s;
    for i in 0..10 {
        let g = d.add_block(format!("g{i}"), ComputeKind::Not);
        d.connect((prev, 0), (g, 0)).unwrap();
        prev = g;
    }
    let o = d.add_block("led", OutputKind::Led);
    d.connect((prev, 0), (o, 0)).unwrap();
    let sim = Simulator::new(&d).unwrap();
    let stim = Stimulus::new().set(5, "s", true).set(9, "s", false);
    let trace = sim.run(&stim, 20).unwrap();
    assert_eq!(trace.history("led"), &[(0, false), (5, true), (9, false)]);
    assert_eq!(trace.total_transmissions(), 33, "11 hops x 3 edges");
}

#[test]
fn full_trace_equality_is_repeatable() {
    // The whole suite's scenarios are deterministic: a second run renders
    // byte-identically (the property the golden strings rely on).
    let mut d = Design::new("rep");
    let a = d.add_block("a", SensorKind::Button);
    let p = d.add_block("pg", ComputeKind::PulseGen { ticks: 2 });
    let o = d.add_block("led", OutputKind::Led);
    d.connect((a, 0), (p, 0)).unwrap();
    d.connect((p, 0), (o, 0)).unwrap();
    let sim = Simulator::new(&d).unwrap();
    let stim = Stimulus::new().pulse(3, 4, "a").pulse(11, 1, "a");
    let t1 = sim.run(&stim, 30).unwrap();
    let t2 = sim.run(&stim, 30).unwrap();
    assert_eq!(render(&t1), render(&t2));
}
