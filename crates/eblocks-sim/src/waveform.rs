//! ASCII waveform rendering for simulation traces.
//!
//! The paper's GUI shows blinking LED icons; headless, a timing diagram is
//! the next best thing:
//!
//! ```text
//! door   ____########____________
//! light  ________########________
//! led    ____####________________
//! ```

use crate::sim::Time;
use crate::trace::Trace;
use std::fmt::Write;

/// Renders the named outputs of a trace as an ASCII timing diagram covering
/// `[0, until]`, one row per output, `width` characters of timeline.
///
/// Each column covers `until / width` ticks and is drawn high (`#`) if the
/// signal was high at the *end* of the column's interval; columns before an
/// output's first packet render as `.` (unknown).
pub fn render(trace: &Trace, outputs: &[&str], until: Time, width: usize) -> String {
    let width = width.max(1);
    let label_width = outputs.iter().map(|o| o.len()).max().unwrap_or(0).max(4);
    let mut out = String::new();
    for &name in outputs {
        let _ = write!(out, "{name:<label_width$} ");
        for col in 0..width {
            // Sample at the end of this column's interval.
            let t = ((col as u128 + 1) * until as u128 / width as u128) as Time;
            let ch = match trace.value_at(name, t) {
                Some(true) => '#',
                Some(false) => '_',
                None => '.',
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// [`render`] over every output the trace knows, in name order.
pub fn render_all(trace: &Trace, until: Time, width: usize) -> String {
    let names: Vec<&str> = trace.outputs().collect();
    render(trace, &names, until, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::stimulus::Stimulus;
    use eblocks_core::{ComputeKind, Design, OutputKind, SensorKind};

    fn traced() -> Trace {
        let mut d = Design::new("w");
        let s = d.add_block("btn", SensorKind::Button);
        let n = d.add_block("inv", ComputeKind::Not);
        let o = d.add_block("led", OutputKind::Led);
        d.connect((s, 0), (n, 0)).unwrap();
        d.connect((n, 0), (o, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        sim.run(&Stimulus::new().set(50, "btn", true), 100).unwrap()
    }

    #[test]
    fn renders_transition() {
        let trace = traced();
        let wave = render(&trace, &["led"], 100, 20);
        // Inverted button: high for the first half, low after.
        assert!(wave.starts_with("led  "), "{wave}");
        let row: String = wave.trim_end().chars().skip(5).collect();
        assert_eq!(row.len(), 20);
        // The transition at t=50 lands on column 10's sample instant, so
        // nine high columns precede eleven low ones.
        assert!(row.starts_with("#########_"), "{wave}");
        assert!(row.ends_with("__________"), "{wave}");
    }

    #[test]
    fn unknown_outputs_render_dots() {
        let trace = Trace::with_outputs(["idle".to_string()]);
        let wave = render(&trace, &["idle"], 10, 5);
        assert_eq!(wave, "idle .....\n");
    }

    #[test]
    fn render_all_covers_every_output() {
        let trace = traced();
        let wave = render_all(&trace, 100, 10);
        assert!(wave.contains("led"), "{wave}");
        assert_eq!(wave.lines().count(), 1);
    }

    #[test]
    fn labels_aligned() {
        let mut trace = Trace::with_outputs(["a".to_string(), "longname".to_string()]);
        let _ = &mut trace;
        let wave = render(&trace, &["a", "longname"], 10, 4);
        let lines: Vec<&str> = wave.lines().collect();
        let start_a = lines[0].find('.').unwrap();
        let start_b = lines[1].find('.').unwrap();
        assert_eq!(start_a, start_b, "{wave}");
    }
}
