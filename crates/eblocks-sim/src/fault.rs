//! Fault injection (extension).
//!
//! Physical eBlock deployments fail in mundane ways the paper's clean-room
//! evaluation never exercises: a sensor's contact corrodes shut, a radio
//! hop drops packets, interference delays them. This module injects those
//! failures into a simulation run so a designer can ask *what does my
//! network do when the garage-door switch sticks?* — and so the test suite
//! can check that the equivalence harness notices genuinely divergent
//! behavior (a fault on one side must be detected, not masked).
//!
//! Faults are declared against block *names*, so one [`FaultPlan`] can be
//! applied to both a pre-synthesis and post-synthesis network (sensors and
//! outputs survive synthesis under their original names).
//!
//! Semantics:
//!
//! * [`Fault::StuckAt`] — the sensor reports the stuck value from power-on
//!   and ignores every stimulus event.
//! * [`Fault::DropPackets`] — packets *sent* by the block inside the window
//!   vanish in flight. The eBlocks protocol has no acknowledgement, so the
//!   sender's change detection still counts them as sent — exactly how a
//!   real lossy hop behaves.
//! * [`Fault::DelayPackets`] — packets sent by the block inside the window
//!   arrive `extra` ticks later than normal.

use crate::sim::{BlockIndex, Time};
use eblocks_core::Design;

/// One injected failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// A sensor stuck at a fixed value from power-on.
    StuckAt {
        /// Name of the sensor block.
        block: String,
        /// The value it is stuck reporting.
        value: bool,
    },
    /// Packets sent by a block are lost during `[from, to)`.
    DropPackets {
        /// Name of the sending block (typically a communication block).
        block: String,
        /// Window start (inclusive).
        from: Time,
        /// Window end (exclusive); `Time::MAX` for a permanent failure.
        to: Time,
    },
    /// Packets sent by a block are delayed by `extra` ticks during
    /// `[from, to)`.
    DelayPackets {
        /// Name of the sending block.
        block: String,
        /// Window start (inclusive).
        from: Time,
        /// Window end (exclusive).
        to: Time,
        /// Additional latency in ticks.
        extra: Time,
    },
}

/// A set of faults to apply to one simulation run.
///
/// # Examples
///
/// ```
/// use eblocks_sim::{Fault, FaultPlan};
///
/// let plan = FaultPlan::new()
///     .with(Fault::StuckAt { block: "door".into(), value: true })
///     .with(Fault::DropPackets { block: "radio".into(), from: 50, to: 100 });
/// assert_eq!(plan.faults().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The declared faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Resolves block names against a design's dense [`BlockIndex`].
    /// Unknown names are ignored — a plan written for the original network
    /// may mention blocks that the synthesized network merged away.
    pub(crate) fn resolve(&self, design: &Design, index: &BlockIndex) -> ResolvedFaults {
        let n = index.num_blocks();
        let mut stuck = vec![None; n];
        let mut sender: Vec<Vec<SendFault>> = vec![Vec::new(); n];
        let dense_by_name =
            |name: &str| design.block_by_name(name).and_then(|id| index.dense_of(id));
        for fault in &self.faults {
            match fault {
                Fault::StuckAt { block, value } => {
                    if let Some(d) = dense_by_name(block) {
                        stuck[d] = Some(*value);
                    }
                }
                Fault::DropPackets { block, from, to } => {
                    if let Some(d) = dense_by_name(block) {
                        sender[d].push(SendFault {
                            from: *from,
                            to: *to,
                            kind: SendFaultKind::Drop,
                        });
                    }
                }
                Fault::DelayPackets {
                    block,
                    from,
                    to,
                    extra,
                } => {
                    if let Some(d) = dense_by_name(block) {
                        sender[d].push(SendFault {
                            from: *from,
                            to: *to,
                            kind: SendFaultKind::Delay(*extra),
                        });
                    }
                }
            }
        }
        ResolvedFaults { stuck, sender }
    }
}

impl FromIterator<Fault> for FaultPlan {
    fn from_iter<I: IntoIterator<Item = Fault>>(iter: I) -> Self {
        Self {
            faults: iter.into_iter().collect(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SendFaultKind {
    Drop,
    Delay(Time),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SendFault {
    from: Time,
    to: Time,
    kind: SendFaultKind,
}

/// Name-resolved faults as dense per-block tables, consulted by the
/// runner's hot paths without hashing. Indices are the runner's dense
/// block indices (see `sim::BlockIndex`).
#[derive(Debug, Clone, Default)]
pub(crate) struct ResolvedFaults {
    stuck: Vec<Option<bool>>,
    sender: Vec<Vec<SendFault>>,
}

impl ResolvedFaults {
    /// The stuck value of the sensor at dense index `sensor`, if any.
    pub(crate) fn stuck_value(&self, sensor: usize) -> Option<bool> {
        self.stuck.get(sensor).copied().flatten()
    }

    /// The fate of a packet sent by the block at dense index `block` at
    /// time `t`: `None` to drop it, or `Some(extra_latency)`. Drop wins
    /// over delay when windows overlap.
    pub(crate) fn send_fate(&self, block: usize, t: Time) -> Option<Time> {
        let Some(faults) = self.sender.get(block) else {
            return Some(0);
        };
        let mut extra: Time = 0;
        for f in faults {
            if t >= f.from && t < f.to {
                match f.kind {
                    SendFaultKind::Drop => return None,
                    SendFaultKind::Delay(d) => extra = extra.saturating_add(d),
                }
            }
        }
        Some(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulator, Stimulus};
    use eblocks_core::{CommKind, ComputeKind, Design, OutputKind, SensorKind};

    fn garage() -> Design {
        let mut d = Design::new("garage");
        let door = d.add_block("door", SensorKind::ContactSwitch);
        let light = d.add_block("light", SensorKind::Light);
        let inv = d.add_block("inv", ComputeKind::Not);
        let both = d.add_block("both", ComputeKind::and2());
        let led = d.add_block("led", OutputKind::Led);
        d.connect((door, 0), (both, 0)).unwrap();
        d.connect((light, 0), (inv, 0)).unwrap();
        d.connect((inv, 0), (both, 1)).unwrap();
        d.connect((both, 0), (led, 0)).unwrap();
        d
    }

    fn radio_link() -> Design {
        let mut d = Design::new("radio");
        let b = d.add_block("btn", SensorKind::Button);
        let tx = d.add_block("radio", CommKind::WirelessTx);
        let o = d.add_block("led", OutputKind::Led);
        d.connect((b, 0), (tx, 0)).unwrap();
        d.connect((tx, 0), (o, 0)).unwrap();
        d
    }

    #[test]
    fn stuck_at_overrides_stimulus() {
        let d = garage();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(10, "door", true).set(20, "door", false);
        let healthy = sim.run(&stim, 60).unwrap();
        assert_eq!(healthy.final_value("led"), Some(false), "door closed again");

        // Door switch corrodes shut: always reports open. Night (light
        // false at power-on) + open door = alarm on, forever.
        let plan = FaultPlan::new().with(Fault::StuckAt {
            block: "door".into(),
            value: true,
        });
        let faulty = sim.run_with_faults(&stim, 60, &plan).unwrap();
        assert_eq!(faulty.final_value("led"), Some(true));
        assert_eq!(faulty.value_at("led", 5), Some(true), "stuck from power-on");
    }

    #[test]
    fn dropped_packet_loses_the_edge() {
        let d = radio_link();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(10, "btn", true);
        let healthy = sim.run(&stim, 60).unwrap();
        assert_eq!(healthy.final_value("led"), Some(true));

        // Radio fails during the transmission window; the protocol has no
        // retransmission, so the LED never learns the button was pressed.
        let plan = FaultPlan::new().with(Fault::DropPackets {
            block: "radio".into(),
            from: 5,
            to: 20,
        });
        let faulty = sim.run_with_faults(&stim, 60, &plan).unwrap();
        assert_eq!(faulty.final_value("led"), Some(false));
    }

    #[test]
    fn drop_window_is_bounded() {
        let d = radio_link();
        let sim = Simulator::new(&d).unwrap();
        // Edge at 10 is lost; edge at 40 (after the window) gets through.
        let stim = Stimulus::new()
            .set(10, "btn", true)
            .set(30, "btn", false)
            .set(40, "btn", true);
        let plan = FaultPlan::new().with(Fault::DropPackets {
            block: "radio".into(),
            from: 5,
            to: 35,
        });
        let faulty = sim.run_with_faults(&stim, 80, &plan).unwrap();
        assert_eq!(faulty.value_at("led", 20), Some(false), "rise lost");
        assert_eq!(
            faulty.final_value("led"),
            Some(true),
            "post-window rise arrives"
        );
    }

    #[test]
    fn delay_shifts_arrival() {
        let d = radio_link();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(10, "btn", true);
        let healthy_rise = rise_time(&sim.run(&stim, 60).unwrap());

        let plan = FaultPlan::new().with(Fault::DelayPackets {
            block: "radio".into(),
            from: 0,
            to: 100,
            extra: 7,
        });
        let faulty_rise = rise_time(&sim.run_with_faults(&stim, 60, &plan).unwrap());
        assert_eq!(faulty_rise, healthy_rise + 7);
    }

    fn rise_time(trace: &crate::Trace) -> Time {
        trace
            .history("led")
            .iter()
            .find(|&&(_, v)| v)
            .map(|&(t, _)| t)
            .expect("led rises")
    }

    #[test]
    fn empty_plan_changes_nothing() {
        let d = garage();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(10, "door", true).set(30, "light", true);
        let a = sim.run(&stim, 80).unwrap();
        let b = sim.run_with_faults(&stim, 80, &FaultPlan::new()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_block_names_ignored() {
        let d = garage();
        let sim = Simulator::new(&d).unwrap();
        let plan = FaultPlan::new().with(Fault::StuckAt {
            block: "merged-away".into(),
            value: true,
        });
        let stim = Stimulus::new().set(10, "door", true);
        let a = sim.run(&stim, 40).unwrap();
        let b = sim.run_with_faults(&stim, 40, &plan).unwrap();
        assert_eq!(a, b, "plans survive synthesis renaming losslessly");
    }

    #[test]
    fn overlapping_drop_beats_delay() {
        let d = radio_link();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(10, "btn", true);
        let plan = FaultPlan::new()
            .with(Fault::DelayPackets {
                block: "radio".into(),
                from: 5,
                to: 50,
                extra: 3,
            })
            .with(Fault::DropPackets {
                block: "radio".into(),
                from: 5,
                to: 50,
            });
        let faulty = sim.run_with_faults(&stim, 80, &plan).unwrap();
        // The power-on announcement (t=0, before the window) arrives; the
        // rise at t=10 is dropped, not merely delayed.
        assert_eq!(faulty.final_value("led"), Some(false));
    }

    #[test]
    fn plan_collects_from_iterator() {
        let plan: FaultPlan = [
            Fault::StuckAt {
                block: "a".into(),
                value: false,
            },
            Fault::DropPackets {
                block: "b".into(),
                from: 0,
                to: 1,
            },
        ]
        .into_iter()
        .collect();
        assert_eq!(plan.faults().len(), 2);
        assert!(!plan.is_empty());
    }
}
