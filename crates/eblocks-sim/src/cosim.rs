//! Step-able runner handles for co-simulation (extension).
//!
//! [`Simulator::run`] owns its whole event loop; a fleet simulation (the
//! `eblocks-net` crate) instead interleaves many nodes on one global
//! virtual clock. [`NodeRunner`] exposes the same engine one instant at a
//! time and bridges chosen block ports to a network:
//!
//! * [`tap_output`](NodeRunner::tap_output) is the node's egress: every
//!   packet the tapped port transmits is captured — after change detection
//!   (the eBlocks protocol) but before any injected *local* fault decides
//!   its fate, since link-level loss belongs to the network layer,
//! * [`sensor_ref`](NodeRunner::sensor_ref) + [`inject`](NodeRunner::inject)
//!   are the ingress: a delivered packet drives a sensor exactly as if the
//!   physical environment changed it,
//! * a driver loop asks [`next_event_time`](NodeRunner::next_event_time),
//!   advances its global clock to the minimum across nodes and network,
//!   and [`step_at`](NodeRunner::step_at)s every node with work there.
//!
//! Injected events at an instant apply *after* that instant's scripted
//! stimulus, in injection order. The fleet engine injects in its own
//! documented delivery order, so this rule makes whole-fleet traces a pure
//! function of specs and seeds.
//!
//! # Example: two nodes bridged by hand
//!
//! ```
//! use eblocks_core::{ComputeKind, Design, OutputKind, SensorKind};
//! use eblocks_sim::{NodeRunner, Simulator, Stimulus};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Node A inverts a button; node B lights a lamp from a bridged sensor.
//! let mut a = Design::new("a");
//! let btn = a.add_block("btn", SensorKind::Button);
//! let inv = a.add_block("inv", ComputeKind::Not);
//! let led = a.add_block("led", OutputKind::Led);
//! a.connect((btn, 0), (inv, 0))?;
//! a.connect((inv, 0), (led, 0))?;
//! let mut b = Design::new("b");
//! let rx = b.add_block("rx", SensorKind::Button);
//! let lamp = b.add_block("lamp", OutputKind::Led);
//! b.connect((rx, 0), (lamp, 0))?;
//!
//! let sim_a = Simulator::new(&a)?;
//! let sim_b = Simulator::new(&b)?;
//! let mut node_a = NodeRunner::new(&sim_a)?;
//! let mut node_b = NodeRunner::new(&sim_b)?;
//! node_a.load_stimulus(&Stimulus::new().set(10, "btn", true))?;
//! let tap = node_a.tap_output("inv", 0)?;
//! let rx_ref = node_b.sensor_ref("rx")?;
//!
//! // A two-node "network": every captured packet arrives 2 ticks later.
//! let mut captured = Vec::new();
//! while let Some(t) = [node_a.next_event_time(), node_b.next_event_time()]
//!     .into_iter()
//!     .flatten()
//!     .min()
//! {
//!     if t > 100 {
//!         break;
//!     }
//!     if node_a.next_event_time() == Some(t) {
//!         node_a.step_at(t, 100)?;
//!     }
//!     if node_b.next_event_time() == Some(t) {
//!         node_b.step_at(t, 100)?;
//!     }
//!     node_a.drain_captured(&mut captured);
//!     for p in captured.drain(..) {
//!         assert_eq!(p.tap, tap);
//!         node_b.inject(p.time + 2, rx_ref, p.value);
//!     }
//! }
//! let trace = node_b.finish();
//! assert_eq!(trace.value_at("lamp", 5), Some(true), "power-on inverse");
//! assert_eq!(trace.final_value("lamp"), Some(false), "press, 2 ticks late");
//! # Ok(())
//! # }
//! ```

use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::sim::{Runner, Simulator, Time};
use crate::stimulus::Stimulus;
use crate::trace::Trace;
use eblocks_core::BlockKind;

/// Identifies a tapped output port on one node. Dense (0, 1, … in
/// registration order), so fleet engines can index arrays with it.
pub type TapId = u32;

/// A pre-resolved sensor endpoint (see [`NodeRunner::sensor_ref`]): name
/// resolution happens once, the per-packet hot path is an array index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SensorRef(pub(crate) usize);

/// A packet captured at a tapped output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapturedPacket {
    /// The instant the port transmitted.
    pub time: Time,
    /// The tap that captured it.
    pub tap: TapId,
    /// The transmitted value.
    pub value: bool,
}

/// A step-able simulation of one node, driven by an external global clock.
///
/// The wrapped engine is the same arena [`Simulator::run`] uses, so a node
/// inside a fleet behaves bit-for-bit like the same design simulated alone
/// (modulo the traffic the network injects).
pub struct NodeRunner<'a> {
    sim: &'a Simulator,
    runner: Runner<'a>,
}

impl<'a> NodeRunner<'a> {
    /// Builds a step-able runner at power-on state.
    ///
    /// # Errors
    ///
    /// As for [`Simulator::run`] construction —
    /// [`SimError::InvalidTickPeriod`] if the simulator's tick period is
    /// zero.
    pub fn new(sim: &'a Simulator) -> Result<Self, SimError> {
        Self::with_faults(sim, &FaultPlan::new())
    }

    /// [`new`](NodeRunner::new) with local faults applied (stuck sensors,
    /// dropped/delayed packets — see [`crate::fault`]).
    ///
    /// # Errors
    ///
    /// As for [`new`](NodeRunner::new).
    pub fn with_faults(sim: &'a Simulator, plan: &FaultPlan) -> Result<Self, SimError> {
        Ok(Self {
            sim,
            runner: Runner::new(sim, plan)?,
        })
    }

    /// Loads the node-local stimulus script.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownSensor`] for entries naming no primary input.
    pub fn load_stimulus(&mut self, stimulus: &Stimulus) -> Result<(), SimError> {
        self.runner.load_stimulus(stimulus)
    }

    /// Bridges output port `port` of block `block` to the network: every
    /// packet it transmits is captured for
    /// [`drain_captured`](NodeRunner::drain_captured). Tapping the same
    /// port twice returns the same id.
    ///
    /// # Errors
    ///
    /// [`SimError::BadEndpoint`] if the block does not exist, is an output
    /// block (no output ports), or has no port `port`.
    pub fn tap_output(&mut self, block: &str, port: u8) -> Result<TapId, SimError> {
        let design = self.sim.design();
        let bad = |detail: &str| SimError::BadEndpoint {
            endpoint: format!("{block}.{port}"),
            detail: detail.to_string(),
        };
        let id = design
            .block_by_name(block)
            .ok_or_else(|| bad("no block with that name"))?;
        let blk = design.block(id).expect("resolved block");
        if matches!(blk.kind(), BlockKind::Output(_)) {
            return Err(bad("output blocks have no output ports to tap"));
        }
        if port >= blk.num_outputs() {
            return Err(bad(&format!(
                "block has {} output port(s)",
                blk.num_outputs()
            )));
        }
        let dense = self
            .runner
            .dense_of_id(id)
            .expect("named block is in the design");
        Ok(self.runner.register_tap(dense, port))
    }

    /// Resolves sensor `name` to an ingress endpoint for
    /// [`inject`](NodeRunner::inject).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownSensor`] if `name` is not a primary input.
    pub fn sensor_ref(&self, name: &str) -> Result<SensorRef, SimError> {
        let design = self.sim.design();
        let id = design
            .block_by_name(name)
            .filter(|&b| {
                design
                    .block(b)
                    .is_some_and(|blk| blk.kind().is_primary_input())
            })
            .ok_or_else(|| SimError::UnknownSensor {
                name: name.to_string(),
            })?;
        Ok(SensorRef(
            self.runner.dense_of_id(id).expect("resolved block"),
        ))
    }

    /// The earliest instant at which this node has pending work, if any.
    pub fn next_event_time(&self) -> Option<Time> {
        self.runner.next_event_time()
    }

    /// Delivers a network packet: `sensor` changes to `value` at `t`.
    ///
    /// `t` must be non-decreasing across calls and must not lie in the
    /// node's past (the global clock only moves forward). Injections at an
    /// instant apply after that instant's scripted stimulus, in call order.
    pub fn inject(&mut self, t: Time, sensor: SensorRef, value: bool) {
        self.runner.inject_sense(t, sensor.0, value);
    }

    /// Settles exactly the instant `t`. `horizon` bounds periodic tick
    /// rescheduling, like `until` in [`Simulator::run`].
    ///
    /// # Errors
    ///
    /// [`SimError::Eval`] / [`SimError::NonBooleanPacket`] for faulting
    /// behavior programs.
    pub fn step_at(&mut self, t: Time, horizon: Time) -> Result<(), SimError> {
        self.runner.step_at(t, horizon)
    }

    /// Moves the packets captured at tapped ports since the last drain
    /// into `out`, in emission order.
    pub fn drain_captured(&mut self, out: &mut Vec<CapturedPacket>) {
        self.runner.drain_captured(out);
    }

    /// Stops the node: folds the transmission counters into the trace
    /// (energy accounting) and returns it.
    pub fn finish(mut self) -> Trace {
        self.runner.finalize_counts();
        self.runner.into_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{ComputeKind, Design, OutputKind, SensorKind};

    fn lamp_node() -> Design {
        let mut d = Design::new("lamp-node");
        let rx = d.add_block("rx", SensorKind::Button);
        let lamp = d.add_block("lamp", OutputKind::Led);
        d.connect((rx, 0), (lamp, 0)).unwrap();
        d
    }

    #[test]
    fn endpoint_validation() {
        let mut d = Design::new("v");
        let s = d.add_block("s", SensorKind::Button);
        let n = d.add_block("n", ComputeKind::Not);
        let o = d.add_block("led", OutputKind::Led);
        d.connect((s, 0), (n, 0)).unwrap();
        d.connect((n, 0), (o, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        let mut node = NodeRunner::new(&sim).unwrap();

        assert!(matches!(
            node.tap_output("ghost", 0),
            Err(SimError::BadEndpoint { .. })
        ));
        assert!(matches!(
            node.tap_output("led", 0),
            Err(SimError::BadEndpoint { .. })
        ));
        assert!(matches!(
            node.tap_output("n", 7),
            Err(SimError::BadEndpoint { .. })
        ));
        assert!(matches!(
            node.sensor_ref("n"),
            Err(SimError::UnknownSensor { .. })
        ));

        // Tapping the same port twice returns the same id.
        let t1 = node.tap_output("n", 0).unwrap();
        let t2 = node.tap_output("n", 0).unwrap();
        assert_eq!(t1, t2);
        let t3 = node.tap_output("s", 0).unwrap();
        assert_ne!(t1, t3);
    }

    #[test]
    fn injection_applies_after_scripted_stimulus() {
        // Script raises `rx` at 10; an injection lowers it at the same
        // instant. The injection must apply second, so the lamp sees both
        // packets and ends low.
        let d = lamp_node();
        let sim = Simulator::new(&d).unwrap();
        let mut node = NodeRunner::new(&sim).unwrap();
        node.load_stimulus(&Stimulus::new().set(10, "rx", true))
            .unwrap();
        let rx = node.sensor_ref("rx").unwrap();
        node.inject(10, rx, false);
        while let Some(t) = node.next_event_time() {
            if t > 50 {
                break;
            }
            node.step_at(t, 50).unwrap();
        }
        let trace = node.finish();
        assert_eq!(
            trace.history("lamp"),
            &[(0, false), (10, true), (10, false)]
        );
    }

    #[test]
    fn stepped_node_matches_monolithic_run() {
        // Driving a node instant-by-instant with no network traffic must
        // reproduce `Simulator::run` exactly, counters included.
        let mut d = Design::new("m");
        let s = d.add_block("s", SensorKind::Button);
        let p = d.add_block("pg", ComputeKind::PulseGen { ticks: 4 });
        let o = d.add_block("led", OutputKind::Led);
        d.connect((s, 0), (p, 0)).unwrap();
        d.connect((p, 0), (o, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().pulse(10, 3, "s").pulse(30, 3, "s");

        let mut node = NodeRunner::new(&sim).unwrap();
        node.load_stimulus(&stim).unwrap();
        while let Some(t) = node.next_event_time() {
            if t > 60 {
                break;
            }
            node.step_at(t, 60).unwrap();
        }
        assert_eq!(node.finish(), sim.run(&stim, 60).unwrap());
    }
}
