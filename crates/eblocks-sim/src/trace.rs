//! Output traces recorded during simulation.

use crate::sim::Time;
use std::collections::BTreeMap;

/// Per-output packet history recorded by a simulation run, keyed by output
/// block name, plus per-block transmission counts (the basis of the energy
/// model — see [`crate::energy`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    records: BTreeMap<String, Vec<(Time, bool)>>,
    transmissions: BTreeMap<String, u64>,
}

impl Trace {
    /// Creates an empty trace pre-registering the given output names (so
    /// untouched outputs still appear with empty histories).
    pub fn with_outputs<I: IntoIterator<Item = String>>(names: I) -> Self {
        Self {
            records: names.into_iter().map(|n| (n, Vec::new())).collect(),
            transmissions: BTreeMap::new(),
        }
    }

    pub(crate) fn record(&mut self, output: &str, time: Time, value: bool) {
        self.records
            .entry(output.to_string())
            .or_default()
            .push((time, value));
    }

    /// The packet history of an output block, in time order.
    pub fn history(&self, output: &str) -> &[(Time, bool)] {
        self.records.get(output).map_or(&[], Vec::as_slice)
    }

    /// The last value received by an output block. `None` if it never
    /// received a packet (eBlock outputs idle low, so callers usually treat
    /// this as `false`).
    pub fn final_value(&self, output: &str) -> Option<bool> {
        self.records
            .get(output)
            .and_then(|h| h.last())
            .map(|&(_, v)| v)
    }

    /// The value an output displayed at `time` (the last packet at or before
    /// it), or `None` before its first packet.
    pub fn value_at(&self, output: &str, time: Time) -> Option<bool> {
        self.records
            .get(output)?
            .iter()
            .take_while(|&&(t, _)| t <= time)
            .last()
            .map(|&(_, v)| v)
    }

    /// Output names known to this trace.
    pub fn outputs(&self) -> impl Iterator<Item = &str> {
        self.records.keys().map(String::as_str)
    }

    /// Total number of packets delivered to output blocks.
    pub fn packet_count(&self) -> usize {
        self.records.values().map(Vec::len).sum()
    }

    pub(crate) fn count_transmissions(&mut self, block: &str, packets: u64) {
        if packets > 0 {
            *self.transmissions.entry(block.to_string()).or_insert(0) += packets;
        }
    }

    /// Packets physically transmitted by `block` during the run (one per
    /// driven wire per value change; energy is spent even when a fault
    /// loses the packet in flight).
    pub fn transmissions(&self, block: &str) -> u64 {
        self.transmissions.get(block).copied().unwrap_or(0)
    }

    /// Total packets transmitted by all blocks.
    pub fn total_transmissions(&self) -> u64 {
        self.transmissions.values().sum()
    }

    /// Per-block transmission counts, by block name.
    pub fn transmissions_by_block(&self) -> impl Iterator<Item = (&str, u64)> {
        self.transmissions.iter().map(|(n, &c)| (n.as_str(), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_and_queries() {
        let mut t = Trace::with_outputs(["led".to_string()]);
        t.record("led", 5, true);
        t.record("led", 12, false);
        assert_eq!(t.history("led"), &[(5, true), (12, false)]);
        assert_eq!(t.final_value("led"), Some(false));
        assert_eq!(t.value_at("led", 4), None);
        assert_eq!(t.value_at("led", 5), Some(true));
        assert_eq!(t.value_at("led", 11), Some(true));
        assert_eq!(t.value_at("led", 30), Some(false));
        assert_eq!(t.packet_count(), 2);
    }

    #[test]
    fn unknown_output_is_empty() {
        let t = Trace::default();
        assert!(t.history("ghost").is_empty());
        assert_eq!(t.final_value("ghost"), None);
        assert_eq!(t.value_at("ghost", 10), None);
    }

    #[test]
    fn preregistered_outputs_listed() {
        let t = Trace::with_outputs(["a".to_string(), "b".to_string()]);
        let names: Vec<&str> = t.outputs().collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
