//! Event-driven, packet-level simulator for eBlock networks.
//!
//! §3.1 of the paper describes a behavioral simulator: blocks exchange
//! boolean packets serially, communication is globally asynchronous, and the
//! simulation "is behaviorally correct and obeys general high-level timing,
//! but no detailed timing characteristics can be inferred" — eBlocks deal
//! with human-scale events, so that is sufficient. This crate is the
//! headless equivalent of the paper's Java GUI simulator:
//!
//! * every wire carries boolean packets with a small hop latency,
//! * a block re-evaluates its behavior program (see [`eblocks_behavior`])
//!   when a packet arrives, and transmits on an output port only when the
//!   driven value *changes* (the eBlocks protocol),
//! * sequential blocks with `on tick` handlers (pulse generator, delay)
//!   receive periodic tick events,
//! * sensors are driven by a [`Stimulus`] script, and every output block
//!   records its packet history into the returned [`Trace`].
//!
//! [`equivalence`] runs two designs under the same stimulus and compares
//! the stable values at their (shared) output blocks — the harness the
//! synthesis pipeline uses to verify that partitioning plus code generation
//! preserved behavior.
//!
//! # Example
//!
//! ```
//! use eblocks_core::{ComputeKind, Design, OutputKind, SensorKind};
//! use eblocks_sim::{Simulator, Stimulus};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut d = Design::new("press-to-light");
//! let b = d.add_block("button", SensorKind::Button);
//! let n = d.add_block("inv", ComputeKind::Not);
//! let o = d.add_block("led", OutputKind::Led);
//! d.connect((b, 0), (n, 0))?;
//! d.connect((n, 0), (o, 0))?;
//!
//! let stim = Stimulus::new().set(10, "button", true);
//! let trace = Simulator::new(&d)?.run(&stim, 100)?;
//! assert_eq!(trace.final_value("led"), Some(false)); // inverted press
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cosim;
pub mod energy;
pub mod equiv;
pub mod error;
pub mod fault;
pub mod reliability;
pub mod sim;
pub mod stimulus;
pub mod time;
pub mod trace;
pub mod vcd;
pub mod waveform;

pub use cosim::{CapturedPacket, NodeRunner, SensorRef, TapId};
pub use energy::{estimate_energy, EnergyModel, EnergyReport};
pub use equiv::{equivalence, EquivalenceReport};
pub use error::SimError;
pub use fault::{Fault, FaultPlan};
pub use reliability::{reliability, ReliabilityConfig, ReliabilityReport};
pub use sim::{Simulator, Time};
pub use stimulus::Stimulus;
pub use trace::Trace;
pub use vcd::to_vcd;
pub use waveform::{render, render_all};
