//! Sensor stimulus scripts.

use crate::sim::Time;

/// A time-ordered script of sensor value changes, addressed by sensor block
/// name — the headless replacement for clicking sensor icons in the paper's
/// GUI simulator.
///
/// ```
/// use eblocks_sim::Stimulus;
/// let stim = Stimulus::new()
///     .set(5, "button", true)
///     .set(20, "button", false)
///     .pulse(40, 10, "motion");
/// assert_eq!(stim.events().len(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stimulus {
    events: Vec<(Time, String, bool)>,
}

impl Stimulus {
    /// An empty stimulus (all sensors stay at their initial `false`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `sensor` to `value` at `time`.
    pub fn set(mut self, time: Time, sensor: impl Into<String>, value: bool) -> Self {
        self.events.push((time, sensor.into(), value));
        self
    }

    /// Raises `sensor` at `time` and lowers it `width` later. A pulse whose
    /// falling edge would overflow [`Time`] saturates at `Time::MAX` (the
    /// sensor then simply never falls) instead of panicking — the shared
    /// [`crate::time`] span policy.
    pub fn pulse(self, time: Time, width: Time, sensor: impl Into<String>) -> Self {
        let name = sensor.into();
        self.set(time, name.clone(), true)
            .set(crate::time::clamp_after(time, width), name, false)
    }

    /// The script, in insertion order.
    ///
    /// The simulator orders events by time itself (its queue keys lead with
    /// the timestamp, and entries tied on time and sensor keep insertion
    /// order), so no per-call clone-and-sort is needed here.
    pub fn events(&self) -> &[(Time, String, bool)] {
        &self.events
    }

    /// The time of the last scripted change, if any.
    pub fn end_time(&self) -> Option<Time> {
        self.events.iter().map(|(t, _, _)| *t).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_keep_insertion_order() {
        let s = Stimulus::new()
            .set(30, "a", true)
            .set(10, "b", false)
            .set(20, "a", false);
        let ev = s.events();
        assert_eq!(ev[0].0, 30);
        assert_eq!(ev[2].0, 20);
        assert_eq!(s.end_time(), Some(30));
    }

    #[test]
    fn pulse_near_end_of_time_saturates() {
        let s = Stimulus::new().pulse(Time::MAX - 2, 5, "btn");
        let ev = s.events();
        assert_eq!(ev[0], (Time::MAX - 2, "btn".to_string(), true));
        assert_eq!(ev[1], (Time::MAX, "btn".to_string(), false));
    }

    #[test]
    fn pulse_expands_to_two_events() {
        let s = Stimulus::new().pulse(100, 5, "btn");
        let ev = s.events();
        assert_eq!(
            ev,
            vec![
                (100, "btn".to_string(), true),
                (105, "btn".to_string(), false)
            ]
        );
    }

    #[test]
    fn empty_has_no_end() {
        assert_eq!(Stimulus::new().end_time(), None);
    }
}
