//! Simulator errors.

use eblocks_behavior::{CheckError, EvalError};
use eblocks_core::DesignError;
use std::error::Error;
use std::fmt;

/// Errors raised while constructing or running a simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The design failed structural validation.
    InvalidDesign(DesignError),
    /// A programmable block has no behavior program attached.
    MissingProgram {
        /// The block's name.
        block: String,
    },
    /// A behavior program failed its static checks.
    BadProgram {
        /// The block's name.
        block: String,
        /// The first check failure.
        error: CheckError,
    },
    /// A behavior program faulted during simulation.
    Eval {
        /// The block's name.
        block: String,
        /// The fault.
        error: EvalError,
    },
    /// A behavior program drove a non-boolean value onto a wire.
    NonBooleanPacket {
        /// The block's name.
        block: String,
        /// The output port.
        port: u8,
    },
    /// A stimulus references a sensor that does not exist.
    UnknownSensor {
        /// The referenced name.
        name: String,
    },
    /// The simulator's tick period is zero. Ticks would reschedule at the
    /// same instant forever, so the run would never advance past its first
    /// tick — rejected instead of hanging.
    InvalidTickPeriod,
    /// A co-simulation endpoint cannot be bridged to a block port (see
    /// [`crate::cosim`]).
    BadEndpoint {
        /// The referenced `block.port` endpoint.
        endpoint: String,
        /// Why it cannot be bridged.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidDesign(e) => write!(f, "invalid design: {e}"),
            Self::MissingProgram { block } => {
                write!(f, "programmable block `{block}` has no behavior program")
            }
            Self::BadProgram { block, error } => {
                write!(f, "behavior program of `{block}` failed checks: {error}")
            }
            Self::Eval { block, error } => write!(f, "block `{block}` faulted: {error}"),
            Self::NonBooleanPacket { block, port } => {
                write!(f, "block `{block}` drove a non-boolean value on out{port}")
            }
            Self::UnknownSensor { name } => {
                write!(f, "stimulus references unknown sensor `{name}`")
            }
            Self::InvalidTickPeriod => {
                write!(
                    f,
                    "tick period must be at least one tick (zero would hang the run)"
                )
            }
            Self::BadEndpoint { endpoint, detail } => {
                write!(f, "cannot bridge endpoint `{endpoint}`: {detail}")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::InvalidDesign(e) => Some(e),
            Self::BadProgram { error, .. } => Some(error),
            Self::Eval { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<DesignError> for SimError {
    fn from(e: DesignError) -> Self {
        Self::InvalidDesign(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::MissingProgram { block: "p1".into() };
        assert!(e.to_string().contains("p1"));
        let e = SimError::UnknownSensor {
            name: "ghost".into(),
        };
        assert!(e.to_string().contains("ghost"));
        let e = SimError::Eval {
            block: "g".into(),
            error: EvalError::DivisionByZero,
        };
        assert!(e.to_string().contains("division"));
        assert!(SimError::InvalidTickPeriod.to_string().contains("tick"));
    }
}
