//! Network energy estimation (extension).
//!
//! The paper's abstract motivates synthesis with "reducing network size and
//! hence network cost **and power**", but never quantifies the power half.
//! This module does: a simulation run counts every physical packet
//! transmission ([`Trace::transmissions`]), and an [`EnergyModel`] converts
//! the activity plus each block's idle draw into an energy figure, so the
//! before/after-synthesis comparison the paper argues for can be measured
//! (see the `energy` bench binary).
//!
//! Two effects make the synthesized network cheaper:
//!
//! * **fewer transmissions** — wires internal to a partition become
//!   variable accesses inside the programmable block's program, so the
//!   packets that used to cross them disappear entirely;
//! * **fewer blocks** — each block removed stops drawing idle current.
//!
//! The default constants are order-of-magnitude figures for a
//! PIC16F628-class node (§3.3): tens of nanojoules to clock a packet out
//! over a short wire, microjoules for a radio packet, and a sleepy idle
//! draw between events. Absolute numbers are not the point — the *ratio*
//! between the original and synthesized network is, and it is dominated by
//! packet and block counts, which the simulator measures exactly.

use crate::sim::Time;
use crate::trace::Trace;
use eblocks_core::{BlockKind, Design};

/// Energy constants for [`estimate_energy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per packet transmitted over a wire, in nanojoules.
    pub wire_packet_nj: f64,
    /// Energy per packet transmitted by a communication block (radio/X10),
    /// in nanojoules.
    pub radio_packet_nj: f64,
    /// Idle draw of one block per simulator tick, in nanojoules.
    pub idle_nj_per_tick: f64,
    /// Idle multiplier for programmable blocks (a clocked microcontroller
    /// sleeps slightly hungrier than a fixed-function board).
    pub programmable_idle_factor: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            wire_packet_nj: 50.0,
            radio_packet_nj: 2_000.0,
            idle_nj_per_tick: 10.0,
            programmable_idle_factor: 1.2,
        }
    }
}

/// The energy breakdown of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    /// Energy spent transmitting packets, in nanojoules.
    pub transmission_nj: f64,
    /// Energy spent idling (all blocks, whole run), in nanojoules.
    pub idle_nj: f64,
    /// Per-block transmission energy, sorted descending — the hot spots.
    pub by_block: Vec<(String, f64)>,
}

impl EnergyReport {
    /// Total energy of the run, in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.transmission_nj + self.idle_nj
    }

    /// The block spending the most transmission energy, if any packet flew.
    pub fn hottest(&self) -> Option<(&str, f64)> {
        self.by_block.first().map(|(n, e)| (n.as_str(), *e))
    }
}

/// Estimates the energy of a run of `duration` ticks whose activity was
/// recorded in `trace`.
///
/// # Examples
///
/// ```
/// use eblocks_core::{Design, OutputKind, SensorKind};
/// use eblocks_sim::{estimate_energy, EnergyModel, Simulator, Stimulus};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut d = Design::new("bell");
/// let b = d.add_block("btn", SensorKind::Button);
/// let o = d.add_block("bell", OutputKind::Buzzer);
/// d.connect((b, 0), (o, 0))?;
///
/// let sim = Simulator::new(&d)?;
/// let trace = sim.run(&Stimulus::new().set(20, "btn", true), 100)?;
/// let report = estimate_energy(&d, &trace, &EnergyModel::default(), 100);
/// assert!(report.total_nj() > 0.0);
/// assert_eq!(report.hottest().map(|(n, _)| n), Some("btn"));
/// # Ok(())
/// # }
/// ```
pub fn estimate_energy(
    design: &Design,
    trace: &Trace,
    model: &EnergyModel,
    duration: Time,
) -> EnergyReport {
    let mut transmission_nj = 0.0;
    let mut by_block: Vec<(String, f64)> = Vec::new();
    for (name, packets) in trace.transmissions_by_block() {
        let per_packet = match design.block_by_name(name).and_then(|b| design.block(b)) {
            Some(block) if matches!(block.kind(), BlockKind::Comm(_)) => model.radio_packet_nj,
            _ => model.wire_packet_nj,
        };
        let energy = packets as f64 * per_packet;
        transmission_nj += energy;
        by_block.push((name.to_string(), energy));
    }
    by_block.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));

    let mut idle_nj = 0.0;
    for id in design.blocks() {
        let factor = match design.block(id).expect("iterating blocks").kind() {
            BlockKind::Programmable(_) => model.programmable_idle_factor,
            _ => 1.0,
        };
        idle_nj += model.idle_nj_per_tick * factor * duration as f64;
    }

    EnergyReport {
        transmission_nj,
        idle_nj,
        by_block,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Simulator, Stimulus};
    use eblocks_core::{CommKind, ComputeKind, OutputKind, SensorKind};

    fn garage() -> Design {
        let mut d = Design::new("garage");
        let door = d.add_block("door", SensorKind::ContactSwitch);
        let light = d.add_block("light", SensorKind::Light);
        let inv = d.add_block("inv", ComputeKind::Not);
        let both = d.add_block("both", ComputeKind::and2());
        let led = d.add_block("led", OutputKind::Led);
        d.connect((door, 0), (both, 0)).unwrap();
        d.connect((light, 0), (inv, 0)).unwrap();
        d.connect((inv, 0), (both, 1)).unwrap();
        d.connect((both, 0), (led, 0)).unwrap();
        d
    }

    #[test]
    fn transmissions_counted_per_wire() {
        let d = garage();
        let sim = Simulator::new(&d).unwrap();
        // Power-on: each sensor announces once (1 wire each), inv announces
        // its initial true, both announces false.
        let trace = sim.run(&Stimulus::new(), 50).unwrap();
        assert_eq!(trace.transmissions("door"), 1);
        assert_eq!(trace.transmissions("light"), 1);
        assert_eq!(trace.transmissions("inv"), 1);
        assert_eq!(trace.transmissions("both"), 1);
        assert_eq!(trace.total_transmissions(), 4);
    }

    #[test]
    fn more_activity_costs_more() {
        let d = garage();
        let sim = Simulator::new(&d).unwrap();
        let quiet = sim.run(&Stimulus::new(), 100).unwrap();
        let busy = sim
            .run(
                &Stimulus::new()
                    .pulse(10, 5, "door")
                    .pulse(30, 5, "door")
                    .pulse(50, 5, "light"),
                100,
            )
            .unwrap();
        let m = EnergyModel::default();
        let eq = estimate_energy(&d, &quiet, &m, 100);
        let eb = estimate_energy(&d, &busy, &m, 100);
        assert!(eb.transmission_nj > eq.transmission_nj);
        assert_eq!(eb.idle_nj, eq.idle_nj, "same network, same idle");
    }

    #[test]
    fn radio_packets_dominate() {
        let mut d = Design::new("radio");
        let b = d.add_block("btn", SensorKind::Button);
        let tx = d.add_block("radio", CommKind::WirelessTx);
        let o = d.add_block("led", OutputKind::Led);
        d.connect((b, 0), (tx, 0)).unwrap();
        d.connect((tx, 0), (o, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        let trace = sim.run(&Stimulus::new().set(10, "btn", true), 50).unwrap();
        let report = estimate_energy(&d, &trace, &EnergyModel::default(), 50);
        assert_eq!(report.hottest().map(|(n, _)| n), Some("radio"));
    }

    #[test]
    fn splitter_fanout_costs_two_packets_per_change() {
        let mut d = Design::new("fan");
        let s = d.add_block("s", SensorKind::Button);
        let sp = d.add_block("sp", ComputeKind::Splitter);
        let o1 = d.add_block("o1", OutputKind::Led);
        let o2 = d.add_block("o2", OutputKind::Buzzer);
        d.connect((s, 0), (sp, 0)).unwrap();
        d.connect((sp, 0), (o1, 0)).unwrap();
        d.connect((sp, 1), (o2, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        let trace = sim.run(&Stimulus::new().set(10, "s", true), 50).unwrap();
        // Power-on false + the rise: two changes on each of two ports.
        assert_eq!(trace.transmissions("sp"), 4);
    }

    #[test]
    fn duration_scales_idle_energy() {
        let d = garage();
        let sim = Simulator::new(&d).unwrap();
        let trace = sim.run(&Stimulus::new(), 100).unwrap();
        let m = EnergyModel::default();
        let short = estimate_energy(&d, &trace, &m, 100);
        let long = estimate_energy(&d, &trace, &m, 1000);
        assert!((long.idle_nj - 10.0 * short.idle_nj).abs() < 1e-6);
    }
}
