//! The event-driven simulator core.
//!
//! # Execution model
//!
//! The simulator realizes the paper's §3.1 semantics — "behaviorally
//! correct and obeys general high-level timing, but no detailed timing
//! characteristics can be inferred" — as a *synchronous delta-cycle* model:
//!
//! * wires have **zero latency**; a value change propagates through the
//!   whole downstream cone within one instant, blocks evaluating in
//!   topological order,
//! * all packets reaching a block in the same instant are **coalesced**
//!   into one evaluation (a block sees the settled values of its inputs,
//!   never transient glitches from unequal-depth reconvergent paths),
//! * an output port transmits only when its value **changes** (the eBlocks
//!   packet protocol),
//! * time-driven blocks receive periodic `tick` events; only communication
//!   blocks add real latency (a radio/X10 hop is not instantaneous).
//!
//! Glitch-freedom matters for synthesis: a merged programmable block
//! evaluates its member trees in level order against latched inputs, which
//! is exactly this model. Under per-hop latencies instead, an edge-triggered
//! block (trip, toggle) could observe hazard pulses that depend on wire
//! lengths — behavior no merged program can reproduce and that the physical
//! human-scale system does not exhibit.

use crate::error::SimError;
use crate::fault::{FaultPlan, ResolvedFaults};
use crate::stimulus::Stimulus;
use crate::trace::Trace;
use eblocks_behavior::{check, library, parse, Machine, Program, Value};
use eblocks_core::{BlockId, BlockKind, Design};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Simulation time, in abstract ticks. One tick is the period of `on tick`
/// events; eBlocks operate on human-scale timing, so finer resolution adds
/// nothing (§3.1).
pub type Time = u64;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A sensor changes value (from the stimulus script).
    Sense { sensor: BlockId, value: bool },
    /// A packet arrives at an input port.
    Deliver { to: BlockId, port: u8, value: bool },
    /// A periodic tick for a time-driven block.
    Tick { block: BlockId },
}

/// A configured simulator for one design.
///
/// Construction compiles every block's behavior program ([`library`] for
/// pre-defined blocks, caller-supplied programs for programmable blocks)
/// and checks it against the block's arity. Each [`Simulator::run`] starts
/// from power-on state.
#[derive(Debug, Clone)]
pub struct Simulator {
    design: Design,
    programs: HashMap<BlockId, Program>,
    /// Extra latency of communication blocks (radio/X10 hop), in ticks.
    pub comm_latency: Time,
    /// Period of `on tick` events.
    pub tick_period: Time,
}

impl Simulator {
    /// Builds a simulator using the standard behavior library. Fails if the
    /// design contains programmable blocks (their programs are synthesis
    /// artifacts — use [`Simulator::with_programs`]).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidDesign`] if validation fails,
    /// [`SimError::MissingProgram`] for unprogrammed programmable blocks.
    pub fn new(design: &Design) -> Result<Self, SimError> {
        Self::with_programs(design, HashMap::new())
    }

    /// Builds a simulator supplying behavior programs for programmable
    /// blocks (keyed by block id).
    ///
    /// # Errors
    ///
    /// As for [`Simulator::new`], plus [`SimError::BadProgram`] if a
    /// supplied program fails [`check`](fn@check) against the block's pin budget.
    pub fn with_programs(
        design: &Design,
        programs: HashMap<BlockId, Program>,
    ) -> Result<Self, SimError> {
        design.validate()?;
        let mut compiled: HashMap<BlockId, Program> = HashMap::new();
        for id in design.blocks() {
            let block = design.block(id).expect("iterated block");
            let program = match block.kind() {
                BlockKind::Compute(kind) => library::program_for(kind),
                BlockKind::Comm(_) => parse("on input { out0 = in0; }").expect("identity parses"),
                BlockKind::Programmable(_) => {
                    programs
                        .get(&id)
                        .cloned()
                        .ok_or_else(|| SimError::MissingProgram {
                            block: block.name().to_string(),
                        })?
                }
                BlockKind::Sensor(_) | BlockKind::Output(_) => continue,
            };
            let errors = check(&program, block.num_inputs(), block.num_outputs());
            if let Some(error) = errors.into_iter().next() {
                return Err(SimError::BadProgram {
                    block: block.name().to_string(),
                    error,
                });
            }
            compiled.insert(id, program);
        }
        Ok(Self {
            design: design.clone(),
            programs: compiled,
            comm_latency: 3,
            tick_period: 1,
        })
    }

    /// Runs the stimulus script until `until`, returning the packet history
    /// of every output block.
    ///
    /// The run starts from power-on: every line low, every sensor `false`
    /// and announcing its initial value, every state variable at its
    /// initializer.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownSensor`] for unresolvable stimulus entries,
    /// [`SimError::Eval`] / [`SimError::NonBooleanPacket`] for faulting
    /// behavior programs.
    pub fn run(&self, stimulus: &Stimulus, until: Time) -> Result<Trace, SimError> {
        self.run_with_faults(stimulus, until, &FaultPlan::new())
    }

    /// The design this simulator was built for.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// [`run`](Self::run) with injected faults (see [`crate::fault`]):
    /// stuck sensors, dropped packets, delayed packets.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_with_faults(
        &self,
        stimulus: &Stimulus,
        until: Time,
        plan: &FaultPlan,
    ) -> Result<Trace, SimError> {
        let mut runner = Runner::new(self, plan.resolve(&self.design))?;
        runner.load_stimulus(stimulus)?;
        runner.run(until)?;
        Ok(runner.trace)
    }
}

/// Heap key: `(time, stage, topo rank, sub, seq)`. Stage orders sensor
/// changes before block evaluations; topological rank makes the zero-latency
/// cascade converge in a single sweep per instant; `sub` puts a block's tick
/// before its deliveries; `seq` keeps the remainder FIFO.
type Key = (Time, u8, usize, u8, u64);

struct Runner<'a> {
    sim: &'a Simulator,
    rank: HashMap<BlockId, usize>,
    machines: HashMap<BlockId, Machine>,
    inputs: HashMap<BlockId, Vec<Value>>,
    last_sent: HashMap<BlockId, Vec<Option<bool>>>,
    sensor_values: HashMap<BlockId, bool>,
    queue: BinaryHeap<Reverse<(Key, Event)>>,
    seq: u64,
    faults: ResolvedFaults,
    trace: Trace,
}

impl<'a> Runner<'a> {
    fn new(sim: &'a Simulator, faults: ResolvedFaults) -> Result<Self, SimError> {
        let design = &sim.design;
        let rank: HashMap<BlockId, usize> = design
            .topo_order()
            .into_iter()
            .enumerate()
            .map(|(i, b)| (b, i))
            .collect();
        let machines: HashMap<BlockId, Machine> = sim
            .programs
            .iter()
            .map(|(&id, p)| (id, Machine::new(p)))
            .collect();
        let mut inputs = HashMap::new();
        let mut last_sent = HashMap::new();
        for id in design.blocks() {
            let b = design.block(id).expect("iterated block");
            inputs.insert(id, vec![Value::Bool(false); b.num_inputs() as usize]);
            last_sent.insert(id, vec![None; b.num_outputs() as usize]);
        }
        let trace = Trace::with_outputs(
            design
                .outputs()
                .map(|o| design.block(o).expect("output block").name().to_string()),
        );
        let mut runner = Self {
            sim,
            rank,
            machines,
            inputs,
            last_sent,
            sensor_values: design.sensors().map(|s| (s, false)).collect(),
            queue: BinaryHeap::new(),
            seq: 0,
            faults,
            trace,
        };
        // Power-on: sensors announce their initial low value.
        for s in design.sensors() {
            runner.push(
                0,
                Event::Sense {
                    sensor: s,
                    value: false,
                },
            );
        }
        // First tick for time-driven blocks, in id order (determinism).
        let mut tick_blocks: Vec<BlockId> = runner
            .machines
            .iter()
            .filter(|(_, m)| m.uses_tick())
            .map(|(&id, _)| id)
            .collect();
        tick_blocks.sort();
        for id in tick_blocks {
            runner.push(sim.tick_period, Event::Tick { block: id });
        }
        Ok(runner)
    }

    fn key(&mut self, t: Time, e: &Event) -> Key {
        let seq = self.seq;
        self.seq += 1;
        match e {
            Event::Sense { sensor, .. } => (t, 0, sensor.index(), 0, seq),
            Event::Tick { block } => (t, 1, self.rank[block], 0, seq),
            Event::Deliver { to, port, .. } => (t, 1, self.rank[to], 1 + port, seq),
        }
    }

    fn push(&mut self, t: Time, e: Event) {
        let key = self.key(t, &e);
        self.queue.push(Reverse((key, e)));
    }

    fn load_stimulus(&mut self, stimulus: &Stimulus) -> Result<(), SimError> {
        for (t, name, value) in stimulus.events() {
            let id = self
                .sim
                .design
                .block_by_name(&name)
                .filter(|&b| {
                    self.sim
                        .design
                        .block(b)
                        .is_some_and(|blk| blk.kind().is_primary_input())
                })
                .ok_or_else(|| SimError::UnknownSensor { name: name.clone() })?;
            self.push(t, Event::Sense { sensor: id, value });
        }
        Ok(())
    }

    fn run(&mut self, until: Time) -> Result<(), SimError> {
        while let Some(&Reverse(((t, ..), event))) = self.queue.peek() {
            if t > until {
                break;
            }
            self.queue.pop();
            match event {
                Event::Sense { sensor, value } => {
                    // A stuck sensor reports its stuck value regardless of
                    // what the environment does.
                    let value = self.faults.stuck_value(sensor).unwrap_or(value);
                    let entry = self.sensor_values.get_mut(&sensor).expect("known sensor");
                    let is_initial = self.last_sent[&sensor][0].is_none();
                    if *entry != value || is_initial {
                        *entry = value;
                        self.transmit(sensor, 0, value, t)?;
                    }
                }
                Event::Deliver { to, port, value } => {
                    self.deliver(to, port, value, t)?;
                }
                Event::Tick { block } => {
                    let outs = self
                        .machines
                        .get_mut(&block)
                        .expect("ticked blocks have machines")
                        .on_tick()
                        .map_err(|error| self.eval_error(block, error))?;
                    self.emit(block, outs, t)?;
                    if t + self.sim.tick_period <= until {
                        self.push(t + self.sim.tick_period, Event::Tick { block });
                    }
                }
            }
        }
        Ok(())
    }

    /// Handles a delivery, coalescing every other packet bound for the same
    /// block at the same instant into a single evaluation.
    fn deliver(&mut self, to: BlockId, port: u8, value: bool, t: Time) -> Result<(), SimError> {
        let design = &self.sim.design;
        let block = design.block(to).expect("delivery target");
        if matches!(block.kind(), BlockKind::Output(_)) {
            self.trace.record(block.name(), t, value);
            return Ok(());
        }

        {
            let latched = self.inputs.get_mut(&to).expect("known block");
            latched[port as usize] = Value::Bool(value);
        }
        // Coalesce: drain queued same-instant deliveries to this block.
        while let Some(&Reverse(((qt, stage, _, _, _), qe))) = self.queue.peek() {
            let Event::Deliver {
                to: qto,
                port: qport,
                value: qvalue,
            } = qe
            else {
                break;
            };
            if qt != t || stage != 1 || qto != to {
                break;
            }
            self.queue.pop();
            self.inputs.get_mut(&to).expect("known block")[qport as usize] = Value::Bool(qvalue);
        }

        let outs = self
            .machines
            .get_mut(&to)
            .expect("non-output blocks have machines")
            .on_input(&self.inputs[&to])
            .map_err(|error| self.eval_error(to, error))?;
        self.emit(to, outs, t)
    }

    fn eval_error(&self, block: BlockId, error: eblocks_behavior::EvalError) -> SimError {
        SimError::Eval {
            block: self
                .sim
                .design
                .block(block)
                .expect("faulting block")
                .name()
                .to_string(),
            error,
        }
    }

    /// Sends the handler's written outputs, applying change detection.
    fn emit(&mut self, from: BlockId, outs: HashMap<u8, Value>, t: Time) -> Result<(), SimError> {
        // Deterministic port order.
        let mut ports: Vec<(u8, Value)> = outs.into_iter().collect();
        ports.sort_by_key(|&(p, _)| p);
        for (port, value) in ports {
            let Value::Bool(b) = value else {
                return Err(SimError::NonBooleanPacket {
                    block: self
                        .sim
                        .design
                        .block(from)
                        .expect("emitting block")
                        .name()
                        .to_string(),
                    port,
                });
            };
            self.transmit(from, port, b, t)?;
        }
        Ok(())
    }

    /// Transmits `value` on `(from, port)` if it differs from the last
    /// transmitted value (or nothing was ever sent). Wires are instant;
    /// communication blocks add `comm_latency`.
    fn transmit(&mut self, from: BlockId, port: u8, value: bool, t: Time) -> Result<(), SimError> {
        let slot = &mut self.last_sent.get_mut(&from).expect("known block")[port as usize];
        if *slot == Some(value) {
            return Ok(());
        }
        *slot = Some(value);
        let wires: Vec<_> = self.sim.design.sinks_of(from, port).collect();
        // Energy accounting: the sender spends a transmission per driven
        // wire whether or not a fault loses the packet in flight.
        let sender_name = self
            .sim
            .design
            .block(from)
            .expect("sender")
            .name()
            .to_string();
        self.trace
            .count_transmissions(&sender_name, wires.len() as u64);
        // Injected sender faults: the packet counts as sent (no ack in the
        // eBlocks protocol, so change detection above stands) but may be
        // lost or late in flight.
        let Some(extra) = self.faults.send_fate(from, t) else {
            return Ok(());
        };
        let latency = extra
            + match self.sim.design.block(from).expect("sender").kind() {
                BlockKind::Comm(_) => self.sim.comm_latency,
                _ => 0,
            };
        for w in wires {
            self.push(
                t + latency,
                Event::Deliver {
                    to: w.to,
                    port: w.to_port,
                    value,
                },
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{ComputeKind, OutputKind, SensorKind};

    fn and_design() -> Design {
        let mut d = Design::new("and");
        let a = d.add_block("a", SensorKind::Button);
        let b = d.add_block("b", SensorKind::Motion);
        let g = d.add_block("g", ComputeKind::and2());
        let o = d.add_block("led", OutputKind::Led);
        d.connect((a, 0), (g, 0)).unwrap();
        d.connect((b, 0), (g, 1)).unwrap();
        d.connect((g, 0), (o, 0)).unwrap();
        d
    }

    #[test]
    fn and_gate_tracks_inputs() {
        let d = and_design();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new()
            .set(10, "a", true)
            .set(20, "b", true)
            .set(30, "a", false);
        let trace = sim.run(&stim, 100).unwrap();
        assert_eq!(trace.value_at("led", 15), Some(false), "only a high");
        assert_eq!(trace.value_at("led", 25), Some(true), "both high");
        assert_eq!(trace.final_value("led"), Some(false), "a dropped");
    }

    #[test]
    fn initial_state_propagates() {
        let d = and_design();
        let sim = Simulator::new(&d).unwrap();
        let trace = sim.run(&Stimulus::new(), 50).unwrap();
        // Power-on false propagates to the LED instantly, with no stimulus.
        assert_eq!(trace.history("led"), &[(0, false)]);
    }

    #[test]
    fn change_detection_suppresses_duplicates() {
        let d = and_design();
        let sim = Simulator::new(&d).unwrap();
        // Setting `a` true repeatedly must not generate extra packets.
        let stim = Stimulus::new()
            .set(10, "a", true)
            .set(12, "a", true)
            .set(14, "a", true);
        let trace = sim.run(&stim, 100).unwrap();
        // LED sees exactly one packet: the initial false. (a=1, b=0 keeps
        // the AND at false, suppressed by change detection.)
        assert_eq!(trace.history("led").len(), 1);
    }

    #[test]
    fn simultaneous_input_changes_coalesce() {
        // Both AND inputs rise in the same instant: the gate must evaluate
        // once with both new values, not glitch through (true, old-false).
        let d = and_design();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(10, "a", true).set(10, "b", true);
        let trace = sim.run(&stim, 50).unwrap();
        assert_eq!(trace.history("led"), &[(0, false), (10, true)]);
    }

    #[test]
    fn glitch_free_reconvergence() {
        // s -> sp -> (direct, not) -> xor: the settled XOR of a signal and
        // its negation is constant true; a hazard model would emit a
        // transient. The delta-cycle model must show no glitch packets.
        let mut d = Design::new("haz");
        let s = d.add_block("s", SensorKind::Button);
        let sp = d.add_block("sp", ComputeKind::Splitter);
        let n = d.add_block("n", ComputeKind::Not);
        let x = d.add_block("x", ComputeKind::xor2());
        let o = d.add_block("led", OutputKind::Led);
        d.connect((s, 0), (sp, 0)).unwrap();
        d.connect((sp, 0), (n, 0)).unwrap();
        d.connect((sp, 1), (x, 0)).unwrap();
        d.connect((n, 0), (x, 1)).unwrap();
        d.connect((x, 0), (o, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(10, "s", true).set(20, "s", false);
        let trace = sim.run(&stim, 60).unwrap();
        assert_eq!(
            trace.history("led"),
            &[(0, true)],
            "xor(v, !v) never changes"
        );
    }

    #[test]
    fn toggle_flips_per_press() {
        let mut d = Design::new("t");
        let b = d.add_block("btn", SensorKind::Button);
        let t = d.add_block("tog", ComputeKind::Toggle);
        let o = d.add_block("led", OutputKind::Led);
        d.connect((b, 0), (t, 0)).unwrap();
        d.connect((t, 0), (o, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new()
            .pulse(10, 5, "btn")
            .pulse(30, 5, "btn")
            .pulse(50, 5, "btn");
        let trace = sim.run(&stim, 100).unwrap();
        assert_eq!(trace.value_at("led", 20), Some(true));
        assert_eq!(trace.value_at("led", 40), Some(false));
        assert_eq!(trace.final_value("led"), Some(true));
    }

    #[test]
    fn pulse_gen_expires() {
        let mut d = Design::new("p");
        let b = d.add_block("btn", SensorKind::Button);
        let p = d.add_block("pg", ComputeKind::PulseGen { ticks: 5 });
        let o = d.add_block("led", OutputKind::Led);
        d.connect((b, 0), (p, 0)).unwrap();
        d.connect((p, 0), (o, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(10, "btn", true);
        let trace = sim.run(&stim, 100).unwrap();
        assert_eq!(trace.value_at("led", 12), Some(true), "pulse active");
        assert_eq!(trace.final_value("led"), Some(false), "pulse expired");
        // Rise at 10 (instant wire), fall 5 ticks later.
        assert_eq!(trace.history("led"), &[(0, false), (10, true), (15, false)]);
    }

    #[test]
    fn garage_open_at_night() {
        // The paper's flagship example: door open AND dark -> LED.
        let mut d = Design::new("garage");
        let door = d.add_block("door", SensorKind::ContactSwitch);
        let light = d.add_block("light", SensorKind::Light);
        let inv = d.add_block("inv", ComputeKind::Not);
        let both = d.add_block("both", ComputeKind::and2());
        let led = d.add_block("led", OutputKind::Led);
        d.connect((door, 0), (both, 0)).unwrap();
        d.connect((light, 0), (inv, 0)).unwrap();
        d.connect((inv, 0), (both, 1)).unwrap();
        d.connect((both, 0), (led, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();

        let stim = Stimulus::new()
            .set(5, "light", true)
            .set(20, "door", true)
            .set(40, "light", false)
            .set(60, "door", false);
        let trace = sim.run(&stim, 120).unwrap();
        assert_eq!(trace.value_at("led", 30), Some(false), "daytime");
        assert_eq!(trace.value_at("led", 50), Some(true), "open at night");
        assert_eq!(trace.final_value("led"), Some(false), "closed");
    }

    #[test]
    fn comm_block_relays_with_latency() {
        let mut d = Design::new("radio");
        let b = d.add_block("btn", SensorKind::Button);
        let tx = d.add_block("tx", eblocks_core::CommKind::WirelessTx);
        let o = d.add_block("led", OutputKind::Led);
        d.connect((b, 0), (tx, 0)).unwrap();
        d.connect((tx, 0), (o, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        let trace = sim.run(&Stimulus::new().set(10, "btn", true), 50).unwrap();
        assert_eq!(trace.final_value("led"), Some(true));
        let rise = trace
            .history("led")
            .iter()
            .find(|&&(_, v)| v)
            .map(|&(t, _)| t)
            .unwrap();
        // Wires are instant; the radio hop costs comm_latency.
        assert_eq!(rise, 10 + sim.comm_latency);
    }

    #[test]
    fn unknown_sensor_rejected() {
        let d = and_design();
        let sim = Simulator::new(&d).unwrap();
        let err = sim
            .run(&Stimulus::new().set(5, "ghost", true), 10)
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownSensor { .. }));
        // Driving a non-sensor block is also rejected.
        let err = sim.run(&Stimulus::new().set(5, "g", true), 10).unwrap_err();
        assert!(matches!(err, SimError::UnknownSensor { .. }));
    }

    #[test]
    fn invalid_design_rejected() {
        let mut d = Design::new("bad");
        d.add_block("g", ComputeKind::and2());
        assert!(matches!(
            Simulator::new(&d),
            Err(SimError::InvalidDesign(_))
        ));
    }

    #[test]
    fn programmable_block_needs_program() {
        let mut d = Design::new("prog");
        let s = d.add_block("s", SensorKind::Button);
        let p = d.add_block("p", eblocks_core::ProgrammableSpec::new(1, 1));
        let o = d.add_block("led", OutputKind::Led);
        d.connect((s, 0), (p, 0)).unwrap();
        d.connect((p, 0), (o, 0)).unwrap();
        assert!(matches!(
            Simulator::new(&d),
            Err(SimError::MissingProgram { .. })
        ));

        let program = parse("on input { out0 = !in0; }").unwrap();
        let sim = Simulator::with_programs(&d, HashMap::from([(p, program)])).unwrap();
        let trace = sim.run(&Stimulus::new().set(10, "s", true), 50).unwrap();
        assert_eq!(trace.final_value("led"), Some(false));
    }

    #[test]
    fn bad_program_rejected_at_build() {
        let mut d = Design::new("prog2");
        let s = d.add_block("s", SensorKind::Button);
        let p = d.add_block("p", eblocks_core::ProgrammableSpec::new(1, 1));
        let o = d.add_block("led", OutputKind::Led);
        d.connect((s, 0), (p, 0)).unwrap();
        d.connect((p, 0), (o, 0)).unwrap();
        // References in5 on a 1-input block.
        let program = parse("on input { out0 = in5; }").unwrap();
        assert!(matches!(
            Simulator::with_programs(&d, HashMap::from([(p, program)])),
            Err(SimError::BadProgram { .. })
        ));
    }

    #[test]
    fn runs_are_repeatable() {
        let d = and_design();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new()
            .set(10, "a", true)
            .set(11, "b", true)
            .set(12, "a", false);
        let t1 = sim.run(&stim, 200).unwrap();
        let t2 = sim.run(&stim, 200).unwrap();
        assert_eq!(t1, t2);
    }
}
