//! The event-driven simulator core.
//!
//! # Execution model
//!
//! The simulator realizes the paper's §3.1 semantics — "behaviorally
//! correct and obeys general high-level timing, but no detailed timing
//! characteristics can be inferred" — as a *synchronous delta-cycle* model:
//!
//! * wires have **zero latency**; a value change propagates through the
//!   whole downstream cone within one instant, blocks evaluating in
//!   topological order,
//! * all packets reaching a block in the same instant are **coalesced**
//!   into one evaluation (a block sees the settled values of its inputs,
//!   never transient glitches from unequal-depth reconvergent paths),
//! * an output port transmits only when its value **changes** (the eBlocks
//!   packet protocol),
//! * time-driven blocks receive periodic `tick` events; only communication
//!   blocks add real latency (a radio/X10 hop is not instantaneous).
//!
//! Glitch-freedom matters for synthesis: a merged programmable block
//! evaluates its member trees in level order against latched inputs, which
//! is exactly this model. Under per-hop latencies instead, an edge-triggered
//! block (trip, toggle) could observe hazard pulses that depend on wire
//! lengths — behavior no merged program can reproduce and that the physical
//! human-scale system does not exhibit.
//!
//! # Event-ordering contract
//!
//! Every event is totally ordered by the conceptual key
//! `(time, stage, rank, sub, seq)`:
//!
//! * **time** — the simulation instant,
//! * **stage** — sensor changes (stage 0) apply before any block
//!   evaluation (stage 1) of the same instant; stage-0 entries tie-break
//!   on the sensor's block id,
//! * **rank** — the receiving block's topological rank, which makes the
//!   zero-latency cascade converge in a single sweep per instant,
//! * **sub** — within one block, its periodic `tick` (sub 0) runs before
//!   its packet deliveries (sub 1+port),
//! * **seq** — a monotone push counter keeps everything else FIFO; in
//!   particular, two packets on the same wire arrive in send order.
//!
//! At time zero every sensor announces its initial `false` before any
//! scripted t=0 stimulus value is applied (power-on announcement). The
//! golden-trace suite in `tests/event_ordering.rs` pins this contract.
//!
//! # Queue design
//!
//! The pending-event set is a two-level calendar rather than a global
//! binary heap (calendar queues amortize O(1) for exactly this regime of
//! many same-instant, short-horizon events):
//!
//! * **Level 1 — time.** Sensor events are fully known before the run
//!   starts and live in one sorted schedule walked by a cursor. Future
//!   block events (ticks, latent packets) go into a 64-slot timing wheel
//!   of 1-tick buckets; events beyond the wheel's horizon overflow into a
//!   `BTreeMap` keyed by instant. The next instant is the minimum of the
//!   sense cursor, a bounded wheel scan, and the overflow's first key.
//! * **Level 2 — one instant.** Opening an instant drains its bucket in
//!   send (`seq`) order, latching packet values straight into each
//!   receiver's dense input array and marking the receiver's rank pending.
//!   The instant is then settled by sweeping pending ranks in ascending
//!   order (a min-heap of ranks); zero-latency transmissions latch and
//!   mark strictly higher ranks, so the sweep visits every block at most
//!   once per instant and same-instant coalescing is a natural consequence
//!   of the latch-then-sweep split — not repeated heap peek/pop.
//!
//! All per-block state (machines, latched inputs, last-sent values,
//! transmission counters) is stored in flat `Vec`s indexed by a compact
//! block index computed once from topological order, so the hot path does
//! no hashing and no per-event allocation.

use crate::cosim::CapturedPacket;
use crate::error::SimError;
use crate::fault::{FaultPlan, ResolvedFaults};
use crate::stimulus::Stimulus;
use crate::trace::Trace;
use eblocks_behavior::{check, library, parse, Machine, Program, Value};
use eblocks_core::{BlockId, BlockKind, Design};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};

/// Simulation time, in abstract ticks. One tick is the period of `on tick`
/// events; eBlocks operate on human-scale timing, so finer resolution adds
/// nothing (§3.1).
pub type Time = u64;

/// A configured simulator for one design.
///
/// Construction compiles every block's behavior program ([`library`] for
/// pre-defined blocks, caller-supplied programs for programmable blocks)
/// and checks it against the block's arity. Each [`Simulator::run`] starts
/// from power-on state.
#[derive(Debug, Clone)]
pub struct Simulator {
    design: Design,
    programs: HashMap<BlockId, Program>,
    /// Extra latency of communication blocks (radio/X10 hop), in ticks.
    pub comm_latency: Time,
    /// Period of `on tick` events. Must be at least 1: a zero period would
    /// reschedule ticks at the same instant forever, so [`Simulator::run`]
    /// rejects it with [`SimError::InvalidTickPeriod`].
    pub tick_period: Time,
}

impl Simulator {
    /// Builds a simulator using the standard behavior library. Fails if the
    /// design contains programmable blocks (their programs are synthesis
    /// artifacts — use [`Simulator::with_programs`]).
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidDesign`] if validation fails,
    /// [`SimError::MissingProgram`] for unprogrammed programmable blocks.
    pub fn new(design: &Design) -> Result<Self, SimError> {
        Self::with_programs(design, HashMap::new())
    }

    /// Builds a simulator supplying behavior programs for programmable
    /// blocks (keyed by block id).
    ///
    /// # Errors
    ///
    /// As for [`Simulator::new`], plus [`SimError::BadProgram`] if a
    /// supplied program fails [`check`](fn@check) against the block's pin budget.
    pub fn with_programs(
        design: &Design,
        programs: HashMap<BlockId, Program>,
    ) -> Result<Self, SimError> {
        design.validate()?;
        let mut compiled: HashMap<BlockId, Program> = HashMap::new();
        for id in design.blocks() {
            let block = design.block(id).expect("iterated block");
            let program = match block.kind() {
                BlockKind::Compute(kind) => library::program_for(kind),
                BlockKind::Comm(_) => parse("on input { out0 = in0; }").expect("identity parses"),
                BlockKind::Programmable(_) => {
                    programs
                        .get(&id)
                        .cloned()
                        .ok_or_else(|| SimError::MissingProgram {
                            block: block.name().to_string(),
                        })?
                }
                BlockKind::Sensor(_) | BlockKind::Output(_) => continue,
            };
            let errors = check(&program, block.num_inputs(), block.num_outputs());
            if let Some(error) = errors.into_iter().next() {
                return Err(SimError::BadProgram {
                    block: block.name().to_string(),
                    error,
                });
            }
            compiled.insert(id, program);
        }
        Ok(Self {
            design: design.clone(),
            programs: compiled,
            comm_latency: 3,
            tick_period: 1,
        })
    }

    /// Runs the stimulus script until `until`, returning the packet history
    /// of every output block.
    ///
    /// The run starts from power-on: every line low, every sensor `false`
    /// and announcing its initial value, every state variable at its
    /// initializer.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidTickPeriod`] if [`tick_period`](Self::tick_period)
    /// is zero, [`SimError::UnknownSensor`] for unresolvable stimulus
    /// entries, [`SimError::Eval`] / [`SimError::NonBooleanPacket`] for
    /// faulting behavior programs.
    pub fn run(&self, stimulus: &Stimulus, until: Time) -> Result<Trace, SimError> {
        self.run_with_faults(stimulus, until, &FaultPlan::new())
    }

    /// The design this simulator was built for.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// [`run`](Self::run) with injected faults (see [`crate::fault`]):
    /// stuck sensors, dropped packets, delayed packets.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run).
    pub fn run_with_faults(
        &self,
        stimulus: &Stimulus,
        until: Time,
        plan: &FaultPlan,
    ) -> Result<Trace, SimError> {
        let mut runner = Runner::new(self, plan)?;
        runner.load_stimulus(stimulus)?;
        runner.run(until)?;
        Ok(runner.into_trace())
    }
}

/// Compact block indexing: dense index == topological rank.
///
/// Computed once per [`Runner`]; every per-block table in the engine is a
/// flat `Vec` indexed by it, and the stage-1 sweep order *is* the index
/// order.
pub(crate) struct BlockIndex {
    /// Dense index (topo rank) → block id.
    ids: Vec<BlockId>,
    /// Raw graph index → dense index (`usize::MAX` marks gaps).
    dense_of_raw: Vec<usize>,
}

impl BlockIndex {
    fn new(design: &Design) -> Self {
        let ids = design.topo_order();
        let max_raw = ids.iter().map(|b| b.index()).max().map_or(0, |m| m + 1);
        let mut dense_of_raw = vec![usize::MAX; max_raw];
        for (dense, id) in ids.iter().enumerate() {
            dense_of_raw[id.index()] = dense;
        }
        Self { ids, dense_of_raw }
    }

    pub(crate) fn num_blocks(&self) -> usize {
        self.ids.len()
    }

    /// The dense index of `id`, or `None` if the block is not in the design.
    pub(crate) fn dense_of(&self, id: BlockId) -> Option<usize> {
        self.dense_of_raw
            .get(id.index())
            .copied()
            .filter(|&d| d != usize::MAX)
    }
}

/// Number of 1-tick buckets in the timing wheel. Power of two; comfortably
/// covers the default comm latency (3) and tick period (1), so overflow is
/// only touched by long delay faults or coarse tick periods.
const WHEEL_SLOTS: usize = 64;

/// A future event scheduled on the calendar (stage-1 only: sensor changes
/// live in the pre-sorted sense schedule instead).
#[derive(Debug, Clone, Copy)]
enum Queued {
    /// A periodic tick for a time-driven block.
    Tick { seq: u64, block: usize },
    /// A packet arriving at an input port.
    Deliver {
        seq: u64,
        to: usize,
        port: u8,
        value: bool,
    },
}

impl Queued {
    fn seq(self) -> u64 {
        match self {
            Queued::Tick { seq, .. } | Queued::Deliver { seq, .. } => seq,
        }
    }
}

/// Level 1 of the queue: a timing wheel of 1-tick buckets plus a sorted
/// overflow for events beyond the wheel's horizon.
///
/// Invariant: every wheel entry's instant `t` satisfies `cur < t < cur + W`
/// (events are only inserted with `t - cur < W`, and `cur` never decreases),
/// so a slot can never hold two different instants at once and draining a
/// slot needs no epoch check.
#[derive(Debug)]
struct Calendar {
    wheel: Vec<Vec<Queued>>,
    wheel_count: usize,
    overflow: BTreeMap<Time, Vec<Queued>>,
    cur: Time,
}

impl Calendar {
    fn new() -> Self {
        Self {
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            wheel_count: 0,
            overflow: BTreeMap::new(),
            cur: 0,
        }
    }

    fn reset(&mut self) {
        for slot in &mut self.wheel {
            slot.clear();
        }
        self.wheel_count = 0;
        self.overflow.clear();
        self.cur = 0;
    }

    fn schedule(&mut self, t: Time, ev: Queued) {
        debug_assert!(t > self.cur, "calendar events are strictly future");
        if t - self.cur < WHEEL_SLOTS as Time {
            self.wheel[(t as usize) & (WHEEL_SLOTS - 1)].push(ev);
            self.wheel_count += 1;
        } else {
            self.overflow.entry(t).or_default().push(ev);
        }
    }

    /// The earliest scheduled instant, if any.
    fn next_time(&self) -> Option<Time> {
        let mut best: Option<Time> = None;
        if self.wheel_count > 0 {
            for off in 1..WHEEL_SLOTS as Time {
                let Some(t) = self.cur.checked_add(off) else {
                    break;
                };
                if !self.wheel[(t as usize) & (WHEEL_SLOTS - 1)].is_empty() {
                    best = Some(t);
                    break;
                }
            }
        }
        match (best, self.overflow.keys().next().copied()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Advances the clock to `t` and drains every event scheduled there
    /// (wheel slot and overflow bucket) into `out`.
    fn advance(&mut self, t: Time, out: &mut Vec<Queued>) {
        debug_assert!(t >= self.cur);
        self.cur = t;
        let slot = &mut self.wheel[(t as usize) & (WHEEL_SLOTS - 1)];
        self.wheel_count -= slot.len();
        out.append(slot);
        if let Some(late) = self.overflow.remove(&t) {
            out.extend(late);
        }
    }
}

/// A sensor change, fully known before the run starts (power-on
/// announcements plus the stimulus script).
#[derive(Debug, Clone, Copy)]
struct SenseEv {
    t: Time,
    /// Raw block index — the stage-0 tie-break (before `seq`).
    raw: usize,
    seq: u64,
    dense: usize,
    value: bool,
}

/// Static per-block layout, computed once per runner.
#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    /// Start of this block's latched inputs in the flat `inputs` array.
    in_offset: usize,
    /// Number of input ports.
    in_len: usize,
    /// Start of this block's output slots in `last_sent` / `sinks`.
    out_offset: usize,
    /// Whether this is a primary-output block (records packets, never
    /// evaluates).
    is_output: bool,
    /// Base transmission latency (`comm_latency` for communication blocks).
    latency: Time,
}

/// One wire endpoint, pre-resolved to dense indices.
#[derive(Debug, Clone, Copy)]
struct Sink {
    to: usize,
    port: u8,
}

/// The reusable simulation engine for one [`Simulator`].
///
/// Construction builds every static table (index, port layout, sink lists,
/// compiled machines); [`reset`](Runner::reset) rewinds to power-on state
/// without reallocating, so Monte-Carlo harnesses can run many trials on
/// one arena. Contract per trial: `reset` → `load_stimulus` → `run` once →
/// read [`trace`](Runner::trace).
pub(crate) struct Runner<'a> {
    sim: &'a Simulator,
    index: BlockIndex,
    names: Vec<&'a str>,
    meta: Vec<BlockMeta>,
    /// Sink lists, indexed by output slot (`meta.out_offset + port`).
    sinks: Vec<Vec<Sink>>,
    machines: Vec<Option<Machine>>,
    /// Dense indices of tick-driven blocks, in block-id order.
    tick_blocks: Vec<usize>,
    /// `(dense, raw)` of every sensor, in raw-id order (power-on order).
    sensors: Vec<(usize, usize)>,
    output_names: Vec<String>,
    total_inputs: usize,
    /// The resolved stimulus script, sorted by `(t, raw, insertion order)`
    /// with `seq` holding the insertion order. Cached so `reset` can
    /// re-weave it into the schedule without re-resolving names or
    /// re-sorting (Monte-Carlo sweeps run the same script every trial).
    stim_cache: Vec<SenseEv>,
    /// First seq available to stimulus entries (power-on announcements and
    /// initial ticks come first); fixed by `reset`.
    stim_seq_base: u64,
    // --- per-run state, rewound by `reset` ---
    faults: ResolvedFaults,
    inputs: Vec<Value>,
    last_sent: Vec<Option<bool>>,
    sensor_values: Vec<bool>,
    tx_counts: Vec<u64>,
    sense_schedule: Vec<SenseEv>,
    sense_cursor: usize,
    calendar: Calendar,
    /// Scratch for draining one instant's calendar bucket.
    drain: Vec<Queued>,
    /// Ranks with pending work in the instant being settled.
    pending: BinaryHeap<Reverse<usize>>,
    in_sweep: Vec<bool>,
    tick_now: Vec<bool>,
    eval_now: Vec<bool>,
    /// Per output block: packets received this instant, `(port, seq, value)`.
    out_now: Vec<Vec<(u8, u64, bool)>>,
    seq: u64,
    trace: Trace,
    // --- co-simulation bridging (see `crate::cosim`) ---
    /// Per output slot: the tap observing that slot's transmissions, if
    /// any. Static wiring like `stim_cache` — registrations survive
    /// [`reset`](Runner::reset).
    taps: Vec<Option<u32>>,
    next_tap: u32,
    /// Transmissions captured at tapped slots since the last drain, in
    /// emission order.
    captured: Vec<CapturedPacket>,
    /// Network-injected sensor events, applied at their instant *after*
    /// any scripted stimulus of the same instant, in insertion order.
    injected: VecDeque<(Time, usize, bool)>,
}

impl<'a> Runner<'a> {
    /// Builds the engine's static tables and resets to power-on state with
    /// `plan`'s faults applied.
    pub(crate) fn new(sim: &'a Simulator, plan: &FaultPlan) -> Result<Self, SimError> {
        if sim.tick_period == 0 {
            return Err(SimError::InvalidTickPeriod);
        }
        let design = &sim.design;
        let index = BlockIndex::new(design);
        let n = index.num_blocks();

        let mut names = Vec::with_capacity(n);
        let mut meta = Vec::with_capacity(n);
        let mut machines = Vec::with_capacity(n);
        let mut sinks: Vec<Vec<Sink>> = Vec::new();
        let mut total_inputs = 0usize;
        for &id in &index.ids {
            let block = design.block(id).expect("indexed block");
            meta.push(BlockMeta {
                in_offset: total_inputs,
                in_len: block.num_inputs() as usize,
                out_offset: sinks.len(),
                is_output: matches!(block.kind(), BlockKind::Output(_)),
                latency: match block.kind() {
                    BlockKind::Comm(_) => sim.comm_latency,
                    _ => 0,
                },
            });
            total_inputs += block.num_inputs() as usize;
            for port in 0..block.num_outputs() {
                sinks.push(
                    design
                        .sinks_of(id, port)
                        .map(|w| Sink {
                            to: index.dense_of(w.to).expect("sink block is in the design"),
                            port: w.to_port,
                        })
                        .collect(),
                );
            }
            names.push(block.name());
            machines.push(sim.programs.get(&id).map(Machine::new));
        }

        let mut tick_ids: Vec<BlockId> = design
            .blocks()
            .filter(|id| sim.programs.get(id).is_some_and(Program::uses_tick))
            .collect();
        tick_ids.sort();
        let tick_blocks = tick_ids
            .into_iter()
            .map(|id| index.dense_of(id).expect("tick block is in the design"))
            .collect();

        let sensors = design
            .sensors()
            .map(|id| {
                (
                    index.dense_of(id).expect("sensor is in the design"),
                    id.index(),
                )
            })
            .collect();
        let output_names = design
            .outputs()
            .map(|o| design.block(o).expect("output block").name().to_string())
            .collect();

        let num_slots = sinks.len();
        let mut runner = Self {
            sim,
            index,
            names,
            meta,
            sinks,
            machines,
            tick_blocks,
            sensors,
            output_names,
            total_inputs,
            stim_cache: Vec::new(),
            stim_seq_base: 0,
            faults: ResolvedFaults::default(),
            inputs: Vec::with_capacity(total_inputs),
            last_sent: Vec::with_capacity(num_slots),
            sensor_values: Vec::with_capacity(n),
            tx_counts: Vec::with_capacity(n),
            sense_schedule: Vec::new(),
            sense_cursor: 0,
            calendar: Calendar::new(),
            drain: Vec::new(),
            pending: BinaryHeap::new(),
            in_sweep: Vec::with_capacity(n),
            tick_now: Vec::with_capacity(n),
            eval_now: Vec::with_capacity(n),
            out_now: vec![Vec::new(); n],
            seq: 0,
            trace: Trace::default(),
            taps: vec![None; num_slots],
            next_tap: 0,
            captured: Vec::new(),
            injected: VecDeque::new(),
        };
        runner.reset(plan);
        Ok(runner)
    }

    /// Rewinds to power-on state with `plan`'s faults applied, keeping
    /// every allocation (tables, machine arenas, queue buckets) and the
    /// loaded stimulus — a previously [`load_stimulus`](Runner::load_stimulus)ed
    /// script is re-applied without re-resolving it.
    pub(crate) fn reset(&mut self, plan: &FaultPlan) {
        let n = self.index.num_blocks();
        self.faults = plan.resolve(&self.sim.design, &self.index);
        self.inputs.clear();
        self.inputs.resize(self.total_inputs, Value::Bool(false));
        self.last_sent.clear();
        self.last_sent.resize(self.sinks.len(), None);
        self.sensor_values.clear();
        self.sensor_values.resize(n, false);
        self.tx_counts.clear();
        self.tx_counts.resize(n, 0);
        for machine in self.machines.iter_mut().flatten() {
            machine.reset();
        }
        self.sense_schedule.clear();
        self.sense_cursor = 0;
        self.calendar.reset();
        self.drain.clear();
        self.pending.clear();
        self.in_sweep.clear();
        self.in_sweep.resize(n, false);
        self.tick_now.clear();
        self.tick_now.resize(n, false);
        self.eval_now.clear();
        self.eval_now.resize(n, false);
        for slot in &mut self.out_now {
            slot.clear();
        }
        self.seq = 0;
        self.trace = Trace::with_outputs(self.output_names.iter().cloned());
        self.captured.clear();
        self.injected.clear();

        // Power-on announcements take seqs 0..sensors (they are generated
        // inside `weave_stimulus`); the first tick of each time-driven
        // block comes next, in id order (determinism).
        self.seq = self.sensors.len() as u64;
        for &block in &self.tick_blocks {
            let seq = self.seq;
            self.seq += 1;
            self.calendar
                .schedule(self.sim.tick_period, Queued::Tick { seq, block });
        }
        self.stim_seq_base = self.seq;
        self.weave_stimulus();
    }

    /// Resolves, sorts, and schedules the stimulus script, replacing any
    /// previously loaded one. Resolution and the sort happen once, here;
    /// later [`reset`](Runner::reset)s reuse the cached result.
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownSensor`] for entries that name no primary input.
    pub(crate) fn load_stimulus(&mut self, stimulus: &Stimulus) -> Result<(), SimError> {
        let design = &self.sim.design;
        self.stim_cache.clear();
        for (ord, (t, name, value)) in stimulus.events().iter().enumerate() {
            let id = design
                .block_by_name(name)
                .filter(|&b| {
                    design
                        .block(b)
                        .is_some_and(|blk| blk.kind().is_primary_input())
                })
                .ok_or_else(|| SimError::UnknownSensor { name: name.clone() })?;
            self.stim_cache.push(SenseEv {
                t: *t,
                raw: id.index(),
                seq: ord as u64,
                dense: self.index.dense_of(id).expect("resolved block"),
                value: *value,
            });
        }
        self.stim_cache
            .sort_unstable_by_key(|e| (e.t, e.raw, e.seq));
        self.weave_stimulus();
        Ok(())
    }

    /// Rebuilds the sense schedule: the power-on announcements (every
    /// sensor goes low at t=0, in raw-id order, seqs 0..sensors) merged
    /// with the cached stimulus (seqs `stim_seq_base` + insertion order).
    /// This reproduces the old per-event heap keys exactly — the schedule
    /// is ordered by `(t, raw, seq)`, and a power-on entry wins a
    /// `(t, raw)` tie against a scripted t=0 value by its lower seq.
    fn weave_stimulus(&mut self) {
        self.sense_cursor = 0;
        self.seq = self.stim_seq_base + self.stim_cache.len() as u64;
        self.sense_schedule.clear();
        let power_on = |k: usize, &(dense, raw): &(usize, usize)| SenseEv {
            t: 0,
            raw,
            seq: k as u64,
            dense,
            value: false,
        };
        let (mut i, mut j) = (0, 0);
        while i < self.sensors.len() && j < self.stim_cache.len() {
            let p = power_on(i, &self.sensors[i]);
            let s = self.stim_cache[j];
            if (p.t, p.raw) <= (s.t, s.raw) {
                self.sense_schedule.push(p);
                i += 1;
            } else {
                self.sense_schedule.push(SenseEv {
                    seq: self.stim_seq_base + s.seq,
                    ..s
                });
                j += 1;
            }
        }
        while i < self.sensors.len() {
            self.sense_schedule.push(power_on(i, &self.sensors[i]));
            i += 1;
        }
        for s in &self.stim_cache[j..] {
            self.sense_schedule.push(SenseEv {
                seq: self.stim_seq_base + s.seq,
                ..*s
            });
        }
    }

    /// Runs until `until` (inclusive) and folds the transmission counters
    /// into the trace.
    pub(crate) fn run(&mut self, until: Time) -> Result<(), SimError> {
        while let Some(t) = self.next_event_time() {
            if t > until {
                break;
            }
            self.process_instant(t, until)?;
        }
        self.finalize_counts();
        Ok(())
    }

    /// The earliest instant with pending work — a scripted sense event, a
    /// calendar event, or a network-injected sense event.
    pub(crate) fn next_event_time(&self) -> Option<Time> {
        let sense = self.sense_schedule.get(self.sense_cursor).map(|e| e.t);
        let injected = self.injected.front().map(|&(t, _, _)| t);
        [sense, self.calendar.next_time(), injected]
            .into_iter()
            .flatten()
            .min()
    }

    /// Folds the transmission counters into the trace. Once per run:
    /// [`run`](Runner::run) does it itself; co-simulation drivers call it
    /// when the fleet clock stops.
    pub(crate) fn finalize_counts(&mut self) {
        for (name, &count) in self.names.iter().zip(&self.tx_counts) {
            if count > 0 {
                self.trace.count_transmissions(name, count);
            }
        }
    }

    /// The trace recorded by the last [`run`](Runner::run).
    pub(crate) fn trace(&self) -> &Trace {
        &self.trace
    }

    pub(crate) fn into_trace(self) -> Trace {
        self.trace
    }

    // --- co-simulation hooks (used by `crate::cosim::NodeRunner`) ---

    /// The dense index of `id`, if the block is in the design.
    pub(crate) fn dense_of_id(&self, id: BlockId) -> Option<usize> {
        self.index.dense_of(id)
    }

    /// Registers a tap on output slot `(dense, port)`. Idempotent: tapping
    /// the same slot twice returns the same id.
    pub(crate) fn register_tap(&mut self, dense: usize, port: u8) -> u32 {
        let slot = self.meta[dense].out_offset + port as usize;
        if let Some(id) = self.taps[slot] {
            return id;
        }
        let id = self.next_tap;
        self.next_tap += 1;
        self.taps[slot] = Some(id);
        id
    }

    /// Queues a network-injected sensor change at `t`. Injections apply
    /// after any scripted stimulus of the same instant, in insertion order;
    /// callers must enqueue with non-decreasing `t`.
    pub(crate) fn inject_sense(&mut self, t: Time, dense: usize, value: bool) {
        debug_assert!(
            self.injected.back().is_none_or(|&(back, _, _)| back <= t),
            "injections must be enqueued in time order"
        );
        self.injected.push_back((t, dense, value));
    }

    /// Settles exactly the instant `t` (a co-simulation step). `horizon`
    /// bounds tick rescheduling the same way `run`'s `until` does.
    pub(crate) fn step_at(&mut self, t: Time, horizon: Time) -> Result<(), SimError> {
        self.process_instant(t, horizon)
    }

    /// Moves tap captures accumulated since the last drain into `out`, in
    /// emission order.
    pub(crate) fn drain_captured(&mut self, out: &mut Vec<CapturedPacket>) {
        out.append(&mut self.captured);
    }

    /// Settles one instant: open its calendar bucket, apply its sensor
    /// changes, then sweep pending ranks in topological order.
    fn process_instant(&mut self, t: Time, until: Time) -> Result<(), SimError> {
        // Open the instant's bucket. Arrivals are applied in send (`seq`)
        // order so that a packet sent earlier on the same wire latches
        // first — every packet generated *during* this instant necessarily
        // carries a higher seq, so latching arrivals up front preserves
        // the global FIFO contract.
        let mut drain = std::mem::take(&mut self.drain);
        self.calendar.advance(t, &mut drain);
        drain.sort_unstable_by_key(|ev| ev.seq());
        for &ev in &drain {
            match ev {
                Queued::Tick { block, .. } => {
                    self.tick_now[block] = true;
                    self.mark_pending(block);
                }
                Queued::Deliver {
                    seq,
                    to,
                    port,
                    value,
                } => self.latch(to, port, value, seq),
            }
        }
        drain.clear();
        self.drain = drain;

        // Stage 0: sensor changes, ordered by (block id, push order).
        while let Some(&ev) = self.sense_schedule.get(self.sense_cursor) {
            if ev.t != t {
                break;
            }
            self.sense_cursor += 1;
            self.apply_sense(ev.dense, ev.value, t);
        }
        // Network-injected sense events apply after the scripted stimulus
        // of the same instant, in the order the fleet engine delivered
        // them (its ordering contract, not this node's).
        while let Some(&(when, dense, value)) = self.injected.front() {
            debug_assert!(when >= t, "injections must not arrive in the past");
            if when != t {
                break;
            }
            self.injected.pop_front();
            self.apply_sense(dense, value, t);
        }

        // Stage 1: sweep pending ranks in ascending order. Zero-latency
        // transmissions only ever mark strictly higher ranks (wires point
        // downstream in the DAG), so each block settles at most once.
        while let Some(Reverse(block)) = self.pending.pop() {
            self.in_sweep[block] = false;
            if self.tick_now[block] {
                self.tick_now[block] = false;
                let outs = self.machines[block]
                    .as_mut()
                    .expect("ticked blocks have machines")
                    .on_tick()
                    .map_err(|error| self.eval_error(block, error))?;
                self.emit(block, outs, t)?;
                // Reschedule; a period that would overflow Time never fires
                // again (instead of panicking near Time::MAX).
                if let Some(next) = crate::time::after(t, self.sim.tick_period) {
                    if next <= until {
                        let seq = self.seq;
                        self.seq += 1;
                        self.calendar.schedule(next, Queued::Tick { seq, block });
                    }
                }
            }
            if self.meta[block].is_output {
                let mut records = std::mem::take(&mut self.out_now[block]);
                records.sort_unstable_by_key(|&(port, seq, _)| (port, seq));
                for &(_, _, value) in &records {
                    self.trace.record(self.names[block], t, value);
                }
                records.clear();
                self.out_now[block] = records;
            } else if self.eval_now[block] {
                self.eval_now[block] = false;
                let m = self.meta[block];
                let outs = self.machines[block]
                    .as_mut()
                    .expect("non-output blocks have machines")
                    .on_input(&self.inputs[m.in_offset..m.in_offset + m.in_len])
                    .map_err(|error| self.eval_error(block, error))?;
                self.emit(block, outs, t)?;
            }
        }
        Ok(())
    }

    /// Applies one sensor change (scripted or injected): a stuck fault
    /// overrides the environment, and the change-or-first-announcement
    /// rule decides whether a packet goes out.
    fn apply_sense(&mut self, dense: usize, value: bool, t: Time) {
        // A stuck sensor reports its stuck value regardless of what the
        // environment does.
        let value = self.faults.stuck_value(dense).unwrap_or(value);
        let announced = self.last_sent[self.meta[dense].out_offset].is_some();
        if self.sensor_values[dense] != value || !announced {
            self.sensor_values[dense] = value;
            self.transmit(dense, 0, value, t);
        }
    }

    /// Applies one arriving packet: latch the value (or queue it for
    /// recording, for output blocks) and mark the receiver pending.
    fn latch(&mut self, to: usize, port: u8, value: bool, seq: u64) {
        let m = self.meta[to];
        if m.is_output {
            self.out_now[to].push((port, seq, value));
        } else {
            self.inputs[m.in_offset + port as usize] = Value::Bool(value);
            self.eval_now[to] = true;
        }
        self.mark_pending(to);
    }

    fn mark_pending(&mut self, block: usize) {
        if !self.in_sweep[block] {
            self.in_sweep[block] = true;
            self.pending.push(Reverse(block));
        }
    }

    fn eval_error(&self, block: usize, error: eblocks_behavior::EvalError) -> SimError {
        SimError::Eval {
            block: self.names[block].to_string(),
            error,
        }
    }

    /// Sends the handler's written outputs, applying change detection, in
    /// deterministic port order. Output maps are tiny, so a min-scan per
    /// port beats building a sorted vector.
    fn emit(&mut self, from: usize, outs: HashMap<u8, Value>, t: Time) -> Result<(), SimError> {
        let mut last: i32 = -1;
        loop {
            let mut best: Option<(u8, Value)> = None;
            for (&port, &value) in &outs {
                if i32::from(port) > last && best.is_none_or(|(b, _)| port < b) {
                    best = Some((port, value));
                }
            }
            let Some((port, value)) = best else {
                return Ok(());
            };
            last = i32::from(port);
            let Value::Bool(bit) = value else {
                return Err(SimError::NonBooleanPacket {
                    block: self.names[from].to_string(),
                    port,
                });
            };
            self.transmit(from, port, bit, t);
        }
    }

    /// Transmits `value` on `(from, port)` if it differs from the last
    /// transmitted value (or nothing was ever sent). Wires are instant;
    /// communication blocks add `comm_latency`.
    fn transmit(&mut self, from: usize, port: u8, value: bool, t: Time) {
        let m = self.meta[from];
        let slot = m.out_offset + port as usize;
        if self.last_sent[slot] == Some(value) {
            return;
        }
        self.last_sent[slot] = Some(value);
        // Energy accounting: the sender spends a transmission per driven
        // wire whether or not a fault loses the packet in flight.
        self.tx_counts[from] += self.sinks[slot].len() as u64;
        // Co-simulation taps observe the packet exactly where the port
        // drives the wire: after change detection (the eBlocks protocol),
        // before any injected local fault decides its in-flight fate —
        // link-level loss belongs to the network layer, not the node.
        if let Some(tap) = self.taps[slot] {
            self.captured.push(CapturedPacket {
                time: t,
                tap,
                value,
            });
        }
        // Injected sender faults: the packet counts as sent (no ack in the
        // eBlocks protocol, so change detection above stands) but may be
        // lost or late in flight.
        let Some(extra) = self.faults.send_fate(from, t) else {
            return;
        };
        let latency = crate::time::clamp_after(extra, m.latency);
        let sinks = std::mem::take(&mut self.sinks);
        if latency == 0 {
            for &sink in &sinks[slot] {
                let seq = self.seq;
                self.seq += 1;
                self.latch(sink.to, sink.port, value, seq);
            }
        } else if let Some(arrival) = crate::time::after(t, latency) {
            for &sink in &sinks[slot] {
                let seq = self.seq;
                self.seq += 1;
                self.calendar.schedule(
                    arrival,
                    Queued::Deliver {
                        seq,
                        to: sink.to,
                        port: sink.port,
                        value,
                    },
                );
            }
        }
        // (A delay pushing arrival past the end of time drops the packet —
        // it could never be processed anyway.)
        self.sinks = sinks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{ComputeKind, OutputKind, SensorKind};

    fn and_design() -> Design {
        let mut d = Design::new("and");
        let a = d.add_block("a", SensorKind::Button);
        let b = d.add_block("b", SensorKind::Motion);
        let g = d.add_block("g", ComputeKind::and2());
        let o = d.add_block("led", OutputKind::Led);
        d.connect((a, 0), (g, 0)).unwrap();
        d.connect((b, 0), (g, 1)).unwrap();
        d.connect((g, 0), (o, 0)).unwrap();
        d
    }

    #[test]
    fn and_gate_tracks_inputs() {
        let d = and_design();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new()
            .set(10, "a", true)
            .set(20, "b", true)
            .set(30, "a", false);
        let trace = sim.run(&stim, 100).unwrap();
        assert_eq!(trace.value_at("led", 15), Some(false), "only a high");
        assert_eq!(trace.value_at("led", 25), Some(true), "both high");
        assert_eq!(trace.final_value("led"), Some(false), "a dropped");
    }

    #[test]
    fn initial_state_propagates() {
        let d = and_design();
        let sim = Simulator::new(&d).unwrap();
        let trace = sim.run(&Stimulus::new(), 50).unwrap();
        // Power-on false propagates to the LED instantly, with no stimulus.
        assert_eq!(trace.history("led"), &[(0, false)]);
    }

    #[test]
    fn change_detection_suppresses_duplicates() {
        let d = and_design();
        let sim = Simulator::new(&d).unwrap();
        // Setting `a` true repeatedly must not generate extra packets.
        let stim = Stimulus::new()
            .set(10, "a", true)
            .set(12, "a", true)
            .set(14, "a", true);
        let trace = sim.run(&stim, 100).unwrap();
        // LED sees exactly one packet: the initial false. (a=1, b=0 keeps
        // the AND at false, suppressed by change detection.)
        assert_eq!(trace.history("led").len(), 1);
    }

    #[test]
    fn simultaneous_input_changes_coalesce() {
        // Both AND inputs rise in the same instant: the gate must evaluate
        // once with both new values, not glitch through (true, old-false).
        let d = and_design();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(10, "a", true).set(10, "b", true);
        let trace = sim.run(&stim, 50).unwrap();
        assert_eq!(trace.history("led"), &[(0, false), (10, true)]);
    }

    #[test]
    fn glitch_free_reconvergence() {
        // s -> sp -> (direct, not) -> xor: the settled XOR of a signal and
        // its negation is constant true; a hazard model would emit a
        // transient. The delta-cycle model must show no glitch packets.
        let mut d = Design::new("haz");
        let s = d.add_block("s", SensorKind::Button);
        let sp = d.add_block("sp", ComputeKind::Splitter);
        let n = d.add_block("n", ComputeKind::Not);
        let x = d.add_block("x", ComputeKind::xor2());
        let o = d.add_block("led", OutputKind::Led);
        d.connect((s, 0), (sp, 0)).unwrap();
        d.connect((sp, 0), (n, 0)).unwrap();
        d.connect((sp, 1), (x, 0)).unwrap();
        d.connect((n, 0), (x, 1)).unwrap();
        d.connect((x, 0), (o, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(10, "s", true).set(20, "s", false);
        let trace = sim.run(&stim, 60).unwrap();
        assert_eq!(
            trace.history("led"),
            &[(0, true)],
            "xor(v, !v) never changes"
        );
    }

    #[test]
    fn toggle_flips_per_press() {
        let mut d = Design::new("t");
        let b = d.add_block("btn", SensorKind::Button);
        let t = d.add_block("tog", ComputeKind::Toggle);
        let o = d.add_block("led", OutputKind::Led);
        d.connect((b, 0), (t, 0)).unwrap();
        d.connect((t, 0), (o, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new()
            .pulse(10, 5, "btn")
            .pulse(30, 5, "btn")
            .pulse(50, 5, "btn");
        let trace = sim.run(&stim, 100).unwrap();
        assert_eq!(trace.value_at("led", 20), Some(true));
        assert_eq!(trace.value_at("led", 40), Some(false));
        assert_eq!(trace.final_value("led"), Some(true));
    }

    #[test]
    fn pulse_gen_expires() {
        let mut d = Design::new("p");
        let b = d.add_block("btn", SensorKind::Button);
        let p = d.add_block("pg", ComputeKind::PulseGen { ticks: 5 });
        let o = d.add_block("led", OutputKind::Led);
        d.connect((b, 0), (p, 0)).unwrap();
        d.connect((p, 0), (o, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(10, "btn", true);
        let trace = sim.run(&stim, 100).unwrap();
        assert_eq!(trace.value_at("led", 12), Some(true), "pulse active");
        assert_eq!(trace.final_value("led"), Some(false), "pulse expired");
        // Rise at 10 (instant wire), fall 5 ticks later.
        assert_eq!(trace.history("led"), &[(0, false), (10, true), (15, false)]);
    }

    #[test]
    fn garage_open_at_night() {
        // The paper's flagship example: door open AND dark -> LED.
        let mut d = Design::new("garage");
        let door = d.add_block("door", SensorKind::ContactSwitch);
        let light = d.add_block("light", SensorKind::Light);
        let inv = d.add_block("inv", ComputeKind::Not);
        let both = d.add_block("both", ComputeKind::and2());
        let led = d.add_block("led", OutputKind::Led);
        d.connect((door, 0), (both, 0)).unwrap();
        d.connect((light, 0), (inv, 0)).unwrap();
        d.connect((inv, 0), (both, 1)).unwrap();
        d.connect((both, 0), (led, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();

        let stim = Stimulus::new()
            .set(5, "light", true)
            .set(20, "door", true)
            .set(40, "light", false)
            .set(60, "door", false);
        let trace = sim.run(&stim, 120).unwrap();
        assert_eq!(trace.value_at("led", 30), Some(false), "daytime");
        assert_eq!(trace.value_at("led", 50), Some(true), "open at night");
        assert_eq!(trace.final_value("led"), Some(false), "closed");
    }

    #[test]
    fn comm_block_relays_with_latency() {
        let mut d = Design::new("radio");
        let b = d.add_block("btn", SensorKind::Button);
        let tx = d.add_block("tx", eblocks_core::CommKind::WirelessTx);
        let o = d.add_block("led", OutputKind::Led);
        d.connect((b, 0), (tx, 0)).unwrap();
        d.connect((tx, 0), (o, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        let trace = sim.run(&Stimulus::new().set(10, "btn", true), 50).unwrap();
        assert_eq!(trace.final_value("led"), Some(true));
        let rise = trace
            .history("led")
            .iter()
            .find(|&&(_, v)| v)
            .map(|&(t, _)| t)
            .unwrap();
        // Wires are instant; the radio hop costs comm_latency.
        assert_eq!(rise, 10 + sim.comm_latency);
    }

    #[test]
    fn comm_latency_beyond_wheel_window() {
        // A latency past the timing wheel's horizon exercises the overflow
        // calendar: arrival time must still be exact.
        let mut d = Design::new("slow-radio");
        let b = d.add_block("btn", SensorKind::Button);
        let tx = d.add_block("tx", eblocks_core::CommKind::WirelessTx);
        let o = d.add_block("led", OutputKind::Led);
        d.connect((b, 0), (tx, 0)).unwrap();
        d.connect((tx, 0), (o, 0)).unwrap();
        let mut sim = Simulator::new(&d).unwrap();
        sim.comm_latency = 500;
        let trace = sim.run(&Stimulus::new().set(10, "btn", true), 600).unwrap();
        assert_eq!(trace.history("led"), &[(500, false), (510, true)]);
    }

    #[test]
    fn zero_tick_period_rejected() {
        // Regression: a zero tick period used to reschedule the tick at the
        // same instant forever, hanging `run`. It is now rejected up front.
        let mut d = Design::new("z");
        let b = d.add_block("btn", SensorKind::Button);
        let p = d.add_block("pg", ComputeKind::PulseGen { ticks: 2 });
        let o = d.add_block("led", OutputKind::Led);
        d.connect((b, 0), (p, 0)).unwrap();
        d.connect((p, 0), (o, 0)).unwrap();
        let mut sim = Simulator::new(&d).unwrap();
        sim.tick_period = 0;
        let err = sim.run(&Stimulus::new(), 100).unwrap_err();
        assert!(matches!(err, SimError::InvalidTickPeriod));
        // Even tick-free designs reject the invalid configuration.
        let mut plain = Simulator::new(&and_design()).unwrap();
        plain.tick_period = 0;
        assert!(matches!(
            plain.run(&Stimulus::new(), 10),
            Err(SimError::InvalidTickPeriod)
        ));
    }

    #[test]
    fn tick_near_end_of_time_terminates() {
        // Regression: rescheduling a tick at t + period used to overflow
        // near Time::MAX; the checked reschedule simply stops ticking.
        let mut d = Design::new("eot");
        let b = d.add_block("btn", SensorKind::Button);
        let p = d.add_block("pg", ComputeKind::PulseGen { ticks: 1 });
        let o = d.add_block("led", OutputKind::Led);
        d.connect((b, 0), (p, 0)).unwrap();
        d.connect((p, 0), (o, 0)).unwrap();
        let mut sim = Simulator::new(&d).unwrap();
        sim.tick_period = Time::MAX;
        let trace = sim.run(&Stimulus::new(), Time::MAX).unwrap();
        assert_eq!(trace.final_value("led"), Some(false));
    }

    #[test]
    fn unknown_sensor_rejected() {
        let d = and_design();
        let sim = Simulator::new(&d).unwrap();
        let err = sim
            .run(&Stimulus::new().set(5, "ghost", true), 10)
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownSensor { .. }));
        // Driving a non-sensor block is also rejected.
        let err = sim.run(&Stimulus::new().set(5, "g", true), 10).unwrap_err();
        assert!(matches!(err, SimError::UnknownSensor { .. }));
    }

    #[test]
    fn invalid_design_rejected() {
        let mut d = Design::new("bad");
        d.add_block("g", ComputeKind::and2());
        assert!(matches!(
            Simulator::new(&d),
            Err(SimError::InvalidDesign(_))
        ));
    }

    #[test]
    fn programmable_block_needs_program() {
        let mut d = Design::new("prog");
        let s = d.add_block("s", SensorKind::Button);
        let p = d.add_block("p", eblocks_core::ProgrammableSpec::new(1, 1));
        let o = d.add_block("led", OutputKind::Led);
        d.connect((s, 0), (p, 0)).unwrap();
        d.connect((p, 0), (o, 0)).unwrap();
        assert!(matches!(
            Simulator::new(&d),
            Err(SimError::MissingProgram { .. })
        ));

        let program = parse("on input { out0 = !in0; }").unwrap();
        let sim = Simulator::with_programs(&d, HashMap::from([(p, program)])).unwrap();
        let trace = sim.run(&Stimulus::new().set(10, "s", true), 50).unwrap();
        assert_eq!(trace.final_value("led"), Some(false));
    }

    #[test]
    fn bad_program_rejected_at_build() {
        let mut d = Design::new("prog2");
        let s = d.add_block("s", SensorKind::Button);
        let p = d.add_block("p", eblocks_core::ProgrammableSpec::new(1, 1));
        let o = d.add_block("led", OutputKind::Led);
        d.connect((s, 0), (p, 0)).unwrap();
        d.connect((p, 0), (o, 0)).unwrap();
        // References in5 on a 1-input block.
        let program = parse("on input { out0 = in5; }").unwrap();
        assert!(matches!(
            Simulator::with_programs(&d, HashMap::from([(p, program)])),
            Err(SimError::BadProgram { .. })
        ));
    }

    #[test]
    fn runs_are_repeatable() {
        let d = and_design();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new()
            .set(10, "a", true)
            .set(11, "b", true)
            .set(12, "a", false);
        let t1 = sim.run(&stim, 200).unwrap();
        let t2 = sim.run(&stim, 200).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn runner_reset_reuses_the_arena() {
        // One runner, three trials with different fault plans: the cached
        // stimulus is loaded once and re-woven by each reset, and results
        // must match three fresh runs exactly. A t=0 stimulus event checks
        // the weave keeps power-on announcements ahead of scripted values.
        let d = and_design();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new()
            .set(0, "b", true)
            .set(10, "a", true)
            .set(20, "b", true);
        let plans = [
            FaultPlan::new(),
            FaultPlan::new().with(crate::fault::Fault::StuckAt {
                block: "a".into(),
                value: true,
            }),
            FaultPlan::new(),
        ];
        let mut runner = Runner::new(&sim, &FaultPlan::new()).unwrap();
        runner.load_stimulus(&stim).unwrap();
        for plan in &plans {
            runner.reset(plan);
            runner.run(80).unwrap();
            let fresh = sim.run_with_faults(&stim, 80, plan).unwrap();
            assert_eq!(runner.trace(), &fresh);
        }
    }
}
