//! Value Change Dump (VCD) export for simulation traces.
//!
//! VCD is the standard waveform interchange format (IEEE 1364); exporting
//! lets traces open in GTKWave and friends — the modern equivalent of
//! watching the paper's GUI LEDs blink.

use crate::sim::Time;
use crate::trace::Trace;
use std::fmt::Write;

/// Renders a trace as a VCD document covering `[0, until]`.
///
/// Each output block becomes a 1-bit wire. Outputs that never received a
/// packet dump as `x` (unknown) until their first packet, matching VCD
/// conventions.
pub fn to_vcd(trace: &Trace, design_name: &str, until: Time) -> String {
    let outputs: Vec<&str> = trace.outputs().collect();
    let mut out = String::new();
    let _ = writeln!(out, "$comment eblocks simulation of {design_name} $end");
    let _ = writeln!(out, "$timescale 1 us $end");
    let _ = writeln!(out, "$scope module {} $end", sanitize(design_name));
    for (i, name) in outputs.iter().enumerate() {
        let _ = writeln!(out, "$var wire 1 {} {} $end", code(i), sanitize(name));
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    // Initial values.
    out.push_str("$dumpvars\n");
    for (i, name) in outputs.iter().enumerate() {
        let ch = match trace.value_at(name, 0) {
            Some(true) => '1',
            Some(false) => '0',
            None => 'x',
        };
        let _ = writeln!(out, "{ch}{}", code(i));
    }
    out.push_str("$end\n");

    // Merge all per-output histories into a single time-ordered dump.
    let mut events: Vec<(Time, usize, bool)> = Vec::new();
    for (i, name) in outputs.iter().enumerate() {
        for &(t, v) in trace.history(name) {
            if t > 0 && t <= until {
                events.push((t, i, v));
            }
        }
    }
    events.sort_unstable();
    let mut last_time = None;
    for (t, i, v) in events {
        if last_time != Some(t) {
            let _ = writeln!(out, "#{t}");
            last_time = Some(t);
        }
        let _ = writeln!(out, "{}{}", if v { '1' } else { '0' }, code(i));
    }
    let _ = writeln!(out, "#{until}");
    out
}

/// Compact printable identifier codes (`!`, `"`, `#`, … per VCD custom).
fn code(i: usize) -> String {
    let mut s = String::new();
    let mut v = i;
    loop {
        s.push((b'!' + (v % 94) as u8) as char);
        v /= 94;
        if v == 0 {
            break;
        }
    }
    s
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use crate::stimulus::Stimulus;
    use eblocks_core::{ComputeKind, Design, OutputKind, SensorKind};

    fn sample_trace() -> Trace {
        let mut d = Design::new("vcd-demo");
        let s = d.add_block("btn", SensorKind::Button);
        let n = d.add_block("inv", ComputeKind::Not);
        let o = d.add_block("led", OutputKind::Led);
        d.connect((s, 0), (n, 0)).unwrap();
        d.connect((n, 0), (o, 0)).unwrap();
        Simulator::new(&d)
            .unwrap()
            .run(&Stimulus::new().pulse(25, 10, "btn"), 80)
            .unwrap()
    }

    #[test]
    fn header_and_vars_present() {
        let vcd = to_vcd(&sample_trace(), "vcd-demo", 80);
        assert!(vcd.contains("$timescale 1 us $end"), "{vcd}");
        assert!(vcd.contains("$var wire 1 ! led $end"), "{vcd}");
        assert!(vcd.contains("$enddefinitions $end"), "{vcd}");
    }

    #[test]
    fn value_changes_in_time_order() {
        let vcd = to_vcd(&sample_trace(), "vcd-demo", 80);
        // led = !btn: high at 0, low at 25, high again at 35.
        assert!(vcd.contains("$dumpvars\n1!"), "{vcd}");
        assert!(vcd.contains("#25\n0!"), "{vcd}");
        assert!(vcd.contains("#35\n1!"), "{vcd}");
        let times: Vec<u64> = vcd
            .lines()
            .filter_map(|l| l.strip_prefix('#').and_then(|t| t.parse().ok()))
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "{times:?}");
    }

    #[test]
    fn silent_outputs_dump_unknown() {
        let trace = Trace::with_outputs(["mute".to_string()]);
        let vcd = to_vcd(&trace, "d", 10);
        assert!(vcd.contains("$dumpvars\nx!"), "{vcd}");
    }

    #[test]
    fn identifier_codes_unique_and_printable() {
        let codes: Vec<String> = (0..200).map(code).collect();
        let unique: std::collections::HashSet<&String> = codes.iter().collect();
        assert_eq!(unique.len(), codes.len());
        assert!(codes
            .iter()
            .all(|c| c.chars().all(|ch| ('!'..='~').contains(&ch))));
    }

    #[test]
    fn names_sanitized() {
        assert_eq!(sanitize("z1 siren/main"), "z1_siren_main");
    }
}
