//! Shared [`Time`] arithmetic.
//!
//! The PR 4 overflow hardening established the policy for scheduling near
//! `Time::MAX`: an event whose instant would overflow simply never fires
//! (there is no representable time for it), while a *span* that would
//! overflow saturates at the end of time. Every scheduler that adds to a
//! timestamp — the stimulus script, the simulator's tick/packet calendar,
//! and the fleet network calendar in `eblocks-net` — routes through these
//! two helpers so the policy cannot drift between layers.

use crate::sim::Time;

/// The instant `delay` ticks after `t`, or `None` if it would overflow
/// [`Time`]. Use for scheduling: an unrepresentable instant means the event
/// never fires (instead of panicking or wrapping around to the past).
#[inline]
pub fn after(t: Time, delay: Time) -> Option<Time> {
    t.checked_add(delay)
}

/// The instant `delay` ticks after `t`, saturating at `Time::MAX`. Use for
/// spans that must land somewhere — a pulse's falling edge, a link's
/// busy-until horizon — where "the end of time" is the right clamp.
#[inline]
pub fn clamp_after(t: Time, delay: Time) -> Time {
    t.saturating_add(delay)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn after_is_checked() {
        assert_eq!(after(10, 5), Some(15));
        assert_eq!(after(Time::MAX, 0), Some(Time::MAX));
        assert_eq!(after(Time::MAX, 1), None);
        assert_eq!(after(Time::MAX - 3, 5), None);
    }

    #[test]
    fn clamp_after_saturates() {
        assert_eq!(clamp_after(10, 5), 15);
        assert_eq!(clamp_after(Time::MAX - 3, 5), Time::MAX);
        assert_eq!(clamp_after(Time::MAX, Time::MAX), Time::MAX);
    }
}
