//! Behavioral equivalence checking between two designs.
//!
//! The synthesis pipeline replaces clusters of pre-defined blocks with
//! programmable blocks; this harness verifies the replacement preserved
//! behavior by running both designs under the same stimulus and comparing
//! the *settled* value at every shared output block after each stimulus
//! change. Settled-value comparison (rather than packet-by-packet) reflects
//! the paper's globally-asynchronous model: merging blocks changes internal
//! latencies but not the human-scale outcome (§3.1).

use crate::sim::{Simulator, Time};
use crate::stimulus::Stimulus;
use crate::trace::Trace;
use crate::SimError;
use std::collections::BTreeSet;

/// The result of an equivalence run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceReport {
    /// Output names compared (the union of both designs' outputs).
    pub outputs: Vec<String>,
    /// Sample instants used for comparison.
    pub sample_times: Vec<Time>,
    /// Mismatches found: `(output, time, left value, right value)`.
    pub mismatches: Vec<(String, Time, Option<bool>, Option<bool>)>,
}

impl EquivalenceReport {
    /// Whether the designs agreed at every output and sample instant.
    pub fn is_equivalent(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Runs `left` and `right` under `stimulus` and compares settled output
/// values `settle` ticks after each stimulus change (and at the final
/// horizon).
///
/// An output that never received a packet compares as `false` (eBlock lines
/// idle low).
///
/// `tolerance` absorbs timing skew: merging blocks removes internal wire
/// hops, which shifts pulse/delay windows by a few ticks without changing
/// behavior (§3.1: "no detailed timing characteristics can be inferred").
/// A sample that disagrees is discounted when either trace transitions on
/// that output within `tolerance` ticks of the sample instant — the
/// disagreement is then an edge-alignment artifact, not divergence. Pass
/// `0` for exact comparison.
///
/// # Errors
///
/// Propagates any [`SimError`] from either simulator.
pub fn equivalence(
    left: &Simulator,
    right: &Simulator,
    stimulus: &Stimulus,
    settle: Time,
    tolerance: Time,
) -> Result<EquivalenceReport, SimError> {
    let mut sample_times: Vec<Time> = stimulus
        .events()
        .iter()
        .map(|&(t, _, _)| t.saturating_add(settle))
        .collect();
    let horizon = stimulus
        .end_time()
        .unwrap_or(0)
        .saturating_add(settle.saturating_mul(2));
    sample_times.push(horizon);
    sample_times.sort_unstable();
    sample_times.dedup();

    let lt = left.run(stimulus, horizon)?;
    let rt = right.run(stimulus, horizon)?;

    let outputs: BTreeSet<String> = lt
        .outputs()
        .chain(rt.outputs())
        .map(str::to_string)
        .collect();

    let settled = |trace: &Trace, name: &str, t: Time| trace.value_at(name, t).or(Some(false));

    let near_transition = |trace: &Trace, name: &str, t: Time| {
        trace
            .history(name)
            .iter()
            .any(|&(tt, _)| tt.abs_diff(t) <= tolerance)
    };

    let mut mismatches = Vec::new();
    for name in &outputs {
        for &t in &sample_times {
            let lv = settled(&lt, name, t);
            let rv = settled(&rt, name, t);
            if lv != rv
                && !(tolerance > 0
                    && (near_transition(&lt, name, t) || near_transition(&rt, name, t)))
            {
                mismatches.push((name.clone(), t, lv, rv));
            }
        }
    }

    Ok(EquivalenceReport {
        outputs: outputs.into_iter().collect(),
        sample_times,
        mismatches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_behavior::parse;
    use eblocks_core::{ComputeKind, Design, OutputKind, ProgrammableSpec, SensorKind};
    use std::collections::HashMap;

    /// door AND NOT(light) two ways: pre-defined blocks vs one programmable.
    fn garage_predefined() -> Design {
        let mut d = Design::new("garage");
        let door = d.add_block("door", SensorKind::ContactSwitch);
        let light = d.add_block("light", SensorKind::Light);
        let inv = d.add_block("inv", ComputeKind::Not);
        let both = d.add_block("both", ComputeKind::and2());
        let led = d.add_block("led", OutputKind::Led);
        d.connect((door, 0), (both, 0)).unwrap();
        d.connect((light, 0), (inv, 0)).unwrap();
        d.connect((inv, 0), (both, 1)).unwrap();
        d.connect((both, 0), (led, 0)).unwrap();
        d
    }

    fn garage_programmable() -> (
        Design,
        HashMap<eblocks_core::BlockId, eblocks_behavior::Program>,
    ) {
        let mut d = Design::new("garage-synth");
        let door = d.add_block("door", SensorKind::ContactSwitch);
        let light = d.add_block("light", SensorKind::Light);
        let p = d.add_block("p0", ProgrammableSpec::default());
        let led = d.add_block("led", OutputKind::Led);
        d.connect((door, 0), (p, 0)).unwrap();
        d.connect((light, 0), (p, 1)).unwrap();
        d.connect((p, 0), (led, 0)).unwrap();
        let program = parse("on input { out0 = in0 && !in1; }").unwrap();
        (d, HashMap::from([(p, program)]))
    }

    #[test]
    fn equivalent_designs_pass() {
        let a = Simulator::new(&garage_predefined()).unwrap();
        let (d, programs) = garage_programmable();
        let b = Simulator::with_programs(&d, programs).unwrap();
        let stim = Stimulus::new()
            .set(10, "light", true)
            .set(30, "door", true)
            .set(50, "light", false)
            .set(70, "door", false);
        let report = equivalence(&a, &b, &stim, 10, 0).unwrap();
        assert!(report.is_equivalent(), "{:?}", report.mismatches);
        assert_eq!(report.outputs, vec!["led"]);
    }

    #[test]
    fn divergent_designs_flagged() {
        let a = Simulator::new(&garage_predefined()).unwrap();
        // Broken merge: OR instead of AND.
        let (d, _) = garage_programmable();
        let p = d.block_by_name("p0").unwrap();
        let wrong = parse("on input { out0 = in0 || !in1; }").unwrap();
        let b = Simulator::with_programs(&d, HashMap::from([(p, wrong)])).unwrap();
        let stim = Stimulus::new().set(10, "light", true).set(30, "door", true);
        let report = equivalence(&a, &b, &stim, 10, 0).unwrap();
        assert!(!report.is_equivalent());
        assert!(report
            .mismatches
            .iter()
            .all(|(name, _, _, _)| name == "led"));
    }

    #[test]
    fn empty_stimulus_still_compares_initial_state() {
        let a = Simulator::new(&garage_predefined()).unwrap();
        let (d, programs) = garage_programmable();
        let b = Simulator::with_programs(&d, programs).unwrap();
        let report = equivalence(&a, &b, &Stimulus::new(), 10, 0).unwrap();
        assert!(report.is_equivalent());
        assert_eq!(report.sample_times, vec![20]);
    }
}
