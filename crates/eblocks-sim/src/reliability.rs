//! Monte-Carlo reliability analysis (extension).
//!
//! The paper motivates eBlocks with always-on monitor/control systems —
//! garage doors, intrusion detection, sleepwalking children — whose value
//! is exactly that they keep working unattended. This module estimates how
//! a network's *outputs* degrade as its parts fail: each trial samples a
//! random [`FaultPlan`] (sensors stuck, radio hops dead) from per-class
//! failure probabilities, re-runs the simulation, and compares every
//! output's settled value against the healthy run.
//!
//! The per-output *availability* — the fraction of trials in which that
//! output still ends at its healthy value — tells a designer which outputs
//! hang off single points of failure. Trials are deterministic for a fixed
//! seed.

use crate::fault::{Fault, FaultPlan};
use crate::sim::{Runner, Simulator, Time};
use crate::stimulus::Stimulus;
use crate::trace::Trace;
use crate::SimError;
use eblocks_core::BlockKind;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Failure model for [`reliability`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Monte-Carlo trials. Default `200`.
    pub trials: u32,
    /// Probability (per mille) that each sensor is stuck, at a uniformly
    /// random value. Default `50` (5%).
    pub sensor_stuck_pm: u16,
    /// Probability (per mille) that each communication block is dead from
    /// power-on. Default `100` (10%) — radios fail more than wires.
    pub comm_failure_pm: u16,
    /// RNG seed; identical seeds give identical reports. Default `0x5EED`.
    pub seed: u64,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        Self {
            trials: 200,
            sensor_stuck_pm: 50,
            comm_failure_pm: 100,
            seed: 0x5EED,
        }
    }
}

/// The outcome of a [`reliability`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityReport {
    /// Trials executed.
    pub trials: u32,
    /// Trials in which the sampled plan contained no fault at all.
    pub fault_free_trials: u32,
    /// Per output, sorted by name: fraction of trials whose settled value
    /// matched the healthy run.
    pub availability: Vec<(String, f64)>,
}

impl ReliabilityReport {
    /// The lowest per-output availability — the network's weakest signal.
    pub fn worst(&self) -> Option<(&str, f64)> {
        self.availability
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, v)| (n.as_str(), *v))
    }
}

/// Runs the Monte-Carlo trials and reports per-output availability.
///
/// # Errors
///
/// Propagates any [`SimError`] from the healthy or a faulty run.
///
/// # Examples
///
/// ```
/// use eblocks_core::{CommKind, Design, OutputKind, SensorKind};
/// use eblocks_sim::{reliability, ReliabilityConfig, Simulator, Stimulus};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut d = Design::new("radio-bell");
/// let b = d.add_block("btn", SensorKind::Button);
/// let tx = d.add_block("radio", CommKind::WirelessTx);
/// let o = d.add_block("bell", OutputKind::Buzzer);
/// d.connect((b, 0), (tx, 0))?;
/// d.connect((tx, 0), (o, 0))?;
///
/// let sim = Simulator::new(&d)?;
/// let stim = Stimulus::new().set(20, "btn", true);
/// let report = reliability(&sim, &stim, 100, &ReliabilityConfig::default())?;
/// let (name, avail) = report.worst().expect("one output");
/// assert_eq!(name, "bell");
/// assert!(avail < 1.0, "a lossy radio and a stickable button degrade it");
/// # Ok(())
/// # }
/// ```
pub fn reliability(
    sim: &Simulator,
    stimulus: &Stimulus,
    until: Time,
    config: &ReliabilityConfig,
) -> Result<ReliabilityReport, SimError> {
    // One runner arena for the whole sweep: every trial resets it in place
    // instead of recompiling machines and reallocating queues per run; the
    // stimulus is resolved and sorted once and re-woven on each reset.
    let mut runner = Runner::new(sim, &FaultPlan::new())?;
    runner.load_stimulus(stimulus)?;
    runner.run(until)?;
    let baseline = settled(runner.trace());

    let design = sim.design();
    let sensors: Vec<String> = design
        .sensors()
        .map(|s| design.block(s).expect("sensor").name().to_string())
        .collect();
    let comms: Vec<String> = design
        .blocks()
        .filter(|&b| matches!(design.block(b).expect("block").kind(), BlockKind::Comm(_)))
        .map(|b| design.block(b).expect("block").name().to_string())
        .collect();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut matches = vec![0u32; baseline.len()];
    let mut fault_free = 0u32;

    for _ in 0..config.trials {
        let mut plan = FaultPlan::new();
        for name in &sensors {
            if rng.random_range(0..1000u32) < config.sensor_stuck_pm as u32 {
                plan = plan.with(Fault::StuckAt {
                    block: name.clone(),
                    value: rng.random(),
                });
            }
        }
        for name in &comms {
            if rng.random_range(0..1000u32) < config.comm_failure_pm as u32 {
                plan = plan.with(Fault::DropPackets {
                    block: name.clone(),
                    from: 0,
                    to: Time::MAX,
                });
            }
        }
        if plan.is_empty() {
            fault_free += 1;
        }
        runner.reset(&plan);
        runner.run(until)?;
        let outcome = settled(runner.trace());
        for (i, (name, value)) in baseline.iter().enumerate() {
            let same = outcome
                .iter()
                .find(|(n, _)| n == name)
                .is_some_and(|(_, v)| v == value);
            if same {
                matches[i] += 1;
            }
        }
    }

    let availability = baseline
        .iter()
        .zip(&matches)
        .map(|((name, _), &m)| (name.clone(), f64::from(m) / f64::from(config.trials.max(1))))
        .collect();
    Ok(ReliabilityReport {
        trials: config.trials,
        fault_free_trials: fault_free,
        availability,
    })
}

/// Settled (final) value per output, idle-low default, sorted by name.
fn settled(trace: &Trace) -> Vec<(String, bool)> {
    let mut outs: Vec<(String, bool)> = trace
        .outputs()
        .map(|o| (o.to_string(), trace.final_value(o).unwrap_or(false)))
        .collect();
    outs.sort();
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{CommKind, ComputeKind, Design, OutputKind, SensorKind};

    /// btn -> led (wired) alongside btn2 -> radio -> led2.
    fn mixed() -> Design {
        let mut d = Design::new("mixed");
        let b1 = d.add_block("btn1", SensorKind::Button);
        let l1 = d.add_block("led1", OutputKind::Led);
        d.connect((b1, 0), (l1, 0)).unwrap();
        let b2 = d.add_block("btn2", SensorKind::Button);
        let tx = d.add_block("radio", CommKind::WirelessTx);
        let l2 = d.add_block("led2", OutputKind::Led);
        d.connect((b2, 0), (tx, 0)).unwrap();
        d.connect((tx, 0), (l2, 0)).unwrap();
        d
    }

    #[test]
    fn radio_path_is_less_available() {
        let d = mixed();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(20, "btn1", true).set(20, "btn2", true);
        let config = ReliabilityConfig {
            trials: 400,
            sensor_stuck_pm: 50,
            comm_failure_pm: 150,
            ..Default::default()
        };
        let report = reliability(&sim, &stim, 100, &config).unwrap();
        let get = |name: &str| {
            report
                .availability
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(
            get("led2") < get("led1"),
            "the radio hop must cost availability: led1={} led2={}",
            get("led1"),
            get("led2")
        );
        assert_eq!(report.worst().unwrap().0, "led2");
    }

    #[test]
    fn zero_probability_means_full_availability() {
        let d = mixed();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(20, "btn1", true);
        let config = ReliabilityConfig {
            trials: 50,
            sensor_stuck_pm: 0,
            comm_failure_pm: 0,
            ..Default::default()
        };
        let report = reliability(&sim, &stim, 100, &config).unwrap();
        assert_eq!(report.fault_free_trials, 50);
        assert!(report.availability.iter().all(|(_, v)| *v == 1.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let d = mixed();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(20, "btn2", true);
        let config = ReliabilityConfig {
            trials: 100,
            ..Default::default()
        };
        assert_eq!(
            reliability(&sim, &stim, 100, &config).unwrap(),
            reliability(&sim, &stim, 100, &config).unwrap()
        );
    }

    #[test]
    fn stuck_sensor_can_help_or_hurt_symmetrically() {
        // An inverter chain: stuck-at-true *matches* the stimulus end state,
        // so availability stays high even with certain stuck sensors when
        // the stuck value equals the final stimulus value.
        let mut d = Design::new("inv");
        let b = d.add_block("btn", SensorKind::Button);
        let n = d.add_block("n", ComputeKind::Not);
        let l = d.add_block("led", OutputKind::Led);
        d.connect((b, 0), (n, 0)).unwrap();
        d.connect((n, 0), (l, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(10, "btn", true);
        let config = ReliabilityConfig {
            trials: 300,
            sensor_stuck_pm: 1000, // always stuck, value 50/50
            comm_failure_pm: 0,
            ..Default::default()
        };
        let report = reliability(&sim, &stim, 60, &config).unwrap();
        let (_, avail) = report.worst().unwrap();
        assert!(
            (0.35..=0.65).contains(&avail),
            "stuck value is a coin flip, got {avail}"
        );
    }
}
