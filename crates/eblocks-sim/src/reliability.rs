//! Monte-Carlo reliability analysis (extension).
//!
//! The paper motivates eBlocks with always-on monitor/control systems —
//! garage doors, intrusion detection, sleepwalking children — whose value
//! is exactly that they keep working unattended. This module estimates how
//! a network's *outputs* degrade as its parts fail: each trial samples a
//! random [`FaultPlan`] (sensors stuck, radio hops dead) from per-class
//! failure probabilities, re-runs the simulation, and compares every
//! output's settled value against the healthy run.
//!
//! The per-output *availability* — the fraction of trials in which that
//! output still ends at its healthy value — tells a designer which outputs
//! hang off single points of failure. Trials are deterministic for a fixed
//! seed: every plan is sampled up front in trial order, then the trials run
//! on per-thread runner arenas (exact per-output sums, so the worker count
//! never changes the report).

use crate::fault::{Fault, FaultPlan};
use crate::sim::{Runner, Simulator, Time};
use crate::stimulus::Stimulus;
use crate::trace::Trace;
use crate::SimError;
use eblocks_core::BlockKind;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Failure model for [`reliability`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityConfig {
    /// Monte-Carlo trials. Default `200`.
    pub trials: u32,
    /// Probability (per mille) that each sensor is stuck, at a uniformly
    /// random value. Default `50` (5%).
    pub sensor_stuck_pm: u16,
    /// Probability (per mille) that each communication block is dead from
    /// power-on. Default `100` (10%) — radios fail more than wires.
    pub comm_failure_pm: u16,
    /// RNG seed; identical seeds give identical reports. Default `0x5EED`.
    pub seed: u64,
    /// Worker threads for the trial sweep; `0` (the default) uses the
    /// detected core count. The worker count never changes the report:
    /// fault plans are sampled up front in trial order from the seed, and
    /// per-output match counts are exact sums over trials.
    pub threads: usize,
}

impl Default for ReliabilityConfig {
    fn default() -> Self {
        Self {
            trials: 200,
            sensor_stuck_pm: 50,
            comm_failure_pm: 100,
            seed: 0x5EED,
            threads: 0,
        }
    }
}

/// The outcome of a [`reliability`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityReport {
    /// Trials executed.
    pub trials: u32,
    /// Trials in which the sampled plan contained no fault at all.
    pub fault_free_trials: u32,
    /// Per output, sorted by name: fraction of trials whose settled value
    /// matched the healthy run.
    pub availability: Vec<(String, f64)>,
}

impl ReliabilityReport {
    /// The lowest per-output availability — the network's weakest signal.
    pub fn worst(&self) -> Option<(&str, f64)> {
        self.availability
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, v)| (n.as_str(), *v))
    }
}

/// Runs the Monte-Carlo trials and reports per-output availability.
///
/// # Errors
///
/// Propagates any [`SimError`] from the healthy or a faulty run.
///
/// # Examples
///
/// ```
/// use eblocks_core::{CommKind, Design, OutputKind, SensorKind};
/// use eblocks_sim::{reliability, ReliabilityConfig, Simulator, Stimulus};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut d = Design::new("radio-bell");
/// let b = d.add_block("btn", SensorKind::Button);
/// let tx = d.add_block("radio", CommKind::WirelessTx);
/// let o = d.add_block("bell", OutputKind::Buzzer);
/// d.connect((b, 0), (tx, 0))?;
/// d.connect((tx, 0), (o, 0))?;
///
/// let sim = Simulator::new(&d)?;
/// let stim = Stimulus::new().set(20, "btn", true);
/// let report = reliability(&sim, &stim, 100, &ReliabilityConfig::default())?;
/// let (name, avail) = report.worst().expect("one output");
/// assert_eq!(name, "bell");
/// assert!(avail < 1.0, "a lossy radio and a stickable button degrade it");
/// # Ok(())
/// # }
/// ```
pub fn reliability(
    sim: &Simulator,
    stimulus: &Stimulus,
    until: Time,
    config: &ReliabilityConfig,
) -> Result<ReliabilityReport, SimError> {
    // One runner arena per thread for the whole sweep: every trial resets
    // its arena in place instead of recompiling machines and reallocating
    // queues per run; the stimulus is resolved and sorted once per arena
    // and re-woven on each reset. This arena runs the baseline (and the
    // whole sweep when only one worker is in play).
    let mut runner = Runner::new(sim, &FaultPlan::new())?;
    runner.load_stimulus(stimulus)?;
    runner.run(until)?;
    let baseline = settled(runner.trace());

    let design = sim.design();
    let sensors: Vec<String> = design
        .sensors()
        .map(|s| design.block(s).expect("sensor").name().to_string())
        .collect();
    let comms: Vec<String> = design
        .blocks()
        .filter(|&b| matches!(design.block(b).expect("block").kind(), BlockKind::Comm(_)))
        .map(|b| design.block(b).expect("block").name().to_string())
        .collect();

    // Sample every trial's plan up front, in trial order, from one seeded
    // RNG: the sampled fault sequence — and therefore the report — is
    // byte-identical no matter how many workers later run the trials.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut plans = Vec::with_capacity(config.trials as usize);
    for _ in 0..config.trials {
        let mut plan = FaultPlan::new();
        for name in &sensors {
            if rng.random_range(0..1000u32) < config.sensor_stuck_pm as u32 {
                plan = plan.with(Fault::StuckAt {
                    block: name.clone(),
                    value: rng.random(),
                });
            }
        }
        for name in &comms {
            if rng.random_range(0..1000u32) < config.comm_failure_pm as u32 {
                plan = plan.with(Fault::DropPackets {
                    block: name.clone(),
                    from: 0,
                    to: Time::MAX,
                });
            }
        }
        plans.push(plan);
    }
    let fault_free = plans.iter().filter(|p| p.is_empty()).count() as u32;

    let workers = match config.threads {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .min(plans.len().max(1));

    let mut matches = vec![0u32; baseline.len()];
    if workers <= 1 {
        trial_sweep(&mut runner, &plans, until, &baseline, &mut matches)?;
    } else {
        // One runner arena per worker: each thread builds its own engine
        // once and resets it across its contiguous chunk of trials. Match
        // counts are exact per-output sums, so merging chunk totals gives
        // the same numbers as the sequential sweep.
        let chunk_size = plans.len().div_ceil(workers);
        let results: Vec<Result<Vec<u32>, SimError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = plans
                .chunks(chunk_size)
                .map(|chunk| {
                    let baseline = &baseline;
                    scope.spawn(move || {
                        let mut arena = Runner::new(sim, &FaultPlan::new())?;
                        arena.load_stimulus(stimulus)?;
                        let mut local = vec![0u32; baseline.len()];
                        trial_sweep(&mut arena, chunk, until, baseline, &mut local)?;
                        Ok(local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("reliability worker panicked"))
                .collect()
        });
        for result in results {
            let local = result?;
            for (total, add) in matches.iter_mut().zip(&local) {
                *total += add;
            }
        }
    }

    let availability = baseline
        .iter()
        .zip(&matches)
        .map(|((name, _), &m)| (name.clone(), f64::from(m) / f64::from(config.trials.max(1))))
        .collect();
    Ok(ReliabilityReport {
        trials: config.trials,
        fault_free_trials: fault_free,
        availability,
    })
}

/// Runs `plans` on one arena, incrementing `matches[i]` for each trial in
/// which output `i`'s settled value equals the baseline's.
fn trial_sweep(
    runner: &mut Runner<'_>,
    plans: &[FaultPlan],
    until: Time,
    baseline: &[(String, bool)],
    matches: &mut [u32],
) -> Result<(), SimError> {
    for plan in plans {
        runner.reset(plan);
        runner.run(until)?;
        let outcome = settled(runner.trace());
        for (i, (name, value)) in baseline.iter().enumerate() {
            let same = outcome
                .iter()
                .find(|(n, _)| n == name)
                .is_some_and(|(_, v)| v == value);
            if same {
                matches[i] += 1;
            }
        }
    }
    Ok(())
}

/// Settled (final) value per output, idle-low default, sorted by name.
fn settled(trace: &Trace) -> Vec<(String, bool)> {
    let mut outs: Vec<(String, bool)> = trace
        .outputs()
        .map(|o| (o.to_string(), trace.final_value(o).unwrap_or(false)))
        .collect();
    outs.sort();
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{CommKind, ComputeKind, Design, OutputKind, SensorKind};

    /// btn -> led (wired) alongside btn2 -> radio -> led2.
    fn mixed() -> Design {
        let mut d = Design::new("mixed");
        let b1 = d.add_block("btn1", SensorKind::Button);
        let l1 = d.add_block("led1", OutputKind::Led);
        d.connect((b1, 0), (l1, 0)).unwrap();
        let b2 = d.add_block("btn2", SensorKind::Button);
        let tx = d.add_block("radio", CommKind::WirelessTx);
        let l2 = d.add_block("led2", OutputKind::Led);
        d.connect((b2, 0), (tx, 0)).unwrap();
        d.connect((tx, 0), (l2, 0)).unwrap();
        d
    }

    #[test]
    fn radio_path_is_less_available() {
        let d = mixed();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(20, "btn1", true).set(20, "btn2", true);
        let config = ReliabilityConfig {
            trials: 400,
            sensor_stuck_pm: 50,
            comm_failure_pm: 150,
            ..Default::default()
        };
        let report = reliability(&sim, &stim, 100, &config).unwrap();
        let get = |name: &str| {
            report
                .availability
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(
            get("led2") < get("led1"),
            "the radio hop must cost availability: led1={} led2={}",
            get("led1"),
            get("led2")
        );
        assert_eq!(report.worst().unwrap().0, "led2");
    }

    #[test]
    fn zero_probability_means_full_availability() {
        let d = mixed();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(20, "btn1", true);
        let config = ReliabilityConfig {
            trials: 50,
            sensor_stuck_pm: 0,
            comm_failure_pm: 0,
            ..Default::default()
        };
        let report = reliability(&sim, &stim, 100, &config).unwrap();
        assert_eq!(report.fault_free_trials, 50);
        assert!(report.availability.iter().all(|(_, v)| *v == 1.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let d = mixed();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(20, "btn2", true);
        let config = ReliabilityConfig {
            trials: 100,
            ..Default::default()
        };
        assert_eq!(
            reliability(&sim, &stim, 100, &config).unwrap(),
            reliability(&sim, &stim, 100, &config).unwrap()
        );
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let d = mixed();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(20, "btn1", true).set(25, "btn2", true);
        let report_at = |threads: usize| {
            let config = ReliabilityConfig {
                trials: 120,
                threads,
                ..Default::default()
            };
            reliability(&sim, &stim, 100, &config).unwrap()
        };
        let sequential = report_at(1);
        assert_eq!(sequential, report_at(4));
        assert_eq!(sequential, report_at(7));
        // More workers than trials also degrades gracefully.
        assert_eq!(sequential, report_at(1000));
    }

    #[test]
    fn stuck_sensor_can_help_or_hurt_symmetrically() {
        // An inverter chain: stuck-at-true *matches* the stimulus end state,
        // so availability stays high even with certain stuck sensors when
        // the stuck value equals the final stimulus value.
        let mut d = Design::new("inv");
        let b = d.add_block("btn", SensorKind::Button);
        let n = d.add_block("n", ComputeKind::Not);
        let l = d.add_block("led", OutputKind::Led);
        d.connect((b, 0), (n, 0)).unwrap();
        d.connect((n, 0), (l, 0)).unwrap();
        let sim = Simulator::new(&d).unwrap();
        let stim = Stimulus::new().set(10, "btn", true);
        let config = ReliabilityConfig {
            trials: 300,
            sensor_stuck_pm: 1000, // always stuck, value 50/50
            comm_failure_pm: 0,
            ..Default::default()
        };
        let report = reliability(&sim, &stim, 60, &config).unwrap();
        let (_, avail) = report.worst().unwrap();
        assert!(
            (0.35..=0.65).contains(&avail),
            "stuck value is a coin flip, got {avail}"
        );
    }
}
