//! Deterministic chaos harness for the batch farm: seeded fault
//! injection, retry/timeout exercise, and replayable failure traces.
//!
//! The farm ([`eblocks_farm`]) exposes a
//! [`FaultInjector`](eblocks_farm::FaultInjector) seam; this
//! crate supplies the injector. A [`ChaosConfig`] — a `u64` seed plus a
//! [`ChaosPlan`] — drives three fault surfaces:
//!
//! * **scheduling**: the order workers claim jobs is shuffled by a seeded
//!   permutation, and claims are stretched by bounded artificial delays;
//! * **stage faults**: panics and (clock-free) timeouts injected at
//!   chosen `(job, attempt, stage)` points, either pinned
//!   ([`ForcedFault`]) or drawn probabilistically from the seed;
//! * **input bytes**: [`corrupt::corrupt`] mutates manifest/JSON bytes so
//!   the parsers' never-panic contract can be fuzzed.
//!
//! Every decision is a pure function of the seed and the injection
//! point's coordinates — never of timing or worker identity — so a run's
//! [`BatchReport`] and [`ChaosTrace`] are byte-identical across repeats
//! *and across worker counts*, and the seed alone replays them. That is
//! the harness's contract: a failing CI run prints its seed, and
//! `eblocks-cli batch --chaos-seed N` reproduces the failure exactly.
//!
//! # Example
//!
//! ```
//! use eblocks_chaos::{run_chaos, ChaosConfig};
//! use eblocks_farm::{Batch, FarmConfig, Job};
//!
//! let batch = Batch::new(vec![
//!     Job::library("Ignition Illuminator"),
//!     Job::library("Carpool Alert"),
//! ]);
//! let chaos = ChaosConfig::from_seed(42);
//! let once = run_chaos(&batch, FarmConfig::with_workers(2).retries(3), &chaos);
//! let again = run_chaos(&batch, FarmConfig::with_workers(1).retries(3), &chaos);
//! // Same seed => same outcomes and same trace, even at another worker
//! // count (timings excluded from the deterministic rendering).
//! assert_eq!(once.trace, again.trace);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corrupt;
pub mod inject;
pub mod net;
pub mod plan;
pub mod trace;

pub use inject::ChaosInjector;
pub use net::{NetChaosInjector, NetChaosPlan};
pub use plan::{ChaosPlan, FaultKind, ForcedFault};
pub use trace::{ChaosTrace, TraceEvent, TraceFault};

use eblocks_farm::{run_batch_with_progress, Batch, BatchProgress, BatchReport, FarmConfig};
use std::sync::Arc;

/// Everything needed to run — and later replay — one chaos experiment.
///
/// Two runs with equal configs over the same batch produce byte-identical
/// deterministic reports and traces; [`ChaosConfig::from_seed`] is the
/// replay path (the CLI's `--chaos-seed N`).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// The seed every injection decision derives from.
    pub seed: u64,
    /// The storm's shape (probabilities and pinned faults).
    pub plan: ChaosPlan,
}

impl ChaosConfig {
    /// The standard storm from a seed alone — the whole experiment is
    /// reconstructible from this one number, which is what a failing run
    /// prints and `--chaos-seed N` replays.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            seed,
            plan: ChaosPlan::default(),
        }
    }

    /// A seeded run of a custom plan.
    pub fn with_plan(seed: u64, plan: ChaosPlan) -> Self {
        Self { seed, plan }
    }
}

/// One chaos run's outcome: the batch report the farm produced under
/// fault injection, plus the replayable record of what was injected.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The farm's report, exactly as a fault-free run would shape it
    /// (failed jobs carry the injected fault messages).
    pub report: BatchReport,
    /// Every fault fired, replayable from its seed.
    pub trace: ChaosTrace,
}

/// The default listener: hears nothing.
struct Quiet;

impl BatchProgress for Quiet {}

/// Runs `batch` under fault injection: installs a [`ChaosInjector`] for
/// `chaos` into `config` (replacing any injector already there) and runs
/// the farm. Retry and timeout policies come from `config`
/// ([`FarmConfig::retries`], [`FarmConfig::timeout`]).
pub fn run_chaos(batch: &Batch, config: FarmConfig, chaos: &ChaosConfig) -> ChaosOutcome {
    run_chaos_with_progress(batch, config, chaos, &Quiet)
}

/// [`run_chaos`] with a [`BatchProgress`] listener streaming job
/// started/finished callbacks while the storm runs.
pub fn run_chaos_with_progress(
    batch: &Batch,
    mut config: FarmConfig,
    chaos: &ChaosConfig,
    progress: &dyn BatchProgress,
) -> ChaosOutcome {
    let injector = Arc::new(ChaosInjector::new(chaos.seed, chaos.plan.clone()));
    config.faults = Some(Arc::clone(&injector) as Arc<dyn eblocks_farm::FaultInjector>);
    let report = run_batch_with_progress(batch, &config, progress);
    let trace = injector.trace(batch.jobs.len());
    ChaosOutcome { report, trace }
}
