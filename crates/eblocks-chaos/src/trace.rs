//! The replayable record of one chaos run.
//!
//! A [`ChaosTrace`] lists every fault the injector actually fired, in a
//! canonical order (by job, then attempt, then pipeline position) that is
//! independent of worker interleaving. Because injection decisions are
//! pure functions of the seed, the trace is byte-identical across runs of
//! the same `(seed, plan, batch)` — and re-running from the seed alone
//! reproduces it, which is what makes a printed `--chaos-seed N` a
//! complete bug report.

use eblocks_synth::Stage;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// What kind of fault a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceFault {
    /// An artificial sleep (at pickup or before a stage).
    #[serde(rename = "delay")]
    Delay,
    /// An injected panic.
    #[serde(rename = "panic")]
    Panic,
    /// An injected (clock-free) timeout abort.
    #[serde(rename = "timeout")]
    Timeout,
}

/// One fault the injector fired.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Index of the job in batch submission order.
    pub job: usize,
    /// 0-based attempt the fault fired on (always 0 for pickup delays).
    pub attempt: u32,
    /// The stage gated, or `None` for a delay at job pickup.
    pub stage: Option<Stage>,
    /// What fired.
    pub fault: TraceFault,
    /// Microseconds slept, for [`TraceFault::Delay`] events.
    pub delay_micros: Option<u64>,
}

/// Everything one chaos run injected, replayable from
/// [`ChaosTrace::seed`] alone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosTrace {
    /// The seed the run (and any replay of it) derives every decision
    /// from.
    pub seed: u64,
    /// Jobs in the batch.
    pub jobs: usize,
    /// The pickup order workers drained the queue in (submission order
    /// when the plan did not shuffle).
    pub order: Vec<usize>,
    /// Every fault fired, in canonical (job, attempt, pipeline-position)
    /// order.
    pub events: Vec<TraceEvent>,
}

impl ChaosTrace {
    /// Renders the trace as stable, diffable text (the format the CLI's
    /// `--chaos-trace FILE` writes and CI pins a golden copy of).
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "chaos trace v1: seed {}, {} job(s), {} event(s)\n",
            self.seed,
            self.jobs,
            self.events.len()
        );
        let order: Vec<String> = self.order.iter().map(ToString::to_string).collect();
        let _ = writeln!(out, "pickup order: {}", order.join(" "));
        for event in &self.events {
            let point = match event.stage {
                Some(stage) => format!("before {stage}"),
                None => "at pickup".to_string(),
            };
            let what = match event.fault {
                TraceFault::Delay => format!("delay {}us", event.delay_micros.unwrap_or(0)),
                TraceFault::Panic => "panic".to_string(),
                TraceFault::Timeout => "timeout".to_string(),
            };
            let _ = writeln!(
                out,
                "job {} attempt {} {point}: {what}",
                event.job, event.attempt
            );
        }
        out
    }

    /// The trace as pretty-printed JSON (round-trips through
    /// [`serde::json::from_str`]).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChaosTrace {
        ChaosTrace {
            seed: 42,
            jobs: 3,
            order: vec![2, 0, 1],
            events: vec![
                TraceEvent {
                    job: 0,
                    attempt: 0,
                    stage: None,
                    fault: TraceFault::Delay,
                    delay_micros: Some(413),
                },
                TraceEvent {
                    job: 2,
                    attempt: 1,
                    stage: Some(Stage::Merge),
                    fault: TraceFault::Panic,
                    delay_micros: None,
                },
            ],
        }
    }

    #[test]
    fn text_rendering_is_stable() {
        let text = sample().render_text();
        assert_eq!(
            text,
            "chaos trace v1: seed 42, 3 job(s), 2 event(s)\n\
             pickup order: 2 0 1\n\
             job 0 attempt 0 at pickup: delay 413us\n\
             job 2 attempt 1 before merge: panic\n"
        );
    }

    #[test]
    fn json_round_trips() {
        let trace = sample();
        let text = trace.to_json();
        let back: ChaosTrace = serde::json::from_str(&text).unwrap();
        assert_eq!(back, trace);
    }
}
