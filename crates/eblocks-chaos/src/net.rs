//! Network chaos: seeded link flaps, partitions, and node crashes for
//! fleet co-simulation.
//!
//! [`NetChaosInjector`] implements the fleet engine's
//! [`eblocks_net::NetFaultInjector`] seam under the same contract as the
//! batch harness: every decision is a pure function of the seed and the
//! decision point's coordinates, so a fleet storm replays byte-identically
//! from `(seed, plan)` alone — `eblocks-cli fleet --chaos-seed N` prints
//! the same trace every time.
//!
//! Four fault surfaces, each behind its own domain-separation salt:
//!
//! * **flaps** — a directed half-link goes down for whole windows of
//!   [`flap_window`](NetChaosPlan::flap_window) ticks, drawn per
//!   `(link, window)`;
//! * **loss** — extra per-packet loss on top of the fleet's baseline,
//!   drawn per `(link, packet)`;
//! * **delay** — per-packet extra latency, drawn per `(link, packet)`;
//! * **crashes** — permanent node death at a seeded instant, drawn per
//!   node, plus pinned [`forced_crashes`](NetChaosPlan::forced_crashes)
//!   and [`partitions`](NetChaosPlan::partitions) for scripted scenarios.

use crate::inject::mix;
use eblocks_net::{NetFaultInjector, PacketFate};

/// Fleet-chaos salts, disjoint from the batch harness's `0xeb0c_000x`
/// and eblocks-net's own `0xeb0c_100x` ranges.
const SALT_NET_FLAP: u64 = 0xeb0c_0101;
const SALT_NET_LOSS: u64 = 0xeb0c_0102;
const SALT_NET_DELAY: u64 = 0xeb0c_0103;
const SALT_NET_CRASH: u64 = 0xeb0c_0104;

/// Probabilities and scripted faults for one fleet storm. Probabilities
/// are permille (`0..=1000`); the zero default is a healthy network.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetChaosPlan {
    /// Per-`(half-link, window)` probability that the link is down for
    /// the whole window, in permille.
    pub flap_pm: u16,
    /// Width of a flap window, in ticks (0 disables flaps).
    pub flap_window: u64,
    /// Extra per-packet loss, in permille.
    pub loss_pm: u16,
    /// Per-packet probability of extra delay, in permille.
    pub delay_pm: u16,
    /// Largest extra delay, in ticks (draws are `1..=max_delay`).
    pub max_delay: u64,
    /// Per-node probability of crashing during the run, in permille.
    pub crash_pm: u16,
    /// Seeded crash instants are drawn in `0..horizon` (0 disables
    /// probabilistic crashes).
    pub horizon: u64,
    /// Pinned crashes: `(node rank, instant)`.
    pub forced_crashes: Vec<(usize, u64)>,
    /// Scripted bidirectional cuts: `(site a, site b, from, to)` drops
    /// every packet crossing `a↔b` while `from <= t < to`.
    pub partitions: Vec<(usize, usize, u64, u64)>,
}

impl NetChaosPlan {
    /// A storm preset for determinism tests: frequent flaps, extra loss,
    /// occasional delay, and seeded crashes across `horizon` ticks.
    pub fn storm(horizon: u64) -> Self {
        Self {
            flap_pm: 150,
            flap_window: 16,
            loss_pm: 50,
            delay_pm: 100,
            max_delay: 5,
            crash_pm: 120,
            horizon,
            ..Self::default()
        }
    }
}

/// The seeded [`NetFaultInjector`]: `(seed, plan)` is the whole state.
#[derive(Debug, Clone)]
pub struct NetChaosInjector {
    seed: u64,
    plan: NetChaosPlan,
}

impl NetChaosInjector {
    /// An injector replaying the storm identified by `(seed, plan)`.
    pub fn new(seed: u64, plan: NetChaosPlan) -> Self {
        Self { seed, plan }
    }

    /// The storm's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn permille(&self, salt: u64, coords: &[u64], pm: u16) -> bool {
        if pm == 0 {
            return false;
        }
        let mut parts = vec![self.seed, salt];
        parts.extend_from_slice(coords);
        mix(&parts) % 1000 < u64::from(pm)
    }
}

impl NetFaultInjector for NetChaosInjector {
    fn packet_fate(&self, from: usize, to: usize, t: u64, seq: u64) -> PacketFate {
        for &(a, b, start, end) in &self.plan.partitions {
            let crosses = (a, b) == (from, to) || (b, a) == (from, to);
            if crosses && t >= start && t < end {
                return PacketFate::Drop;
            }
        }
        if let Some(window) = t.checked_div(self.plan.flap_window) {
            if self.permille(
                SALT_NET_FLAP,
                &[from as u64, to as u64, window],
                self.plan.flap_pm,
            ) {
                return PacketFate::Drop;
            }
        }
        if self.permille(
            SALT_NET_LOSS,
            &[from as u64, to as u64, seq],
            self.plan.loss_pm,
        ) {
            return PacketFate::Drop;
        }
        if self.plan.max_delay > 0
            && self.permille(
                SALT_NET_DELAY,
                &[from as u64, to as u64, seq],
                self.plan.delay_pm,
            )
        {
            let ticks = 1 + mix(&[self.seed, SALT_NET_DELAY, from as u64, to as u64, seq, 1])
                % self.plan.max_delay;
            return PacketFate::Delay(ticks);
        }
        PacketFate::Deliver
    }

    fn node_down(&self, node: usize, t: u64) -> bool {
        if self
            .plan
            .forced_crashes
            .iter()
            .any(|&(n, at)| n == node && t >= at)
        {
            return true;
        }
        if self.plan.horizon > 0
            && self.permille(SALT_NET_CRASH, &[node as u64], self.plan.crash_pm)
        {
            let at = mix(&[self.seed, SALT_NET_CRASH, node as u64, 1]) % self.plan.horizon;
            return t >= at;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_the_point() {
        let a = NetChaosInjector::new(99, NetChaosPlan::storm(200));
        let b = NetChaosInjector::new(99, NetChaosPlan::storm(200));
        for t in 0..64 {
            for seq in 0..8 {
                assert_eq!(a.packet_fate(0, 1, t, seq), b.packet_fate(0, 1, t, seq));
            }
            assert_eq!(a.node_down(3, t), b.node_down(3, t));
        }
    }

    #[test]
    fn another_seed_makes_another_storm() {
        let a = NetChaosInjector::new(1, NetChaosPlan::storm(200));
        let b = NetChaosInjector::new(2, NetChaosPlan::storm(200));
        let fates = |inj: &NetChaosInjector| {
            (0..512)
                .map(|seq| inj.packet_fate(0, 1, seq, seq))
                .collect::<Vec<_>>()
        };
        assert_ne!(fates(&a), fates(&b));
    }

    #[test]
    fn flaps_down_whole_windows() {
        let plan = NetChaosPlan {
            flap_pm: 400,
            flap_window: 10,
            ..NetChaosPlan::default()
        };
        let inj = NetChaosInjector::new(7, plan);
        // Find a downed window; every instant inside it must agree.
        let downed = (0..100u64)
            .find(|&w| inj.packet_fate(2, 3, w * 10, 0) == PacketFate::Drop)
            .expect("40% flaps hit within 100 windows");
        for t in downed * 10..(downed + 1) * 10 {
            assert_eq!(inj.packet_fate(2, 3, t, t), PacketFate::Drop);
        }
    }

    #[test]
    fn scripted_faults_apply() {
        let plan = NetChaosPlan {
            forced_crashes: vec![(4, 50)],
            partitions: vec![(0, 1, 10, 20)],
            ..NetChaosPlan::default()
        };
        let inj = NetChaosInjector::new(0, plan);
        assert!(!inj.node_down(4, 49));
        assert!(inj.node_down(4, 50));
        assert!(!inj.node_down(3, 99));
        // The cut drops both directions, only inside its window.
        assert_eq!(inj.packet_fate(0, 1, 15, 0), PacketFate::Drop);
        assert_eq!(inj.packet_fate(1, 0, 15, 0), PacketFate::Drop);
        assert_eq!(inj.packet_fate(0, 1, 20, 0), PacketFate::Deliver);
        assert_eq!(inj.packet_fate(2, 1, 15, 0), PacketFate::Deliver);
    }

    #[test]
    fn delays_are_bounded_and_nonzero() {
        let plan = NetChaosPlan {
            delay_pm: 1000,
            max_delay: 5,
            ..NetChaosPlan::default()
        };
        let inj = NetChaosInjector::new(11, plan);
        for seq in 0..64 {
            match inj.packet_fate(0, 1, 0, seq) {
                PacketFate::Delay(d) => assert!((1..=5).contains(&d)),
                other => panic!("expected a delay, got {other:?}"),
            }
        }
    }
}
