//! Seeded corruption of input bytes — the harness's third fault surface.
//!
//! The farm's first two chaos surfaces live inside the engine (scheduling
//! and stage faults); this one attacks the boundary: the manifest and
//! JSON bytes [`Batch::from_file`](eblocks_farm::Batch::from_file)
//! parses. [`corrupt`] applies a seeded burst of truncations, bit flips,
//! insertions, deletions, and splices to a valid input, producing the
//! malformed variants the parsers must reject *as errors* — never
//! panics. Like everything else in the harness, the output is a pure
//! function of `(seed, input)`, so a failing seed replays exactly.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How many mutations one [`corrupt`] call applies (1..=MAX_MUTATIONS).
const MAX_MUTATIONS: u32 = 4;

/// Returns `bytes` with a seeded burst of corruptions applied: truncated
/// at a random point, single bits flipped, random bytes inserted or
/// removed, or a chunk spliced to another position. Deterministic per
/// `(seed, bytes)`.
pub fn corrupt(seed: u64, bytes: &[u8]) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = bytes.to_vec();
    for _ in 0..rng.random_range(1..=MAX_MUTATIONS) {
        if out.is_empty() {
            out.push(rng.random::<u8>());
            continue;
        }
        match rng.random_range(0..5u32) {
            0 => {
                // Truncate: simulate a partial write or cut-off upload.
                let keep = rng.random_range(0..out.len());
                out.truncate(keep);
            }
            1 => {
                // Flip one bit: single-byte corruption (may also break
                // UTF-8, which the parsers must survive).
                let i = rng.random_range(0..out.len());
                out[i] ^= 1 << rng.random_range(0..8u32);
            }
            2 => {
                // Insert a random byte.
                let i = rng.random_range(0..=out.len());
                out.insert(i, rng.random::<u8>());
            }
            3 => {
                // Delete a byte.
                let i = rng.random_range(0..out.len());
                out.remove(i);
            }
            _ => {
                // Splice: copy a short chunk over another position,
                // duplicating structure (repeated keys, re-opened
                // brackets) that trips naive parsers.
                let from = rng.random_range(0..out.len());
                let to = rng.random_range(0..out.len());
                let chunk: Vec<u8> = out[from..].iter().take(8).copied().collect();
                for (offset, byte) in chunk.into_iter().enumerate() {
                    match out.get_mut(to + offset) {
                        Some(slot) => *slot = byte,
                        None => break,
                    }
                }
            }
        }
    }
    out
}

/// One seeded variant of `bytes` per seed in `seeds`, paired with the
/// seed that produced it — the "spool storm" shape: feed every variant
/// to a parser (or a running daemon's inbox) and name the seed in any
/// assertion that fails, so the offending input replays exactly.
pub fn storm(seeds: std::ops::Range<u64>, bytes: &[u8]) -> Vec<(u64, Vec<u8>)> {
    seeds.map(|seed| (seed, corrupt(seed, bytes))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_pairs_each_seed_with_its_variant() {
        let input = br#"{"jobs": []}"#;
        let variants = storm(0..32, input);
        assert_eq!(variants.len(), 32);
        for (seed, bytes) in &variants {
            assert_eq!(*bytes, corrupt(*seed, input), "seed {seed}");
        }
    }

    #[test]
    fn corruption_is_deterministic_per_seed() {
        let input = br#"{"jobs": [{"source": {"library": "Carpool Alert"}}]}"#;
        for seed in 0..64 {
            assert_eq!(corrupt(seed, input), corrupt(seed, input), "seed {seed}");
        }
    }

    #[test]
    fn seeds_produce_distinct_corruptions() {
        let input = b"library \"Ignition Illuminator\"\n";
        let distinct: std::collections::HashSet<Vec<u8>> =
            (0..64).map(|seed| corrupt(seed, input)).collect();
        assert!(
            distinct.len() > 32,
            "only {} distinct outputs",
            distinct.len()
        );
    }

    #[test]
    fn empty_input_still_mutates() {
        assert!(!corrupt(3, b"").is_empty(), "grows from nothing");
    }
}
