//! The seeded [`FaultInjector`] the chaos harness installs into the farm.
//!
//! Every decision — shuffle the pickup order? delay this pickup? fault
//! this stage boundary? — is drawn from a fresh RNG seeded by hashing the
//! run seed with the injection point's coordinates (domain-separated
//! SplitMix64). Decisions therefore never depend on wall-clock time,
//! worker identity, or the order workers happen to ask in, which is what
//! keeps reports and traces byte-identical across runs *and* across
//! worker counts.

use crate::plan::{ChaosPlan, FaultKind};
use crate::trace::{ChaosTrace, TraceEvent, TraceFault};
use eblocks_farm::{Fault, FaultInjector};
use eblocks_synth::{Stage, StageAbort};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Mutex;
use std::time::Duration;

/// Domain-separation salts: the same seed must not produce correlated
/// draws across the three decision kinds.
const SALT_ORDER: u64 = 0xeb0c_0001;
const SALT_PICKUP: u64 = 0xeb0c_0002;
const SALT_STAGE: u64 = 0xeb0c_0003;

/// Folds `parts` into one well-mixed 64-bit seed (SplitMix64 steps).
pub(crate) fn mix(parts: &[u64]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &part in parts {
        h ^= part;
        h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h = z ^ (z >> 31);
    }
    h
}

/// Stable id of `stage` for seed derivation. Frozen once shipped: the
/// original five stages keep their historical ids so old seeds replay
/// byte-identically; stages added later (lint) take the next free id
/// regardless of where they run in the pipeline.
fn stage_rank(stage: Stage) -> u64 {
    match stage {
        Stage::Partition => 0,
        Stage::Merge => 1,
        Stage::Rewrite => 2,
        Stage::Verify => 3,
        Stage::EmitC => 4,
        Stage::Lint => 5,
    }
}

/// Execution position of `stage` within one attempt, for sorting trace
/// events into pipeline order. Unlike [`stage_rank`] this renumbers
/// freely when stages are added — only relative order matters here.
fn exec_position(stage: Stage) -> u64 {
    match stage {
        Stage::Lint => 0,
        Stage::Partition => 1,
        Stage::Merge => 2,
        Stage::Rewrite => 3,
        Stage::Verify => 4,
        Stage::EmitC => 5,
    }
}

/// The seeded injector: implements the farm's [`FaultInjector`] seam and
/// records everything it fires for the run's [`ChaosTrace`].
///
/// Shared by every worker behind an `Arc` (see
/// [`run_chaos`](crate::run_chaos)); interior mutability is limited to
/// the trace recorder, so concurrent queries stay deterministic.
pub struct ChaosInjector {
    seed: u64,
    plan: ChaosPlan,
    order: Mutex<Option<Vec<usize>>>,
    events: Mutex<Vec<TraceEvent>>,
}

impl ChaosInjector {
    /// An injector deriving every decision from `seed` under `plan`.
    pub fn new(seed: u64, plan: ChaosPlan) -> Self {
        Self {
            seed,
            plan,
            order: Mutex::new(None),
            events: Mutex::new(Vec::new()),
        }
    }

    /// The seed this injector replays.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn record(&self, event: TraceEvent) {
        self.events.lock().expect("chaos event lock").push(event);
    }

    /// Snapshots what fired so far into a [`ChaosTrace`], sorted into the
    /// canonical (job, attempt, pipeline-position) order so the rendering
    /// is independent of worker interleaving. `jobs` is the batch size
    /// (used when the batch ran without a shuffled pickup order).
    pub fn trace(&self, jobs: usize) -> ChaosTrace {
        let mut events = self.events.lock().expect("chaos event lock").clone();
        events.sort_by_key(|e| {
            (
                e.job,
                e.attempt,
                e.stage.map_or(0, |s| 1 + exec_position(s)),
            )
        });
        let order = self
            .order
            .lock()
            .expect("chaos order lock")
            .clone()
            .unwrap_or_else(|| (0..jobs).collect());
        ChaosTrace {
            seed: self.seed,
            jobs,
            order,
            events,
        }
    }

    /// Turns a decided fault kind into the farm-level [`Fault`], recording
    /// it in the trace. Messages embed only the injection point's
    /// coordinates (never time), keeping reports byte-stable.
    fn enact(&self, job: usize, attempt: u32, stage: Stage, kind: FaultKind) -> Fault {
        let (fault, recorded, delay_micros) = match kind {
            FaultKind::Panic => (
                Fault::Panic(format!(
                    "chaos: injected panic (job {job}, attempt {attempt}, before {stage})"
                )),
                TraceFault::Panic,
                None,
            ),
            FaultKind::Timeout => (
                Fault::Abort(StageAbort::timeout(format!(
                    "chaos: injected timeout (job {job}, attempt {attempt}, before {stage})"
                ))),
                TraceFault::Timeout,
                None,
            ),
            FaultKind::Delay(delay) => (
                Fault::Delay(delay),
                TraceFault::Delay,
                Some(delay.as_micros() as u64),
            ),
        };
        self.record(TraceEvent {
            job,
            attempt,
            stage: Some(stage),
            fault: recorded,
            delay_micros,
        });
        fault
    }

    /// A uniform delay in `0..=plan.max_delay` from `rng`.
    fn draw_delay(&self, rng: &mut StdRng) -> Duration {
        let bound = self.plan.max_delay.as_micros() as u64;
        Duration::from_micros(rng.random_range(0..=bound))
    }
}

impl FaultInjector for ChaosInjector {
    fn pickup_order(&self, jobs: usize) -> Option<Vec<usize>> {
        let mut order: Vec<usize> = (0..jobs).collect();
        if self.plan.shuffle_pickup {
            // Fisher–Yates from a seed mixed over the batch size.
            let mut rng = StdRng::seed_from_u64(mix(&[self.seed, SALT_ORDER, jobs as u64]));
            for i in (1..jobs).rev() {
                order.swap(i, rng.random_range(0..=i));
            }
        }
        *self.order.lock().expect("chaos order lock") = Some(order.clone());
        Some(order)
    }

    fn pickup_delay(&self, job: usize) -> Option<Duration> {
        if self.plan.delay_probability <= 0.0 {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(mix(&[self.seed, SALT_PICKUP, job as u64]));
        if !rng.random_bool(self.plan.delay_probability) {
            return None;
        }
        let delay = self.draw_delay(&mut rng);
        self.record(TraceEvent {
            job,
            attempt: 0,
            stage: None,
            fault: TraceFault::Delay,
            delay_micros: Some(delay.as_micros() as u64),
        });
        Some(delay)
    }

    fn before_stage(&self, job: usize, attempt: u32, stage: Stage) -> Option<Fault> {
        // Pinned faults first: exact points always fire, storm or calm.
        if let Some(forced) = self
            .plan
            .forced
            .iter()
            .find(|f| (f.job, f.attempt, f.stage) == (job, attempt, stage))
        {
            return Some(self.enact(job, attempt, stage, forced.kind));
        }
        // One roll decides among the mutually exclusive outcomes, so the
        // per-point probabilities are exactly the configured ones.
        let mut rng = StdRng::seed_from_u64(mix(&[
            self.seed,
            SALT_STAGE,
            job as u64,
            u64::from(attempt),
            stage_rank(stage),
        ]));
        let roll: f64 = rng.random();
        let panic_at = self.plan.panic_probability;
        let timeout_at = panic_at + self.plan.timeout_probability;
        let delay_at = timeout_at + self.plan.delay_probability;
        let kind = if roll < panic_at {
            FaultKind::Panic
        } else if roll < timeout_at {
            FaultKind::Timeout
        } else if roll < delay_at {
            FaultKind::Delay(self.draw_delay(&mut rng))
        } else {
            return None;
        };
        Some(self.enact(job, attempt, stage, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ForcedFault;

    #[test]
    fn stage_ranks_are_frozen() {
        // Seed derivation mixes stage_rank into every decision, so these
        // ids are part of the replay contract: changing one silently
        // re-rolls every shipped chaos seed. Lint sits at 5 even though
        // it runs first (see exec_position).
        let frozen = [
            (Stage::Partition, 0),
            (Stage::Merge, 1),
            (Stage::Rewrite, 2),
            (Stage::Verify, 3),
            (Stage::EmitC, 4),
            (Stage::Lint, 5),
        ];
        for (stage, rank) in frozen {
            assert_eq!(stage_rank(stage), rank, "{stage:?}");
        }
    }

    #[test]
    fn mix_separates_domains_and_inputs() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]), "pure function");
        assert_ne!(mix(&[1, 2, 3]), mix(&[1, 3, 2]), "order matters");
        assert_ne!(mix(&[7, SALT_PICKUP, 0]), mix(&[7, SALT_STAGE, 0]));
        assert_ne!(mix(&[0]), mix(&[1]));
    }

    #[test]
    fn decisions_are_pure_functions_of_the_point() {
        let a = ChaosInjector::new(99, ChaosPlan::default());
        let b = ChaosInjector::new(99, ChaosPlan::default());
        assert_eq!(a.pickup_order(10), b.pickup_order(10));
        for job in 0..10 {
            assert_eq!(a.pickup_delay(job), b.pickup_delay(job));
            for attempt in 0..3 {
                for stage in [Stage::Partition, Stage::Merge, Stage::Verify] {
                    assert_eq!(
                        a.before_stage(job, attempt, stage),
                        b.before_stage(job, attempt, stage),
                        "job {job} attempt {attempt} {stage}"
                    );
                }
            }
        }
        // And query order does not matter: ask b again, backwards.
        for job in (0..10).rev() {
            assert_eq!(a.pickup_delay(job), b.pickup_delay(job));
        }
    }

    #[test]
    fn shuffled_pickup_is_a_permutation() {
        let injector = ChaosInjector::new(5, ChaosPlan::default());
        let order = injector.pickup_order(16).unwrap();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        assert_ne!(order, sorted, "seed 5 shuffles 16 jobs");
    }

    #[test]
    fn calm_plan_fires_only_pinned_faults() {
        let plan = ChaosPlan::calm().force(ForcedFault::panic(2, 1, Stage::Merge));
        let injector = ChaosInjector::new(0, plan);
        assert_eq!(injector.pickup_order(4), Some(vec![0, 1, 2, 3]));
        for job in 0..4 {
            assert_eq!(injector.pickup_delay(job), None);
        }
        assert_eq!(injector.before_stage(2, 0, Stage::Merge), None);
        assert_eq!(injector.before_stage(2, 1, Stage::Rewrite), None);
        let Some(Fault::Panic(message)) = injector.before_stage(2, 1, Stage::Merge) else {
            panic!("pinned fault must fire");
        };
        assert_eq!(
            message,
            "chaos: injected panic (job 2, attempt 1, before merge)"
        );
        let trace = injector.trace(4);
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].fault, TraceFault::Panic);
        assert_eq!(trace.order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn trace_events_sort_into_execution_order() {
        let injector = ChaosInjector::new(
            0,
            ChaosPlan::calm()
                .force(ForcedFault::timeout(1, 0, Stage::Verify))
                .force(ForcedFault::timeout(0, 1, Stage::Partition))
                .force(ForcedFault::timeout(0, 0, Stage::Merge)),
        );
        // Queried deliberately out of order, as racing workers would.
        injector.before_stage(1, 0, Stage::Verify);
        injector.before_stage(0, 1, Stage::Partition);
        injector.before_stage(0, 0, Stage::Merge);
        let keys: Vec<(usize, u32, Option<Stage>)> = injector
            .trace(2)
            .events
            .iter()
            .map(|e| (e.job, e.attempt, e.stage))
            .collect();
        assert_eq!(
            keys,
            vec![
                (0, 0, Some(Stage::Merge)),
                (0, 1, Some(Stage::Partition)),
                (1, 0, Some(Stage::Verify)),
            ]
        );
    }
}
