//! What chaos to inject: the storm's probabilities plus faults pinned to
//! exact points.
//!
//! A [`ChaosPlan`] has two halves. The *probabilistic* half (panic,
//! timeout, and delay probabilities, pickup shuffling) describes a storm
//! the injector samples deterministically from the seed. The *pinned*
//! half ([`ForcedFault`]) names exact `(job, attempt, stage)` points that
//! always fault — the tool tests use to place one panic at one index, or
//! to burn a whole retry budget on purpose.

use eblocks_synth::Stage;
use std::time::Duration;

/// The kind of fault a [`ForcedFault`] pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic before the stage runs, exercising the worker's per-job panic
    /// isolation.
    Panic,
    /// Abort the attempt with an injected timeout — fully deterministic
    /// (no clock involved), reported as timed-out.
    Timeout,
    /// Sleep for the given duration before the stage — a scheduling
    /// perturbation that only changes outcomes when a real
    /// [`job_timeout`](eblocks_farm::FarmConfig::job_timeout) is armed.
    Delay(Duration),
}

/// A fault pinned to an exact `(job, attempt, stage)` point.
///
/// Attempts are 0-based: attempt 0 is the first try, attempt 1 the first
/// retry. A fault pinned to attempt 0 only is *transient* — with a retry
/// budget the job recovers; pinned to every attempt it is *terminal*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForcedFault {
    /// Index of the job in batch submission order.
    pub job: usize,
    /// 0-based attempt the fault fires on.
    pub attempt: u32,
    /// The pipeline stage gated (the fault fires just before it runs).
    pub stage: Stage,
    /// What happens at the point.
    pub kind: FaultKind,
}

impl ForcedFault {
    /// A pinned panic at `(job, attempt, stage)`.
    pub fn panic(job: usize, attempt: u32, stage: Stage) -> Self {
        Self {
            job,
            attempt,
            stage,
            kind: FaultKind::Panic,
        }
    }

    /// A pinned injected timeout at `(job, attempt, stage)`.
    pub fn timeout(job: usize, attempt: u32, stage: Stage) -> Self {
        Self {
            job,
            attempt,
            stage,
            kind: FaultKind::Timeout,
        }
    }

    /// A pinned delay of `delay` at `(job, attempt, stage)`.
    pub fn delay(job: usize, attempt: u32, stage: Stage, delay: Duration) -> Self {
        Self {
            job,
            attempt,
            stage,
            kind: FaultKind::Delay(delay),
        }
    }
}

/// The shape of the storm a [`ChaosInjector`](crate::ChaosInjector)
/// samples.
///
/// Every probabilistic decision is a pure function of the seed and the
/// injection point — never of wall-clock time or worker identity — so the
/// same `(seed, plan)` produces the same faults, reports, and trace on
/// every run and at every worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Shuffle the order workers claim jobs in (a seeded permutation).
    pub shuffle_pickup: bool,
    /// Probability of an artificial delay, drawn independently at each
    /// job pickup and before each stage.
    pub delay_probability: f64,
    /// Upper bound on each artificial delay (drawn uniformly up to this).
    pub max_delay: Duration,
    /// Probability a stage boundary panics the job.
    pub panic_probability: f64,
    /// Probability a stage boundary times the attempt out (an injected,
    /// clock-free timeout).
    pub timeout_probability: f64,
    /// Faults pinned to exact points, checked before any probabilistic
    /// draw.
    pub forced: Vec<ForcedFault>,
}

impl Default for ChaosPlan {
    /// The standard storm `--chaos-seed` replays: shuffled pickup, delays
    /// on a quarter of the draws (up to 500µs), and a 5% panic / 5%
    /// timeout chance per stage boundary.
    fn default() -> Self {
        Self {
            shuffle_pickup: true,
            delay_probability: 0.25,
            max_delay: Duration::from_micros(500),
            panic_probability: 0.05,
            timeout_probability: 0.05,
            forced: Vec::new(),
        }
    }
}

impl ChaosPlan {
    /// No storm at all: nothing is shuffled and only [`ChaosPlan::forced`]
    /// faults fire. The starting point for tests that pin exact faults.
    pub fn calm() -> Self {
        Self {
            shuffle_pickup: false,
            delay_probability: 0.0,
            max_delay: Duration::ZERO,
            panic_probability: 0.0,
            timeout_probability: 0.0,
            forced: Vec::new(),
        }
    }

    /// Adds a pinned fault (builder-style).
    pub fn force(mut self, fault: ForcedFault) -> Self {
        self.forced.push(fault);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calm_plan_is_silent() {
        let plan = ChaosPlan::calm();
        assert!(!plan.shuffle_pickup);
        assert_eq!(plan.delay_probability, 0.0);
        assert_eq!(plan.panic_probability, 0.0);
        assert_eq!(plan.timeout_probability, 0.0);
        assert!(plan.forced.is_empty());
    }

    #[test]
    fn force_appends_pinned_faults() {
        let plan = ChaosPlan::calm()
            .force(ForcedFault::panic(3, 0, Stage::Partition))
            .force(ForcedFault::timeout(1, 2, Stage::Merge))
            .force(ForcedFault::delay(
                0,
                0,
                Stage::Verify,
                Duration::from_micros(7),
            ));
        assert_eq!(plan.forced.len(), 3);
        assert_eq!(plan.forced[0].kind, FaultKind::Panic);
        assert_eq!(plan.forced[1].attempt, 2);
        assert_eq!(
            plan.forced[2].kind,
            FaultKind::Delay(Duration::from_micros(7))
        );
    }
}
