//! The harness's core contract, over a pinned seed set: a chaos run is a
//! pure function of its seed — repeat runs and different worker counts
//! produce byte-identical deterministic reports and traces, the seed
//! alone replays a failure, and no storm ever loses or duplicates a job.

use eblocks_chaos::{run_chaos, ChaosConfig, ChaosPlan, ForcedFault};
use eblocks_farm::{Batch, FarmConfig, Job, JobMode, JsonOptions};
use eblocks_synth::Stage;

/// The seed sweep CI smokes (mirrored in the workflow's chaos step).
const SEEDS: [u64; 8] = [1, 7, 42, 1337, 2026, 0x0eb0_c500, 0xdead_beef, u64::MAX];

fn storm_batch() -> Batch {
    Batch::new(vec![
        Job::library("Ignition Illuminator"),
        Job::library("Podium Timer 3").with_partitioner("refine"),
        Job::library("Carpool Alert").with_verify(false),
        Job::generated(8, 11),
        Job::generated(12, 5).with_mode(JobMode::Partition),
        Job::library("Night Lamp Controller"),
    ])
}

fn deterministic_json(config: FarmConfig, chaos: &ChaosConfig) -> (String, String) {
    let outcome = run_chaos(&storm_batch(), config.retries(3), chaos);
    (
        outcome.report.to_json(&JsonOptions::default()),
        outcome.trace.render_text(),
    )
}

#[test]
fn repeat_runs_are_byte_identical_per_seed() {
    for seed in SEEDS {
        let chaos = ChaosConfig::from_seed(seed);
        let (report_a, trace_a) = deterministic_json(FarmConfig::with_workers(4), &chaos);
        let (report_b, trace_b) = deterministic_json(FarmConfig::with_workers(4), &chaos);
        assert_eq!(report_a, report_b, "seed {seed}: report drifted");
        assert_eq!(trace_a, trace_b, "seed {seed}: trace drifted");
    }
}

#[test]
fn worker_count_does_not_change_outcomes() {
    for seed in SEEDS {
        let chaos = ChaosConfig::from_seed(seed);
        let (report_1, trace_1) = deterministic_json(FarmConfig::with_workers(1), &chaos);
        for workers in [2, 8] {
            let (report_n, trace_n) = deterministic_json(FarmConfig::with_workers(workers), &chaos);
            assert_eq!(report_1, report_n, "seed {seed}, {workers} workers");
            assert_eq!(trace_1, trace_n, "seed {seed}, {workers} workers");
        }
    }
}

#[test]
fn the_seed_alone_replays_a_run() {
    // Nothing but the number survives (the printed `--chaos-seed N`): a
    // config rebuilt from it reproduces per-job statuses and the trace.
    for seed in SEEDS {
        let original = run_chaos(
            &storm_batch(),
            FarmConfig::with_workers(3).retries(3),
            &ChaosConfig::from_seed(seed),
        );
        let replayed = run_chaos(
            &storm_batch(),
            FarmConfig::with_workers(3).retries(3),
            &ChaosConfig::from_seed(seed),
        );
        // Chaos fault messages are deterministic, so the full status
        // (variant + message) must replay, not just ok-vs-failed.
        let statuses = |o: &eblocks_chaos::ChaosOutcome| -> Vec<(String, String)> {
            o.report
                .jobs
                .iter()
                .map(|j| (j.name.clone(), format!("{:?}", j.status)))
                .collect()
        };
        assert_eq!(statuses(&original), statuses(&replayed), "seed {seed}");
        assert_eq!(original.trace, replayed.trace, "seed {seed}");
        assert_eq!(original.trace.seed, seed);
    }
}

#[test]
fn no_storm_loses_or_duplicates_a_job() {
    let submitted: Vec<String> = storm_batch().jobs.iter().map(|j| j.name.clone()).collect();
    for seed in SEEDS {
        let outcome = run_chaos(
            &storm_batch(),
            FarmConfig::with_workers(4).retries(2),
            &ChaosConfig::from_seed(seed),
        );
        let reported: Vec<String> = outcome.report.jobs.iter().map(|j| j.name.clone()).collect();
        assert_eq!(reported, submitted, "seed {seed}: rows in submission order");
        // The trace's pickup order is a permutation of the batch.
        let mut order = outcome.trace.order.clone();
        order.sort_unstable();
        assert_eq!(
            order,
            (0..submitted.len()).collect::<Vec<_>>(),
            "seed {seed}"
        );
    }
}

#[test]
fn the_storm_actually_storms() {
    // Sanity against a silently-neutered harness: across the seed sweep
    // the default plan must inject faults, force retries, and (for at
    // least one seed) fail a job outright.
    // retries(1) rather than 3: enough budget to prove recovery happens,
    // small enough that some injected faults stay terminal in this
    // (deterministic) sweep.
    let mut events = 0usize;
    let mut retries = 0u32;
    let mut failures = 0usize;
    for seed in SEEDS {
        let outcome = run_chaos(
            &storm_batch(),
            FarmConfig::with_workers(2).retries(1),
            &ChaosConfig::from_seed(seed),
        );
        events += outcome.trace.events.len();
        retries += outcome.report.jobs.iter().map(|j| j.retries).sum::<u32>();
        failures += outcome.report.failed();
    }
    assert!(events > 0, "no faults fired across the whole sweep");
    assert!(retries > 0, "no retries consumed across the whole sweep");
    // Failures are seed-dependent; the sweep is chosen to include some.
    assert!(failures > 0, "no seed in the sweep produced a failure");
}

#[test]
fn pinned_faults_compose_with_the_storm_contract() {
    // A calm plan with one pinned transient panic: deterministic recovery,
    // retry accounted, report otherwise identical to a fault-free run.
    let baseline = run_chaos(
        &storm_batch(),
        FarmConfig::with_workers(2),
        &ChaosConfig::with_plan(0, ChaosPlan::calm()),
    );
    assert!(baseline.report.all_ok());
    assert!(baseline.trace.events.is_empty());

    let plan = ChaosPlan::calm().force(ForcedFault::panic(3, 0, Stage::Partition));
    let chaos = ChaosConfig::with_plan(0, plan);
    let outcome = run_chaos(
        &storm_batch(),
        FarmConfig::with_workers(2).retries(1),
        &chaos,
    );
    assert!(
        outcome.report.all_ok(),
        "transient fault must be retried away"
    );
    assert_eq!(outcome.report.jobs[3].retries, 1);
    assert_eq!(outcome.trace.events.len(), 1);
    assert_eq!(outcome.trace.events[0].job, 3);
}
