//! The input-bytes fault surface: seeded corruptions of valid manifest
//! and JSON inputs pushed through `Batch::from_file` (and the text-level
//! parsers) must come back as `Ok` or a `ManifestError` — never a panic.

use eblocks_chaos::corrupt::corrupt;
use eblocks_farm::Batch;
use std::path::PathBuf;

const VALID_MANIFEST: &str = "\
# chaos corruption substrate (v1)
default partitioner=pare-down verify=false

job library=\"Podium Timer 3\" partitioner=refine name=pt3
job generated=20 seed=7 mode=partition
job library=\"Carpool Alert\" optimize=true
";

const VALID_JSON: &str = r#"{
  "default_partitioner": "pare-down",
  "jobs": [
    {"source": {"library": "Ignition Illuminator"}},
    {"source": {"generated": {"inner": 12, "seed": 5}},
     "options": {"mode": "partition"}}
  ]
}"#;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("eblocks-chaos-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn corrupted_files_error_but_never_panic() {
    let dir = tempdir("from-file");
    let path = dir.join("input.manifest");
    for (label, valid) in [("v1", VALID_MANIFEST), ("v2", VALID_JSON)] {
        for seed in 0..256u64 {
            let bytes = corrupt(seed, valid.as_bytes());
            std::fs::write(&path, &bytes).expect("write corrupted input");
            // Ok (the corruption happened to stay well-formed) and Err
            // are both fine; only a panic would fail the test.
            let _ = Batch::from_file(&path);
            // The text-level parsers get the same bytes where they form
            // a string at all.
            if let Ok(text) = std::str::from_utf8(&bytes) {
                let _ = Batch::parse(text);
                let _ = Batch::from_json(text);
            }
            let _ = label;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uncorrupted_substrates_still_parse() {
    // Guard the fuzz substrate itself: if the valid inputs rot, the
    // corruption test would be fuzzing noise against noise.
    let batch = Batch::parse(VALID_MANIFEST).expect("valid v1 manifest");
    assert_eq!(batch.jobs.len(), 3);
    let batch = Batch::from_json(VALID_JSON).expect("valid v2 manifest");
    assert_eq!(batch.jobs.len(), 2);
}
