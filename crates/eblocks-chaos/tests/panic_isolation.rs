//! Panic isolation at every position: a pinned panic at each index of a
//! 15-job batch, across worker counts {1, 2, 8}, must leave the other 14
//! rows (and with a retry budget, the whole report) byte-identical to the
//! fault-free run.

use eblocks_chaos::{run_chaos, ChaosConfig, ChaosPlan, ForcedFault};
use eblocks_farm::{Batch, FarmConfig, Job, JobMode, JsonOptions};
use eblocks_synth::Stage;
use serde::{json, Value};

const JOBS: usize = 15;
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Fifteen quick partition-mode jobs over generated designs.
fn batch() -> Batch {
    Batch::new(
        (0..JOBS)
            .map(|i| Job::generated(4 + i % 5, i as u64).with_mode(JobMode::Partition))
            .collect(),
    )
}

/// The report as a parsed JSON value (deterministic rendering).
fn report_value(config: FarmConfig, chaos: &ChaosConfig) -> Value {
    let outcome = run_chaos(&batch(), config, chaos);
    json::parse(&outcome.report.to_json(&JsonOptions::default())).expect("report JSON parses")
}

fn results(value: &Value) -> &[Value] {
    value
        .get("results")
        .and_then(Value::as_array)
        .expect("results array")
}

/// `value` as an object with `drop` removed — for comparing rows and
/// summaries modulo one expected field.
fn without_key(value: &Value, drop: &str) -> Value {
    let Value::Object(fields) = value else {
        panic!("not an object: {value:?}");
    };
    Value::Object(fields.iter().filter(|(k, _)| k != drop).cloned().collect())
}

#[test]
fn panicked_job_never_disturbs_the_other_fourteen() {
    let baseline = report_value(
        FarmConfig::with_workers(1),
        &ChaosConfig::with_plan(0, ChaosPlan::calm()),
    );
    let baseline_rows = results(&baseline);
    assert_eq!(baseline_rows.len(), JOBS);

    for target in 0..JOBS {
        let plan = ChaosPlan::calm().force(ForcedFault::panic(target, 0, Stage::Partition));
        for workers in WORKER_COUNTS {
            let report = report_value(
                FarmConfig::with_workers(workers),
                &ChaosConfig::with_plan(0, plan.clone()),
            );
            let rows = results(&report);
            assert_eq!(rows.len(), JOBS, "job {target}, {workers} workers");
            for (index, row) in rows.iter().enumerate() {
                if index == target {
                    assert_eq!(
                        row.get("status").and_then(Value::as_str),
                        Some("panicked"),
                        "job {target}, {workers} workers: {row:?}"
                    );
                    let error = row.get("error").and_then(Value::as_str).unwrap_or("");
                    assert!(error.starts_with("chaos: injected panic"), "{error}");
                } else {
                    assert_eq!(
                        row, &baseline_rows[index],
                        "job {target} panicking (at {workers} workers) disturbed row {index}"
                    );
                }
            }
        }
    }
}

#[test]
fn a_retry_budget_makes_the_whole_report_byte_identical() {
    // The panic is pinned to attempt 0 only, so with one retry the target
    // job recovers: everything must match the fault-free run except the
    // target row's retry counter (and the summary's retry total).
    let baseline = report_value(
        FarmConfig::with_workers(1),
        &ChaosConfig::with_plan(0, ChaosPlan::calm()),
    );
    let baseline_rows = results(&baseline);
    let baseline_summary = baseline.get("batch").expect("batch summary");

    for target in 0..JOBS {
        let plan = ChaosPlan::calm().force(ForcedFault::panic(target, 0, Stage::Partition));
        for workers in WORKER_COUNTS {
            let report = report_value(
                FarmConfig::with_workers(workers).retries(1),
                &ChaosConfig::with_plan(0, plan.clone()),
            );
            let summary = report.get("batch").expect("batch summary");
            assert_eq!(
                summary.get("retries").and_then(Value::as_u64),
                Some(1),
                "job {target}, {workers} workers"
            );
            assert_eq!(
                without_key(summary, "retries"),
                without_key(baseline_summary, "retries"),
                "job {target}, {workers} workers: summary drifted"
            );
            let rows = results(&report);
            for (index, row) in rows.iter().enumerate() {
                if index == target {
                    assert_eq!(
                        row.get("retries").and_then(Value::as_u64),
                        Some(1),
                        "job {target}, {workers} workers: {row:?}"
                    );
                    assert_eq!(
                        without_key(row, "retries"),
                        without_key(&baseline_rows[index], "retries"),
                        "job {target}, {workers} workers: recovered row drifted"
                    );
                } else {
                    assert_eq!(
                        row, &baseline_rows[index],
                        "job {target} retrying (at {workers} workers) disturbed row {index}"
                    );
                }
            }
        }
    }
}
