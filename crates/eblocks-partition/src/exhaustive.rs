//! Optimal exhaustive search (§4.1).
//!
//! Enumerates every assignment of inner blocks to partitions-or-uncovered,
//! with the paper's symmetry pruning ("all empty programmable blocks in a
//! combination are indistinguishable": a block may only open the *first*
//! unused partition). On top of that we add sound pruning that the paper did
//! not need at its scale:
//!
//! * **objective bound** — abandon a prefix whose already-committed cost
//!   cannot beat the incumbent (the incumbent is seeded with the PareDown
//!   result, so the search starts with a strong bound);
//! * **permanent-pin bound** — abandon a prefix as soon as a partition's
//!   *permanent* pin demand (signals from sensors or from blocks that can no
//!   longer join the partition) exceeds the budget. Plain partial-cost
//!   pruning would be unsound because adding a block can *reduce* a
//!   partition's pin demand (convergence), but permanent demand only grows;
//! * **singleton feasibility** — abandon a prefix whose single-member
//!   partitions outnumber the blocks still unassigned.
//!
//! An optional time limit makes the search usable inside sweeps; on expiry
//! the incumbent is returned with [`Partitioning::is_complete`] `== false`.

use crate::constraints::PartitionConstraints;
use crate::pare_down::pare_down;
use crate::result::Partitioning;
use eblocks_core::{BitSet, BlockId, Design, InnerIndex};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Options for [`exhaustive`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveOptions {
    /// Abort after this much wall-clock time, returning the incumbent.
    pub time_limit: Option<Duration>,
    /// Skip seeding the incumbent with PareDown (used by benchmarks that
    /// want the raw search cost).
    pub no_seed: bool,
    /// Disable every pruning technique the paper did not have, keeping only
    /// the empty-partition symmetry pruning of §4.1. Exposes the paper's
    /// raw exponential runtime shape; results are identical (both modes are
    /// exact), only slower. Implies `no_seed`.
    pub paper_pruning_only: bool,
}

/// Runs the exhaustive search and returns an optimal partitioning (or the
/// best found before the time limit).
pub fn exhaustive(
    design: &Design,
    constraints: &PartitionConstraints,
    options: ExhaustiveOptions,
) -> Partitioning {
    let index = InnerIndex::new(design);
    let n = index.len();

    let mut search = Search {
        design,
        constraints,
        index: &index,
        n,
        assignment: vec![Unassigned; n],
        bins: Vec::new(),
        uncovered: 0,
        best: None,
        deadline: options.time_limit.map(|d| Instant::now() + d),
        timed_out: false,
        nodes: 0,
        paper_pruning_only: options.paper_pruning_only,
    };

    if !options.no_seed && !options.paper_pruning_only {
        let seed = pare_down(design, constraints);
        search.best = Some(Incumbent {
            objective: seed.objective(),
            partitions: seed.partitions().to_vec(),
            uncovered: seed.uncovered().to_vec(),
        });
    }

    search.dfs(0);

    let complete = !search.timed_out;
    match search.best {
        Some(best) => Partitioning::new(best.partitions, best.uncovered, "exhaustive", complete),
        None => Partitioning::new(Vec::new(), index.blocks().to_vec(), "exhaustive", complete),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Unassigned,
    Uncovered,
    Bin(usize),
}
use Slot::{Bin, Unassigned, Uncovered};

struct Incumbent {
    objective: (usize, usize),
    partitions: Vec<Vec<BlockId>>,
    uncovered: Vec<BlockId>,
}

struct Search<'a> {
    design: &'a Design,
    constraints: &'a PartitionConstraints,
    index: &'a InnerIndex,
    n: usize,
    assignment: Vec<Slot>,
    bins: Vec<BitSet>,
    uncovered: usize,
    best: Option<Incumbent>,
    deadline: Option<Instant>,
    timed_out: bool,
    nodes: u64,
    paper_pruning_only: bool,
}

impl Search<'_> {
    fn dfs(&mut self, i: usize) {
        if self.timed_out {
            return;
        }
        self.nodes += 1;
        if self.nodes.is_multiple_of(4096) {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    self.timed_out = true;
                    return;
                }
            }
        }

        let open_bins = self.bins.iter().filter(|b| !b.is_empty()).count();

        // Objective bound: uncovered count and open partitions only grow
        // along a branch, so `uncovered + open` bounds the final total from
        // below. Ties on total are broken by fewer uncovered blocks; reaching
        // total == bound requires every remaining block to join an existing
        // partition, which pins the final uncovered count to the current one.
        if !self.paper_pruning_only {
            if let Some(best) = &self.best {
                let lower_bound = self.uncovered + open_bins;
                let improves = lower_bound < best.objective.0
                    || (lower_bound == best.objective.0 && self.uncovered < best.objective.1);
                if !improves {
                    return;
                }
            }

            // Singleton feasibility: each 1-member partition needs a mate.
            let singletons = self.bins.iter().filter(|b| b.len() == 1).count();
            if singletons > self.n - i {
                return;
            }
        }

        if i == self.n {
            self.consider_leaf();
            return;
        }

        // Choice 1: leave block i uncovered.
        self.assignment[i] = Uncovered;
        self.uncovered += 1;
        self.dfs(i + 1);
        self.uncovered -= 1;

        // Choice 2: join each existing partition.
        for bin_idx in 0..self.bins.len() {
            self.assignment[i] = Bin(bin_idx);
            self.bins[bin_idx].insert(i);
            if self.paper_pruning_only || self.permanent_demand_ok(bin_idx, i + 1) {
                self.dfs(i + 1);
            }
            self.bins[bin_idx].remove(i);
        }

        // Choice 3: open one new partition (symmetry pruning: empty
        // partitions are indistinguishable, so only the first is tried; a
        // valid partition needs ≥ 2 blocks, so opening more than n/2 is
        // pointless).
        if self.bins.len() < self.n / 2 && i + 1 < self.n {
            let bin_idx = self.bins.len();
            let mut members = self.index.empty_set();
            members.insert(i);
            self.bins.push(members);
            self.assignment[i] = Bin(bin_idx);
            if self.paper_pruning_only || self.permanent_demand_ok(bin_idx, i + 1) {
                self.dfs(i + 1);
            }
            self.bins.pop();
        }

        self.assignment[i] = Unassigned;
    }

    /// Sound lower bound on partition `bin_idx`'s eventual pin demand, given
    /// that only blocks with dense position `>= next` may still join it.
    /// Signals to/from sensors, outputs, and already-assigned blocks are
    /// permanent.
    fn permanent_demand_ok(&self, bin_idx: usize, next: usize) -> bool {
        let bin = &self.bins[bin_idx];
        let mut permanent_inputs: HashSet<(BlockId, u8)> = HashSet::new();
        let mut permanent_outputs: HashSet<(BlockId, u8)> = HashSet::new();

        for pos in bin.iter() {
            let block = self.index.block(pos);
            for w in self.design.in_wires(block) {
                match self.index.position(w.from) {
                    // Non-inner sources (sensors, comm) can never join.
                    None => {
                        permanent_inputs.insert((w.from, w.from_port));
                    }
                    Some(p) => {
                        if bin.contains(p) {
                            continue; // internal signal
                        }
                        // Assigned elsewhere: permanent. Unassigned (p >=
                        // next): might still join, not permanent.
                        if p < next && self.assignment[p] != Bin(bin_idx) {
                            permanent_inputs.insert((w.from, w.from_port));
                        }
                    }
                }
            }
            for w in self.design.out_wires(block) {
                let permanent = match self.index.position(w.to) {
                    None => true,
                    Some(p) => !bin.contains(p) && p < next && self.assignment[p] != Bin(bin_idx),
                };
                if permanent {
                    permanent_outputs.insert((w.from, w.from_port));
                }
            }
        }

        permanent_inputs.len() <= self.constraints.spec.inputs as usize
            && permanent_outputs.len() <= self.constraints.spec.outputs as usize
    }

    fn consider_leaf(&mut self) {
        let open: Vec<&BitSet> = self.bins.iter().filter(|b| !b.is_empty()).collect();
        for bin in &open {
            if bin.len() < 2 || !self.constraints.fits(self.design, self.index, bin) {
                return;
            }
        }
        let objective = (self.uncovered + open.len(), self.uncovered);
        let better = match &self.best {
            None => true,
            Some(best) => objective < best.objective,
        };
        if better {
            let partitions = open.iter().map(|b| self.index.resolve(b)).collect();
            let uncovered = (0..self.n)
                .filter(|&p| self.assignment[p] == Uncovered)
                .map(|p| self.index.block(p))
                .collect();
            self.best = Some(Incumbent {
                objective,
                partitions,
                uncovered,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{ComputeKind, Design, OutputKind, SensorKind};

    fn chain(n: usize) -> Design {
        let mut d = Design::new("chain");
        let s = d.add_block("s", SensorKind::Button);
        let mut prev = s;
        for i in 0..n {
            let g = d.add_block(format!("g{i}"), ComputeKind::Not);
            d.connect((prev, 0), (g, 0)).unwrap();
            prev = g;
        }
        let o = d.add_block("o", OutputKind::Led);
        d.connect((prev, 0), (o, 0)).unwrap();
        d
    }

    /// Unpruned brute force over all assignments, as a correctness oracle.
    fn brute_force_objective(
        design: &Design,
        constraints: &PartitionConstraints,
    ) -> (usize, usize) {
        let index = InnerIndex::new(design);
        let n = index.len();
        assert!(n <= 7, "oracle is exponential");
        // Each block gets a label 0..=n (0 = uncovered, k = bin k).
        let mut best = (usize::MAX, usize::MAX);
        let mut labels = vec![0usize; n];
        loop {
            // Evaluate.
            let mut bins: Vec<BitSet> = (0..n).map(|_| index.empty_set()).collect();
            let mut uncovered = 0;
            for (pos, &label) in labels.iter().enumerate() {
                if label == 0 {
                    uncovered += 1;
                } else {
                    bins[label - 1].insert(pos);
                }
            }
            let open: Vec<&BitSet> = bins.iter().filter(|b| !b.is_empty()).collect();
            let valid = open
                .iter()
                .all(|b| b.len() >= 2 && constraints.fits(design, &index, b));
            if valid {
                best = best.min((uncovered + open.len(), uncovered));
            }
            // Increment odometer.
            let mut i = 0;
            loop {
                if i == n {
                    return best;
                }
                labels[i] += 1;
                if labels[i] <= n {
                    break;
                }
                labels[i] = 0;
                i += 1;
            }
        }
    }

    #[test]
    fn matches_brute_force_on_chains() {
        for n in 1..=6 {
            let d = chain(n);
            let c = PartitionConstraints::default();
            let r = exhaustive(&d, &c, ExhaustiveOptions::default());
            r.verify(&d, &c).unwrap();
            assert!(r.is_complete());
            assert_eq!(r.objective(), brute_force_objective(&d, &c), "n={n}");
        }
    }

    #[test]
    fn matches_brute_force_on_branchy_design() {
        // s -> sp -> (a, b); a,b -> c; c -> o1; sp -> d -> o2.
        let mut d = Design::new("branchy");
        let s = d.add_block("s", SensorKind::Button);
        let sp = d.add_block("sp", ComputeKind::Splitter);
        let a = d.add_block("a", ComputeKind::Not);
        let b = d.add_block("b", ComputeKind::Toggle);
        let c = d.add_block("c", ComputeKind::and2());
        let e = d.add_block("e", ComputeKind::Not);
        let o1 = d.add_block("o1", OutputKind::Led);
        let o2 = d.add_block("o2", OutputKind::Buzzer);
        d.connect((s, 0), (sp, 0)).unwrap();
        d.connect((sp, 0), (a, 0)).unwrap();
        d.connect((sp, 1), (b, 0)).unwrap();
        d.connect((a, 0), (c, 0)).unwrap();
        d.connect((b, 0), (c, 1)).unwrap();
        d.connect((c, 0), (o1, 0)).unwrap();
        d.connect((c, 0), (e, 0)).unwrap();
        d.connect((e, 0), (o2, 0)).unwrap();

        let c9 = PartitionConstraints::default();
        let r = exhaustive(&d, &c9, ExhaustiveOptions::default());
        r.verify(&d, &c9).unwrap();
        assert_eq!(r.objective(), brute_force_objective(&d, &c9));
    }

    #[test]
    fn optimal_never_worse_than_pare_down() {
        use crate::pare_down::pare_down;
        for n in 1..=8 {
            let d = chain(n);
            let c = PartitionConstraints::default();
            let opt = exhaustive(&d, &c, ExhaustiveOptions::default());
            let heur = pare_down(&d, &c);
            assert!(
                opt.objective() <= heur.objective(),
                "n={n}: optimal {:?} vs heuristic {:?}",
                opt.objective(),
                heur.objective()
            );
        }
    }

    #[test]
    fn no_seed_gives_same_objective() {
        let d = chain(6);
        let c = PartitionConstraints::default();
        let seeded = exhaustive(&d, &c, ExhaustiveOptions::default());
        let raw = exhaustive(
            &d,
            &c,
            ExhaustiveOptions {
                no_seed: true,
                ..Default::default()
            },
        );
        assert_eq!(seeded.objective(), raw.objective());
    }

    #[test]
    fn time_limit_returns_incumbent() {
        let d = chain(30);
        let c = PartitionConstraints::default();
        let r = exhaustive(
            &d,
            &c,
            ExhaustiveOptions {
                time_limit: Some(Duration::from_millis(1)),
                ..Default::default()
            },
        );
        // Even when truncated, the result is valid (seeded incumbent).
        r.verify(&d, &c).unwrap();
    }

    #[test]
    fn empty_design_handled() {
        let mut d = Design::new("none");
        let s = d.add_block("s", SensorKind::Button);
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s, 0), (o, 0)).unwrap();
        let r = exhaustive(
            &d,
            &PartitionConstraints::default(),
            ExhaustiveOptions::default(),
        );
        assert_eq!(r.inner_total(), 0);
        assert!(r.is_complete());
    }
}

#[cfg(test)]
mod paper_mode_tests {
    use super::*;
    use crate::constraints::PartitionConstraints;
    use eblocks_core::{ComputeKind, Design, OutputKind, SensorKind};

    #[test]
    fn paper_pruning_mode_is_exact() {
        // Both modes must agree on the objective for a batch of shapes.
        for n in [2usize, 4, 6, 8] {
            let mut d = Design::new("chain");
            let s = d.add_block("s", SensorKind::Button);
            let mut prev = s;
            for i in 0..n {
                let g = d.add_block(format!("g{i}"), ComputeKind::Not);
                d.connect((prev, 0), (g, 0)).unwrap();
                prev = g;
            }
            let o = d.add_block("o", OutputKind::Led);
            d.connect((prev, 0), (o, 0)).unwrap();

            let c = PartitionConstraints::default();
            let fast = exhaustive(&d, &c, ExhaustiveOptions::default());
            let slow = exhaustive(
                &d,
                &c,
                ExhaustiveOptions {
                    paper_pruning_only: true,
                    ..Default::default()
                },
            );
            assert!(slow.is_complete());
            assert_eq!(fast.objective(), slow.objective(), "n={n}");
        }
    }
}
