//! Simulated-annealing partitioner (extension).
//!
//! The paper evaluates a fast greedy heuristic (PareDown) against an
//! exponential exhaustive search, leaving the classic middle ground of EDA
//! partitioning — stochastic local search — unexplored. This module fills
//! that gap with a Metropolis annealer over block-to-partition assignments,
//! so the benchmark harness can ask: *how much optimality does PareDown
//! leave on the table relative to a search that spends 1000× its runtime?*
//!
//! The annealer walks *relaxed* states in which partitions may temporarily
//! violate the pin budget or the ≥2-block rule; violations are charged an
//! energy penalty so the walk is driven back toward feasibility. The final
//! state is repaired (infeasible partitions and singletons dissolve to
//! uncovered), so the returned [`Partitioning`] always verifies. For a
//! *feasible* state the energy equals the paper's objective — the number of
//! inner blocks after replacement.
//!
//! Determinism: runs are reproducible for a fixed [`AnnealConfig::seed`] —
//! including multi-restart runs, whose per-restart seeds derive from the
//! base seed and whose winner is selected by a deterministic tie-break.
//!
//! Setting [`AnnealConfig::restarts`] above one runs that many independent
//! walks on scoped OS threads (the ROADMAP's "parallel annealing restarts"
//! item) and returns the best-of-N by the paper's objective.

use crate::constraints::PartitionConstraints;
use crate::result::Partitioning;
use eblocks_core::{cut_cost, BitSet, Design, InnerIndex};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Tuning knobs for [`anneal`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Total Metropolis steps. Default `20_000`.
    pub iterations: u32,
    /// Starting temperature. Default `2.5` (roughly the energy of undoing
    /// one good merge plus a pin violation).
    pub initial_temp: f64,
    /// Final temperature; the schedule decays geometrically from
    /// [`initial_temp`](Self::initial_temp) to this. Default `0.02`.
    pub final_temp: f64,
    /// RNG seed; identical seeds give identical results. Default `0xEB10C5`.
    pub seed: u64,
    /// Start from the PareDown solution instead of the all-uncovered state.
    /// Default `true` — the annealer then acts as a stochastic refiner and
    /// can never end worse than its seed (the best-seen state is kept).
    pub seed_with_pare_down: bool,
    /// Independent restarts to run in parallel (each on its own scoped
    /// thread, with seed `seed + restart_index`); the best result by
    /// [`Partitioning::objective`] wins, ties broken by lowest restart
    /// index. Default `1` — a single, in-thread run.
    pub restarts: u32,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        Self {
            iterations: 20_000,
            initial_temp: 2.5,
            final_temp: 0.02,
            seed: 0xEB10C5,
            seed_with_pare_down: true,
            restarts: 1,
        }
    }
}

impl AnnealConfig {
    /// A configuration with the given step budget, defaults otherwise.
    pub fn with_iterations(iterations: u32) -> Self {
        Self {
            iterations,
            ..Self::default()
        }
    }
}

/// Per-group bookkeeping: the member set and its cached energy contribution.
struct Group {
    members: BitSet,
    cost: f64,
}

/// Mutable annealer state over inner-block positions.
struct State<'a> {
    design: &'a Design,
    index: &'a InnerIndex,
    constraints: &'a PartitionConstraints,
    /// `assignment[pos]` is the group slot of inner block `pos`, or `None`
    /// when the block is uncovered.
    assignment: Vec<Option<usize>>,
    groups: Vec<Group>,
    /// Group slots whose member set is empty, available for reuse.
    free_slots: Vec<usize>,
    energy: f64,
}

impl<'a> State<'a> {
    fn group_cost(&self, members: &BitSet) -> f64 {
        match members.len() {
            0 => 0.0,
            // A singleton never becomes a partition; it repairs to one
            // uncovered block.
            1 => 1.0,
            n => {
                let cost = cut_cost(self.design, self.index, members);
                let spec = self.constraints.spec;
                let overflow = cost.inputs.saturating_sub(spec.inputs as usize)
                    + cost.outputs.saturating_sub(spec.outputs as usize);
                if overflow == 0 && self.constraints.fits(self.design, self.index, members) {
                    1.0
                } else {
                    // Repairs to `n` uncovered blocks; the extra overflow
                    // term gives the walk a gradient toward feasibility.
                    n as f64 + overflow as f64
                }
            }
        }
    }

    fn recompute_group(&mut self, slot: usize) {
        let cost = self.group_cost(&self.groups[slot].members);
        self.energy += cost - self.groups[slot].cost;
        self.groups[slot].cost = cost;
    }

    /// Detaches `pos` from its current group (if any), updating energy.
    fn detach(&mut self, pos: usize) -> Option<usize> {
        let from = self.assignment[pos].take()?;
        self.groups[from].members.remove(pos);
        if self.groups[from].members.is_empty() {
            self.free_slots.push(from);
        }
        self.recompute_group(from);
        Some(from)
    }

    /// Attaches `pos` to `slot` (or uncovered when `None`), updating energy.
    fn attach(&mut self, pos: usize, slot: Option<usize>) {
        match slot {
            Some(s) => {
                self.groups[s].members.insert(pos);
                self.assignment[pos] = Some(s);
                self.recompute_group(s);
            }
            None => {
                self.assignment[pos] = None;
                self.energy += 1.0;
            }
        }
    }

    fn fresh_slot(&mut self) -> usize {
        if let Some(s) = self.free_slots.pop() {
            return s;
        }
        self.groups.push(Group {
            members: self.index.empty_set(),
            cost: 0.0,
        });
        self.groups.len() - 1
    }
}

/// Runs simulated annealing and returns the repaired best-seen state.
///
/// When [`AnnealConfig::seed_with_pare_down`] is set (the default) the
/// result is never worse than plain [`pare_down`](fn@crate::pare_down) on the
/// paper's objective. With [`AnnealConfig::restarts`] above one, the
/// restarts run concurrently on scoped threads and the best-of-N wins.
///
/// # Examples
///
/// ```
/// use eblocks_core::{ComputeKind, Design, OutputKind, SensorKind};
/// use eblocks_partition::{anneal, AnnealConfig, PartitionConstraints};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut d = Design::new("pair");
/// let s = d.add_block("s", SensorKind::Button);
/// let a = d.add_block("a", ComputeKind::Not);
/// let b = d.add_block("b", ComputeKind::Not);
/// let o = d.add_block("o", OutputKind::Led);
/// d.connect((s, 0), (a, 0))?;
/// d.connect((a, 0), (b, 0))?;
/// d.connect((b, 0), (o, 0))?;
///
/// let c = PartitionConstraints::default();
/// let result = anneal(&d, &c, &AnnealConfig::with_iterations(2_000));
/// result.verify(&d, &c)?;
/// assert_eq!(result.inner_total(), 1);
/// # Ok(())
/// # }
/// ```
pub fn anneal(
    design: &Design,
    constraints: &PartitionConstraints,
    config: &AnnealConfig,
) -> Partitioning {
    let restarts = config.restarts.max(1);
    if restarts == 1 {
        return anneal_once(design, constraints, config);
    }
    // Bound concurrency to the hardware: an uncapped restarts value must
    // queue work, not exhaust the process thread limit.
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get()) as u32;
    let mut results: Vec<Partitioning> = Vec::with_capacity(restarts as usize);
    let mut next = 0u32;
    while next < restarts {
        let batch_end = next.saturating_add(workers).min(restarts);
        let batch: Vec<Partitioning> = std::thread::scope(|scope| {
            let handles: Vec<_> = (next..batch_end)
                .map(|i| {
                    let cfg = AnnealConfig {
                        seed: config.seed.wrapping_add(i as u64),
                        restarts: 1,
                        ..*config
                    };
                    scope.spawn(move || anneal_once(design, constraints, &cfg))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("anneal restart thread panicked"))
                .collect()
        });
        results.extend(batch);
        next = batch_end;
    }
    results
        .into_iter()
        .min_by_key(Partitioning::objective)
        .expect("at least one restart ran")
}

/// One annealing walk (no restarts).
fn anneal_once(
    design: &Design,
    constraints: &PartitionConstraints,
    config: &AnnealConfig,
) -> Partitioning {
    let index = InnerIndex::new(design);
    let n = index.len();
    if n == 0 {
        return Partitioning::new(vec![], vec![], "anneal", true);
    }

    let mut state = State {
        design,
        index: &index,
        constraints,
        assignment: vec![None; n],
        groups: Vec::new(),
        free_slots: Vec::new(),
        energy: n as f64,
    };

    if config.seed_with_pare_down {
        let seed = crate::pare_down(design, constraints);
        for partition in seed.partitions() {
            let slot = state.fresh_slot();
            for &block in partition {
                let pos = index.position(block).expect("inner");
                state.energy -= 1.0; // leaving the uncovered pool
                state.attach(pos, Some(slot));
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best = snapshot(&state);
    let mut best_energy = state.energy;

    let steps = config.iterations.max(1);
    let t0 = config.initial_temp.max(1e-9);
    let t1 = config.final_temp.clamp(1e-9, t0);
    let decay = (t1 / t0).powf(1.0 / steps as f64);
    let mut temp = t0;

    for _ in 0..steps {
        let pos = rng.random_range(0..n);
        let current = state.assignment[pos];

        // Candidate targets: an existing non-empty group (other than the
        // current one), a fresh group, or the uncovered pool.
        let occupied: Vec<usize> = state
            .groups
            .iter()
            .enumerate()
            .filter(|(s, g)| !g.members.is_empty() && Some(*s) != current)
            .map(|(s, _)| s)
            .collect();
        let choice = rng.random_range(0..occupied.len() + 2);
        let target = if choice < occupied.len() {
            Some(occupied[choice])
        } else if choice == occupied.len() {
            None
        } else {
            Some(state.fresh_slot())
        };
        if target == current {
            temp *= decay;
            continue;
        }

        let before = state.energy;
        if current.is_some() {
            state.detach(pos);
        } else {
            state.energy -= 1.0;
        }
        state.attach(pos, target);
        let delta = state.energy - before;

        let accept = delta <= 0.0 || rng.random::<f64>() < (-delta / temp).exp();
        if !accept {
            // Undo: move the block back where it was.
            if target.is_some() {
                state.detach(pos);
            } else {
                state.energy -= 1.0;
            }
            state.attach(pos, current);
        } else if state.energy < best_energy {
            best_energy = state.energy;
            best = snapshot(&state);
        }
        temp *= decay;
    }

    repair(design, constraints, &index, best)
}

/// Captures the group member sets of a state.
fn snapshot(state: &State<'_>) -> Vec<BitSet> {
    state
        .groups
        .iter()
        .filter(|g| !g.members.is_empty())
        .map(|g| g.members.clone())
        .collect()
}

/// Dissolves infeasible and singleton groups into the uncovered pool and
/// assembles the final result.
fn repair(
    design: &Design,
    constraints: &PartitionConstraints,
    index: &InnerIndex,
    groups: Vec<BitSet>,
) -> Partitioning {
    let mut partitions = Vec::new();
    let mut covered = index.empty_set();
    for members in groups {
        if members.len() >= 2 && constraints.fits(design, index, &members) {
            covered.union_with(&members);
            partitions.push(index.resolve(&members));
        }
    }
    let uncovered = (0..index.len())
        .filter(|&pos| !covered.contains(pos))
        .map(|pos| index.block(pos))
        .collect();
    Partitioning::new(partitions, uncovered, "anneal", true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exhaustive, pare_down, ExhaustiveOptions};
    use eblocks_core::{ComputeKind, OutputKind, SensorKind};

    fn chain(n: usize) -> Design {
        let mut d = Design::new("chain");
        let s = d.add_block("s", SensorKind::Button);
        let mut prev = s;
        for i in 0..n {
            let g = d.add_block(format!("g{i}"), ComputeKind::Not);
            d.connect((prev, 0), (g, 0)).unwrap();
            prev = g;
        }
        let o = d.add_block("o", OutputKind::Led);
        d.connect((prev, 0), (o, 0)).unwrap();
        d
    }

    #[test]
    fn empty_design() {
        let mut d = Design::new("e");
        let s = d.add_block("s", SensorKind::Button);
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s, 0), (o, 0)).unwrap();
        let r = anneal(
            &d,
            &PartitionConstraints::default(),
            &AnnealConfig::default(),
        );
        assert_eq!(r.inner_total(), 0);
    }

    #[test]
    fn result_verifies_and_finds_chain_optimum() {
        let d = chain(6);
        let c = PartitionConstraints::default();
        let r = anneal(&d, &c, &AnnealConfig::with_iterations(5_000));
        r.verify(&d, &c).unwrap();
        assert_eq!(r.inner_total(), 1);
    }

    #[test]
    fn never_worse_than_pare_down_seed() {
        let c = PartitionConstraints::default();
        for n in [3, 5, 8] {
            let d = chain(n);
            let pd = pare_down(&d, &c);
            let an = anneal(&d, &c, &AnnealConfig::with_iterations(2_000));
            assert!(an.objective() <= pd.objective(), "n={n}");
        }
    }

    #[test]
    fn cold_start_still_verifies() {
        let d = chain(5);
        let c = PartitionConstraints::default();
        let config = AnnealConfig {
            seed_with_pare_down: false,
            iterations: 5_000,
            ..Default::default()
        };
        let r = anneal(&d, &c, &config);
        r.verify(&d, &c).unwrap();
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = chain(7);
        let c = PartitionConstraints::default();
        let config = AnnealConfig::with_iterations(3_000);
        assert_eq!(anneal(&d, &c, &config), anneal(&d, &c, &config));
    }

    #[test]
    fn matches_exhaustive_on_small_design() {
        // Fork: one sensor splits into two NOT chains converging on an AND.
        let mut d = Design::new("fork");
        let s = d.add_block("s", SensorKind::Button);
        let split = d.add_block("split", ComputeKind::Splitter);
        let n1 = d.add_block("n1", ComputeKind::Not);
        let n2 = d.add_block("n2", ComputeKind::Not);
        let and = d.add_block("and", ComputeKind::and2());
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s, 0), (split, 0)).unwrap();
        d.connect((split, 0), (n1, 0)).unwrap();
        d.connect((split, 1), (n2, 0)).unwrap();
        d.connect((n1, 0), (and, 0)).unwrap();
        d.connect((n2, 0), (and, 1)).unwrap();
        d.connect((and, 0), (o, 0)).unwrap();

        let c = PartitionConstraints::default();
        let opt = exhaustive(&d, &c, ExhaustiveOptions::default());
        let an = anneal(&d, &c, &AnnealConfig::with_iterations(10_000));
        an.verify(&d, &c).unwrap();
        assert_eq!(an.objective(), opt.objective());
    }

    #[test]
    fn restarts_pick_best_of_n_deterministically() {
        let d = chain(9);
        let c = PartitionConstraints::default();
        // Cold starts diverge per seed, so best-of-N is a real selection.
        let base = AnnealConfig {
            iterations: 400,
            seed_with_pare_down: false,
            ..Default::default()
        };
        let multi = anneal(
            &d,
            &c,
            &AnnealConfig {
                restarts: 5,
                ..base
            },
        );
        multi.verify(&d, &c).unwrap();
        let best_single = (0..5)
            .map(|i| {
                anneal(
                    &d,
                    &c,
                    &AnnealConfig {
                        seed: base.seed.wrapping_add(i),
                        ..base
                    },
                )
            })
            .min_by_key(Partitioning::objective)
            .unwrap();
        assert_eq!(multi.objective(), best_single.objective());
        // Determinism: the parallel driver is reproducible run to run.
        let again = anneal(
            &d,
            &c,
            &AnnealConfig {
                restarts: 5,
                ..base
            },
        );
        assert_eq!(multi, again);
    }

    #[test]
    fn single_restart_matches_plain_run() {
        let d = chain(6);
        let c = PartitionConstraints::default();
        let cfg = AnnealConfig::with_iterations(1_000);
        assert_eq!(
            anneal(&d, &c, &cfg),
            anneal(&d, &c, &AnnealConfig { restarts: 1, ..cfg })
        );
    }

    #[test]
    fn respects_structural_constraints() {
        let mut d = Design::new("par");
        for i in 0..2 {
            let s = d.add_block(format!("s{i}"), SensorKind::Button);
            let g = d.add_block(format!("g{i}"), ComputeKind::Not);
            let o = d.add_block(format!("o{i}"), OutputKind::Led);
            d.connect((s, 0), (g, 0)).unwrap();
            d.connect((g, 0), (o, 0)).unwrap();
        }
        let c = PartitionConstraints {
            require_connected: true,
            ..Default::default()
        };
        let r = anneal(&d, &c, &AnnealConfig::with_iterations(2_000));
        r.verify(&d, &c).unwrap();
        assert_eq!(r.num_partitions(), 0, "only disconnected pairs exist");
    }
}
