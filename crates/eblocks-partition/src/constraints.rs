//! Feasibility constraints on a candidate partition.

use eblocks_core::{cut_cost, BitSet, CutCost, Design, InnerIndex, ProgrammableSpec};

/// The constraints a candidate partition must satisfy to be replaceable by a
/// programmable block.
///
/// The paper's constraints (§4) are the pin budget and the ≥2-block rule
/// (which is structural, enforced by the algorithms, not here). The two
/// `require_*` extensions default to off so the default configuration is
/// exactly the paper's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartitionConstraints {
    /// Pin budget of the target programmable block (paper default: 2-in/2-out).
    pub spec: ProgrammableSpec,
    /// Require convex partitions (no path out of and back into the set).
    /// Extension; the paper does not impose this.
    pub require_convex: bool,
    /// Require weakly connected partitions. Extension; the paper does not
    /// impose this (and PareDown naturally produces disconnected candidates).
    pub require_connected: bool,
}

impl PartitionConstraints {
    /// Constraints for a given pin budget, paper semantics otherwise.
    pub fn with_spec(spec: ProgrammableSpec) -> Self {
        Self {
            spec,
            ..Self::default()
        }
    }

    /// Whether `cost` fits the pin budget (ignoring the structural options).
    pub fn cost_fits(&self, cost: CutCost) -> bool {
        cost.fits(self.spec.inputs, self.spec.outputs)
    }

    /// Full feasibility of a member set: pin budget plus any enabled
    /// structural constraints. Does **not** check the ≥2-block rule — that is
    /// the caller's decision point (a fitting singleton is handled specially
    /// by every algorithm).
    pub fn fits(&self, design: &Design, index: &InnerIndex, members: &BitSet) -> bool {
        if !self.cost_fits(cut_cost(design, index, members)) {
            return false;
        }
        if self.require_convex && !eblocks_core::cut::is_convex(design, index, members) {
            return false;
        }
        if self.require_connected && !is_connected(design, index, members) {
            return false;
        }
        true
    }
}

/// Whether the member set is weakly connected (treating wires as
/// undirected). Empty and singleton sets count as connected.
pub fn is_connected(design: &Design, index: &InnerIndex, members: &BitSet) -> bool {
    let mut iter = members.iter();
    let Some(first) = iter.next() else {
        return true;
    };
    let mut seen = BitSet::new(index.len());
    seen.insert(first);
    let mut stack = vec![first];
    while let Some(pos) = stack.pop() {
        let block = index.block(pos);
        let neighbors = design
            .in_wires(block)
            .map(|w| w.from)
            .chain(design.out_wires(block).map(|w| w.to));
        for n in neighbors {
            if let Some(npos) = index.position(n) {
                if members.contains(npos) && seen.insert(npos) {
                    stack.push(npos);
                }
            }
        }
    }
    seen.len() == members.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{ComputeKind, OutputKind, SensorKind};

    /// Two independent NOT chains: s1->a->o1, s2->b->o2.
    fn two_chains() -> (Design, InnerIndex) {
        let mut d = Design::new("t");
        let s1 = d.add_block("s1", SensorKind::Button);
        let s2 = d.add_block("s2", SensorKind::Motion);
        let a = d.add_block("a", ComputeKind::Not);
        let b = d.add_block("b", ComputeKind::Not);
        let o1 = d.add_block("o1", OutputKind::Led);
        let o2 = d.add_block("o2", OutputKind::Buzzer);
        d.connect((s1, 0), (a, 0)).unwrap();
        d.connect((s2, 0), (b, 0)).unwrap();
        d.connect((a, 0), (o1, 0)).unwrap();
        d.connect((b, 0), (o2, 0)).unwrap();
        let idx = InnerIndex::new(&d);
        (d, idx)
    }

    #[test]
    fn default_is_paper_config() {
        let c = PartitionConstraints::default();
        assert_eq!((c.spec.inputs, c.spec.outputs), (2, 2));
        assert!(!c.require_convex);
        assert!(!c.require_connected);
    }

    #[test]
    fn disconnected_pair_fits_by_default() {
        let (d, idx) = two_chains();
        let c = PartitionConstraints::default();
        // {a, b} is disconnected but 2-in/2-out: fits under paper semantics.
        assert!(c.fits(&d, &idx, &idx.full_set()));
    }

    #[test]
    fn connectivity_constraint_rejects_disconnected() {
        let (d, idx) = two_chains();
        let c = PartitionConstraints {
            require_connected: true,
            ..Default::default()
        };
        assert!(!c.fits(&d, &idx, &idx.full_set()));
        let mut single = idx.empty_set();
        single.insert(0);
        assert!(c.fits(&d, &idx, &single), "singletons are connected");
    }

    #[test]
    fn pin_budget_enforced() {
        let (d, idx) = two_chains();
        let c = PartitionConstraints::with_spec(ProgrammableSpec::new(1, 2));
        assert!(!c.fits(&d, &idx, &idx.full_set()), "needs 2 inputs");
        let c = PartitionConstraints::with_spec(ProgrammableSpec::new(2, 1));
        assert!(!c.fits(&d, &idx, &idx.full_set()), "needs 2 outputs");
    }

    #[test]
    fn convexity_constraint_applies() {
        // a -> b -> c plus a -> c: {a, c} non-convex.
        let mut d = Design::new("cvx");
        let s = d.add_block("s", SensorKind::Button);
        let a = d.add_block("a", ComputeKind::Splitter);
        let b = d.add_block("b", ComputeKind::Not);
        let c = d.add_block("c", ComputeKind::and2());
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s, 0), (a, 0)).unwrap();
        d.connect((a, 0), (b, 0)).unwrap();
        d.connect((a, 1), (c, 0)).unwrap();
        d.connect((b, 0), (c, 1)).unwrap();
        d.connect((c, 0), (o, 0)).unwrap();
        let idx = InnerIndex::new(&d);
        let mut ac = idx.empty_set();
        ac.insert(idx.position(a).unwrap());
        ac.insert(idx.position(c).unwrap());

        let plain = PartitionConstraints::default();
        assert!(
            plain.fits(&d, &idx, &ac),
            "paper semantics admit non-convex sets"
        );
        let strict = PartitionConstraints {
            require_convex: true,
            ..Default::default()
        };
        assert!(!strict.fits(&d, &idx, &ac));
        assert!(strict.fits(&d, &idx, &idx.full_set()));
    }

    #[test]
    fn empty_set_connected_and_fits() {
        let (d, idx) = two_chains();
        assert!(is_connected(&d, &idx, &idx.empty_set()));
        assert!(PartitionConstraints::default().fits(&d, &idx, &idx.empty_set()));
    }
}
