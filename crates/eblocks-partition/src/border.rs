//! Border blocks and the PareDown rank (§4.2).
//!
//! "We define a border block as a block in which every output or every input
//! connects to a block outside of the candidate partition. The block's rank
//! is defined as the net increase or decrease in the combined indegree and
//! outdegree of a candidate partition if that block is removed."

use eblocks_core::{BitSet, BlockId, Design, InnerIndex};
use std::cmp::Reverse;
use std::collections::HashMap;
use std::collections::HashSet;

/// Dense positions (per the [`InnerIndex`]) of the border blocks of
/// `members`: blocks whose inputs all come from outside the set, or whose
/// outputs all go outside the set.
///
/// A nonempty candidate always has at least one border block (the
/// topologically first member has no member predecessors).
pub fn border_blocks(design: &Design, index: &InnerIndex, members: &BitSet) -> Vec<usize> {
    let inside = |b: BlockId| index.position(b).is_some_and(|p| members.contains(p));
    members
        .iter()
        .filter(|&pos| {
            let block = index.block(pos);
            let any_input_inside = design.in_wires(block).any(|w| inside(w.from));
            let any_output_inside = design.out_wires(block).any(|w| inside(w.to));
            !any_input_inside || !any_output_inside
        })
        .collect()
}

/// The rank of member `pos` within `members`: the exact change in
/// `inputs + outputs` of the candidate partition if the block were removed.
///
/// Computed locally from the block's neighborhood in `O(deg · fanout)`,
/// without re-walking the whole candidate.
pub fn rank_of(design: &Design, index: &InnerIndex, members: &BitSet, pos: usize) -> i64 {
    let b = index.block(pos);
    let inside = |x: BlockId| index.position(x).is_some_and(|p| members.contains(p));
    let is_b = |x: BlockId| x == b;

    let mut delta: i64 = 0;

    // External source ports that drove only `b`: each leaves the input set.
    let mut external_srcs: HashSet<(BlockId, u8)> = HashSet::new();
    for w in design.in_wires(b) {
        if !inside(w.from) {
            external_srcs.insert((w.from, w.from_port));
        }
    }
    for (src, port) in external_srcs {
        let feeds_other_member = design
            .sinks_of(src, port)
            .any(|w| inside(w.to) && !is_b(w.to));
        if !feeds_other_member {
            delta -= 1;
        }
    }

    // b's output ports: one becoming a new external input per port that
    // drives a remaining member; one leaving the output set per port that
    // was exposed (drove a non-member).
    let block = design.block(b).expect("indexed block");
    for port in 0..block.num_outputs() {
        let mut drives_member = false;
        let mut drives_outside = false;
        for w in design.sinks_of(b, port) {
            if inside(w.to) && !is_b(w.to) {
                drives_member = true;
            } else {
                drives_outside = true;
            }
        }
        if drives_member {
            delta += 1;
        }
        if drives_outside {
            delta -= 1;
        }
    }

    // Member ports that drove `b` and nothing outside: each becomes newly
    // exposed.
    let mut member_srcs: HashSet<(BlockId, u8)> = HashSet::new();
    for w in design.in_wires(b) {
        if inside(w.from) {
            member_srcs.insert((w.from, w.from_port));
        }
    }
    for (src, port) in member_srcs {
        let already_exposed = design.sinks_of(src, port).any(|w| !inside(w.to));
        if !already_exposed {
            delta += 1;
        }
    }

    delta
}

/// The full removal-priority key for a border block: least rank first, ties
/// broken by greatest indegree, then greatest outdegree, then highest level,
/// and finally lowest dense position (a deterministic fallback the paper
/// leaves unspecified).
///
/// The block to remove is the one with the **minimum** `RankKey`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RankKey {
    /// Net cut-cost change on removal (lower = remove first).
    pub rank: i64,
    /// Negated indegree (greater indegree = remove first).
    pub indegree: Reverse<usize>,
    /// Negated outdegree (greater outdegree = remove first).
    pub outdegree: Reverse<usize>,
    /// Negated level (higher level = remove first).
    pub level: Reverse<usize>,
    /// Dense position, as a deterministic final tie-break.
    pub position: usize,
}

impl RankKey {
    /// Builds the key for member `pos` of `members`.
    pub fn new(
        design: &Design,
        index: &InnerIndex,
        members: &BitSet,
        levels: &HashMap<BlockId, usize>,
        pos: usize,
    ) -> Self {
        let block = index.block(pos);
        Self {
            rank: rank_of(design, index, members, pos),
            indegree: Reverse(design.indegree(block)),
            outdegree: Reverse(design.outdegree(block)),
            level: Reverse(levels.get(&block).copied().unwrap_or(0)),
            position: pos,
        }
    }

    /// Like [`RankKey::new`] but with the paper's §4.2 tie-break criteria
    /// disabled — rank ties fall straight through to the deterministic
    /// position order. Used by the tie-break ablation study.
    pub fn without_tie_breaks(
        design: &Design,
        index: &InnerIndex,
        members: &BitSet,
        pos: usize,
    ) -> Self {
        Self {
            rank: rank_of(design, index, members, pos),
            indegree: Reverse(0),
            outdegree: Reverse(0),
            level: Reverse(0),
            position: pos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{cut_cost, ComputeKind, OutputKind, SensorKind};

    /// Reference implementation: full recomputation.
    fn rank_by_recompute(design: &Design, index: &InnerIndex, members: &BitSet, pos: usize) -> i64 {
        let before = cut_cost(design, index, members).total() as i64;
        let mut without = members.clone();
        without.remove(pos);
        let after = cut_cost(design, index, &without).total() as i64;
        after - before
    }

    fn diamond() -> (Design, InnerIndex) {
        // s -> sp -> (a, b) -> c -> o, plus sp -> c is absent; classic diamond.
        let mut d = Design::new("diamond");
        let s = d.add_block("s", SensorKind::Button);
        let sp = d.add_block("sp", ComputeKind::Splitter);
        let a = d.add_block("a", ComputeKind::Not);
        let b = d.add_block("b", ComputeKind::Toggle);
        let c = d.add_block("c", ComputeKind::and2());
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s, 0), (sp, 0)).unwrap();
        d.connect((sp, 0), (a, 0)).unwrap();
        d.connect((sp, 1), (b, 0)).unwrap();
        d.connect((a, 0), (c, 0)).unwrap();
        d.connect((b, 0), (c, 1)).unwrap();
        d.connect((c, 0), (o, 0)).unwrap();
        let idx = InnerIndex::new(&d);
        (d, idx)
    }

    #[test]
    fn border_blocks_of_full_set() {
        let (d, idx) = diamond();
        let full = idx.full_set();
        let borders: Vec<&str> = border_blocks(&d, &idx, &full)
            .into_iter()
            .map(|p| d.block(idx.block(p)).unwrap().name().to_string())
            .map(|s| Box::leak(s.into_boxed_str()) as &str)
            .collect();
        // sp: all inputs outside (sensor). c: all outputs outside (LED).
        // a, b: inputs and outputs both inside.
        assert_eq!(borders, vec!["sp", "c"]);
    }

    #[test]
    fn every_nonempty_set_has_a_border_block() {
        let (d, idx) = diamond();
        // Check all non-empty subsets of the 4 inner blocks.
        for mask in 1u32..16 {
            let mut set = idx.empty_set();
            for i in 0..4 {
                if (mask >> i) & 1 == 1 {
                    set.insert(i);
                }
            }
            assert!(
                !border_blocks(&d, &idx, &set).is_empty(),
                "mask {mask:04b} has no border block"
            );
        }
    }

    #[test]
    fn rank_matches_full_recompute_exhaustively() {
        let (d, idx) = diamond();
        for mask in 1u32..16 {
            let mut set = idx.empty_set();
            for i in 0..4 {
                if (mask >> i) & 1 == 1 {
                    set.insert(i);
                }
            }
            for pos in set.iter() {
                assert_eq!(
                    rank_of(&d, &idx, &set, pos),
                    rank_by_recompute(&d, &idx, &set, pos),
                    "mask {mask:04b} pos {pos}"
                );
            }
        }
    }

    #[test]
    fn rank_key_ordering_prefers_low_rank_then_high_degree() {
        let a = RankKey {
            rank: 0,
            indegree: Reverse(1),
            outdegree: Reverse(1),
            level: Reverse(3),
            position: 0,
        };
        let b = RankKey { rank: 1, ..a };
        assert!(a < b, "lower rank removed first");
        let c = RankKey {
            indegree: Reverse(2),
            ..a
        };
        assert!(c < a, "greater indegree removed first at equal rank");
        let e = RankKey {
            outdegree: Reverse(2),
            ..a
        };
        assert!(e < a, "greater outdegree removed first");
        let f = RankKey {
            level: Reverse(4),
            ..a
        };
        assert!(f < a, "higher level removed first");
    }

    #[test]
    fn fanout_port_rank_counts_signals_not_wires() {
        // g's single output port drives two outside sinks; removing g's
        // downstream partner must not double-count the port.
        let mut d = Design::new("fan");
        let s = d.add_block("s", SensorKind::Button);
        let g = d.add_block("g", ComputeKind::Not);
        let h = d.add_block("h", ComputeKind::Not);
        let o1 = d.add_block("o1", OutputKind::Led);
        let o2 = d.add_block("o2", OutputKind::Buzzer);
        d.connect((s, 0), (g, 0)).unwrap();
        d.connect((g, 0), (h, 0)).unwrap();
        d.connect((g, 0), (o1, 0)).unwrap();
        d.connect((h, 0), (o2, 0)).unwrap();
        let idx = InnerIndex::new(&d);
        let full = idx.full_set();
        for pos in full.iter() {
            assert_eq!(
                rank_of(&d, &idx, &full, pos),
                rank_by_recompute(&d, &idx, &full, pos)
            );
        }
    }
}
