//! The PareDown decomposition heuristic (§4.2).
//!
//! PareDown begins by selecting *all* remaining inner blocks as a candidate
//! partition, then removes border blocks — lowest rank first — until the
//! candidate satisfies the programmable block's input/output constraints.
//! A fitting candidate with more than one block becomes a partition; the
//! algorithm repeats on the remaining blocks until none are left.
//!
//! Two corner cases of the paper's Fig. 4 pseudocode are resolved explicitly
//! (see `DESIGN.md`): a fitting candidate ends the inner loop, and a
//! lone block that cannot fit by itself is permanently dropped to
//! "uncovered" rather than re-pared forever.

use crate::border::{border_blocks, RankKey};
use crate::constraints::PartitionConstraints;
use crate::result::Partitioning;
use eblocks_core::{cut_cost, levels, BlockId, CutCost, Design, InnerIndex};

/// One step in a PareDown run, for inspection and for reproducing the
/// paper's Fig. 5 walk-through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A fresh candidate partition was formed from all remaining blocks.
    CandidateStart {
        /// Members of the new candidate.
        members: Vec<BlockId>,
        /// Its pin demand.
        cost: CutCost,
    },
    /// A border block was removed from the candidate.
    Removed {
        /// The removed block.
        block: BlockId,
        /// Its rank (net cut-cost change of its removal).
        rank: i64,
        /// Pin demand of the candidate *after* removal.
        cost_after: CutCost,
    },
    /// The candidate fit and was accepted as a partition.
    Accepted {
        /// Members of the accepted partition.
        members: Vec<BlockId>,
        /// Its pin demand.
        cost: CutCost,
    },
    /// A lone block was skipped: it either fit (but single-block partitions
    /// are invalid, §4) or could not fit at all.
    SkippedSingle {
        /// The block left as a pre-defined block.
        block: BlockId,
        /// Whether it would have fit a programmable block by itself.
        fits: bool,
    },
}

/// Runs PareDown with the paper's default behavior.
///
/// See the [crate-level documentation](crate) for an example.
pub fn pare_down(design: &Design, constraints: &PartitionConstraints) -> Partitioning {
    run(design, constraints, None, true)
}

/// Runs PareDown, also returning the step-by-step trace.
pub fn pare_down_traced(
    design: &Design,
    constraints: &PartitionConstraints,
) -> (Partitioning, Vec<TraceEvent>) {
    let mut trace = Vec::new();
    let result = run(design, constraints, Some(&mut trace), true);
    (result, trace)
}

/// PareDown with the §4.2 tie-break criteria (greatest indegree, greatest
/// outdegree, highest level) disabled — rank ties are broken only by the
/// deterministic position fallback. Exists to measure how much the paper's
/// tie-break rules contribute (see the ablation experiment).
pub fn pare_down_no_tie_breaks(
    design: &Design,
    constraints: &PartitionConstraints,
) -> Partitioning {
    run(design, constraints, None, false)
}

fn run(
    design: &Design,
    constraints: &PartitionConstraints,
    mut trace: Option<&mut Vec<TraceEvent>>,
    tie_breaks: bool,
) -> Partitioning {
    let index = InnerIndex::new(design);
    let level_map = levels(design);
    let mut remaining = index.full_set();
    let mut partitions: Vec<Vec<BlockId>> = Vec::new();
    let mut uncovered: Vec<BlockId> = Vec::new();

    while !remaining.is_empty() {
        let mut candidate = remaining.clone();
        if let Some(t) = trace.as_deref_mut() {
            t.push(TraceEvent::CandidateStart {
                members: index.resolve(&candidate),
                cost: cut_cost(design, &index, &candidate),
            });
        }

        loop {
            let fits = constraints.fits(design, &index, &candidate);
            if fits && candidate.len() > 1 {
                // Valid partition: record it and restart on the rest.
                let members = index.resolve(&candidate);
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent::Accepted {
                        members: members.clone(),
                        cost: cut_cost(design, &index, &candidate),
                    });
                }
                partitions.push(members);
                remaining.difference_with(&candidate);
                break;
            }
            if candidate.len() == 1 {
                // A lone block never forms a partition (no size reduction,
                // §4); whether it fits or not, it stays pre-defined.
                let pos = candidate.iter().next().expect("len == 1");
                let block = index.block(pos);
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent::SkippedSingle { block, fits });
                }
                uncovered.push(block);
                remaining.difference_with(&candidate);
                break;
            }

            // Pare: remove the border block with the least rank key.
            let key = border_blocks(design, &index, &candidate)
                .into_iter()
                .map(|pos| {
                    if tie_breaks {
                        RankKey::new(design, &index, &candidate, &level_map, pos)
                    } else {
                        RankKey::without_tie_breaks(design, &index, &candidate, pos)
                    }
                })
                .min()
                .expect("a nonempty candidate always has a border block");
            candidate.remove(key.position);
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent::Removed {
                    block: index.block(key.position),
                    rank: key.rank,
                    cost_after: cut_cost(design, &index, &candidate),
                });
            }
        }
    }

    Partitioning::new(partitions, uncovered, "pare-down", true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{ComputeKind, Design, OutputKind, ProgrammableSpec, SensorKind};

    fn chain(n: usize) -> Design {
        let mut d = Design::new("chain");
        let s = d.add_block("s", SensorKind::Button);
        let mut prev = s;
        for i in 0..n {
            let g = d.add_block(format!("g{i}"), ComputeKind::Not);
            d.connect((prev, 0), (g, 0)).unwrap();
            prev = g;
        }
        let o = d.add_block("o", OutputKind::Led);
        d.connect((prev, 0), (o, 0)).unwrap();
        d
    }

    #[test]
    fn whole_chain_becomes_one_partition() {
        // A 1-in/1-out chain of any length fits a 2/2 block entirely.
        for n in [2, 5, 10] {
            let d = chain(n);
            let r = pare_down(&d, &PartitionConstraints::default());
            r.verify(&d, &PartitionConstraints::default()).unwrap();
            assert_eq!(r.num_partitions(), 1, "n={n}");
            assert_eq!(r.covered(), n);
            assert_eq!(r.inner_total(), 1);
        }
    }

    #[test]
    fn single_inner_block_stays_predefined() {
        let d = chain(1);
        let (r, trace) = pare_down_traced(&d, &PartitionConstraints::default());
        assert_eq!(r.num_partitions(), 0);
        assert_eq!(r.uncovered().len(), 1);
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::SkippedSingle { fits: true, .. })));
    }

    #[test]
    fn empty_design_yields_empty_result() {
        let mut d = Design::new("empty");
        let s = d.add_block("s", SensorKind::Button);
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s, 0), (o, 0)).unwrap();
        let r = pare_down(&d, &PartitionConstraints::default());
        assert_eq!(r.num_partitions(), 0);
        assert_eq!(r.inner_total(), 0);
    }

    #[test]
    fn unfittable_lone_block_dropped_not_looped() {
        // A 3-input gate cannot fit a 2-input programmable block even alone;
        // the run must terminate with it uncovered.
        let mut d = Design::new("three");
        let s1 = d.add_block("s1", SensorKind::Button);
        let s2 = d.add_block("s2", SensorKind::Motion);
        let s3 = d.add_block("s3", SensorKind::Sound);
        let g = d.add_block("g", ComputeKind::and3());
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s1, 0), (g, 0)).unwrap();
        d.connect((s2, 0), (g, 1)).unwrap();
        d.connect((s3, 0), (g, 2)).unwrap();
        d.connect((g, 0), (o, 0)).unwrap();
        let (r, trace) = pare_down_traced(&d, &PartitionConstraints::default());
        assert_eq!(r.num_partitions(), 0);
        assert_eq!(r.uncovered().len(), 1);
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::SkippedSingle { fits: false, .. })));
    }

    #[test]
    fn or_tree_with_distinct_sensors_has_no_partitions() {
        // Table 1's "Motion on Property Alert" shape: an OR tree of 2-input
        // gates over distinct sensors admits no valid 2-in/2-out partition.
        let mut d = Design::new("tree");
        let leaves: Vec<_> = (0..4)
            .map(|i| d.add_block(format!("s{i}"), SensorKind::Motion))
            .collect();
        let g0 = d.add_block("g0", ComputeKind::or2());
        let g1 = d.add_block("g1", ComputeKind::or2());
        let top = d.add_block("top", ComputeKind::or2());
        let o = d.add_block("o", OutputKind::Buzzer);
        d.connect((leaves[0], 0), (g0, 0)).unwrap();
        d.connect((leaves[1], 0), (g0, 1)).unwrap();
        d.connect((leaves[2], 0), (g1, 0)).unwrap();
        d.connect((leaves[3], 0), (g1, 1)).unwrap();
        d.connect((g0, 0), (top, 0)).unwrap();
        d.connect((g1, 0), (top, 1)).unwrap();
        d.connect((top, 0), (o, 0)).unwrap();
        let r = pare_down(&d, &PartitionConstraints::default());
        assert_eq!(r.num_partitions(), 0);
        assert_eq!(r.inner_total(), 3);
    }

    #[test]
    fn result_always_verifies() {
        // PareDown output must satisfy its own constraints on a batch of
        // structured designs.
        for n in 1..12 {
            let d = chain(n);
            for spec in [
                ProgrammableSpec::new(1, 1),
                ProgrammableSpec::new(2, 2),
                ProgrammableSpec::new(4, 4),
            ] {
                let c = PartitionConstraints::with_spec(spec);
                pare_down(&d, &c).verify(&d, &c).unwrap();
            }
        }
    }

    #[test]
    fn trace_starts_with_full_candidate() {
        let d = chain(4);
        let (_, trace) = pare_down_traced(&d, &PartitionConstraints::default());
        let TraceEvent::CandidateStart { members, cost } = &trace[0] else {
            panic!("first event must be CandidateStart, got {:?}", trace[0]);
        };
        assert_eq!(members.len(), 4);
        assert_eq!((cost.inputs, cost.outputs), (1, 1));
        assert!(matches!(trace[1], TraceEvent::Accepted { .. }));
    }

    #[test]
    fn convex_constraint_respected() {
        // With require_convex the result must still verify.
        let d = chain(6);
        let c = PartitionConstraints {
            require_convex: true,
            ..Default::default()
        };
        pare_down(&d, &c).verify(&d, &c).unwrap();
    }
}

#[cfg(test)]
mod tie_break_tests {
    use super::*;
    use eblocks_core::{ComputeKind, Design, OutputKind, SensorKind};

    #[test]
    fn no_tie_break_variant_still_verifies() {
        let mut d = Design::new("t");
        let s = d.add_block("s", SensorKind::Button);
        let mut prev = s;
        for i in 0..9 {
            let g = d.add_block(format!("g{i}"), ComputeKind::Not);
            d.connect((prev, 0), (g, 0)).unwrap();
            prev = g;
        }
        let o = d.add_block("o", OutputKind::Led);
        d.connect((prev, 0), (o, 0)).unwrap();
        let c = PartitionConstraints::default();
        let r = pare_down_no_tie_breaks(&d, &c);
        r.verify(&d, &c).unwrap();
        assert_eq!(r.inner_total(), 1, "chain still collapses");
    }
}
