//! The outcome of a partitioning run, with self-verification.

use crate::constraints::PartitionConstraints;
use eblocks_core::{cut_cost, BlockId, Design, InnerIndex};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// A set of disjoint partitions over a design's inner blocks, plus the inner
/// blocks left uncovered (they remain pre-defined blocks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    partitions: Vec<Vec<BlockId>>,
    uncovered: Vec<BlockId>,
    algorithm: &'static str,
    complete: bool,
}

impl Partitioning {
    /// Assembles a result. Each partition's members are sorted; partitions
    /// are sorted by first member for deterministic comparison.
    pub fn new(
        mut partitions: Vec<Vec<BlockId>>,
        mut uncovered: Vec<BlockId>,
        algorithm: &'static str,
        complete: bool,
    ) -> Self {
        for p in &mut partitions {
            p.sort();
        }
        partitions.sort();
        uncovered.sort();
        Self {
            partitions,
            uncovered,
            algorithm,
            complete,
        }
    }

    /// The partitions (each to become one programmable block).
    pub fn partitions(&self) -> &[Vec<BlockId>] {
        &self.partitions
    }

    /// Inner blocks left as pre-defined blocks.
    pub fn uncovered(&self) -> &[BlockId] {
        &self.uncovered
    }

    /// Which algorithm produced this result.
    pub fn algorithm(&self) -> &'static str {
        self.algorithm
    }

    /// `false` when an exhaustive search hit its deadline and returned its
    /// best-so-far; heuristics always report `true`.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Number of partitions — the paper's *Inner Blocks (Prog.)* column.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Number of inner blocks covered by partitions.
    pub fn covered(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Inner blocks after replacement — the paper's *Inner Blocks (Total)*
    /// column: uncovered pre-defined blocks plus one programmable block per
    /// partition.
    pub fn inner_total(&self) -> usize {
        self.uncovered.len() + self.partitions.len()
    }

    /// The paper's objective, ordered lexicographically: fewer total inner
    /// blocks first (§4: "the number of inner blocks after replacement is
    /// minimized"), then fewer *uncovered* blocks (§2: the optimal cover
    /// "covers the most number of blocks with the fewest number of
    /// partitions" — at equal totals, more coverage wins; Table 1's Podium
    /// Timer 3 row shows the paper's exhaustive search preferring 3
    /// partitions covering all 8 blocks over 2 partitions covering 7).
    pub fn objective(&self) -> (usize, usize) {
        (self.inner_total(), self.uncovered.len())
    }

    /// Verifies structural soundness against the design and constraints.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found: non-inner or duplicated
    /// members, a missing inner block, an undersized partition, or a
    /// partition violating the constraints.
    pub fn verify(
        &self,
        design: &Design,
        constraints: &PartitionConstraints,
    ) -> Result<(), VerifyError> {
        let index = InnerIndex::new(design);
        let mut seen: HashSet<BlockId> = HashSet::new();
        for (i, partition) in self.partitions.iter().enumerate() {
            if partition.len() < 2 {
                return Err(VerifyError::UndersizedPartition { index: i });
            }
            let mut members = index.empty_set();
            for &b in partition {
                let Some(pos) = index.position(b) else {
                    return Err(VerifyError::NotInner { block: b });
                };
                if !seen.insert(b) {
                    return Err(VerifyError::Overlap { block: b });
                }
                members.insert(pos);
            }
            if !constraints.fits(design, &index, &members) {
                let cost = cut_cost(design, &index, &members);
                return Err(VerifyError::Infeasible {
                    index: i,
                    inputs: cost.inputs,
                    outputs: cost.outputs,
                });
            }
        }
        for &b in &self.uncovered {
            if index.position(b).is_none() {
                return Err(VerifyError::NotInner { block: b });
            }
            if !seen.insert(b) {
                return Err(VerifyError::Overlap { block: b });
            }
        }
        if seen.len() != index.len() {
            let missing = index
                .blocks()
                .iter()
                .find(|b| !seen.contains(b))
                .copied()
                .expect("count mismatch implies a missing block");
            return Err(VerifyError::Unaccounted { block: missing });
        }
        Ok(())
    }
}

impl fmt::Display for Partitioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} partitions covering {} blocks, {} uncovered (total {})",
            self.algorithm,
            self.num_partitions(),
            self.covered(),
            self.uncovered.len(),
            self.inner_total()
        )
    }
}

/// Problems found by [`Partitioning::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerifyError {
    /// A member is not an inner block of the design.
    NotInner {
        /// The offending block.
        block: BlockId,
    },
    /// A block appears in two partitions (or a partition and uncovered).
    Overlap {
        /// The offending block.
        block: BlockId,
    },
    /// A partition with fewer than two blocks.
    UndersizedPartition {
        /// Index of the partition.
        index: usize,
    },
    /// A partition violating the pin or structural constraints.
    Infeasible {
        /// Index of the partition.
        index: usize,
        /// Its input-pin demand.
        inputs: usize,
        /// Its output-pin demand.
        outputs: usize,
    },
    /// An inner block in neither a partition nor the uncovered list.
    Unaccounted {
        /// The missing block.
        block: BlockId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotInner { block } => write!(f, "block {block} is not an inner block"),
            Self::Overlap { block } => write!(f, "block {block} assigned twice"),
            Self::UndersizedPartition { index } => {
                write!(f, "partition {index} has fewer than two blocks")
            }
            Self::Infeasible {
                index,
                inputs,
                outputs,
            } => write!(
                f,
                "partition {index} needs {inputs} inputs / {outputs} outputs, exceeding the block"
            ),
            Self::Unaccounted { block } => {
                write!(f, "inner block {block} missing from the result")
            }
        }
    }
}

impl Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{ComputeKind, OutputKind, SensorKind};

    fn chain4() -> (Design, Vec<BlockId>) {
        let mut d = Design::new("c4");
        let s = d.add_block("s", SensorKind::Button);
        let mut inner = Vec::new();
        let mut prev = s;
        for i in 0..4 {
            let g = d.add_block(format!("g{i}"), ComputeKind::Not);
            d.connect((prev, 0), (g, 0)).unwrap();
            inner.push(g);
            prev = g;
        }
        let o = d.add_block("o", OutputKind::Led);
        d.connect((prev, 0), (o, 0)).unwrap();
        (d, inner)
    }

    #[test]
    fn metrics() {
        let (_, inner) = chain4();
        let p = Partitioning::new(
            vec![vec![inner[0], inner[1]], vec![inner[2], inner[3]]],
            vec![],
            "test",
            true,
        );
        assert_eq!(p.num_partitions(), 2);
        assert_eq!(p.covered(), 4);
        assert_eq!(p.inner_total(), 2);
        assert_eq!(p.objective(), (2, 0), "total 2, nothing uncovered");
        assert!(p.is_complete());
        assert!(p.to_string().contains("2 partitions"));
    }

    #[test]
    fn verify_accepts_valid() {
        let (d, inner) = chain4();
        let p = Partitioning::new(
            vec![vec![inner[0], inner[1]], vec![inner[2], inner[3]]],
            vec![],
            "test",
            true,
        );
        p.verify(&d, &PartitionConstraints::default()).unwrap();
    }

    #[test]
    fn verify_rejects_undersized() {
        let (d, inner) = chain4();
        let p = Partitioning::new(
            vec![vec![inner[0]]],
            vec![inner[1], inner[2], inner[3]],
            "test",
            true,
        );
        assert!(matches!(
            p.verify(&d, &PartitionConstraints::default()),
            Err(VerifyError::UndersizedPartition { .. })
        ));
    }

    #[test]
    fn verify_rejects_overlap_and_missing() {
        let (d, inner) = chain4();
        let p = Partitioning::new(
            vec![vec![inner[0], inner[1]]],
            vec![inner[1], inner[2], inner[3]],
            "test",
            true,
        );
        assert!(matches!(
            p.verify(&d, &PartitionConstraints::default()),
            Err(VerifyError::Overlap { .. })
        ));

        let p = Partitioning::new(vec![vec![inner[0], inner[1]]], vec![inner[2]], "test", true);
        assert!(matches!(
            p.verify(&d, &PartitionConstraints::default()),
            Err(VerifyError::Unaccounted { .. })
        ));
    }

    #[test]
    fn verify_rejects_non_inner() {
        let (d, inner) = chain4();
        let sensor = d.block_by_name("s").unwrap();
        let p = Partitioning::new(
            vec![vec![sensor, inner[0]]],
            vec![inner[1], inner[2], inner[3]],
            "test",
            true,
        );
        assert!(matches!(
            p.verify(&d, &PartitionConstraints::default()),
            Err(VerifyError::NotInner { .. })
        ));
    }

    #[test]
    fn verify_rejects_infeasible() {
        let (d, inner) = chain4();
        // All four in one partition: 1 input, 1 output — fits 2/2. Shrink the
        // budget to force infeasibility.
        let p = Partitioning::new(vec![inner.clone()], vec![], "test", true);
        p.verify(&d, &PartitionConstraints::default()).unwrap();
        let tight = PartitionConstraints::with_spec(eblocks_core::ProgrammableSpec::new(0, 0));
        assert!(matches!(
            p.verify(&d, &tight),
            Err(VerifyError::Infeasible { .. })
        ));
    }

    #[test]
    fn normalization_is_deterministic() {
        let (_, inner) = chain4();
        let a = Partitioning::new(
            vec![vec![inner[1], inner[0]], vec![inner[3], inner[2]]],
            vec![],
            "test",
            true,
        );
        let b = Partitioning::new(
            vec![vec![inner[2], inner[3]], vec![inner[0], inner[1]]],
            vec![],
            "test",
            true,
        );
        assert_eq!(a, b);
    }
}
