//! Quotient-graph acyclicity — the realizability condition the paper leaves
//! implicit.
//!
//! Replacing a partition with a programmable block *contracts* its members
//! into one node. A contracted node connects every incoming signal to every
//! outgoing signal, so contraction can create paths that do not exist in the
//! original DAG; with several partitions contracted at once, the resulting
//! *quotient* network can contain a wire cycle even though each partition is
//! individually convex. eBlock networks must stay acyclic (§3.3), so a
//! partitioning is only realizable if its quotient is a DAG.
//!
//! [`quotient_is_acyclic`] checks the condition; [`dissolve_cycles`] repairs
//! a violating partitioning by dissolving (un-covering) the smallest
//! partition on a cycle until the quotient is acyclic — a conservative
//! repair that never invalidates the remaining partitions.

use crate::result::Partitioning;
use eblocks_core::{BlockId, Design};
use std::collections::{HashMap, HashSet};

/// Supernode id: partitions get `Part(i)`, everything else stays itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Super {
    Part(usize),
    Plain(BlockId),
}

fn supernode(covered: &HashMap<BlockId, usize>, b: BlockId) -> Super {
    match covered.get(&b) {
        Some(&i) => Super::Part(i),
        None => Super::Plain(b),
    }
}

/// Builds the quotient adjacency and returns the set of supernodes that
/// remain after repeatedly peeling zero-in-degree nodes (Kahn's algorithm) —
/// empty iff the quotient is acyclic.
fn residual(design: &Design, covered: &HashMap<BlockId, usize>) -> HashSet<Super> {
    let mut succs: HashMap<Super, HashSet<Super>> = HashMap::new();
    let mut indeg: HashMap<Super, usize> = HashMap::new();
    for b in design.blocks() {
        indeg.entry(supernode(covered, b)).or_insert(0);
    }
    for w in design.wires() {
        let (from, to) = (supernode(covered, w.from), supernode(covered, w.to));
        if from == to {
            continue;
        }
        if succs.entry(from).or_default().insert(to) {
            *indeg.entry(to).or_insert(0) += 1;
        }
    }
    let mut queue: Vec<Super> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&s, _)| s)
        .collect();
    let mut remaining: HashSet<Super> = indeg.keys().copied().collect();
    while let Some(s) = queue.pop() {
        remaining.remove(&s);
        if let Some(nexts) = succs.get(&s) {
            for &n in nexts {
                let d = indeg.get_mut(&n).expect("known node");
                *d -= 1;
                if *d == 0 {
                    queue.push(n);
                }
            }
        }
    }
    remaining
}

fn covered_map(partitioning: &Partitioning) -> HashMap<BlockId, usize> {
    let mut covered = HashMap::new();
    for (i, p) in partitioning.partitions().iter().enumerate() {
        for &b in p {
            covered.insert(b, i);
        }
    }
    covered
}

/// Whether contracting every partition leaves the network acyclic.
pub fn quotient_is_acyclic(design: &Design, partitioning: &Partitioning) -> bool {
    residual(design, &covered_map(partitioning)).is_empty()
}

/// Repairs a partitioning whose quotient is cyclic by dissolving partitions
/// (smallest first among those stuck on a cycle) until the quotient is a
/// DAG. Dissolved members become uncovered pre-defined blocks.
///
/// Returns the input unchanged when it is already realizable.
pub fn dissolve_cycles(design: &Design, partitioning: Partitioning) -> Partitioning {
    let mut partitions: Vec<Vec<BlockId>> = partitioning.partitions().to_vec();
    let mut uncovered: Vec<BlockId> = partitioning.uncovered().to_vec();
    let algorithm = partitioning.algorithm();
    let complete = partitioning.is_complete();

    loop {
        let current = Partitioning::new(partitions.clone(), uncovered.clone(), algorithm, complete);
        let covered = covered_map(&current);
        let stuck = residual(design, &covered);
        if stuck.is_empty() {
            return current;
        }
        // Dissolve the smallest partition among the stuck supernodes; if the
        // residual contains no partition (impossible for a valid input
        // design, which is acyclic), dissolve the smallest partition overall
        // as a defensive fallback.
        let candidates: Vec<usize> = stuck
            .iter()
            .filter_map(|s| match s {
                Super::Part(i) => Some(*i),
                Super::Plain(_) => None,
            })
            .collect();
        let victim = candidates
            .into_iter()
            .min_by_key(|&i| (current.partitions()[i].len(), i))
            .unwrap_or(0);
        // Rebuild from the *current* normalized ordering.
        partitions = current.partitions().to_vec();
        uncovered = current.uncovered().to_vec();
        let dissolved = partitions.remove(victim);
        uncovered.extend(dissolved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::PartitionConstraints;
    use eblocks_core::{ComputeKind, OutputKind, SensorKind};

    /// a -> m1, m2 -> b -> c -> m... : two disconnected members whose
    /// contraction closes a cycle through an external chain.
    fn contraction_trap() -> (Design, Vec<BlockId>, BlockId) {
        // Original acyclic graph:
        //   s -> x -> u -> y -> o1     (u external, x & y to be merged)
        //        y -> o2 (so y has an exposed output)
        let mut d = Design::new("trap");
        let s = d.add_block("s", SensorKind::Button);
        let x = d.add_block("x", ComputeKind::Not);
        let u = d.add_block("u", ComputeKind::Toggle);
        let y = d.add_block("y", ComputeKind::Not);
        let o1 = d.add_block("o1", OutputKind::Led);
        d.connect((s, 0), (x, 0)).unwrap();
        d.connect((x, 0), (u, 0)).unwrap();
        d.connect((u, 0), (y, 0)).unwrap();
        d.connect((y, 0), (o1, 0)).unwrap();
        (d, vec![x, y], u)
    }

    #[test]
    fn detects_contraction_cycle() {
        let (d, members, _) = contraction_trap();
        // {x, y}: 2 external inputs (s, u), 2 outputs (x->u, y->o1): fits,
        // and there is no external path from y's successors back into the
        // set — but contraction creates prog -> u -> prog.
        let p = Partitioning::new(vec![members], Vec::new(), "test", true);
        assert!(!quotient_is_acyclic(&d, &p));
    }

    #[test]
    fn repair_dissolves_the_trap() {
        let (d, members, u) = contraction_trap();
        let p = Partitioning::new(vec![members.clone()], vec![u], "test", true);
        assert!(!quotient_is_acyclic(&d, &p));
        let fixed = dissolve_cycles(&d, p);
        assert!(quotient_is_acyclic(&d, &fixed));
        assert_eq!(fixed.num_partitions(), 0);
        assert_eq!(fixed.uncovered().len(), 3);
        fixed.verify(&d, &PartitionConstraints::default()).unwrap();
    }

    #[test]
    fn acyclic_quotients_pass_untouched() {
        let mut d = Design::new("chain");
        let s = d.add_block("s", SensorKind::Button);
        let a = d.add_block("a", ComputeKind::Not);
        let b = d.add_block("b", ComputeKind::Not);
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s, 0), (a, 0)).unwrap();
        d.connect((a, 0), (b, 0)).unwrap();
        d.connect((b, 0), (o, 0)).unwrap();
        let p = Partitioning::new(vec![vec![a, b]], vec![], "test", true);
        assert!(quotient_is_acyclic(&d, &p));
        let fixed = dissolve_cycles(&d, p.clone());
        assert_eq!(fixed, p);
    }

    #[test]
    fn multi_partition_interaction_detected() {
        // Two convex partitions that only cycle when BOTH are contracted:
        //   s -> p -> r -> q -> t -> p2 ... build:
        //   s -> a (P0), a -> c (P1), c -> b (P0), b -> e (P1), e -> o
        // P0 = {a, b}, P1 = {c, e}: quotient P0 -> P1 (a->c), P1 -> P0
        // (c->b) — cycle between the two supernodes.
        let mut d = Design::new("multi");
        let s = d.add_block("s", SensorKind::Button);
        let a = d.add_block("a", ComputeKind::Not);
        let c = d.add_block("c", ComputeKind::Not);
        let b = d.add_block("b", ComputeKind::Not);
        let e = d.add_block("e", ComputeKind::Not);
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s, 0), (a, 0)).unwrap();
        d.connect((a, 0), (c, 0)).unwrap();
        d.connect((c, 0), (b, 0)).unwrap();
        d.connect((b, 0), (e, 0)).unwrap();
        d.connect((e, 0), (o, 0)).unwrap();
        let p = Partitioning::new(vec![vec![a, b], vec![c, e]], vec![], "test", true);
        assert!(!quotient_is_acyclic(&d, &p));
        let fixed = dissolve_cycles(&d, p);
        assert!(quotient_is_acyclic(&d, &fixed));
        // Both partitions are individually non-convex here (each has a path
        // out and back through the other), so repair dissolves both.
        assert_eq!(fixed.num_partitions(), 0);
        assert_eq!(fixed.uncovered().len(), 4);
    }
}
