//! Local-search refinement of a partitioning (extension).
//!
//! The paper's PareDown heuristic commits to each partition greedily and
//! never revisits a decision, so it can strand blocks that a small local
//! repair would cover. This module implements a deterministic improvement
//! pass over any [`Partitioning`]:
//!
//! * **absorb** — move an uncovered block into an existing partition that
//!   still fits with it,
//! * **merge** — fuse two partitions whose union fits,
//! * **pair** — form a new partition from two uncovered blocks that fit
//!   together.
//!
//! Every move strictly decreases the paper's objective (total inner blocks
//! after replacement) by one, so the pass reaches a fixpoint in at most `n`
//! rounds. Refinement never invalidates a result: the output verifies
//! against the same constraints as the input.
//!
//! This is *not* in the paper; it quantifies (see the `optimality` bench
//! binary) how much of PareDown's remaining gap to optimal is recoverable
//! with cheap local moves.

use crate::constraints::PartitionConstraints;
use crate::result::Partitioning;
use eblocks_core::{BitSet, BlockId, Design, InnerIndex};

/// Statistics about one [`refine`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefineReport {
    /// Uncovered blocks absorbed into existing partitions.
    pub absorbed: usize,
    /// Partition pairs merged into one.
    pub merged: usize,
    /// New partitions formed from pairs of uncovered blocks.
    pub paired: usize,
    /// Improvement passes executed (including the final no-op pass).
    pub passes: usize,
}

impl RefineReport {
    /// Total objective improvement (each move reduces the inner-block total
    /// by exactly one).
    pub fn improvement(&self) -> usize {
        self.absorbed + self.merged + self.paired
    }
}

/// Refines `initial` by exhaustively applying absorb, merge, and pair moves
/// until none applies, returning the improved partitioning and a report.
///
/// The result is deterministic: candidate moves are scanned in sorted block
/// order, and the first applicable move per scan is taken.
///
/// # Examples
///
/// ```
/// use eblocks_core::{ComputeKind, Design, OutputKind, SensorKind};
/// use eblocks_partition::{pare_down, refine, PartitionConstraints};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut d = Design::new("pair");
/// let s = d.add_block("s", SensorKind::Button);
/// let a = d.add_block("a", ComputeKind::Not);
/// let b = d.add_block("b", ComputeKind::Not);
/// let o = d.add_block("o", OutputKind::Led);
/// d.connect((s, 0), (a, 0))?;
/// d.connect((a, 0), (b, 0))?;
/// d.connect((b, 0), (o, 0))?;
///
/// let c = PartitionConstraints::default();
/// let first = pare_down(&d, &c);
/// let (refined, report) = refine(&d, &c, &first);
/// assert!(refined.objective() <= first.objective());
/// refined.verify(&d, &c)?;
/// # let _ = report;
/// # Ok(())
/// # }
/// ```
pub fn refine(
    design: &Design,
    constraints: &PartitionConstraints,
    initial: &Partitioning,
) -> (Partitioning, RefineReport) {
    let index = InnerIndex::new(design);
    let mut groups: Vec<BitSet> = initial
        .partitions()
        .iter()
        .map(|p| to_set(&index, p))
        .collect();
    let mut uncovered: Vec<BlockId> = initial.uncovered().to_vec();
    let mut report = RefineReport::default();

    loop {
        report.passes += 1;
        if try_absorb(design, constraints, &index, &mut groups, &mut uncovered) {
            report.absorbed += 1;
            continue;
        }
        if try_merge(design, constraints, &index, &mut groups) {
            report.merged += 1;
            continue;
        }
        if try_pair(design, constraints, &index, &mut groups, &mut uncovered) {
            report.paired += 1;
            continue;
        }
        break;
    }

    let partitions = groups.iter().map(|g| index.resolve(g)).collect();
    (
        Partitioning::new(partitions, uncovered, "refined", initial.is_complete()),
        report,
    )
}

/// Convenience: [`pare_down`](fn@crate::pare_down) followed by [`refine`].
pub fn pare_down_refined(design: &Design, constraints: &PartitionConstraints) -> Partitioning {
    let first = crate::pare_down(design, constraints);
    refine(design, constraints, &first).0
}

fn to_set(index: &InnerIndex, blocks: &[BlockId]) -> BitSet {
    let mut set = index.empty_set();
    for &b in blocks {
        set.insert(index.position(b).expect("partition member is inner"));
    }
    set
}

/// Moves the first uncovered block that fits into some partition.
fn try_absorb(
    design: &Design,
    constraints: &PartitionConstraints,
    index: &InnerIndex,
    groups: &mut [BitSet],
    uncovered: &mut Vec<BlockId>,
) -> bool {
    for (ui, &block) in uncovered.iter().enumerate() {
        let pos = index.position(block).expect("uncovered block is inner");
        for group in groups.iter_mut() {
            group.insert(pos);
            if constraints.fits(design, index, group) {
                uncovered.remove(ui);
                return true;
            }
            group.remove(pos);
        }
    }
    false
}

/// Merges the first pair of partitions whose union fits.
fn try_merge(
    design: &Design,
    constraints: &PartitionConstraints,
    index: &InnerIndex,
    groups: &mut Vec<BitSet>,
) -> bool {
    for i in 0..groups.len() {
        for j in (i + 1)..groups.len() {
            let mut union = groups[i].clone();
            union.union_with(&groups[j]);
            if constraints.fits(design, index, &union) {
                groups[i] = union;
                groups.swap_remove(j);
                return true;
            }
        }
    }
    false
}

/// Forms a new partition from the first pair of uncovered blocks that fits.
fn try_pair(
    design: &Design,
    constraints: &PartitionConstraints,
    index: &InnerIndex,
    groups: &mut Vec<BitSet>,
    uncovered: &mut Vec<BlockId>,
) -> bool {
    for i in 0..uncovered.len() {
        for j in (i + 1)..uncovered.len() {
            let mut set = index.empty_set();
            set.insert(index.position(uncovered[i]).expect("inner"));
            set.insert(index.position(uncovered[j]).expect("inner"));
            if constraints.fits(design, index, &set) {
                groups.push(set);
                uncovered.remove(j);
                uncovered.remove(i);
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{aggregation, exhaustive, pare_down, ExhaustiveOptions};
    use eblocks_core::{ComputeKind, OutputKind, SensorKind};

    fn chain(n: usize) -> Design {
        let mut d = Design::new("chain");
        let s = d.add_block("s", SensorKind::Button);
        let mut prev = s;
        for i in 0..n {
            let g = d.add_block(format!("g{i}"), ComputeKind::Not);
            d.connect((prev, 0), (g, 0)).unwrap();
            prev = g;
        }
        let o = d.add_block("o", OutputKind::Led);
        d.connect((prev, 0), (o, 0)).unwrap();
        d
    }

    /// Two parallel sensor→NOT→LED chains: two uncovered singles that fit
    /// together as one disconnected partition.
    fn parallel_nots() -> Design {
        let mut d = Design::new("par");
        for i in 0..2 {
            let s = d.add_block(format!("s{i}"), SensorKind::Button);
            let g = d.add_block(format!("g{i}"), ComputeKind::Not);
            let o = d.add_block(format!("o{i}"), OutputKind::Led);
            d.connect((s, 0), (g, 0)).unwrap();
            d.connect((g, 0), (o, 0)).unwrap();
        }
        d
    }

    #[test]
    fn pairs_uncovered_singles() {
        let d = parallel_nots();
        let c = PartitionConstraints::default();
        // PareDown covers this already (the full candidate fits), so start
        // from the worst-case: everything uncovered.
        let worst = Partitioning::new(vec![], d.inner_blocks().collect(), "worst", true);
        let (refined, report) = refine(&d, &c, &worst);
        refined.verify(&d, &c).unwrap();
        assert_eq!(refined.num_partitions(), 1);
        assert_eq!(report.paired, 1);
        assert_eq!(refined.inner_total(), 1);
    }

    #[test]
    fn absorbs_uncovered_into_partition() {
        let d = chain(5);
        let c = PartitionConstraints::default();
        let inner: Vec<_> = d.inner_blocks().collect();
        let start = Partitioning::new(
            vec![vec![inner[0], inner[1]]],
            inner[2..].to_vec(),
            "seed",
            true,
        );
        let (refined, report) = refine(&d, &c, &start);
        refined.verify(&d, &c).unwrap();
        assert_eq!(refined.inner_total(), 1, "whole chain fits one block");
        assert_eq!(report.absorbed, 3);
    }

    #[test]
    fn merges_partitions() {
        let d = chain(4);
        let c = PartitionConstraints::default();
        let inner: Vec<_> = d.inner_blocks().collect();
        let start = Partitioning::new(
            vec![vec![inner[0], inner[1]], vec![inner[2], inner[3]]],
            vec![],
            "seed",
            true,
        );
        let (refined, report) = refine(&d, &c, &start);
        refined.verify(&d, &c).unwrap();
        assert_eq!(refined.num_partitions(), 1);
        assert_eq!(report.merged, 1);
    }

    #[test]
    fn never_worsens_and_always_verifies() {
        for n in 1..=10 {
            let d = chain(n);
            let c = PartitionConstraints::default();
            for initial in [pare_down(&d, &c), aggregation(&d, &c)] {
                let (refined, _) = refine(&d, &c, &initial);
                refined.verify(&d, &c).unwrap();
                assert!(
                    refined.objective() <= initial.objective(),
                    "n={n}: {:?} > {:?}",
                    refined.objective(),
                    initial.objective()
                );
            }
        }
    }

    #[test]
    fn refined_optimal_stays_optimal() {
        let d = chain(6);
        let c = PartitionConstraints::default();
        let opt = exhaustive(&d, &c, ExhaustiveOptions::default());
        let (refined, report) = refine(&d, &c, &opt);
        assert_eq!(refined.objective(), opt.objective());
        assert_eq!(report.improvement(), 0);
    }

    #[test]
    fn respects_structural_constraints() {
        let d = parallel_nots();
        let c = PartitionConstraints {
            require_connected: true,
            ..Default::default()
        };
        let worst = Partitioning::new(vec![], d.inner_blocks().collect(), "worst", true);
        let (refined, _) = refine(&d, &c, &worst);
        refined.verify(&d, &c).unwrap();
        // The only 2-block set is disconnected, so nothing may be paired.
        assert_eq!(refined.num_partitions(), 0);
    }
}
