//! Multi-type partitioning — the paper's §6 future work, implemented.
//!
//! "We plan to extend the PareDown heuristic to consider multiple types of
//! programmable blocks (having different number of inputs and outputs) and
//! varying compute block costs."
//!
//! [`pare_down_multi`] runs the PareDown decomposition against a *catalog*
//! of programmable block types: candidates are pared until they fit the
//! most permissive catalog entry, and each accepted partition is then
//! assigned the **cheapest** catalog block that accommodates it. Whether a
//! partition is worth keeping is decided by cost, not block count: a
//! partition is dissolved back to pre-defined blocks if replacing it would
//! cost more than the blocks it covers (generalizing the paper's fixed
//! "single-node partitions are invalid" rule, which is the special case of
//! a programmable block costing more than one pre-defined block but less
//! than two).

use crate::border::{border_blocks, RankKey};
use crate::constraints::PartitionConstraints;
use crate::result::Partitioning;
use eblocks_core::{cut_cost, levels, BlockId, Design, InnerIndex, ProgrammableSpec};

/// A catalog of available programmable block types with costs.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockCatalog {
    /// Available programmable block types: `(pin budget, unit cost)`.
    pub programmable: Vec<(ProgrammableSpec, f64)>,
    /// Cost of one pre-defined compute block.
    pub predefined_cost: f64,
}

impl BlockCatalog {
    /// The paper's implicit catalog: one 2-in/2-out type priced between one
    /// and two pre-defined blocks.
    pub fn paper_default() -> Self {
        Self {
            programmable: vec![(ProgrammableSpec::default(), 1.5)],
            predefined_cost: 1.0,
        }
    }

    /// A richer catalog: small/medium/large blocks at increasing cost.
    pub fn three_tier() -> Self {
        Self {
            programmable: vec![
                (ProgrammableSpec::new(1, 1), 1.2),
                (ProgrammableSpec::new(2, 2), 1.5),
                (ProgrammableSpec::new(4, 4), 2.5),
            ],
            predefined_cost: 1.0,
        }
    }

    /// The most permissive pin budget in the catalog (used as the paring
    /// target: any candidate fitting *some* catalog entry fits this
    /// envelope).
    pub fn envelope(&self) -> ProgrammableSpec {
        let inputs = self
            .programmable
            .iter()
            .map(|(s, _)| s.inputs)
            .max()
            .unwrap_or(0);
        let outputs = self
            .programmable
            .iter()
            .map(|(s, _)| s.outputs)
            .max()
            .unwrap_or(0);
        ProgrammableSpec::new(inputs, outputs)
    }

    /// The cheapest catalog entry whose pins cover `(inputs, outputs)`.
    pub fn cheapest_fitting(
        &self,
        inputs: usize,
        outputs: usize,
    ) -> Option<(ProgrammableSpec, f64)> {
        self.programmable
            .iter()
            .filter(|(s, _)| inputs <= s.inputs as usize && outputs <= s.outputs as usize)
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .copied()
    }
}

/// A partitioning with per-partition block-type assignment and total cost.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiPartitioning {
    /// The underlying partitioning (partitions + uncovered blocks).
    pub partitioning: Partitioning,
    /// For each partition (indexed like
    /// [`Partitioning::partitions`]), the chosen block type and its cost.
    pub assignments: Vec<(ProgrammableSpec, f64)>,
    /// Total network cost: assigned blocks plus uncovered pre-defined
    /// blocks.
    pub total_cost: f64,
}

impl MultiPartitioning {
    /// Cost of leaving every inner block pre-defined (the baseline the
    /// synthesis must beat).
    pub fn baseline_cost(catalog: &BlockCatalog, inner_blocks: usize) -> f64 {
        catalog.predefined_cost * inner_blocks as f64
    }
}

/// PareDown against a block catalog.
///
/// Structural constraints (`require_convex` / `require_connected`) are taken
/// from `constraints`; the pin budget is the catalog envelope during paring,
/// and per-partition assignment picks the cheapest fitting type. Partitions
/// that would cost more than the pre-defined blocks they replace are
/// dissolved.
pub fn pare_down_multi(
    design: &Design,
    constraints: &PartitionConstraints,
    catalog: &BlockCatalog,
) -> MultiPartitioning {
    let envelope = PartitionConstraints {
        spec: catalog.envelope(),
        ..*constraints
    };

    let index = InnerIndex::new(design);
    let level_map = levels(design);
    let mut remaining = index.full_set();
    let mut partitions: Vec<Vec<BlockId>> = Vec::new();
    let mut assignments: Vec<(ProgrammableSpec, f64)> = Vec::new();
    let mut uncovered: Vec<BlockId> = Vec::new();

    while !remaining.is_empty() {
        let mut candidate = remaining.clone();
        loop {
            let fits = envelope.fits(design, &index, &candidate);
            if fits && !candidate.is_empty() {
                let cost = cut_cost(design, &index, &candidate);
                let replaced = candidate.len() as f64 * catalog.predefined_cost;
                let choice = catalog.cheapest_fitting(cost.inputs, cost.outputs);
                match choice {
                    Some((spec, block_cost)) if block_cost < replaced => {
                        partitions.push(index.resolve(&candidate));
                        assignments.push((spec, block_cost));
                    }
                    _ => {
                        // Not economical (or nothing fits): stay pre-defined.
                        uncovered.extend(index.resolve(&candidate));
                    }
                }
                remaining.difference_with(&candidate);
                break;
            }
            if candidate.len() == 1 {
                let pos = candidate.iter().next().expect("len == 1");
                uncovered.push(index.block(pos));
                remaining.difference_with(&candidate);
                break;
            }
            let key = border_blocks(design, &index, &candidate)
                .into_iter()
                .map(|pos| RankKey::new(design, &index, &candidate, &level_map, pos))
                .min()
                .expect("nonempty candidates have border blocks");
            candidate.remove(key.position);
        }
    }

    let total_cost: f64 = assignments.iter().map(|(_, c)| c).sum::<f64>()
        + uncovered.len() as f64 * catalog.predefined_cost;
    MultiPartitioning {
        partitioning: Partitioning::new(partitions, uncovered, "pare-down-multi", true),
        assignments,
        total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{ComputeKind, OutputKind, SensorKind};

    fn chain(n: usize) -> Design {
        let mut d = Design::new("chain");
        let s = d.add_block("s", SensorKind::Button);
        let mut prev = s;
        for i in 0..n {
            let g = d.add_block(format!("g{i}"), ComputeKind::Not);
            d.connect((prev, 0), (g, 0)).unwrap();
            prev = g;
        }
        let o = d.add_block("o", OutputKind::Led);
        d.connect((prev, 0), (o, 0)).unwrap();
        d
    }

    /// Three 2-input gates over six sensors feeding one collector — fits a
    /// 4-in block but not a 2-in one.
    fn wide_design() -> Design {
        let mut d = Design::new("wide");
        let sensors: Vec<_> = (0..4)
            .map(|i| d.add_block(format!("s{i}"), SensorKind::Button))
            .collect();
        let g0 = d.add_block("g0", ComputeKind::and2());
        let g1 = d.add_block("g1", ComputeKind::or2());
        let top = d.add_block("top", ComputeKind::and2());
        let o = d.add_block("o", OutputKind::Led);
        d.connect((sensors[0], 0), (g0, 0)).unwrap();
        d.connect((sensors[1], 0), (g0, 1)).unwrap();
        d.connect((sensors[2], 0), (g1, 0)).unwrap();
        d.connect((sensors[3], 0), (g1, 1)).unwrap();
        d.connect((g0, 0), (top, 0)).unwrap();
        d.connect((g1, 0), (top, 1)).unwrap();
        d.connect((top, 0), (o, 0)).unwrap();
        d
    }

    #[test]
    fn paper_catalog_matches_plain_pare_down() {
        use crate::pare_down::pare_down;
        for n in [2usize, 5, 8] {
            let d = chain(n);
            let c = PartitionConstraints::default();
            let plain = pare_down(&d, &c);
            let multi = pare_down_multi(&d, &c, &BlockCatalog::paper_default());
            assert_eq!(
                multi.partitioning.partitions(),
                plain.partitions(),
                "n={n}: the single-type catalog must reproduce PareDown"
            );
        }
    }

    #[test]
    fn larger_blocks_unlock_wide_partitions() {
        let d = wide_design();
        let c = PartitionConstraints::default();
        // 2-in/2-out only: the OR-tree pattern is uncoverable.
        let paper = pare_down_multi(&d, &c, &BlockCatalog::paper_default());
        assert_eq!(paper.partitioning.num_partitions(), 0);
        // With a 4-in/4-out block in the catalog, all three gates merge.
        let tiered = pare_down_multi(&d, &c, &BlockCatalog::three_tier());
        assert_eq!(tiered.partitioning.num_partitions(), 1);
        assert_eq!(tiered.partitioning.covered(), 3);
        let (spec, _) = tiered.assignments[0];
        assert_eq!((spec.inputs, spec.outputs), (4, 4));
        // Cost improved over the pre-defined baseline.
        assert!(
            tiered.total_cost < MultiPartitioning::baseline_cost(&BlockCatalog::three_tier(), 3)
        );
    }

    #[test]
    fn cheapest_fitting_type_chosen() {
        // A 1-in/1-out chain pair should get the cheap small block, not the
        // big one.
        let d = chain(3);
        let multi = pare_down_multi(
            &d,
            &PartitionConstraints::default(),
            &BlockCatalog::three_tier(),
        );
        assert_eq!(multi.partitioning.num_partitions(), 1);
        let (spec, cost) = multi.assignments[0];
        assert_eq!((spec.inputs, spec.outputs), (1, 1));
        assert!((cost - 1.2).abs() < 1e-9);
        assert!((multi.total_cost - 1.2).abs() < 1e-9);
    }

    #[test]
    fn uneconomical_partitions_dissolved() {
        // A catalog where programmable blocks cost more than two
        // pre-defined blocks: never worth replacing a pair.
        let catalog = BlockCatalog {
            programmable: vec![(ProgrammableSpec::default(), 5.0)],
            predefined_cost: 1.0,
        };
        let d = chain(2);
        let multi = pare_down_multi(&d, &PartitionConstraints::default(), &catalog);
        assert_eq!(multi.partitioning.num_partitions(), 0);
        assert_eq!(multi.partitioning.uncovered().len(), 2);
        assert!((multi.total_cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn big_partition_still_beats_expensive_block() {
        // The same expensive block IS worth it for a 10-block chain.
        let catalog = BlockCatalog {
            programmable: vec![(ProgrammableSpec::default(), 5.0)],
            predefined_cost: 1.0,
        };
        let d = chain(10);
        let multi = pare_down_multi(&d, &PartitionConstraints::default(), &catalog);
        assert_eq!(multi.partitioning.num_partitions(), 1);
        assert!((multi.total_cost - 5.0).abs() < 1e-9);
    }

    #[test]
    fn catalog_helpers() {
        let cat = BlockCatalog::three_tier();
        assert_eq!(cat.envelope(), ProgrammableSpec::new(4, 4));
        assert_eq!(
            cat.cheapest_fitting(2, 1)
                .map(|(s, _)| (s.inputs, s.outputs)),
            Some((2, 2))
        );
        assert_eq!(cat.cheapest_fitting(5, 1), None);
        let empty = BlockCatalog {
            programmable: vec![],
            predefined_cost: 1.0,
        };
        assert_eq!(empty.envelope(), ProgrammableSpec::new(0, 0));
        assert_eq!(empty.cheapest_fitting(0, 0), None);
    }

    #[test]
    fn results_verify_under_envelope() {
        let d = wide_design();
        let c = PartitionConstraints::default();
        let catalog = BlockCatalog::three_tier();
        let multi = pare_down_multi(&d, &c, &catalog);
        let envelope = PartitionConstraints {
            spec: catalog.envelope(),
            ..c
        };
        multi.partitioning.verify(&d, &envelope).unwrap();
    }
}
