//! The aggregation heuristic (§4.2 ¶1) — the strawman PareDown replaces.
//!
//! "From a list of inner nodes connected to a primary input, the aggregation
//! method repeatedly selects a node that fits within a programmable block as
//! a partition." It grows clusters greedily outward from the sensors with no
//! look-ahead, so it cannot exploit convergence (two signals that merge
//! downstream) and often yields non-optimal covers — exactly the weakness
//! the paper demonstrates and PareDown fixes.

use crate::constraints::PartitionConstraints;
use crate::result::Partitioning;
use eblocks_core::{levels, BitSet, BlockId, Design, InnerIndex};

/// Runs the aggregation heuristic.
///
/// Seeds are taken level by level starting at the blocks adjacent to primary
/// inputs; each cluster grows by absorbing the first neighboring unassigned
/// inner block that keeps the cluster feasible, until no neighbor fits.
pub fn aggregation(design: &Design, constraints: &PartitionConstraints) -> Partitioning {
    let index = InnerIndex::new(design);
    let level_map = levels(design);

    // Seed order: ascending level (sensor-adjacent first), then position.
    let mut order: Vec<usize> = (0..index.len()).collect();
    order.sort_by_key(|&pos| {
        let b = index.block(pos);
        (level_map.get(&b).copied().unwrap_or(0), pos)
    });

    let mut assigned = BitSet::new(index.len());
    let mut partitions: Vec<Vec<BlockId>> = Vec::new();
    let mut uncovered: Vec<BlockId> = Vec::new();

    for &seed in &order {
        if assigned.contains(seed) {
            continue;
        }
        let mut cluster = index.empty_set();
        cluster.insert(seed);
        if !constraints.fits(design, &index, &cluster) {
            // The seed alone exceeds the pin budget; it can only stay
            // pre-defined... unless a *pair* with a neighbor converges below
            // the budget, which this no-look-ahead heuristic never discovers.
            assigned.insert(seed);
            uncovered.push(index.block(seed));
            continue;
        }

        // Grow until no neighbor keeps the cluster feasible.
        while let Some(next) = growth_candidate(design, &index, &cluster, &assigned, constraints) {
            cluster.insert(next);
        }

        for pos in cluster.iter() {
            assigned.insert(pos);
        }
        if cluster.len() >= 2 {
            partitions.push(index.resolve(&cluster));
        } else {
            uncovered.push(index.block(seed));
        }
    }

    Partitioning::new(partitions, uncovered, "aggregation", true)
}

/// The first unassigned inner neighbor (by dense position) whose addition
/// keeps the cluster feasible.
fn growth_candidate(
    design: &Design,
    index: &InnerIndex,
    cluster: &BitSet,
    assigned: &BitSet,
    constraints: &PartitionConstraints,
) -> Option<usize> {
    let mut candidates: Vec<usize> = Vec::new();
    for pos in cluster.iter() {
        let block = index.block(pos);
        let neighbors = design
            .in_wires(block)
            .map(|w| w.from)
            .chain(design.out_wires(block).map(|w| w.to));
        for n in neighbors {
            if let Some(npos) = index.position(n) {
                if !cluster.contains(npos) && !assigned.contains(npos) {
                    candidates.push(npos);
                }
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    for npos in candidates {
        let mut grown = cluster.clone();
        grown.insert(npos);
        if constraints.fits(design, index, &grown) {
            return Some(npos);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::{exhaustive, ExhaustiveOptions};
    use crate::pare_down::pare_down;
    use eblocks_core::{ComputeKind, OutputKind, SensorKind};

    fn chain(n: usize) -> Design {
        let mut d = Design::new("chain");
        let s = d.add_block("s", SensorKind::Button);
        let mut prev = s;
        for i in 0..n {
            let g = d.add_block(format!("g{i}"), ComputeKind::Not);
            d.connect((prev, 0), (g, 0)).unwrap();
            prev = g;
        }
        let o = d.add_block("o", OutputKind::Led);
        d.connect((prev, 0), (o, 0)).unwrap();
        d
    }

    #[test]
    fn chain_fully_clustered() {
        let d = chain(6);
        let c = PartitionConstraints::default();
        let r = aggregation(&d, &c);
        r.verify(&d, &c).unwrap();
        assert_eq!(r.num_partitions(), 1);
        assert_eq!(r.inner_total(), 1);
    }

    #[test]
    fn results_always_verify() {
        for n in 1..10 {
            let d = chain(n);
            let c = PartitionConstraints::default();
            aggregation(&d, &c).verify(&d, &c).unwrap();
        }
    }

    /// The paper's motivation: aggregation misses convergence that PareDown
    /// catches. Two sensor-fed gates converge into a downstream AND; greedy
    /// growth from one side claims the AND's input budget before seeing the
    /// convergence.
    #[test]
    fn misses_convergence_that_pare_down_catches() {
        // s1 -> a (not) -> c(and2) <- b (not) <- s2 ; c -> d(not) -> o.
        // Whole set {a,b,c,d}: 2 in, 1 out — optimal is one partition.
        let mut d = Design::new("conv");
        let s1 = d.add_block("s1", SensorKind::Button);
        let s2 = d.add_block("s2", SensorKind::Motion);
        let a = d.add_block("a", ComputeKind::Not);
        let b = d.add_block("b", ComputeKind::Not);
        let c = d.add_block("c", ComputeKind::and2());
        let e = d.add_block("e", ComputeKind::Not);
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s1, 0), (a, 0)).unwrap();
        d.connect((s2, 0), (b, 0)).unwrap();
        d.connect((a, 0), (c, 0)).unwrap();
        d.connect((b, 0), (c, 1)).unwrap();
        d.connect((c, 0), (e, 0)).unwrap();
        d.connect((e, 0), (o, 0)).unwrap();

        let cons = PartitionConstraints::default();
        let pare = pare_down(&d, &cons);
        let opt = exhaustive(&d, &cons, ExhaustiveOptions::default());
        assert_eq!(opt.inner_total(), 1, "optimal merges all four");
        assert_eq!(pare.inner_total(), 1, "PareDown finds the convergence");
        // Aggregation is allowed to match on this small case in principle,
        // but must never beat the optimum and must always verify.
        let agg = aggregation(&d, &cons);
        agg.verify(&d, &cons).unwrap();
        assert!(agg.objective() >= opt.objective());
    }

    #[test]
    fn oversized_seed_left_uncovered() {
        let mut d = Design::new("big");
        let sensors: Vec<_> = (0..3)
            .map(|i| d.add_block(format!("s{i}"), SensorKind::Button))
            .collect();
        let g = d.add_block("g", ComputeKind::and3());
        let o = d.add_block("o", OutputKind::Led);
        for (i, s) in sensors.iter().enumerate() {
            d.connect((*s, 0), (g, i as u8)).unwrap();
        }
        d.connect((g, 0), (o, 0)).unwrap();
        let c = PartitionConstraints::default();
        let r = aggregation(&d, &c);
        assert_eq!(r.uncovered().len(), 1);
        assert_eq!(r.num_partitions(), 0);
    }
}
