//! Partitioning of eBlock networks onto programmable blocks.
//!
//! This crate implements §4 of *System Synthesis for Networks of Programmable
//! Blocks* (DATE 2005): replacing clusters of pre-defined compute blocks with
//! a minimum number of programmable blocks under input/output pin
//! constraints.
//!
//! Five algorithms are provided, each as a plain function and as an
//! object-safe [`Partitioner`] strategy (see [`strategy`] and [`Registry`]
//! for runtime selection):
//!
//! * [`pare_down`](fn@pare_down) — the paper's contribution: an `O(n²)` *decomposition*
//!   heuristic that starts from all inner blocks as one candidate partition
//!   and pares border blocks away by rank until the candidate fits (§4.2),
//! * [`exhaustive`](fn@exhaustive) — optimal branch search over all assignments of blocks to
//!   partitions, with the paper's empty-partition symmetry pruning plus sound
//!   bound pruning (§4.1),
//! * [`aggregation`](fn@aggregation) — the greedy clustering strawman the paper describes and
//!   discards for its lack of look-ahead (§4.2 ¶1),
//! * [`refine`](fn@refine) — deterministic local-search repair on top of any result
//!   (the `refine` strategy runs it over PareDown),
//! * [`anneal`](fn@anneal) — Metropolis annealing with parallel multi-restart
//!   support ([`AnnealConfig::restarts`]).
//!
//! # Example
//!
//! ```
//! use eblocks_core::{ComputeKind, Design, OutputKind, SensorKind};
//! use eblocks_partition::{pare_down, PartitionConstraints};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut d = Design::new("two-gate");
//! let s1 = d.add_block("s1", SensorKind::Button);
//! let s2 = d.add_block("s2", SensorKind::Motion);
//! let g1 = d.add_block("g1", ComputeKind::and2());
//! let g2 = d.add_block("g2", ComputeKind::Not);
//! let o = d.add_block("o", OutputKind::Led);
//! d.connect((s1, 0), (g1, 0))?;
//! d.connect((s2, 0), (g1, 1))?;
//! d.connect((g1, 0), (g2, 0))?;
//! d.connect((g2, 0), (o, 0))?;
//!
//! let result = pare_down(&d, &PartitionConstraints::default());
//! assert_eq!(result.num_partitions(), 1); // both gates merge into one block
//! assert_eq!(result.inner_total(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregation;
pub mod anneal;
pub mod border;
pub mod constraints;
pub mod exhaustive;
pub mod multi;
pub mod pare_down;
pub mod quotient;
pub mod refine;
pub mod result;
pub mod strategy;

pub use aggregation::aggregation;
pub use anneal::{anneal, AnnealConfig};
pub use border::{border_blocks, rank_of, RankKey};
pub use constraints::PartitionConstraints;
pub use exhaustive::{exhaustive, ExhaustiveOptions};
pub use multi::{pare_down_multi, BlockCatalog, MultiPartitioning};
pub use pare_down::{pare_down, pare_down_no_tie_breaks, pare_down_traced, TraceEvent};
pub use quotient::{dissolve_cycles, quotient_is_acyclic};
pub use refine::{pare_down_refined, refine, RefineReport};
pub use result::{Partitioning, VerifyError};
pub use strategy::{Partitioner, Registry};
