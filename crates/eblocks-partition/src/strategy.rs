//! The [`Partitioner`] strategy trait and the built-in strategy registry.
//!
//! Every partitioning algorithm in this crate is exposed twice: as a plain
//! function (`pare_down`, `exhaustive`, …) for callers that know what they
//! want at compile time, and as an object-safe [`Partitioner`] implementation
//! for callers that select a strategy at runtime — the synthesis pipeline,
//! the CLI's `--partitioner` flag, and the benchmark harness all drive this
//! trait.
//!
//! # Example
//!
//! ```
//! use eblocks_core::{ComputeKind, Design, OutputKind, SensorKind};
//! use eblocks_partition::{PartitionConstraints, Partitioner, Registry};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut d = Design::new("two-gate");
//! let s = d.add_block("s", SensorKind::Button);
//! let g1 = d.add_block("g1", ComputeKind::Not);
//! let g2 = d.add_block("g2", ComputeKind::Not);
//! let o = d.add_block("o", OutputKind::Led);
//! d.connect((s, 0), (g1, 0))?;
//! d.connect((g1, 0), (g2, 0))?;
//! d.connect((g2, 0), (o, 0))?;
//!
//! let registry = Registry::builtin();
//! let strategy = registry.from_str("pare-down").expect("built-in");
//! let constraints = PartitionConstraints::default();
//! let result = strategy.partition(&d, &constraints);
//! result.verify(&d, &constraints)?;
//! assert_eq!(result.num_partitions(), 1);
//! # Ok(())
//! # }
//! ```

use crate::anneal::{anneal, AnnealConfig};
use crate::constraints::PartitionConstraints;
use crate::exhaustive::{exhaustive, ExhaustiveOptions};
use crate::refine::pare_down_refined;
use crate::result::Partitioning;
use eblocks_core::Design;

/// An object-safe partitioning strategy.
///
/// Implementations must be deterministic: two calls with the same design and
/// constraints return the same [`Partitioning`] (stochastic strategies carry
/// their seed in their configuration). The returned partitioning must
/// [`verify`](Partitioning::verify) against the constraints it was given.
pub trait Partitioner {
    /// Stable strategy name, as accepted by [`Registry::from_str`].
    fn name(&self) -> &'static str;

    /// Partitions the design's inner blocks under the given constraints.
    fn partition(&self, design: &Design, constraints: &PartitionConstraints) -> Partitioning;
}

/// The paper's PareDown decomposition heuristic (§4.2).
#[derive(Debug, Clone, Copy, Default)]
pub struct PareDown;

impl Partitioner for PareDown {
    fn name(&self) -> &'static str {
        "pare-down"
    }

    fn partition(&self, design: &Design, constraints: &PartitionConstraints) -> Partitioning {
        crate::pare_down(design, constraints)
    }
}

/// Optimal exhaustive search (§4.1), optionally time-limited.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exhaustive {
    /// Search options (time limit, pruning configuration).
    pub options: ExhaustiveOptions,
}

impl Partitioner for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn partition(&self, design: &Design, constraints: &PartitionConstraints) -> Partitioning {
        exhaustive(design, constraints, self.options)
    }
}

/// The greedy aggregation strawman the paper discards (§4.2 ¶1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Aggregation;

impl Partitioner for Aggregation {
    fn name(&self) -> &'static str {
        "aggregation"
    }

    fn partition(&self, design: &Design, constraints: &PartitionConstraints) -> Partitioning {
        crate::aggregation(design, constraints)
    }
}

/// PareDown followed by deterministic local-search refinement.
#[derive(Debug, Clone, Copy, Default)]
pub struct Refine;

impl Partitioner for Refine {
    fn name(&self) -> &'static str {
        "refine"
    }

    fn partition(&self, design: &Design, constraints: &PartitionConstraints) -> Partitioning {
        pare_down_refined(design, constraints)
    }
}

/// Simulated annealing, with parallel multi-restart support (see
/// [`AnnealConfig::restarts`]).
#[derive(Debug, Clone, Copy)]
pub struct Anneal {
    /// Annealer configuration (iterations, schedule, seed, restarts).
    pub config: AnnealConfig,
}

impl Default for Anneal {
    fn default() -> Self {
        Self {
            config: AnnealConfig {
                restarts: 4,
                ..AnnealConfig::default()
            },
        }
    }
}

impl Partitioner for Anneal {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn partition(&self, design: &Design, constraints: &PartitionConstraints) -> Partitioning {
        anneal(design, constraints, &self.config)
    }
}

/// A boxed factory producing one configured strategy instance.
type Factory = Box<dyn Fn() -> Box<dyn Partitioner> + Send + Sync>;

/// Runtime strategy lookup for CLI flags, configs, and sweeps.
///
/// [`Registry::builtin`] knows the five strategies this crate ships;
/// [`register`](Registry::register) adds custom ones (later registrations
/// shadow earlier names).
pub struct Registry {
    entries: Vec<(&'static str, Factory)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// A registry holding the five built-in strategies with their default
    /// configurations: `pare-down`, `exhaustive`, `aggregation`, `refine`,
    /// `anneal`.
    pub fn builtin() -> Self {
        let mut r = Self::new();
        r.register("pare-down", || Box::new(PareDown));
        r.register("exhaustive", || Box::new(Exhaustive::default()));
        r.register("aggregation", || Box::new(Aggregation));
        r.register("refine", || Box::new(Refine));
        r.register("anneal", || Box::new(Anneal::default()));
        r
    }

    /// Registers a strategy factory under `name`, shadowing any earlier
    /// entry with the same name.
    pub fn register(
        &mut self,
        name: &'static str,
        factory: impl Fn() -> Box<dyn Partitioner> + Send + Sync + 'static,
    ) {
        self.entries.retain(|(n, _)| *n != name);
        self.entries.push((name, Box::new(factory)));
    }

    /// Instantiates the strategy registered under `name`, if any.
    pub fn from_str(&self, name: &str) -> Option<Box<dyn Partitioner>> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, f)| f())
    }

    /// Registered strategy names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{ComputeKind, OutputKind, SensorKind};

    fn chain(n: usize) -> Design {
        let mut d = Design::new("chain");
        let s = d.add_block("s", SensorKind::Button);
        let mut prev = s;
        for i in 0..n {
            let g = d.add_block(format!("g{i}"), ComputeKind::Not);
            d.connect((prev, 0), (g, 0)).unwrap();
            prev = g;
        }
        let o = d.add_block("o", OutputKind::Led);
        d.connect((prev, 0), (o, 0)).unwrap();
        d
    }

    #[test]
    fn builtin_registry_knows_all_five() {
        let r = Registry::builtin();
        assert_eq!(
            r.names(),
            vec!["pare-down", "exhaustive", "aggregation", "refine", "anneal"]
        );
        for name in r.names() {
            let p = r.from_str(name).unwrap();
            assert_eq!(p.name(), name);
        }
        assert!(r.from_str("magic").is_none());
    }

    #[test]
    fn strategies_agree_with_their_functions() {
        let d = chain(5);
        let c = PartitionConstraints::default();
        assert_eq!(PareDown.partition(&d, &c), crate::pare_down(&d, &c));
        assert_eq!(Aggregation.partition(&d, &c), crate::aggregation(&d, &c));
        assert_eq!(Refine.partition(&d, &c), pare_down_refined(&d, &c));
        assert_eq!(
            Exhaustive::default().partition(&d, &c),
            exhaustive(&d, &c, ExhaustiveOptions::default())
        );
        let cfg = AnnealConfig::with_iterations(2_000);
        assert_eq!(
            Anneal { config: cfg }.partition(&d, &c),
            anneal(&d, &c, &cfg)
        );
    }

    #[test]
    fn custom_registration_shadows() {
        let mut r = Registry::builtin();
        r.register("anneal", || {
            Box::new(Anneal {
                config: AnnealConfig::with_iterations(100),
            })
        });
        assert_eq!(r.names().len(), 5, "shadowing does not duplicate");
        assert_eq!(r.from_str("anneal").unwrap().name(), "anneal");
    }

    #[test]
    fn trait_objects_are_usable_in_collections() {
        let strategies: Vec<Box<dyn Partitioner>> =
            vec![Box::new(PareDown), Box::new(Aggregation), Box::new(Refine)];
        let d = chain(4);
        let c = PartitionConstraints::default();
        for s in &strategies {
            s.partition(&d, &c).verify(&d, &c).unwrap();
        }
    }
}
