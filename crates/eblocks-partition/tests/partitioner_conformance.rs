//! Conformance suite for the [`Partitioner`] trait: every registered
//! strategy must produce valid, constraint-respecting, deterministic
//! results on the same battery of designs.
//!
//! Adding a strategy to [`Registry::builtin`] automatically subjects it to
//! this suite.

use eblocks_core::{Design, ProgrammableSpec};
use eblocks_gen::{generate, GeneratorConfig};
use eblocks_partition::strategy::Anneal;
use eblocks_partition::{AnnealConfig, PartitionConstraints, Partitioner, Registry};

/// Strategies whose worst case is exponential get only small designs.
const EXPENSIVE: &[&str] = &["exhaustive"];

/// The suite's registry: the five built-ins, with the annealer re-registered
/// at a light step budget (the default 20k-step, 4-restart walk is overkill
/// for a conformance check that runs it dozens of times; the properties
/// under test are budget-independent). Re-registering also exercises the
/// registry's shadowing path.
fn registry() -> Registry {
    let mut r = Registry::builtin();
    r.register("anneal", || {
        Box::new(Anneal {
            config: AnnealConfig {
                iterations: 1_500,
                restarts: 2,
                ..Default::default()
            },
        })
    });
    r
}

/// The design battery: a spread of random design sizes, all seeded.
fn battery(for_strategy: &str) -> Vec<Design> {
    let sizes: &[usize] = if EXPENSIVE.contains(&for_strategy) {
        &[2, 5, 8]
    } else {
        &[2, 5, 8, 14]
    };
    sizes
        .iter()
        .flat_map(|&inner| {
            (0..2u64).map(move |seed| generate(&GeneratorConfig::new(inner), 9_000 + seed))
        })
        .collect()
}

fn each_strategy(mut f: impl FnMut(&str, &dyn Partitioner)) {
    let registry = registry();
    let names = registry.names();
    assert_eq!(names.len(), 5, "expected the five built-in strategies");
    for name in names {
        let strategy = registry.from_str(name).unwrap();
        f(name, strategy.as_ref());
    }
}

#[test]
fn every_strategy_produces_valid_partitionings() {
    each_strategy(|name, strategy| {
        let constraints = PartitionConstraints::default();
        for design in battery(name) {
            let result = strategy.partition(&design, &constraints);
            result
                .verify(&design, &constraints)
                .unwrap_or_else(|e| panic!("{name} on {}: {e}", design.name()));
            assert_eq!(
                result.covered() + result.uncovered().len(),
                design.inner_blocks().count(),
                "{name} on {}: all inner blocks accounted for",
                design.name()
            );
        }
    });
}

#[test]
fn every_strategy_respects_pin_constraints() {
    // Tight and asymmetric budgets; verify() rejects any partition whose
    // cut cost exceeds the spec, so a pass proves constraint respect.
    let specs = [
        ProgrammableSpec::new(1, 1),
        ProgrammableSpec::new(2, 1),
        ProgrammableSpec::new(3, 2),
    ];
    each_strategy(|name, strategy| {
        for spec in specs {
            let constraints = PartitionConstraints::with_spec(spec);
            for design in battery(name) {
                let result = strategy.partition(&design, &constraints);
                result
                    .verify(&design, &constraints)
                    .unwrap_or_else(|e| panic!("{name}/{spec} on {}: {e}", design.name()));
                for partition in result.partitions() {
                    assert!(
                        partition.len() >= 2,
                        "{name}/{spec} on {}: undersized partition",
                        design.name()
                    );
                }
            }
        }
    });
}

#[test]
fn every_strategy_respects_structural_constraints() {
    let constraints = PartitionConstraints {
        require_convex: true,
        require_connected: true,
        ..Default::default()
    };
    each_strategy(|name, strategy| {
        for design in battery(name) {
            strategy
                .partition(&design, &constraints)
                .verify(&design, &constraints)
                .unwrap_or_else(|e| panic!("{name} on {}: {e}", design.name()));
        }
    });
}

#[test]
fn every_strategy_is_deterministic_under_fixed_seed() {
    // Stochastic strategies carry their seed in their default
    // configuration; two identical calls must agree exactly.
    each_strategy(|name, strategy| {
        let constraints = PartitionConstraints::default();
        for design in battery(name) {
            let first = strategy.partition(&design, &constraints);
            let second = strategy.partition(&design, &constraints);
            assert_eq!(first, second, "{name} on {}", design.name());
            // A fresh instance from the registry agrees too.
            let fresh = registry().from_str(name).unwrap();
            assert_eq!(
                fresh.partition(&design, &constraints),
                first,
                "{name} on {}",
                design.name()
            );
        }
    });
}

#[test]
fn every_strategy_handles_degenerate_designs() {
    // No inner blocks at all: a sensor wired straight to an output.
    use eblocks_core::{OutputKind, SensorKind};
    let mut d = Design::new("degenerate");
    let s = d.add_block("s", SensorKind::Button);
    let o = d.add_block("o", OutputKind::Led);
    d.connect((s, 0), (o, 0)).unwrap();
    each_strategy(|name, strategy| {
        let constraints = PartitionConstraints::default();
        let result = strategy.partition(&d, &constraints);
        result
            .verify(&d, &constraints)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(result.inner_total(), 0, "{name}");
    });
}

#[test]
fn strategy_names_round_trip_through_registry() {
    each_strategy(|name, strategy| {
        assert_eq!(strategy.name(), name);
    });
}
