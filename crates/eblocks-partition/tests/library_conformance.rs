//! Table 1 conformance: both algorithms must reproduce the pinned outcomes
//! on every reconstructed library design.

use eblocks_partition::{exhaustive, pare_down, ExhaustiveOptions, PartitionConstraints};
use std::time::Duration;

#[test]
fn pare_down_matches_expected_on_every_library_design() {
    let constraints = PartitionConstraints::default();
    for entry in eblocks_designs::all() {
        let result = pare_down(&entry.design, &constraints);
        result
            .verify(&entry.design, &constraints)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert_eq!(
            (result.inner_total(), result.num_partitions()),
            entry.expected.pare_down,
            "{}: got {result}",
            entry.name
        );
    }
}

#[test]
fn exhaustive_matches_expected_where_reported() {
    let constraints = PartitionConstraints::default();
    for entry in eblocks_designs::all() {
        let Some(expected) = entry.expected.exhaustive else {
            continue;
        };
        let result = exhaustive(
            &entry.design,
            &constraints,
            ExhaustiveOptions {
                time_limit: Some(Duration::from_secs(60)),
                ..Default::default()
            },
        );
        assert!(result.is_complete(), "{} timed out", entry.name);
        result
            .verify(&entry.design, &constraints)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        assert_eq!(
            (result.inner_total(), result.num_partitions()),
            expected,
            "{}: got {result}",
            entry.name
        );
    }
}

#[test]
fn heuristic_never_beats_exhaustive_on_library() {
    let constraints = PartitionConstraints::default();
    for entry in eblocks_designs::all() {
        if entry.design.inner_blocks().count() > 12 {
            continue;
        }
        let opt = exhaustive(&entry.design, &constraints, ExhaustiveOptions::default());
        let heur = pare_down(&entry.design, &constraints);
        assert!(
            opt.objective() <= heur.objective(),
            "{}: exhaustive {:?} vs pare-down {:?}",
            entry.name,
            opt.objective(),
            heur.objective()
        );
    }
}
