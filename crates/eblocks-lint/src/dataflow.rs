//! Abstract interpretation of behavior programs on a finite value-set
//! domain, plus its propagation across a design's wires.
//!
//! # The abstract domain
//!
//! Every signal — a state variable, an input port, an output port — is
//! approximated by a [`ValueSet`]: either the *finite set* of concrete
//! [`AbstractValue`]s it may hold, or [`ValueSet::Any`] (⊤, no claim).
//! The empty set is ⊥: the signal provably never carries a value (an
//! output port that is never written, a branch that never runs).
//!
//! The sets form a lattice ordered by inclusion with `Any` on top:
//!
//! ```text
//! ⊥ = {}  ⊑  {v}  ⊑  {v, w}  ⊑ … ⊑  Any = ⊤
//! ```
//!
//! [`ValueSet::join`] is set union, *widened*: a union whose cardinality
//! would exceed [`WIDENING_CAP`] collapses to `Any`. The cap bounds the
//! lattice height — any chain from ⊥ to ⊤ has at most `WIDENING_CAP + 2`
//! elements — which is what makes the fixpoint below terminate.
//!
//! # The fixpoint
//!
//! [`analyze_program`] abstractly executes every handler against a
//! *persistent* map of state-variable sets, seeded with the (abstract)
//! initializer values. Each round re-runs every handler on the current
//! map and joins the resulting state values back in; assignments inside
//! `if` branches are joined across the branches a condition may take.
//! Because the per-variable sets only ever grow under join and the
//! lattice height is bounded by the widening cap, the loop reaches a
//! fixed point after at most `vars × (WIDENING_CAP + 2)` changing rounds
//! — no iteration cap or fuel is needed for termination, though a
//! defensive one is kept for belt-and-braces.
//!
//! A final recording pass over the converged map collects the facts the
//! rule layer consumes: per-output value sets (⊥ = the port provably
//! never fires) and a verdict for every *reachable* `if` condition
//! (reachable meaning some path the abstraction admits arrives there).
//!
//! # Cross-block propagation
//!
//! [`analyze_design`] walks an acyclic design in topological order and
//! feeds each block's abstract *output* sets forward as the next block's
//! *input* sets. A wired input port sees the join of its drivers' output
//! sets plus `false` — the simulator latches undelivered inputs to
//! `Bool(false)`, so a handler can observe the latched default before the
//! first packet arrives. Sensors are modeled as `Any` (the environment is
//! unconstrained), `comm` relays as pass-through, and programmable blocks
//! without an attached program as `Any` on every output.

use eblocks_behavior::library;
use eblocks_behavior::{BinOp, Expr, HandlerKind, Program, Stmt, UnOp};
use eblocks_core::{BlockId, BlockKind, Design};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Maximum cardinality a [`ValueSet`] may reach before a join widens it
/// to [`ValueSet::Any`]. Bounds the lattice height (and therefore the
/// fixpoint iteration count); 8 keeps every shipped block precise while
/// collapsing unbounded counters immediately.
pub const WIDENING_CAP: usize = 8;

/// One concrete value a signal can carry, mirroring
/// [`eblocks_behavior::Value`] but `Ord` so sets are canonically ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AbstractValue {
    /// A boolean packet.
    Bool(bool),
    /// An integer packet.
    Int(i64),
}

impl fmt::Display for AbstractValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Bool(b) => write!(f, "{b}"),
            Self::Int(i) => write!(f, "{i}"),
        }
    }
}

/// The set of values a signal may hold: a finite enumeration or `Any`
/// (⊤). `Values(∅)` is ⊥ — the signal provably never carries a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueSet {
    /// No claim: the signal may hold anything (⊤).
    Any,
    /// Exactly these values are possible (∅ = ⊥, provably none).
    Values(BTreeSet<AbstractValue>),
}

impl ValueSet {
    /// ⊥: no value is possible.
    #[must_use]
    pub fn bottom() -> Self {
        Self::Values(BTreeSet::new())
    }

    /// The singleton set `{v}`.
    #[must_use]
    pub fn just(v: AbstractValue) -> Self {
        Self::Values(std::iter::once(v).collect())
    }

    /// The set `{false, true}`.
    #[must_use]
    pub fn bools() -> Self {
        Self::Values(
            [AbstractValue::Bool(false), AbstractValue::Bool(true)]
                .into_iter()
                .collect(),
        )
    }

    /// True for ⊥ (the empty enumeration).
    #[must_use]
    pub fn is_bottom(&self) -> bool {
        matches!(self, Self::Values(s) if s.is_empty())
    }

    /// If the set is exactly one value, that value.
    #[must_use]
    pub fn as_singleton(&self) -> Option<AbstractValue> {
        match self {
            Self::Values(s) if s.len() == 1 => s.iter().next().copied(),
            _ => None,
        }
    }

    /// Least upper bound: set union, widened to `Any` past
    /// [`WIDENING_CAP`].
    #[must_use]
    pub fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (Self::Any, _) | (_, Self::Any) => Self::Any,
            (Self::Values(a), Self::Values(b)) => {
                let union: BTreeSet<AbstractValue> = a.union(b).copied().collect();
                if union.len() > WIDENING_CAP {
                    Self::Any
                } else {
                    Self::Values(union)
                }
            }
        }
    }

    /// `(may be true, may be false)` when used as a branch condition.
    /// Non-boolean members are runtime errors, not truth values; `Any`
    /// admits both.
    #[must_use]
    pub fn truth(&self) -> (bool, bool) {
        match self {
            Self::Any => (true, true),
            Self::Values(s) => (
                s.contains(&AbstractValue::Bool(true)),
                s.contains(&AbstractValue::Bool(false)),
            ),
        }
    }

    fn insert(&mut self, v: AbstractValue) {
        if let Self::Values(s) = self {
            s.insert(v);
            if s.len() > WIDENING_CAP {
                *self = Self::Any;
            }
        }
    }
}

impl fmt::Display for ValueSet {
    /// `any`, or `{false}`, `{0, 1, 2}` — members in canonical order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Any => f.write_str("any"),
            Self::Values(s) => {
                f.write_str("{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// One step on the path from a handler body to a nested statement —
/// used to locate a [`CondFact`]'s `if` in a span table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathElem {
    /// Index into the current statement list.
    Stmt(usize),
    /// Descend into the preceding `if`'s then-branch.
    Then,
    /// Descend into the preceding `if`'s else-branch.
    Else,
}

/// The abstract verdict on one reachable `if` condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondFact {
    /// Index of the handler the `if` lives in.
    pub handler: usize,
    /// The handler's kind (for display).
    pub kind: HandlerKind,
    /// Path from the handler body to the `if` statement.
    pub path: Vec<PathElem>,
    /// The condition, pretty-printed.
    pub display: String,
    /// The condition may evaluate to `true`.
    pub may_true: bool,
    /// The condition may evaluate to `false`.
    pub may_false: bool,
    /// The condition reads no variables (syntactically constant).
    pub syntactic: bool,
    /// Number of statements in the then-branch.
    pub then_len: usize,
    /// Number of statements in the else-branch.
    pub else_len: usize,
}

impl CondFact {
    /// Decided one way: the condition may be true but never false.
    #[must_use]
    pub fn always_true(&self) -> bool {
        self.may_true && !self.may_false
    }

    /// Decided the other way: may be false but never true.
    #[must_use]
    pub fn always_false(&self) -> bool {
        self.may_false && !self.may_true
    }
}

/// Everything [`analyze_program`] learns about one program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramFacts {
    /// Converged per-state value sets (declared states only).
    pub states: BTreeMap<String, ValueSet>,
    /// Per-output value sets, indexed by port; ⊥ = never written on any
    /// admitted path.
    pub outputs: Vec<ValueSet>,
    /// A verdict for every reachable `if` condition.
    pub conds: Vec<CondFact>,
}

type Env = BTreeMap<String, ValueSet>;

/// Abstractly interprets `program` given per-input-port value sets and
/// returns the converged facts. `inputs.len()` is the block's input
/// arity; `num_outputs` its output arity.
///
/// The analysis is total: programs the semantic checker rejects still
/// analyze (unknown variables read as `Any`, error-only paths contribute
/// nothing), so it is safe to run alongside the checker.
#[must_use]
pub fn analyze_program(program: &Program, inputs: &[ValueSet], num_outputs: u8) -> ProgramFacts {
    // Seed: abstract initializer values, in declaration order (later
    // initializers may read earlier states).
    let mut persistent: Env = Env::new();
    for st in &program.states {
        let v = eval(&st.init, &persistent);
        persistent.insert(st.name.clone(), v);
    }
    let state_names: BTreeSet<&str> = program.states.iter().map(|s| s.name.as_str()).collect();

    // Chaotic iteration to a fixed point. Terminates because each state
    // set only grows under join and the lattice height is capped (see
    // module docs); the fuel is purely defensive.
    let mut fuel = state_names.len() * (WIDENING_CAP + 2) + 8;
    loop {
        let mut changed = false;
        for handler in &program.handlers {
            let mut env = seeded_env(&persistent, inputs);
            let mut sink = Vec::new();
            exec_stmts(&handler.body, &mut env, &mut Vec::new(), None, &mut sink);
            for (name, set) in &env {
                if !state_names.contains(name.as_str()) {
                    continue;
                }
                let joined = persistent[name.as_str()].join(set);
                if joined != persistent[name.as_str()] {
                    persistent.insert(name.clone(), joined);
                    changed = true;
                }
            }
        }
        fuel = fuel.saturating_sub(1);
        if !changed || fuel == 0 {
            break;
        }
    }

    // Recording pass over the converged states: output sets and
    // condition verdicts.
    let mut outputs = vec![ValueSet::bottom(); num_outputs as usize];
    let mut conds = Vec::new();
    for (idx, handler) in program.handlers.iter().enumerate() {
        let mut env = seeded_env(&persistent, inputs);
        exec_stmts(
            &handler.body,
            &mut env,
            &mut Vec::new(),
            Some((idx, handler.kind)),
            &mut conds,
        );
        for (port, out) in outputs.iter_mut().enumerate() {
            if let Some(set) = env.get(&format!("out{port}")) {
                *out = out.join(set);
            }
        }
    }

    let states = program
        .states
        .iter()
        .map(|s| (s.name.clone(), persistent[&s.name].clone()))
        .collect();
    ProgramFacts {
        states,
        outputs,
        conds,
    }
}

fn seeded_env(persistent: &Env, inputs: &[ValueSet]) -> Env {
    let mut env = persistent.clone();
    for (port, set) in inputs.iter().enumerate() {
        env.insert(format!("in{port}"), set.clone());
    }
    env
}

/// Abstractly executes a statement list, mutating `env`. When `record`
/// is set, pushes a [`CondFact`] for every `if` encountered on an
/// admitted path.
fn exec_stmts(
    stmts: &[Stmt],
    env: &mut Env,
    path: &mut Vec<PathElem>,
    record: Option<(usize, HandlerKind)>,
    conds: &mut Vec<CondFact>,
) {
    for (i, stmt) in stmts.iter().enumerate() {
        match stmt {
            Stmt::Let(name, e) | Stmt::Assign(name, e) => {
                let v = eval(e, env);
                env.insert(name.clone(), v);
            }
            Stmt::If(cond, then_body, else_body) => {
                let cv = eval(cond, env);
                let (may_true, may_false) = cv.truth();
                if let Some((handler, kind)) = record {
                    let mut vars = BTreeSet::new();
                    cond.vars(&mut vars);
                    let mut p = path.clone();
                    p.push(PathElem::Stmt(i));
                    conds.push(CondFact {
                        handler,
                        kind,
                        path: p,
                        display: cond.to_string(),
                        may_true,
                        may_false,
                        syntactic: vars.is_empty(),
                        then_len: then_body.len(),
                        else_len: else_body.len(),
                    });
                }
                path.push(PathElem::Stmt(i));
                match (may_true, may_false) {
                    (true, true) => {
                        let mut then_env = env.clone();
                        path.push(PathElem::Then);
                        exec_stmts(then_body, &mut then_env, path, record, conds);
                        path.pop();
                        path.push(PathElem::Else);
                        exec_stmts(else_body, env, path, record, conds);
                        path.pop();
                        join_env(env, &then_env);
                    }
                    (true, false) => {
                        path.push(PathElem::Then);
                        exec_stmts(then_body, env, path, record, conds);
                        path.pop();
                    }
                    (false, true) => {
                        path.push(PathElem::Else);
                        exec_stmts(else_body, env, path, record, conds);
                        path.pop();
                    }
                    // The condition never evaluates to a boolean at all:
                    // every concrete run errors here, so neither branch's
                    // effects are observable.
                    (false, false) => {}
                }
                path.pop();
            }
        }
    }
}

/// Joins `other` into `env`. A variable present on only one side keeps
/// the present value: the absent side either kept the pre-branch binding
/// (already in both clones) or reads it unbound, which is a runtime
/// error and contributes nothing observable.
fn join_env(env: &mut Env, other: &Env) {
    for (name, set) in other {
        match env.get(name) {
            Some(cur) => {
                let joined = cur.join(set);
                env.insert(name.clone(), joined);
            }
            None => {
                env.insert(name.clone(), set.clone());
            }
        }
    }
}

/// Abstract evaluation of an expression. Mirrors the interpreter's
/// semantics value-for-value: checked arithmetic (overflow and division
/// by zero are runtime errors, so offending pairs are skipped),
/// short-circuit `&&`/`||` over boolean members only, `==`/`!=` defined
/// on same-type pairs, ordered comparisons on integers. Reads of unbound
/// variables evaluate to `Any` (the checker reports them; the abstraction
/// just stays sound).
#[must_use]
pub fn eval(expr: &Expr, env: &Env) -> ValueSet {
    match expr {
        Expr::Bool(b) => ValueSet::just(AbstractValue::Bool(*b)),
        Expr::Int(i) => ValueSet::just(AbstractValue::Int(*i)),
        Expr::Var(name) => env.get(name).cloned().unwrap_or(ValueSet::Any),
        Expr::Unary(op, e) => {
            let v = eval(e, env);
            match op {
                UnOp::Not => match v {
                    ValueSet::Any => ValueSet::bools(),
                    ValueSet::Values(s) => {
                        let mut out = ValueSet::bottom();
                        for m in s {
                            if let AbstractValue::Bool(b) = m {
                                out.insert(AbstractValue::Bool(!b));
                            }
                        }
                        out
                    }
                },
                UnOp::Neg => match v {
                    ValueSet::Any => ValueSet::Any,
                    ValueSet::Values(s) => {
                        let mut out = ValueSet::bottom();
                        for m in s {
                            if let AbstractValue::Int(i) = m {
                                if let Some(n) = i.checked_neg() {
                                    out.insert(AbstractValue::Int(n));
                                }
                            }
                        }
                        out
                    }
                },
            }
        }
        Expr::Binary(op, l, r) => eval_binary(*op, l, r, env),
    }
}

fn eval_binary(op: BinOp, l: &Expr, r: &Expr, env: &Env) -> ValueSet {
    // Short-circuit operators branch on the left side's truth values.
    if matches!(op, BinOp::And | BinOp::Or) {
        let (lt, lf) = eval(l, env).truth();
        let mut out = ValueSet::bottom();
        let needs_rhs = match op {
            BinOp::And => lt,
            _ => lf,
        };
        match op {
            BinOp::And => {
                if lf {
                    out.insert(AbstractValue::Bool(false));
                }
            }
            _ => {
                if lt {
                    out.insert(AbstractValue::Bool(true));
                }
            }
        }
        if needs_rhs {
            let (rt, rf) = eval(r, env).truth();
            if rt {
                out.insert(AbstractValue::Bool(true));
            }
            if rf {
                out.insert(AbstractValue::Bool(false));
            }
        }
        return out;
    }

    let lv = eval(l, env);
    let rv = eval(r, env);
    let (ValueSet::Values(ls), ValueSet::Values(rs)) = (&lv, &rv) else {
        // One side is unconstrained: comparisons may go either way,
        // arithmetic may produce anything.
        return match op {
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                ValueSet::bools()
            }
            _ => ValueSet::Any,
        };
    };

    let mut out = ValueSet::bottom();
    for a in ls {
        for b in rs {
            let result = match (op, a, b) {
                (BinOp::Eq, AbstractValue::Bool(x), AbstractValue::Bool(y)) => {
                    Some(AbstractValue::Bool(x == y))
                }
                (BinOp::Eq, AbstractValue::Int(x), AbstractValue::Int(y)) => {
                    Some(AbstractValue::Bool(x == y))
                }
                (BinOp::Ne, AbstractValue::Bool(x), AbstractValue::Bool(y)) => {
                    Some(AbstractValue::Bool(x != y))
                }
                (BinOp::Ne, AbstractValue::Int(x), AbstractValue::Int(y)) => {
                    Some(AbstractValue::Bool(x != y))
                }
                (BinOp::Lt, AbstractValue::Int(x), AbstractValue::Int(y)) => {
                    Some(AbstractValue::Bool(x < y))
                }
                (BinOp::Le, AbstractValue::Int(x), AbstractValue::Int(y)) => {
                    Some(AbstractValue::Bool(x <= y))
                }
                (BinOp::Gt, AbstractValue::Int(x), AbstractValue::Int(y)) => {
                    Some(AbstractValue::Bool(x > y))
                }
                (BinOp::Ge, AbstractValue::Int(x), AbstractValue::Int(y)) => {
                    Some(AbstractValue::Bool(x >= y))
                }
                (BinOp::Add, AbstractValue::Int(x), AbstractValue::Int(y)) => {
                    x.checked_add(*y).map(AbstractValue::Int)
                }
                (BinOp::Sub, AbstractValue::Int(x), AbstractValue::Int(y)) => {
                    x.checked_sub(*y).map(AbstractValue::Int)
                }
                (BinOp::Mul, AbstractValue::Int(x), AbstractValue::Int(y)) => {
                    x.checked_mul(*y).map(AbstractValue::Int)
                }
                (BinOp::Div, AbstractValue::Int(x), AbstractValue::Int(y)) => {
                    x.checked_div(*y).map(AbstractValue::Int)
                }
                (BinOp::Rem, AbstractValue::Int(x), AbstractValue::Int(y)) => {
                    x.checked_rem(*y).map(AbstractValue::Int)
                }
                // Type-mismatched pairs are runtime errors: skipped.
                _ => None,
            };
            if let Some(v) = result {
                out.insert(v);
                if out == ValueSet::Any {
                    return out;
                }
            }
        }
    }
    out
}

/// If every read of input port `port` in `program` is an equality
/// comparison against a literal, returns the set of matched literals —
/// the values the receiver's handlers react to. Returns `None` when the
/// port is read any other way (raw truth test, arithmetic, ordered
/// comparison, re-assignment source) or never read at all: no claim can
/// be made then.
#[must_use]
pub fn matched_values(program: &Program, port: u8) -> Option<BTreeSet<AbstractValue>> {
    let name = format!("in{port}");
    let mut matched = BTreeSet::new();
    let mut reads = 0usize;
    let mut opaque = false;
    for handler in &program.handlers {
        for stmt in &handler.body {
            match_stmt(stmt, &name, &mut matched, &mut reads, &mut opaque);
        }
    }
    for st in &program.states {
        match_expr(&st.init, &name, &mut matched, &mut reads, &mut opaque);
    }
    (!opaque && reads > 0).then_some(matched)
}

fn match_stmt(
    stmt: &Stmt,
    name: &str,
    matched: &mut BTreeSet<AbstractValue>,
    reads: &mut usize,
    opaque: &mut bool,
) {
    match stmt {
        Stmt::Let(_, e) | Stmt::Assign(_, e) => match_expr(e, name, matched, reads, opaque),
        Stmt::If(cond, then_body, else_body) => {
            match_expr(cond, name, matched, reads, opaque);
            for s in then_body.iter().chain(else_body) {
                match_stmt(s, name, matched, reads, opaque);
            }
        }
    }
}

fn match_expr(
    expr: &Expr,
    name: &str,
    matched: &mut BTreeSet<AbstractValue>,
    reads: &mut usize,
    opaque: &mut bool,
) {
    // An equality test of the port against a literal is a "match"; any
    // other appearance of the port makes the whole port opaque.
    if let Expr::Binary(BinOp::Eq, l, r) = expr {
        let lit = match (l.as_ref(), r.as_ref()) {
            (Expr::Var(v), Expr::Int(i)) | (Expr::Int(i), Expr::Var(v)) if v == name => {
                Some(AbstractValue::Int(*i))
            }
            (Expr::Var(v), Expr::Bool(b)) | (Expr::Bool(b), Expr::Var(v)) if v == name => {
                Some(AbstractValue::Bool(*b))
            }
            _ => None,
        };
        if let Some(v) = lit {
            matched.insert(v);
            *reads += 1;
            return;
        }
    }
    match expr {
        Expr::Bool(_) | Expr::Int(_) => {}
        Expr::Var(v) => {
            if v == name {
                *reads += 1;
                *opaque = true;
            }
        }
        Expr::Unary(_, e) => match_expr(e, name, matched, reads, opaque),
        Expr::Binary(_, l, r) => {
            match_expr(l, name, matched, reads, opaque);
            match_expr(r, name, matched, reads, opaque);
        }
    }
}

/// Cross-block facts for one design, from [`analyze_design`].
#[derive(Debug, Clone, Default)]
pub struct DesignFacts {
    /// `(block, output port)` → the set of values that port can emit.
    pub outputs: BTreeMap<(BlockId, u8), ValueSet>,
    /// `(block, input port)` → the set of values arriving there
    /// (drivers' outputs joined with the latched `false` default);
    /// `Any` for undriven ports.
    pub incoming: BTreeMap<(BlockId, u8), ValueSet>,
    /// Per-block program facts, for blocks whose behavior is known (all
    /// `compute` blocks via the library; programmable blocks only when a
    /// program was supplied).
    pub programs: BTreeMap<BlockId, ProgramFacts>,
}

/// Propagates abstract value sets through `design` in topological order.
/// `programs` optionally attaches behavior programs to programmable
/// blocks. Returns `None` when the wire graph is cyclic (the structural
/// rules report that; there is no topological order to walk).
#[must_use]
pub fn analyze_design(
    design: &Design,
    programs: &BTreeMap<BlockId, Program>,
) -> Option<DesignFacts> {
    let order = topo_order(design)?;
    let mut facts = DesignFacts::default();

    for id in order {
        let block = design.block(id).expect("ordered id");
        let kind = block.kind();
        let num_inputs = kind.num_inputs();

        // The sets arriving on each input port: drivers' outputs joined
        // with the latched default `false`; undriven ports are
        // unconstrained (the structural rules already flag them).
        let mut incoming = Vec::with_capacity(num_inputs as usize);
        for port in 0..num_inputs {
            let mut wired = false;
            let mut set = ValueSet::just(AbstractValue::Bool(false));
            for w in design.in_wires(id) {
                if w.to_port == port {
                    wired = true;
                    let from = facts
                        .outputs
                        .get(&(w.from, w.from_port))
                        .cloned()
                        .unwrap_or(ValueSet::Any);
                    set = set.join(&from);
                }
            }
            let set = if wired { set } else { ValueSet::Any };
            facts.incoming.insert((id, port), set.clone());
            incoming.push(set);
        }

        match kind {
            BlockKind::Sensor(_) => {
                // The environment is unconstrained.
                facts.outputs.insert((id, 0), ValueSet::Any);
            }
            BlockKind::Output(_) => {}
            BlockKind::Comm(_) => {
                // Behaviorally transparent relay: forwards exactly what
                // its driver sends (it only fires on receipt, so the
                // latched default never crosses it).
                let forwarded = design
                    .in_wires(id)
                    .filter(|w| w.to_port == 0)
                    .map(|w| {
                        facts
                            .outputs
                            .get(&(w.from, w.from_port))
                            .cloned()
                            .unwrap_or(ValueSet::Any)
                    })
                    .fold(ValueSet::bottom(), |acc, s| acc.join(&s));
                let forwarded = if forwarded.is_bottom() {
                    ValueSet::Any // undriven relay: no claim
                } else {
                    forwarded
                };
                facts.outputs.insert((id, 0), forwarded);
            }
            BlockKind::Compute(ck) => {
                let program = library::program_for(ck);
                let pf = analyze_program(&program, &incoming, kind.num_outputs());
                for (port, set) in pf.outputs.iter().enumerate() {
                    facts.outputs.insert((id, port as u8), set.clone());
                }
                facts.programs.insert(id, pf);
            }
            BlockKind::Programmable(_) => match programs.get(&id) {
                Some(program) => {
                    let pf = analyze_program(program, &incoming, kind.num_outputs());
                    for (port, set) in pf.outputs.iter().enumerate() {
                        facts.outputs.insert((id, port as u8), set.clone());
                    }
                    facts.programs.insert(id, pf);
                }
                None => {
                    for port in 0..kind.num_outputs() {
                        facts.outputs.insert((id, port), ValueSet::Any);
                    }
                }
            },
        }
    }
    Some(facts)
}

/// Kahn's algorithm over the wire graph; `None` if a cycle remains.
fn topo_order(design: &Design) -> Option<Vec<BlockId>> {
    let ids: Vec<BlockId> = design.blocks().collect();
    let mut indegree: BTreeMap<BlockId, usize> = ids.iter().map(|&id| (id, 0)).collect();
    for id in &ids {
        for w in design.out_wires(*id) {
            *indegree.get_mut(&w.to).expect("wire target exists") += 1;
        }
    }
    let mut ready: Vec<BlockId> = ids.iter().copied().filter(|id| indegree[id] == 0).collect();
    let mut order = Vec::with_capacity(ids.len());
    while let Some(id) = ready.pop() {
        order.push(id);
        for w in design.out_wires(id) {
            let d = indegree.get_mut(&w.to).expect("wire target exists");
            *d -= 1;
            if *d == 0 {
                ready.push(w.to);
            }
        }
    }
    (order.len() == ids.len()).then_some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_behavior::parse;

    fn any_inputs(n: usize) -> Vec<ValueSet> {
        vec![ValueSet::Any; n]
    }

    #[test]
    fn join_widens_past_the_cap() {
        let mut s = ValueSet::bottom();
        for i in 0..WIDENING_CAP as i64 {
            s.insert(AbstractValue::Int(i));
        }
        assert_eq!(s.as_singleton(), None);
        assert!(!s.is_bottom());
        let one_more = ValueSet::just(AbstractValue::Int(99));
        assert_eq!(s.join(&one_more), ValueSet::Any);
        assert_eq!(ValueSet::Any.join(&ValueSet::bottom()), ValueSet::Any);
    }

    #[test]
    fn display_is_canonical() {
        let mut s = ValueSet::bottom();
        s.insert(AbstractValue::Int(2));
        s.insert(AbstractValue::Bool(true));
        s.insert(AbstractValue::Int(0));
        assert_eq!(s.to_string(), "{true, 0, 2}");
        assert_eq!(ValueSet::Any.to_string(), "any");
        assert_eq!(ValueSet::bottom().to_string(), "{}");
    }

    #[test]
    fn constant_program_has_singleton_output() {
        let p = parse("on input { out0 = false; }").unwrap();
        let facts = analyze_program(&p, &any_inputs(2), 1);
        assert_eq!(
            facts.outputs[0].as_singleton(),
            Some(AbstractValue::Bool(false))
        );
    }

    #[test]
    fn unwritten_output_is_bottom() {
        let p = parse("on input { if (in0 && false) { out0 = true; } }").unwrap();
        let facts = analyze_program(&p, &[ValueSet::bools()], 1);
        assert!(facts.outputs[0].is_bottom(), "{:?}", facts.outputs[0]);
        // The absorbed conjunction is caught as an always-false condition
        // (note `in0 && !in0` would NOT be: the domain is non-relational,
        // so the two operand reads are independent).
        assert_eq!(facts.conds.len(), 1);
        assert!(facts.conds[0].always_false());
    }

    #[test]
    fn toggle_under_constant_false_input_is_frozen() {
        let toggle = "state q = false; state prev = false;\n\
                      on input { if (in0 && !prev) { q = !q; } prev = in0; out0 = q; }";
        let p = parse(toggle).unwrap();
        let frozen = analyze_program(&p, &[ValueSet::just(AbstractValue::Bool(false))], 1);
        assert_eq!(
            frozen.states["q"].as_singleton(),
            Some(AbstractValue::Bool(false))
        );
        assert!(frozen.conds[0].always_false());
        assert_eq!(
            frozen.outputs[0].as_singleton(),
            Some(AbstractValue::Bool(false))
        );

        // Under a live input the toggle truly toggles: both values reach
        // the state and the output, and the condition stays undecided.
        let live = analyze_program(&p, &[ValueSet::bools()], 1);
        assert_eq!(live.states["q"], ValueSet::bools());
        assert_eq!(live.outputs[0], ValueSet::bools());
        assert!(live.conds[0].may_true && live.conds[0].may_false);
    }

    #[test]
    fn counters_widen_to_any() {
        let p = parse("state n = 0; on tick { n = n + 1; }").unwrap();
        let facts = analyze_program(&p, &[], 0);
        assert_eq!(facts.states["n"], ValueSet::Any);
    }

    #[test]
    fn branch_join_accumulates_both_arms() {
        let p = parse("on input { if (in0) { out0 = 1; } else { out0 = 2; } }").unwrap();
        let facts = analyze_program(&p, &[ValueSet::bools()], 1);
        let expect: BTreeSet<AbstractValue> = [AbstractValue::Int(1), AbstractValue::Int(2)]
            .into_iter()
            .collect();
        assert_eq!(facts.outputs[0], ValueSet::Values(expect));
    }

    #[test]
    fn arithmetic_mirrors_checked_semantics() {
        // i64::MAX + 1 overflows: the error path contributes nothing, so
        // only the in-range sum remains.
        let p = parse(&format!(
            "on input {{ if (in0) {{ out0 = {} + 1; }} else {{ out0 = 1 + 1; }} }}",
            i64::MAX
        ))
        .unwrap();
        let facts = analyze_program(&p, &[ValueSet::bools()], 1);
        assert_eq!(facts.outputs[0].as_singleton(), Some(AbstractValue::Int(2)));

        // Division by zero likewise vanishes.
        let p = parse("on input { out0 = 1 / 0; }").unwrap();
        let facts = analyze_program(&p, &any_inputs(1), 1);
        assert!(facts.outputs[0].is_bottom());
    }

    #[test]
    fn short_circuit_truth_tables() {
        let env = Env::new();
        let t = |src: &str| {
            let p = parse(&format!("on input {{ out0 = {src}; }}")).unwrap();
            let facts = analyze_program(&p, &[], 1);
            facts.outputs[0].clone()
        };
        let _ = env;
        assert_eq!(
            t("true && false").as_singleton(),
            Some(AbstractValue::Bool(false))
        );
        assert_eq!(
            t("true || false").as_singleton(),
            Some(AbstractValue::Bool(true))
        );
        assert_eq!(
            t("false && (1 / 0 == 0)").as_singleton(),
            Some(AbstractValue::Bool(false))
        );
        assert_eq!(
            t("true || (1 / 0 == 0)").as_singleton(),
            Some(AbstractValue::Bool(true))
        );
        // Mixed-type equality is a runtime error pair: no value.
        assert!(t("1 == true").is_bottom());
    }

    #[test]
    fn matched_values_extraction() {
        let p =
            parse("on input { if (in0 == 2) { out0 = true; } if (3 == in0) { out0 = false; } }")
                .unwrap();
        let m = matched_values(&p, 0).unwrap();
        let expect: BTreeSet<AbstractValue> = [AbstractValue::Int(2), AbstractValue::Int(3)]
            .into_iter()
            .collect();
        assert_eq!(m, expect);

        // A raw truth read makes the port opaque.
        let p = parse("on input { if (in0 == 2) { out0 = in0; } }").unwrap();
        assert_eq!(matched_values(&p, 0), None);
        // Never read: no claim either.
        let p = parse("on input { out0 = true; }").unwrap();
        assert_eq!(matched_values(&p, 0), None);
    }

    #[test]
    fn every_library_program_analyzes_under_any() {
        use eblocks_core::{ComputeKind, TruthTable2, TruthTable3};
        let mut kinds = vec![
            ComputeKind::Not,
            ComputeKind::Toggle,
            ComputeKind::Trip,
            ComputeKind::Splitter,
            ComputeKind::PulseGen { ticks: 3 },
            ComputeKind::Delay { ticks: 2 },
        ];
        for t in 0..16 {
            kinds.push(ComputeKind::Logic2(TruthTable2::from_mask(t).unwrap()));
        }
        kinds.push(ComputeKind::Logic3(TruthTable3::from_mask(0x96)));
        for kind in kinds {
            let program = library::program_for(kind);
            let inputs = vec![ValueSet::Any; kind.num_inputs() as usize];
            let facts = analyze_program(&program, &inputs, kind.num_outputs());
            for (port, out) in facts.outputs.iter().enumerate() {
                assert!(
                    !out.is_bottom(),
                    "{kind:?} out{port} must be able to fire under unconstrained inputs"
                );
            }
        }
    }
}
