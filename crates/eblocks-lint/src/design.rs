//! Design-layer lint rules: structural problems in an eBlock network.
//!
//! [`lint_design`] inspects an in-memory [`Design`]; [`lint_netlist`]
//! first parses netlist text, mapping parse/construction failures onto the
//! same [`Diagnostic`] model so a broken file and a broken graph read the
//! same way.

use crate::{rules, Diagnostic, LintConfig, LintReport};
use eblocks_core::netlist::from_netlist;
use eblocks_core::{BlockId, BlockKind, Design, DesignError};
use std::collections::BTreeSet;

/// Lints netlist text: parse/construction failures become `E003`–`E005`
/// diagnostics; on success the design rules run.
pub fn lint_netlist(text: &str, config: &LintConfig) -> LintReport {
    match from_netlist(text) {
        Ok(design) => lint_design(&design, config),
        Err(error) => LintReport::new(vec![diagnose_design_error(&error)]),
    }
}

/// Maps a [`DesignError`] onto the lint rule that covers it.
pub fn diagnose_design_error(error: &DesignError) -> Diagnostic {
    match error {
        DesignError::WouldCycle { from, to } => Diagnostic::new(
            &rules::COMBINATIONAL_CYCLE,
            format!("block `{from}`"),
            format!("wiring `{from}` to `{to}` closes a cycle"),
        )
        .with_hint("break the feedback loop; eBlock networks are acyclic"),
        DesignError::DuplicateName { name } => Diagnostic::new(
            &rules::DUPLICATE_NAME,
            format!("block `{name}`"),
            format!("block name `{name}` is used twice"),
        )
        .with_hint("rename one of the blocks"),
        DesignError::UnconnectedInput { block, port } => Diagnostic::new(
            &rules::UNCONNECTED_INPUT,
            format!("port `{block}.{port}`"),
            "input port has no driver".to_string(),
        ),
        DesignError::DanglingOutput { block, port } => Diagnostic::new(
            &rules::DANGLING_OUTPUT,
            format!("port `{block}.{port}`"),
            "output port drives nothing".to_string(),
        ),
        // The netlist reader wraps construction errors in Parse with a line
        // number; recover the specific rule from the (stable, in-repo)
        // message so a cycle in a file and a cycle in a graph share a code.
        DesignError::Parse { line, message } if message.contains("create a cycle") => {
            Diagnostic::new(
                &rules::COMBINATIONAL_CYCLE,
                format!("line {line}"),
                message.clone(),
            )
            .with_hint("break the feedback loop; eBlock networks are acyclic")
        }
        DesignError::Parse { line, message } if message.starts_with("duplicate block name") => {
            Diagnostic::new(
                &rules::DUPLICATE_NAME,
                format!("line {line}"),
                message.clone(),
            )
            .with_hint("rename one of the blocks")
        }
        DesignError::Parse { line, message } => Diagnostic::new(
            &rules::NETLIST_ERROR,
            format!("line {line}"),
            message.clone(),
        ),
        // UnknownBlock / PortOutOfRange / InputAlreadyDriven — malformed
        // wiring the netlist reader reports without a line number.
        other => Diagnostic::new(&rules::NETLIST_ERROR, "netlist", other.to_string()),
    }
}

/// Runs every design rule over `design` and returns the findings in
/// stable order.
pub fn lint_design(design: &Design, config: &LintConfig) -> LintReport {
    let mut out = Vec::new();
    connectivity(design, &mut out);
    reachability(design, &mut out);
    budgets(design, config, &mut out);
    LintReport::new(out)
}

/// E001/E002/E003: per-port wiring completeness plus a defensive cycle
/// check (unreachable through the construction API, but deserialized or
/// future-format designs may carry one).
fn connectivity(design: &Design, out: &mut Vec<Diagnostic>) {
    if matches!(design.validate(), Err(DesignError::WouldCycle { .. })) {
        out.push(
            Diagnostic::new(
                &rules::COMBINATIONAL_CYCLE,
                "design",
                "the wire graph contains a cycle",
            )
            .with_hint("break the feedback loop; eBlock networks are acyclic"),
        );
        // Reachability walks below assume an acyclic graph; stop here.
        return;
    }
    for id in design.blocks() {
        let block = design.block(id).expect("iterated id");
        let name = block.name();
        // Same exemptions as Design::validate: programmable pins may sit
        // unconnected on both sides, sensor outputs may dangle.
        if !matches!(block.kind(), BlockKind::Programmable(_)) {
            for port in 0..block.num_inputs() {
                if design.driver_of(id, port).is_none() {
                    out.push(
                        Diagnostic::new(
                            &rules::UNCONNECTED_INPUT,
                            format!("port `{name}.{port}`"),
                            "input port has no driver",
                        )
                        .with_hint(format!(
                            "wire a sensor or compute output into `{name}.{port}`"
                        )),
                    );
                }
            }
        }
        let pins_may_dangle = matches!(
            block.kind(),
            BlockKind::Sensor(_) | BlockKind::Programmable(_)
        );
        if !pins_may_dangle {
            for port in 0..block.num_outputs() {
                if design.sinks_of(id, port).next().is_none() {
                    out.push(
                        Diagnostic::new(
                            &rules::DANGLING_OUTPUT,
                            format!("port `{name}.{port}`"),
                            "output port drives nothing",
                        )
                        .with_hint(format!("connect `{name}.{port}` or remove the block")),
                    );
                }
            }
        }
    }
}

/// W006/W007: blocks no sensor can influence, and blocks whose signal
/// never reaches an output actuator.
///
/// In a fully wired acyclic design every non-sensor block is reachable
/// from a sensor (each in-degree-0 ancestor is a sensor), so these only
/// fire alongside connectivity errors — but they name the *blocks* the
/// missing wires strand, which is the actionable unit.
fn reachability(design: &Design, out: &mut Vec<Diagnostic>) {
    let forward = reach(design, design.sensors().collect(), Direction::Forward);
    let backward = reach(design, design.outputs().collect(), Direction::Backward);
    for id in design.blocks() {
        let block = design.block(id).expect("iterated id");
        let name = block.name();
        if !block.kind().is_primary_input() && !forward.contains(&id) {
            out.push(
                Diagnostic::new(
                    &rules::DEAD_BLOCK,
                    format!("block `{name}`"),
                    "no sensor can influence this block",
                )
                .with_hint("wire it (transitively) to a sensor, or remove it"),
            );
        }
        if !block.kind().is_primary_output() && !backward.contains(&id) {
            out.push(
                Diagnostic::new(
                    &rules::UNUSED_RESULT,
                    format!("block `{name}`"),
                    "this block's signal never reaches an output actuator",
                )
                .with_hint("wire it (transitively) toward an output block, or remove it"),
            );
        }
    }
}

enum Direction {
    Forward,
    Backward,
}

fn reach(design: &Design, seeds: Vec<BlockId>, dir: Direction) -> BTreeSet<BlockId> {
    let mut seen: BTreeSet<BlockId> = seeds.iter().copied().collect();
    let mut frontier = seeds;
    while let Some(id) = frontier.pop() {
        let next: Vec<BlockId> = match dir {
            Direction::Forward => design.out_wires(id).map(|w| w.to).collect(),
            Direction::Backward => design.in_wires(id).map(|w| w.from).collect(),
        };
        for n in next {
            if seen.insert(n) {
                frontier.push(n);
            }
        }
    }
    seen
}

/// W008/W009: fan-out and pin budgets against the partitioner's targets.
fn budgets(design: &Design, config: &LintConfig, out: &mut Vec<Diagnostic>) {
    for id in design.blocks() {
        let block = design.block(id).expect("iterated id");
        let name = block.name();
        for port in 0..block.num_outputs() {
            let sinks = design.sinks_of(id, port).count();
            if sinks > config.max_fanout {
                out.push(
                    Diagnostic::new(
                        &rules::FANOUT_BUDGET,
                        format!("port `{name}.{port}`"),
                        format!(
                            "output port drives {sinks} sinks (budget {})",
                            config.max_fanout
                        ),
                    )
                    .with_hint("fan out through a splitter tree"),
                );
            }
        }
        // Pin budget applies to programmable blocks only: a pre-defined
        // compute block with more pins than the target spec is fine (the
        // partitioner leaves it pre-defined or internalizes its wires).
        if let BlockKind::Programmable(spec) = block.kind() {
            if spec.inputs > config.budget.inputs || spec.outputs > config.budget.outputs {
                out.push(
                    Diagnostic::new(
                        &rules::PIN_BUDGET,
                        format!("block `{name}`"),
                        format!(
                            "programmable block needs {spec} but the partitioner targets {}",
                            config.budget
                        ),
                    )
                    .with_hint("raise the target spec or split the block"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DenyLevel, Severity};
    use eblocks_core::{ComputeKind, OutputKind, ProgrammableSpec, SensorKind};

    fn codes(report: &LintReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    fn clean_chain() -> Design {
        let mut d = Design::new("chain");
        let s = d.add_block("s", SensorKind::Button);
        let n = d.add_block("n", ComputeKind::Not);
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s, 0), (n, 0)).unwrap();
        d.connect((n, 0), (o, 0)).unwrap();
        d
    }

    #[test]
    fn clean_design_is_clean() {
        let report = lint_design(&clean_chain(), &LintConfig::default());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn e001_unconnected_input() {
        let mut d = Design::new("t");
        let s = d.add_block("s", SensorKind::Button);
        let g = d.add_block("g", ComputeKind::and2());
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s, 0), (g, 0)).unwrap();
        d.connect((g, 0), (o, 0)).unwrap();
        let report = lint_design(&d, &LintConfig::default());
        assert_eq!(codes(&report), ["E001"]);
        assert_eq!(report.diagnostics[0].location, "port `g.1`");
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn e002_dangling_output_with_exemptions() {
        let mut d = Design::new("t");
        let s = d.add_block("s", SensorKind::Button);
        let n = d.add_block("n", ComputeKind::Not);
        d.connect((s, 0), (n, 0)).unwrap();
        let report = lint_design(&d, &LintConfig::default());
        // n.0 dangles (E002) and therefore n never reaches an output (W007).
        assert_eq!(codes(&report), ["E002", "W007", "W007"]);
        assert_eq!(report.diagnostics[0].location, "port `n.0`");

        // Sensors and programmable blocks may dangle.
        let mut d = clean_chain();
        d.add_block("spare", SensorKind::Light);
        d.add_block("prog", ProgrammableSpec::default());
        let report = lint_design(&d, &LintConfig::default());
        assert_eq!(codes(&report), ["W006", "W007", "W007"]); // reachability only
    }

    #[test]
    fn w006_w007_dead_and_unused_blocks() {
        let mut d = clean_chain();
        // An island pair: gate drives LED but nothing drives the gate's
        // inputs, so the island is sensor-unreachable.
        let g = d.add_block("island", ComputeKind::Not);
        let o2 = d.add_block("led2", OutputKind::Led);
        d.connect((g, 0), (o2, 0)).unwrap();
        let report = lint_design(&d, &LintConfig::default());
        assert_eq!(codes(&report), ["E001", "W006", "W006"]);
        let dead: Vec<&str> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "W006")
            .map(|d| d.location.as_str())
            .collect();
        assert_eq!(dead, ["block `island`", "block `led2`"]);
    }

    #[test]
    fn w008_fanout_budget() {
        let mut d = Design::new("t");
        let s = d.add_block("s", SensorKind::Button);
        for i in 0..3 {
            let n = d.add_block(format!("n{i}"), ComputeKind::Not);
            let o = d.add_block(format!("o{i}"), OutputKind::Led);
            d.connect((s, 0), (n, 0)).unwrap();
            d.connect((n, 0), (o, 0)).unwrap();
        }
        let tight = LintConfig {
            max_fanout: 2,
            ..LintConfig::default()
        };
        let report = lint_design(&d, &tight);
        assert_eq!(codes(&report), ["W008"]);
        assert_eq!(report.diagnostics[0].location, "port `s.0`");
        assert!(report.diagnostics[0].message.contains("3 sinks (budget 2)"));
        // Default budget admits it.
        assert!(lint_design(&d, &LintConfig::default()).is_clean());
    }

    #[test]
    fn w009_pin_budget_ignores_compute_blocks() {
        let mut d = clean_chain();
        let s = d.block_by_name("s").unwrap();
        let big = d.add_block(
            "big",
            ProgrammableSpec {
                inputs: 4,
                outputs: 1,
            },
        );
        let o2 = d.add_block("o2", OutputKind::Led);
        d.connect((s, 0), (big, 0)).unwrap();
        d.connect((big, 0), (o2, 0)).unwrap();
        let report = lint_design(&d, &LintConfig::default());
        assert_eq!(codes(&report), ["W009"]);
        assert!(report.diagnostics[0].message.contains("4in/1out"));
        assert!(!report.rejects(DenyLevel::Errors));
        assert!(report.rejects(DenyLevel::Warnings));

        // A 3-input pre-defined gate is NOT a pin-budget violation.
        let mut d = Design::new("t");
        let a = d.add_block("a", SensorKind::Button);
        let b = d.add_block("b", SensorKind::Motion);
        let c = d.add_block("c", SensorKind::Sound);
        let g = d.add_block("g", ComputeKind::and3());
        let o = d.add_block("o", OutputKind::Led);
        d.connect((a, 0), (g, 0)).unwrap();
        d.connect((b, 0), (g, 1)).unwrap();
        d.connect((c, 0), (g, 2)).unwrap();
        d.connect((g, 0), (o, 0)).unwrap();
        assert!(lint_design(&d, &LintConfig::default()).is_clean());
    }

    #[test]
    fn e004_e005_netlist_failures() {
        let report = lint_netlist(
            "eblocks-netlist v1\ndesign d\nblock x sensor:button\nblock x sensor:motion\n",
            &LintConfig::default(),
        );
        assert_eq!(codes(&report), ["E004"]);

        let report = lint_netlist("not a netlist", &LintConfig::default());
        assert_eq!(codes(&report), ["E005"]);
        assert_eq!(report.diagnostics[0].location, "line 1");
        assert_eq!(report.errors(), 1);
    }

    #[test]
    fn e003_cycle_from_netlist() {
        let report = lint_netlist(
            "eblocks-netlist v1\ndesign d\nblock a compute:not\nblock b compute:not\nwire a.0 -> b.0\nwire b.0 -> a.0\n",
            &LintConfig::default(),
        );
        assert_eq!(codes(&report), ["E003"]);
        assert!(report.diagnostics[0].message.contains("cycle"));
    }

    #[test]
    fn netlist_success_runs_design_rules() {
        let report = lint_netlist(
            "eblocks-netlist v1\ndesign d\nblock btn sensor:button\nblock gate compute:logic2:AND\nblock led output:led\nwire btn.0 -> gate.0\nwire gate.0 -> led.0\n",
            &LintConfig::default(),
        );
        assert_eq!(codes(&report), ["E001"]);
        assert_eq!(report.diagnostics[0].location, "port `gate.1`");
    }

    #[test]
    fn multi_defect_design_reports_everything_in_one_run() {
        let mut d = Design::new("t");
        let s = d.add_block("s", SensorKind::Button);
        let g = d.add_block("g", ComputeKind::and2());
        let o = d.add_block("o", OutputKind::Led);
        let ghost = d.add_block("ghost", ComputeKind::Not);
        d.connect((s, 0), (g, 0)).unwrap();
        d.connect((g, 0), (o, 0)).unwrap();
        let _ = ghost;
        let report = lint_design(&d, &LintConfig::default());
        // g.1 unconnected; ghost: input unconnected, output dangling, dead,
        // unused.
        assert_eq!(codes(&report), ["E001", "E001", "E002", "W006", "W007"]);
        assert_eq!(report.errors(), 3);
        assert_eq!(report.warnings(), 2);
    }
}
