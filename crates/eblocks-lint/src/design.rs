//! Design-layer lint rules: structural and value-flow problems in an
//! eBlock network.
//!
//! [`lint_design`] inspects an in-memory [`Design`]; [`lint_netlist`]
//! first parses netlist text, mapping parse/construction failures onto the
//! same [`Diagnostic`] model so a broken file and a broken graph read the
//! same way. The netlist path also records per-line spans, so its
//! diagnostics carry line numbers and dead-island removal fixes.
//!
//! On top of the structural rules, the cross-block dataflow pass
//! ([`crate::dataflow::analyze_design`]) propagates abstract value sets
//! along the wires in topological order and reports protocol mismatches
//! (`E201`), provably constant signals (`W210`), value-dead branches
//! inside library programs (`W211`), frozen states (`W212`), and wires
//! that can never carry a packet (`W213`). These rules only fire for
//! blocks a sensor can influence — dead islands are already covered by
//! `W006` and would otherwise drown in derived noise.

use crate::dataflow::{analyze_design, matched_values, DesignFacts, ValueSet};
use crate::fix::Fix;
use crate::{rules, Diagnostic, LintConfig, LintReport, TextEdit};
use eblocks_behavior::{library, HandlerKind, Program};
use eblocks_core::netlist::{from_netlist_spanned, NetlistSpans};
use eblocks_core::{BlockId, BlockKind, Design, DesignError};
use std::collections::{BTreeMap, BTreeSet};

/// Netlist span table plus the text it indexes — present only on the
/// [`lint_netlist`] path, where diagnostics can carry line numbers and
/// removal fixes.
struct Src<'a> {
    spans: &'a NetlistSpans,
    text: &'a str,
}

/// Lints netlist text: parse/construction failures become `E003`–`E005`
/// diagnostics; on success the design rules run, with line numbers and
/// dead-island removal fixes anchored to the source lines.
pub fn lint_netlist(text: &str, config: &LintConfig) -> LintReport {
    match from_netlist_spanned(text) {
        Ok((design, spans)) => lint_impl(
            &design,
            &BTreeMap::new(),
            Some(&Src {
                spans: &spans,
                text,
            }),
            config,
        ),
        Err(error) => LintReport::new(vec![diagnose_design_error(&error)]),
    }
}

/// Maps a [`DesignError`] onto the lint rule that covers it.
pub fn diagnose_design_error(error: &DesignError) -> Diagnostic {
    match error {
        DesignError::WouldCycle { from, to } => Diagnostic::new(
            &rules::COMBINATIONAL_CYCLE,
            format!("block `{from}`"),
            format!("wiring `{from}` to `{to}` closes a cycle"),
        )
        .with_hint("break the feedback loop; eBlock networks are acyclic"),
        DesignError::DuplicateName { name } => Diagnostic::new(
            &rules::DUPLICATE_NAME,
            format!("block `{name}`"),
            format!("block name `{name}` is used twice"),
        )
        .with_hint("rename one of the blocks"),
        DesignError::UnconnectedInput { block, port } => Diagnostic::new(
            &rules::UNCONNECTED_INPUT,
            format!("port `{block}.{port}`"),
            "input port has no driver".to_string(),
        ),
        DesignError::DanglingOutput { block, port } => Diagnostic::new(
            &rules::DANGLING_OUTPUT,
            format!("port `{block}.{port}`"),
            "output port drives nothing".to_string(),
        ),
        // The netlist reader wraps construction errors in Parse with a line
        // number; recover the specific rule from the (stable, in-repo)
        // message so a cycle in a file and a cycle in a graph share a code.
        DesignError::Parse { line, message } if message.contains("create a cycle") => {
            Diagnostic::new(
                &rules::COMBINATIONAL_CYCLE,
                format!("line {line}"),
                message.clone(),
            )
            .with_hint("break the feedback loop; eBlock networks are acyclic")
            .at(*line, 1)
        }
        DesignError::Parse { line, message } if message.starts_with("duplicate block name") => {
            Diagnostic::new(
                &rules::DUPLICATE_NAME,
                format!("line {line}"),
                message.clone(),
            )
            .with_hint("rename one of the blocks")
            .at(*line, 1)
        }
        DesignError::Parse { line, message } => Diagnostic::new(
            &rules::NETLIST_ERROR,
            format!("line {line}"),
            message.clone(),
        )
        .at(*line, 1),
        // UnknownBlock / PortOutOfRange / InputAlreadyDriven — malformed
        // wiring the netlist reader reports without a line number.
        other => Diagnostic::new(&rules::NETLIST_ERROR, "netlist", other.to_string()),
    }
}

/// Runs every design rule over `design` and returns the findings in
/// stable order. Programmable blocks have no attached behavior here and
/// analyze as unconstrained; use [`lint_design_with_programs`] to make
/// their value flow precise.
pub fn lint_design(design: &Design, config: &LintConfig) -> LintReport {
    lint_impl(design, &BTreeMap::new(), None, config)
}

/// [`lint_design`] with behavior programs attached to programmable
/// blocks, so the cross-block dataflow pass (and `E201` in particular)
/// sees their real output sets and input matches.
pub fn lint_design_with_programs(
    design: &Design,
    programs: &BTreeMap<BlockId, Program>,
    config: &LintConfig,
) -> LintReport {
    lint_impl(design, programs, None, config)
}

fn lint_impl(
    design: &Design,
    programs: &BTreeMap<BlockId, Program>,
    src: Option<&Src<'_>>,
    config: &LintConfig,
) -> LintReport {
    let mut out = Vec::new();
    connectivity(design, src, &mut out);
    let forward = reach(design, design.sensors().collect(), Direction::Forward);
    reachability(design, src, &forward, config, &mut out);
    budgets(design, src, config, &mut out);
    if let Some(facts) = analyze_design(design, programs) {
        dataflow_pass(design, programs, &facts, &forward, src, &mut out);
    }
    LintReport::new(out)
}

/// Attaches the source line of `name`'s `block` statement, when known.
fn at_block_line(d: Diagnostic, src: Option<&Src<'_>>, name: &str) -> Diagnostic {
    match src.and_then(|s| s.spans.blocks.get(name)) {
        Some(span) => d.at(span.line, 1),
        None => d,
    }
}

/// E001/E002/E003: per-port wiring completeness plus a defensive cycle
/// check (unreachable through the construction API, but deserialized or
/// future-format designs may carry one).
fn connectivity(design: &Design, src: Option<&Src<'_>>, out: &mut Vec<Diagnostic>) {
    if matches!(design.validate(), Err(DesignError::WouldCycle { .. })) {
        out.push(
            Diagnostic::new(
                &rules::COMBINATIONAL_CYCLE,
                "design",
                "the wire graph contains a cycle",
            )
            .with_hint("break the feedback loop; eBlock networks are acyclic"),
        );
        // Reachability walks below assume an acyclic graph; stop here.
        return;
    }
    for id in design.blocks() {
        let block = design.block(id).expect("iterated id");
        let name = block.name();
        // Same exemptions as Design::validate: programmable pins may sit
        // unconnected on both sides, sensor outputs may dangle.
        if !matches!(block.kind(), BlockKind::Programmable(_)) {
            for port in 0..block.num_inputs() {
                if design.driver_of(id, port).is_none() {
                    out.push(at_block_line(
                        Diagnostic::new(
                            &rules::UNCONNECTED_INPUT,
                            format!("port `{name}.{port}`"),
                            "input port has no driver",
                        )
                        .with_hint(format!(
                            "wire a sensor or compute output into `{name}.{port}`"
                        )),
                        src,
                        name,
                    ));
                }
            }
        }
        let pins_may_dangle = matches!(
            block.kind(),
            BlockKind::Sensor(_) | BlockKind::Programmable(_)
        );
        if !pins_may_dangle {
            for port in 0..block.num_outputs() {
                if design.sinks_of(id, port).next().is_none() {
                    out.push(at_block_line(
                        Diagnostic::new(
                            &rules::DANGLING_OUTPUT,
                            format!("port `{name}.{port}`"),
                            "output port drives nothing",
                        )
                        .with_hint(format!("connect `{name}.{port}` or remove the block")),
                        src,
                        name,
                    ));
                }
            }
        }
    }
}

/// W006/W007: blocks no sensor can influence, and blocks whose signal
/// never reaches an output actuator.
///
/// In a fully wired acyclic design every non-sensor block is reachable
/// from a sensor (each in-degree-0 ancestor is a sensor), so these only
/// fire alongside connectivity errors — but they name the *blocks* the
/// missing wires strand, which is the actionable unit. On the netlist
/// path, dead blocks whose entire downstream cone is dead additionally
/// carry a machine-applicable removal fix (block line plus every
/// attached wire line), verified as a whole before being offered.
fn reachability(
    design: &Design,
    src: Option<&Src<'_>>,
    forward: &BTreeSet<BlockId>,
    config: &LintConfig,
    out: &mut Vec<Diagnostic>,
) {
    let backward = reach(design, design.outputs().collect(), Direction::Backward);
    let dead: BTreeSet<BlockId> = design
        .blocks()
        .filter(|id| {
            let block = design.block(*id).expect("iterated id");
            !block.kind().is_primary_input() && !forward.contains(id)
        })
        .collect();
    let removal = src
        .map(|s| removal_fixes(design, s, &dead, config))
        .unwrap_or_default();

    for id in design.blocks() {
        let block = design.block(id).expect("iterated id");
        let name = block.name();
        if dead.contains(&id) {
            let mut d = at_block_line(
                Diagnostic::new(
                    &rules::DEAD_BLOCK,
                    format!("block `{name}`"),
                    "no sensor can influence this block",
                )
                .with_hint("wire it (transitively) to a sensor, or remove it"),
                src,
                name,
            );
            if let Some(fix) = removal.get(&id) {
                d = d.with_fix(fix.clone());
            }
            out.push(d);
        }
        if !block.kind().is_primary_output() && !backward.contains(&id) {
            out.push(at_block_line(
                Diagnostic::new(
                    &rules::UNUSED_RESULT,
                    format!("block `{name}`"),
                    "this block's signal never reaches an output actuator",
                )
                .with_hint("wire it (transitively) toward an output block, or remove it"),
                src,
                name,
            ));
        }
    }
}

/// Builds removal fixes for dead blocks. A block is removable only when
/// its whole downstream cone is dead too (the largest subset of the dead
/// set closed under "all sinks are also in the subset") — deleting it
/// can then never orphan a live block's input. The candidate edits are
/// applied to a scratch copy and re-linted as a whole; if the surgery
/// would introduce any *new* error, every removal fix is demoted to
/// advisory instead of offered for `--fix`.
fn removal_fixes(
    design: &Design,
    src: &Src<'_>,
    dead: &BTreeSet<BlockId>,
    config: &LintConfig,
) -> BTreeMap<BlockId, Fix> {
    // Greatest sink-closed subset of the dead set.
    let mut closed = dead.clone();
    loop {
        let evicted: Vec<BlockId> = closed
            .iter()
            .copied()
            .filter(|&b| design.out_wires(b).any(|w| !closed.contains(&w.to)))
            .collect();
        if evicted.is_empty() {
            break;
        }
        for b in evicted {
            closed.remove(&b);
        }
    }
    if closed.is_empty() {
        return BTreeMap::new();
    }

    let mut fixes = BTreeMap::new();
    for &id in &closed {
        let block = design.block(id).expect("closed id");
        let name = block.name();
        let Some(line) = src.spans.blocks.get(name) else {
            continue;
        };
        let mut edits = vec![TextEdit {
            start: line.start,
            end: line.end,
            replacement: String::new(),
        }];
        for (key, span) in &src.spans.wires {
            if key.0 == name || key.2 == name {
                edits.push(TextEdit {
                    start: span.start,
                    end: span.end,
                    replacement: String::new(),
                });
            }
        }
        fixes.insert(
            id,
            Fix {
                edits,
                applicability: crate::Applicability::MachineApplicable,
            },
        );
    }

    // Whole-surgery verification: simulate applying everything at once
    // and demote to advisory if any new error would appear.
    if !removal_is_safe(design, src, &fixes, config) {
        for fix in fixes.values_mut() {
            *fix = fix.clone().maybe_incorrect();
        }
    }
    fixes
}

/// Re-parses and re-lints the text with all candidate removals applied;
/// true when no (code, location) error pair appears that the original
/// design did not already have. The candidate is linted as a bare
/// design (no spans), so verification never re-enters fix construction.
fn removal_is_safe(
    design: &Design,
    src: &Src<'_>,
    fixes: &BTreeMap<BlockId, Fix>,
    config: &LintConfig,
) -> bool {
    let scratch = LintReport::new(
        fixes
            .values()
            .map(|f| Diagnostic::new(&rules::DEAD_BLOCK, "scratch", "scratch").with_fix(f.clone()))
            .collect(),
    );
    let Some(candidate) = crate::apply_machine_fixes(src.text, &scratch) else {
        return false;
    };
    let Ok(patched) = eblocks_core::netlist::from_netlist(&candidate) else {
        return false;
    };
    let before = lint_design(design, config);
    let after = lint_design(&patched, config);
    let known: BTreeSet<(&str, &str)> = before
        .diagnostics
        .iter()
        .filter(|d| d.severity == crate::Severity::Error)
        .map(|d| (d.code.as_str(), d.location.as_str()))
        .collect();
    after
        .diagnostics
        .iter()
        .filter(|d| d.severity == crate::Severity::Error)
        .all(|d| known.contains(&(d.code.as_str(), d.location.as_str())))
}

enum Direction {
    Forward,
    Backward,
}

fn reach(design: &Design, seeds: Vec<BlockId>, dir: Direction) -> BTreeSet<BlockId> {
    let mut seen: BTreeSet<BlockId> = seeds.iter().copied().collect();
    let mut frontier = seeds;
    while let Some(id) = frontier.pop() {
        let next: Vec<BlockId> = match dir {
            Direction::Forward => design.out_wires(id).map(|w| w.to).collect(),
            Direction::Backward => design.in_wires(id).map(|w| w.from).collect(),
        };
        for n in next {
            if seen.insert(n) {
                frontier.push(n);
            }
        }
    }
    seen
}

/// W008/W009: fan-out and pin budgets against the partitioner's targets.
fn budgets(design: &Design, src: Option<&Src<'_>>, config: &LintConfig, out: &mut Vec<Diagnostic>) {
    for id in design.blocks() {
        let block = design.block(id).expect("iterated id");
        let name = block.name();
        for port in 0..block.num_outputs() {
            let sinks = design.sinks_of(id, port).count();
            if sinks > config.max_fanout {
                out.push(at_block_line(
                    Diagnostic::new(
                        &rules::FANOUT_BUDGET,
                        format!("port `{name}.{port}`"),
                        format!(
                            "output port drives {sinks} sinks (budget {})",
                            config.max_fanout
                        ),
                    )
                    .with_hint("fan out through a splitter tree"),
                    src,
                    name,
                ));
            }
        }
        // Pin budget applies to programmable blocks only: a pre-defined
        // compute block with more pins than the target spec is fine (the
        // partitioner leaves it pre-defined or internalizes its wires).
        if let BlockKind::Programmable(spec) = block.kind() {
            if spec.inputs > config.budget.inputs || spec.outputs > config.budget.outputs {
                out.push(at_block_line(
                    Diagnostic::new(
                        &rules::PIN_BUDGET,
                        format!("block `{name}`"),
                        format!(
                            "programmable block needs {spec} but the partitioner targets {}",
                            config.budget
                        ),
                    )
                    .with_hint("raise the target spec or split the block"),
                    src,
                    name,
                ));
            }
        }
    }
}

/// E201/W210/W211/W212/W213: cross-block value-flow rules over the
/// propagated [`DesignFacts`], restricted to sensor-reachable blocks.
fn dataflow_pass(
    design: &Design,
    programs: &BTreeMap<BlockId, Program>,
    facts: &DesignFacts,
    forward: &BTreeSet<BlockId>,
    src: Option<&Src<'_>>,
    out: &mut Vec<Diagnostic>,
) {
    for id in design.blocks() {
        if !forward.contains(&id) {
            continue;
        }
        let block = design.block(id).expect("iterated id");
        let name = block.name();

        // W210: output ports pinned to a single value.
        for port in 0..block.kind().num_outputs() {
            // Sensors are environment-driven by definition; their sets
            // are Any and never trip this.
            if let Some(v) = facts
                .outputs
                .get(&(id, port))
                .and_then(ValueSet::as_singleton)
            {
                out.push(at_block_line(
                    Diagnostic::new(
                        &rules::CONSTANT_SIGNAL,
                        format!("port `{name}.{port}`"),
                        format!(
                            "output port only ever carries {v} given the values reaching this block"
                        ),
                    )
                    .with_hint("the block (or what feeds it) reduces to a constant"),
                    src,
                    name,
                ));
            }
        }

        // W211/W212 inside the block's (known) behavior program.
        if let Some(pf) = facts.programs.get(&id) {
            for fact in &pf.conds {
                if fact.syntactic {
                    continue; // the behavior layer owns syntactic constants
                }
                let (verdict, dead_len, branch) = if fact.always_true() {
                    ("true", fact.else_len, "else")
                } else if fact.always_false() {
                    ("false", fact.then_len, "then")
                } else {
                    continue;
                };
                if dead_len == 0 {
                    continue;
                }
                out.push(at_block_line(
                    Diagnostic::new(
                        &rules::VALUE_DEAD_BRANCH,
                        format!("block `{name}`"),
                        format!(
                            "in handler `{}`, condition `{}` is always {verdict} for every value arriving at `{name}`; the {branch} branch never runs",
                            handler_label(fact.kind),
                            fact.display
                        ),
                    )
                    .with_hint("the values wired into this block decide the branch"),
                    src,
                    name,
                ));
            }
            for (sname, set) in &pf.states {
                if let Some(v) = set.as_singleton() {
                    out.push(at_block_line(
                        Diagnostic::new(
                            &rules::CONSTANT_STATE,
                            format!("state `{sname}` in `{name}`"),
                            format!(
                                "state `{sname}` of `{name}` provably never leaves {v} given the values reaching this block"
                            ),
                        )
                        .with_hint("the block's stateful behavior is frozen by its inputs"),
                        src,
                        name,
                    ));
                }
            }
        }
    }

    // E201/W213 per wire: protocol mismatches and edges that never fire.
    for id in design.blocks() {
        if !forward.contains(&id) {
            continue;
        }
        for w in design.out_wires(id) {
            let from = design
                .block(w.from)
                .expect("wire source")
                .name()
                .to_string();
            let to = design.block(w.to).expect("wire sink").name().to_string();
            let wire_loc = format!("wire `{from}.{} -> {to}.{}`", w.from_port, w.to_port);
            let Some(sent) = facts.outputs.get(&(w.from, w.from_port)) else {
                continue;
            };
            if sent.is_bottom() {
                out.push(at_block_line(
                    Diagnostic::new(
                        &rules::EDGE_NEVER_FIRES,
                        wire_loc,
                        format!(
                            "no feasible execution makes `{from}.{}` fire; this wire never carries a packet",
                            w.from_port
                        ),
                    )
                    .with_hint("the sender's guarding conditions can never pass"),
                    src,
                    &from,
                ));
                continue;
            }
            let ValueSet::Values(sent_values) = sent else {
                continue;
            };
            let Some(receiver) = block_program(design, programs, w.to) else {
                continue;
            };
            let Some(matched) = matched_values(&receiver, w.to_port) else {
                continue;
            };
            if sent_values.is_disjoint(&matched) {
                let sent_list = sent.to_string();
                let matched_list = matched
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push(at_block_line(
                    Diagnostic::new(
                        &rules::PROTOCOL_MISMATCH,
                        wire_loc,
                        format!(
                            "`{from}.{}` can only send {sent_list} but `{to}` only matches {{{matched_list}}} on in{}",
                            w.from_port, w.to_port
                        ),
                    )
                    .with_hint("the sender and receiver disagree on the port's protocol"),
                    src,
                    &from,
                ));
            }
        }
    }
}

/// The behavior program governing `id`, when one is known: the library
/// program for `compute` blocks, the attached program for programmable
/// blocks.
fn block_program(
    design: &Design,
    programs: &BTreeMap<BlockId, Program>,
    id: BlockId,
) -> Option<Program> {
    match design.block(id)?.kind() {
        BlockKind::Compute(ck) => Some(library::program_for(ck)),
        BlockKind::Programmable(_) => programs.get(&id).cloned(),
        _ => None,
    }
}

fn handler_label(kind: HandlerKind) -> &'static str {
    match kind {
        HandlerKind::Input => "on input",
        HandlerKind::Tick => "on tick",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DenyLevel, Severity};
    use eblocks_behavior::parse;
    use eblocks_core::{ComputeKind, OutputKind, ProgrammableSpec, SensorKind, TruthTable2};

    fn codes(report: &LintReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    fn clean_chain() -> Design {
        let mut d = Design::new("chain");
        let s = d.add_block("s", SensorKind::Button);
        let n = d.add_block("n", ComputeKind::Not);
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s, 0), (n, 0)).unwrap();
        d.connect((n, 0), (o, 0)).unwrap();
        d
    }

    #[test]
    fn clean_design_is_clean() {
        let report = lint_design(&clean_chain(), &LintConfig::default());
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn e001_unconnected_input() {
        let mut d = Design::new("t");
        let s = d.add_block("s", SensorKind::Button);
        let g = d.add_block("g", ComputeKind::and2());
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s, 0), (g, 0)).unwrap();
        d.connect((g, 0), (o, 0)).unwrap();
        let report = lint_design(&d, &LintConfig::default());
        assert_eq!(codes(&report), ["E001"]);
        assert_eq!(report.diagnostics[0].location, "port `g.1`");
        assert_eq!(report.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn e002_dangling_output_with_exemptions() {
        let mut d = Design::new("t");
        let s = d.add_block("s", SensorKind::Button);
        let n = d.add_block("n", ComputeKind::Not);
        d.connect((s, 0), (n, 0)).unwrap();
        let report = lint_design(&d, &LintConfig::default());
        // n.0 dangles (E002) and therefore n never reaches an output (W007).
        assert_eq!(codes(&report), ["E002", "W007", "W007"]);
        assert_eq!(report.diagnostics[0].location, "port `n.0`");

        // Sensors and programmable blocks may dangle.
        let mut d = clean_chain();
        d.add_block("spare", SensorKind::Light);
        d.add_block("prog", ProgrammableSpec::default());
        let report = lint_design(&d, &LintConfig::default());
        assert_eq!(codes(&report), ["W006", "W007", "W007"]); // reachability only
    }

    #[test]
    fn w006_w007_dead_and_unused_blocks() {
        let mut d = clean_chain();
        // An island pair: gate drives LED but nothing drives the gate's
        // inputs, so the island is sensor-unreachable.
        let g = d.add_block("island", ComputeKind::Not);
        let o2 = d.add_block("led2", OutputKind::Led);
        d.connect((g, 0), (o2, 0)).unwrap();
        let report = lint_design(&d, &LintConfig::default());
        assert_eq!(codes(&report), ["E001", "W006", "W006"]);
        let dead: Vec<&str> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "W006")
            .map(|d| d.location.as_str())
            .collect();
        assert_eq!(dead, ["block `island`", "block `led2`"]);
    }

    #[test]
    fn w008_fanout_budget() {
        let mut d = Design::new("t");
        let s = d.add_block("s", SensorKind::Button);
        for i in 0..3 {
            let n = d.add_block(format!("n{i}"), ComputeKind::Not);
            let o = d.add_block(format!("o{i}"), OutputKind::Led);
            d.connect((s, 0), (n, 0)).unwrap();
            d.connect((n, 0), (o, 0)).unwrap();
        }
        let tight = LintConfig {
            max_fanout: 2,
            ..LintConfig::default()
        };
        let report = lint_design(&d, &tight);
        assert_eq!(codes(&report), ["W008"]);
        assert_eq!(report.diagnostics[0].location, "port `s.0`");
        assert!(report.diagnostics[0].message.contains("3 sinks (budget 2)"));
        // Default budget admits it.
        assert!(lint_design(&d, &LintConfig::default()).is_clean());
    }

    #[test]
    fn w009_pin_budget_ignores_compute_blocks() {
        let mut d = clean_chain();
        let s = d.block_by_name("s").unwrap();
        let big = d.add_block(
            "big",
            ProgrammableSpec {
                inputs: 4,
                outputs: 1,
            },
        );
        let o2 = d.add_block("o2", OutputKind::Led);
        d.connect((s, 0), (big, 0)).unwrap();
        d.connect((big, 0), (o2, 0)).unwrap();
        let report = lint_design(&d, &LintConfig::default());
        assert_eq!(codes(&report), ["W009"]);
        assert!(report.diagnostics[0].message.contains("4in/1out"));
        assert!(!report.rejects(DenyLevel::Errors));
        assert!(report.rejects(DenyLevel::Warnings));

        // A 3-input pre-defined gate is NOT a pin-budget violation.
        let mut d = Design::new("t");
        let a = d.add_block("a", SensorKind::Button);
        let b = d.add_block("b", SensorKind::Motion);
        let c = d.add_block("c", SensorKind::Sound);
        let g = d.add_block("g", ComputeKind::and3());
        let o = d.add_block("o", OutputKind::Led);
        d.connect((a, 0), (g, 0)).unwrap();
        d.connect((b, 0), (g, 1)).unwrap();
        d.connect((c, 0), (g, 2)).unwrap();
        d.connect((g, 0), (o, 0)).unwrap();
        assert!(lint_design(&d, &LintConfig::default()).is_clean());
    }

    #[test]
    fn e004_e005_netlist_failures() {
        let report = lint_netlist(
            "eblocks-netlist v1\ndesign d\nblock x sensor:button\nblock x sensor:motion\n",
            &LintConfig::default(),
        );
        assert_eq!(codes(&report), ["E004"]);

        let report = lint_netlist("not a netlist", &LintConfig::default());
        assert_eq!(codes(&report), ["E005"]);
        assert_eq!(report.diagnostics[0].location, "line 1");
        assert_eq!(report.diagnostics[0].line, Some(1));
        assert_eq!(report.errors(), 1);
    }

    #[test]
    fn e003_cycle_from_netlist() {
        let report = lint_netlist(
            "eblocks-netlist v1\ndesign d\nblock a compute:not\nblock b compute:not\nwire a.0 -> b.0\nwire b.0 -> a.0\n",
            &LintConfig::default(),
        );
        assert_eq!(codes(&report), ["E003"]);
        assert!(report.diagnostics[0].message.contains("cycle"));
    }

    #[test]
    fn netlist_success_runs_design_rules() {
        let report = lint_netlist(
            "eblocks-netlist v1\ndesign d\nblock btn sensor:button\nblock gate compute:logic2:AND\nblock led output:led\nwire btn.0 -> gate.0\nwire gate.0 -> led.0\n",
            &LintConfig::default(),
        );
        assert_eq!(codes(&report), ["E001"]);
        assert_eq!(report.diagnostics[0].location, "port `gate.1`");
        // The netlist path anchors the finding to the block's line.
        assert_eq!(report.diagnostics[0].line, Some(4));
        assert_eq!(report.diagnostics[0].col, Some(1));
    }

    #[test]
    fn multi_defect_design_reports_everything_in_one_run() {
        let mut d = Design::new("t");
        let s = d.add_block("s", SensorKind::Button);
        let g = d.add_block("g", ComputeKind::and2());
        let o = d.add_block("o", OutputKind::Led);
        let ghost = d.add_block("ghost", ComputeKind::Not);
        d.connect((s, 0), (g, 0)).unwrap();
        d.connect((g, 0), (o, 0)).unwrap();
        let _ = ghost;
        let report = lint_design(&d, &LintConfig::default());
        // g.1 unconnected; ghost: input unconnected, output dangling, dead,
        // unused.
        assert_eq!(codes(&report), ["E001", "E001", "E002", "W006", "W007"]);
        assert_eq!(report.errors(), 3);
        assert_eq!(report.warnings(), 2);
    }

    #[test]
    fn w210_w211_w212_constant_false_freezes_a_toggle() {
        // btn -> FALSE gate -> toggle -> led: the gate pins the toggle's
        // input to false, freezing its whole behavior.
        let mut d = Design::new("t");
        let s = d.add_block("btn", SensorKind::Button);
        let f = d.add_block("never", ComputeKind::Logic2(TruthTable2::FALSE));
        let t = d.add_block("tog", ComputeKind::Toggle);
        let o = d.add_block("led", OutputKind::Led);
        d.connect((s, 0), (f, 0)).unwrap();
        d.connect((s, 0), (f, 1)).unwrap();
        d.connect((f, 0), (t, 0)).unwrap();
        d.connect((t, 0), (o, 0)).unwrap();
        let report = lint_design(&d, &LintConfig::default());
        assert_eq!(
            codes(&report),
            ["W210", "W210", "W211", "W212", "W212"],
            "{report}"
        );
        assert_eq!(report.diagnostics[0].location, "port `never.0`");
        assert_eq!(report.diagnostics[1].location, "port `tog.0`");
        assert_eq!(report.diagnostics[2].location, "block `tog`");
        assert!(report.diagnostics[2].message.contains("always false"));
        assert_eq!(report.errors(), 0);
    }

    #[test]
    fn e201_protocol_mismatch_with_programs() {
        // A programmable sender that only emits 1 or 2, wired into a
        // programmable receiver that only matches 3.
        let mut d = Design::new("t");
        let s = d.add_block("btn", SensorKind::Button);
        let tx = d.add_block("tx", ProgrammableSpec::default());
        let rx = d.add_block("rx", ProgrammableSpec::default());
        let o = d.add_block("led", OutputKind::Led);
        d.connect((s, 0), (tx, 0)).unwrap();
        d.connect((tx, 0), (rx, 0)).unwrap();
        d.connect((rx, 0), (o, 0)).unwrap();
        let mut programs = BTreeMap::new();
        programs.insert(
            tx,
            parse("on input { if (in0) { out0 = 1; } else { out0 = 2; } }").unwrap(),
        );
        programs.insert(
            rx,
            parse("on input { if (in0 == 3) { out0 = true; } else { out0 = false; } }").unwrap(),
        );
        let report = lint_design_with_programs(&d, &programs, &LintConfig::default());
        let cs = codes(&report);
        assert!(cs.contains(&"E201"), "{report}");
        let e = report
            .diagnostics
            .iter()
            .find(|d| d.code == "E201")
            .unwrap();
        assert_eq!(e.location, "wire `tx.0 -> rx.0`");
        assert!(e.message.contains("{3}"), "{e}");
        assert!(report.rejects(DenyLevel::Errors));

        // Overlapping protocols are fine: match on 2 and the mismatch is
        // gone (the receiver handles a value the sender can produce).
        programs.insert(
            rx,
            parse("on input { if (in0 == 2) { out0 = true; } else { out0 = false; } }").unwrap(),
        );
        let report = lint_design_with_programs(&d, &programs, &LintConfig::default());
        assert!(!codes(&report).contains(&"E201"), "{report}");
    }

    #[test]
    fn w213_wire_that_never_fires() {
        // The sender's only write is behind a contradiction, so its wire
        // can never carry a packet.
        let mut d = Design::new("t");
        let s = d.add_block("btn", SensorKind::Button);
        let tx = d.add_block("tx", ProgrammableSpec::default());
        let o = d.add_block("led", OutputKind::Led);
        d.connect((s, 0), (tx, 0)).unwrap();
        d.connect((tx, 0), (o, 0)).unwrap();
        let mut programs = BTreeMap::new();
        programs.insert(
            tx,
            parse("on input { if (in0 && false) { out0 = true; } }").unwrap(),
        );
        let report = lint_design_with_programs(&d, &programs, &LintConfig::default());
        let cs = codes(&report);
        assert!(cs.contains(&"W213"), "{report}");
        let w = report
            .diagnostics
            .iter()
            .find(|d| d.code == "W213")
            .unwrap();
        assert_eq!(w.location, "wire `tx.0 -> led.0`");
    }

    #[test]
    fn dead_islands_get_no_dataflow_noise() {
        // A FALSE gate in a dead island: W006/W007/E001 fire, but no
        // W210 — derived facts about unreachable blocks are suppressed.
        let mut d = clean_chain();
        let f = d.add_block("isle", ComputeKind::Logic2(TruthTable2::FALSE));
        let o2 = d.add_block("led2", OutputKind::Led);
        d.connect((f, 0), (o2, 0)).unwrap();
        let report = lint_design(&d, &LintConfig::default());
        let cs = codes(&report);
        assert!(!cs.contains(&"W210"), "{report}");
        assert!(cs.contains(&"W006"));
    }

    #[test]
    fn w006_removal_fix_deletes_the_dead_cone() {
        let text = "eblocks-netlist v1\n\
                    design t\n\
                    block s sensor:button\n\
                    block n compute:not\n\
                    block o output:led\n\
                    block ghost programmable:1in/1out\n\
                    block deadled output:led\n\
                    wire s.0 -> n.0\n\
                    wire n.0 -> o.0\n\
                    wire ghost.0 -> deadled.0\n";
        let report = lint_netlist(text, &LintConfig::default());
        let w006: Vec<&Diagnostic> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "W006")
            .collect();
        assert_eq!(w006.len(), 2, "{report}");
        for d in &w006 {
            let fix = d.fix.as_ref().expect("removal fix");
            assert_eq!(fix.applicability, crate::Applicability::MachineApplicable);
        }
        let fixed = crate::apply_machine_fixes(text, &report).unwrap();
        assert!(!fixed.contains("ghost"), "{fixed}");
        assert!(!fixed.contains("deadled"), "{fixed}");
        let relint = lint_netlist(&fixed, &LintConfig::default());
        assert!(relint.is_clean(), "{relint}");
    }

    #[test]
    fn w006_fix_is_demoted_when_removal_would_orphan_a_live_block() {
        // dead drives live: `dead` is sensor-unreachable but its sink is
        // live, so no sink-closed subset contains it — no machine fix.
        let text = "eblocks-netlist v1\n\
                    design t\n\
                    block s sensor:button\n\
                    block g compute:logic2:OR\n\
                    block o output:led\n\
                    block dead compute:not\n\
                    wire s.0 -> g.0\n\
                    wire dead.0 -> g.1\n\
                    wire g.0 -> o.0\n";
        let report = lint_netlist(text, &LintConfig::default());
        let w006 = report
            .diagnostics
            .iter()
            .find(|d| d.code == "W006")
            .expect("dead block flagged");
        assert!(w006.fix.is_none(), "{w006:?}");
    }
}
