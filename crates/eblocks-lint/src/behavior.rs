//! Behavior-layer lint rules: dataflow problems in a behavior program.
//!
//! [`lint_program`] folds the semantic checker's errors
//! ([`eblocks_behavior::check()`], mapped through [`diagnose_check`] so both
//! tools share one reporting model) together with lint-only warnings:
//! unused or constant state, dead locals, constant conditions, conflicting
//! sends, and unused ports.

use crate::{rules, Diagnostic, LintConfig, LintReport};
use eblocks_behavior::ast::output_port;
use eblocks_behavior::{check, parse, CheckError, Handler, HandlerKind, Program, Stmt};
use std::collections::BTreeSet;

/// Lints behavior source text for a block with the given port arities:
/// parse failures become `E100`; otherwise every program rule runs.
pub fn lint_behavior(text: &str, inputs: u8, outputs: u8, config: &LintConfig) -> LintReport {
    match parse(text) {
        Ok(program) => lint_program(&program, inputs, outputs, config),
        Err(error) => {
            let location = if error.line == 0 {
                "end of input".to_string()
            } else {
                format!("line {}:{}", error.line, error.col)
            };
            LintReport::new(vec![Diagnostic::new(
                &rules::BEHAVIOR_PARSE,
                location,
                error.message,
            )])
        }
    }
}

/// Runs every behavior rule over a parsed program: the checker's errors
/// plus the lint-only dataflow warnings, in stable order.
pub fn lint_program(
    program: &Program,
    inputs: u8,
    outputs: u8,
    _config: &LintConfig,
) -> LintReport {
    let mut out = diagnose_check(&check(program, inputs, outputs));
    state_rules(program, &mut out);
    for handler in &program.handlers {
        handler_rules(handler, &mut out);
    }
    port_rules(program, inputs, outputs, &mut out);
    LintReport::new(out)
}

/// Converts checker errors into [`Diagnostic`]s — the shared reporting
/// model behind both `check` and `lint`.
pub fn diagnose_check(errors: &[CheckError]) -> Vec<Diagnostic> {
    errors.iter().map(diagnose_one).collect()
}

pub(crate) fn diagnose_one(error: &CheckError) -> Diagnostic {
    let message = error.to_string();
    match error {
        CheckError::DuplicateHandler { kind } => Diagnostic::new(
            &rules::DUPLICATE_HANDLER,
            format!("handler `{}`", label(*kind)),
            message,
        )
        .with_hint("merge the bodies into one handler"),
        CheckError::NonConstantStateInit { name, .. } => Diagnostic::new(
            &rules::NON_CONSTANT_STATE_INIT,
            format!("state `{name}`"),
            message,
        ),
        CheckError::DuplicateState { name } => {
            Diagnostic::new(&rules::DUPLICATE_STATE, format!("state `{name}`"), message)
        }
        CheckError::InputOutOfRange { port, .. } => Diagnostic::new(
            &rules::INPUT_OUT_OF_RANGE,
            format!("input `in{port}`"),
            message,
        ),
        CheckError::OutputOutOfRange { port, .. } => Diagnostic::new(
            &rules::OUTPUT_OUT_OF_RANGE,
            format!("output `out{port}`"),
            message,
        ),
        CheckError::AssignToInput { port } => Diagnostic::new(
            &rules::ASSIGN_TO_INPUT,
            format!("input `in{port}`"),
            message,
        ),
        CheckError::PossiblyUndefined { name } => Diagnostic::new(
            &rules::POSSIBLY_UNDEFINED,
            format!("variable `{name}`"),
            message,
        )
        .with_hint("assign it on every path before the read"),
        CheckError::InputReadInTick { .. } => {
            Diagnostic::new(&rules::INPUT_READ_IN_TICK, "handler `on tick`", message)
                .with_hint("latch the input into a state variable in `on input`")
        }
        // CheckError is #[non_exhaustive]; future checks surface under a
        // generic code rather than being dropped.
        other => Diagnostic::new(&rules::BEHAVIOR_CHECK, "program", other.to_string()),
    }
}

fn label(kind: HandlerKind) -> &'static str {
    match kind {
        HandlerKind::Input => "on input",
        HandlerKind::Tick => "on tick",
    }
}

/// W120/W121: states never read, and states read but never reassigned.
fn state_rules(program: &Program, out: &mut Vec<Diagnostic>) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    for h in &program.handlers {
        for s in &h.body {
            s.vars(&mut reads, &mut writes);
        }
    }
    // A later state's initializer reading an earlier state counts as a read.
    for st in &program.states {
        st.init.vars(&mut reads);
    }
    for st in &program.states {
        if !reads.contains(&st.name) {
            out.push(
                Diagnostic::new(
                    &rules::UNUSED_STATE,
                    format!("state `{}`", st.name),
                    format!("state `{}` is never read", st.name),
                )
                .with_hint("remove the declaration"),
            );
        } else if !writes.contains(&st.name) {
            out.push(
                Diagnostic::new(
                    &rules::UNASSIGNED_STATE,
                    format!("state `{}`", st.name),
                    format!(
                        "state `{}` is never reassigned; it always holds {}",
                        st.name, st.init
                    ),
                )
                .with_hint(format!("fold the constant {} into its uses", st.init)),
            );
        }
    }
}

/// W122/W123/W124: per-handler dataflow warnings.
fn handler_rules(handler: &Handler, out: &mut Vec<Diagnostic>) {
    let loc = format!("handler `{}`", label(handler.kind));

    // W122: let bindings never read anywhere in the handler.
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    let mut lets = BTreeSet::new();
    for s in &handler.body {
        s.vars(&mut reads, &mut writes);
        collect_lets(std::slice::from_ref(s), &mut lets);
    }
    for name in &lets {
        if !reads.contains(name) {
            out.push(
                Diagnostic::new(
                    &rules::UNUSED_LOCAL,
                    loc.clone(),
                    format!("let binding `{name}` is never read"),
                )
                .with_hint("remove the binding"),
            );
        }
    }

    // W123: conditions reading no variables are constant.
    constant_conditions(&handler.body, &loc, out);

    // W124: one activation sending twice to the same output port at the
    // same nesting level (the `out0 = false; if (..) { out0 = true; }`
    // default-then-override idiom lives at *different* levels and is fine).
    let mut conflicts = BTreeSet::new();
    conflicting_sends(&handler.body, &mut conflicts);
    for name in conflicts {
        out.push(
            Diagnostic::new(
                &rules::CONFLICTING_SEND,
                loc.clone(),
                format!("`{name}` is assigned twice at the same nesting level; the first send is overwritten"),
            )
            .with_hint("drop the earlier assignment or guard them with a branch"),
        );
    }
}

fn collect_lets(body: &[Stmt], into: &mut BTreeSet<String>) {
    for stmt in body {
        match stmt {
            Stmt::Let(name, _) => {
                into.insert(name.clone());
            }
            Stmt::If(_, then_body, else_body) => {
                collect_lets(then_body, into);
                collect_lets(else_body, into);
            }
            Stmt::Assign(..) => {}
        }
    }
}

fn constant_conditions(body: &[Stmt], loc: &str, out: &mut Vec<Diagnostic>) {
    for stmt in body {
        if let Stmt::If(cond, then_body, else_body) = stmt {
            let mut vars = BTreeSet::new();
            cond.vars(&mut vars);
            if vars.is_empty() {
                out.push(
                    Diagnostic::new(
                        &rules::CONSTANT_CONDITION,
                        loc.to_string(),
                        format!("condition `{cond}` reads no variables; one branch is dead"),
                    )
                    .with_hint("fold the condition and delete the dead branch"),
                );
            }
            constant_conditions(then_body, loc, out);
            constant_conditions(else_body, loc, out);
        }
    }
}

fn conflicting_sends(body: &[Stmt], conflicts: &mut BTreeSet<String>) {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for stmt in body {
        match stmt {
            Stmt::Assign(name, _) if output_port(name).is_some() && !seen.insert(name) => {
                conflicts.insert(name.clone());
            }
            Stmt::If(_, then_body, else_body) => {
                conflicting_sends(then_body, conflicts);
                conflicting_sends(else_body, conflicts);
            }
            _ => {}
        }
    }
}

/// W125/W126: ports inside the block's arity the program never touches.
fn port_rules(program: &Program, inputs: u8, outputs: u8, out: &mut Vec<Diagnostic>) {
    let read = program.inputs_read();
    let written = program.outputs_written();
    for port in 0..inputs {
        if !read.contains(&port) {
            out.push(
                Diagnostic::new(
                    &rules::UNREAD_INPUT,
                    format!("input `in{port}`"),
                    format!("input port in{port} is never read"),
                )
                .with_hint("read it or shrink the block's input arity"),
            );
        }
    }
    for port in 0..outputs {
        if !written.contains(&port) {
            out.push(
                Diagnostic::new(
                    &rules::UNWRITTEN_OUTPUT,
                    format!("output `out{port}`"),
                    format!("output port out{port} is never written"),
                )
                .with_hint("write it or shrink the block's output arity"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn codes(report: &LintReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    fn lint_src(src: &str, ni: u8, no: u8) -> LintReport {
        lint_behavior(src, ni, no, &LintConfig::default())
    }

    #[test]
    fn clean_programs_are_clean() {
        assert!(lint_src("on input { out0 = in0 && in1; }", 2, 1).is_clean());
        let toggle = "state q = false; state prev = false;\n\
                      on input { if (in0 && !prev) { q = !q; } prev = in0; out0 = q; }";
        assert!(
            lint_src(toggle, 1, 1).is_clean(),
            "{}",
            lint_src(toggle, 1, 1)
        );
    }

    #[test]
    fn e100_parse_failure() {
        let report = lint_src("on input { out0 = ; }", 1, 1);
        assert_eq!(codes(&report), ["E100"]);
        assert!(report.diagnostics[0].location.starts_with("line "));
        let report = lint_src("on input {", 1, 1);
        assert_eq!(codes(&report), ["E100"]);
        assert_eq!(report.diagnostics[0].location, "end of input");
    }

    #[test]
    fn check_errors_become_diagnostics() {
        // One run, many errors: duplicate handler, assign-to-input,
        // out-of-range output, undefined read, tick reading input.
        let report = lint_src(
            "on tick { out0 = in0; } on input { in0 = true; out3 = ghost; } on input { }",
            1,
            1,
        );
        let cs = codes(&report);
        for code in ["E101", "E105", "E106", "E107", "E108"] {
            assert!(cs.contains(&code), "{cs:?} missing {code}");
        }
        assert!(report.errors() >= 5);
    }

    #[test]
    fn e102_e103_e104_state_and_range() {
        let report = lint_src(
            "state a = b + 1; state a = 2; on input { out0 = in5; }",
            1,
            1,
        );
        let cs = codes(&report);
        for code in ["E102", "E103", "E104"] {
            assert!(cs.contains(&code), "{cs:?} missing {code}");
        }
        // Locations anchor to the offending item.
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "E102" && d.location == "state `a`"));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "E104" && d.location == "input `in5`"));
    }

    #[test]
    fn w120_unused_state() {
        let report = lint_src("state junk = 0; on input { out0 = in0; }", 1, 1);
        assert_eq!(codes(&report), ["W120"]);
        assert_eq!(report.diagnostics[0].location, "state `junk`");
        assert_eq!(report.diagnostics[0].severity, Severity::Warning);
    }

    #[test]
    fn w121_unassigned_state_is_constant() {
        let report = lint_src("state k = 5; on input { out0 = in0 > k; }", 1, 1);
        assert_eq!(codes(&report), ["W121"]);
        assert!(report.diagnostics[0].message.contains("always holds 5"));
        // Read by a later initializer but never in handlers: still W121,
        // not W120.
        let report = lint_src(
            "state a = 1; state b = a + 1; on input { out0 = b > 0; b = b; }",
            0,
            1,
        );
        assert_eq!(codes(&report), ["W121"]);
        assert_eq!(report.diagnostics[0].location, "state `a`");
    }

    #[test]
    fn w122_unused_local() {
        let report = lint_src("on input { let tmp = in0; out0 = in0; }", 1, 1);
        assert_eq!(codes(&report), ["W122"]);
        assert!(report.diagnostics[0].message.contains("`tmp`"));
        assert!(lint_src("on input { let tmp = in0; out0 = tmp; }", 1, 1).is_clean());
    }

    #[test]
    fn w123_constant_condition() {
        let report = lint_src(
            "on input { out0 = in0; if (1 < 2) { out0 = false; } }",
            1,
            1,
        );
        assert_eq!(codes(&report), ["W123"]);
        assert!(report.diagnostics[0].message.contains("`1 < 2`"));
        // Nested constant conditions are found too.
        let report = lint_src(
            "on input { out0 = in0; if (in0) { if (true) { out0 = false; } } }",
            1,
            1,
        );
        assert_eq!(codes(&report), ["W123"]);
    }

    #[test]
    fn w124_conflicting_send_same_level_only() {
        let report = lint_src("on input { out0 = in0; out0 = !in0; }", 1, 1);
        assert_eq!(codes(&report), ["W124"]);
        assert!(report.diagnostics[0].message.contains("`out0`"));
        // Default-then-override across nesting levels is idiomatic.
        assert!(lint_src("on input { out0 = false; if (in0) { out0 = true; } }", 1, 1).is_clean());
        // Conflicts inside a branch body are caught.
        let report = lint_src(
            "on input { out0 = in0; if (in0) { out1 = true; out1 = false; } else { out1 = in0; } }",
            1,
            2,
        );
        assert_eq!(codes(&report), ["W124"]);
    }

    #[test]
    fn w125_w126_untouched_ports() {
        let report = lint_src("on input { out0 = in0; }", 2, 2);
        assert_eq!(codes(&report), ["W125", "W126"]);
        assert_eq!(report.diagnostics[0].location, "output `out1`");
        assert_eq!(report.diagnostics[1].location, "input `in1`");
    }

    #[test]
    fn diagnose_check_covers_every_variant() {
        let errors = [
            CheckError::DuplicateHandler {
                kind: HandlerKind::Tick,
            },
            CheckError::NonConstantStateInit {
                name: "a".into(),
                reference: "b".into(),
            },
            CheckError::DuplicateState { name: "a".into() },
            CheckError::InputOutOfRange { port: 9, arity: 2 },
            CheckError::OutputOutOfRange { port: 9, arity: 2 },
            CheckError::AssignToInput { port: 0 },
            CheckError::PossiblyUndefined { name: "x".into() },
            CheckError::InputReadInTick { port: 0 },
        ];
        let diags = diagnose_check(&errors);
        let expect = [
            "E101", "E102", "E103", "E104", "E105", "E106", "E107", "E108",
        ];
        for (d, (e, code)) in diags.iter().zip(errors.iter().zip(expect)) {
            assert_eq!(d.code, code);
            assert_eq!(d.severity, Severity::Error);
            assert_eq!(d.message, e.to_string());
        }
    }

    #[test]
    fn multi_defect_program_reports_everything_in_one_run() {
        let src = "state junk = 0;\n\
                   on input {\n\
                       let dead = in0;\n\
                       out0 = in0;\n\
                       out0 = !in0;\n\
                       if (false) { out1 = true; } else { out1 = true; }\n\
                   }";
        let report = lint_src(src, 1, 2);
        assert_eq!(codes(&report), ["W120", "W122", "W123", "W124"]);
    }
}
