//! Behavior-layer lint rules: dataflow problems in a behavior program.
//!
//! [`lint_program`] folds the semantic checker's errors
//! ([`eblocks_behavior::check()`], mapped through [`diagnose_check`] so both
//! tools share one reporting model) together with lint-only warnings:
//! unused or constant state, dead locals, constant conditions, conflicting
//! sends, and unused ports — plus the value-precise rules driven by the
//! abstract interpreter in [`crate::dataflow`] (constant signals, dead
//! branches, frozen states, outputs that can never fire).
//!
//! [`lint_behavior`] additionally parses with byte spans, so its
//! diagnostics carry `line`/`col` positions and — where a rule has a
//! mechanical remedy (unused state/local removal, decided-branch folding)
//! — a machine-applicable [`Fix`].

use crate::dataflow::{analyze_program, CondFact, PathElem, ValueSet};
use crate::fix::Fix;
use crate::{rules, Diagnostic, LintConfig, LintReport};
use eblocks_behavior::ast::output_port;
use eblocks_behavior::{
    check, parse_spanned, CheckError, Handler, HandlerKind, Program, ProgramSpans, Span, Stmt,
    StmtSpans,
};
use std::collections::BTreeSet;

/// Span table plus the source it indexes — present only on the
/// text-entry path ([`lint_behavior`]), where positions and fixes can be
/// anchored to bytes.
struct Src<'a> {
    spans: &'a ProgramSpans,
    text: &'a str,
}

/// Lints behavior source text for a block with the given port arities:
/// parse failures become `E100`; otherwise every program rule runs, with
/// positions and machine-applicable fixes anchored to the source bytes.
pub fn lint_behavior(text: &str, inputs: u8, outputs: u8, config: &LintConfig) -> LintReport {
    match parse_spanned(text) {
        Ok((program, spans)) => lint_program_impl(
            &program,
            Some(&Src {
                spans: &spans,
                text,
            }),
            inputs,
            outputs,
            config,
        ),
        Err(error) => {
            let mut d = if error.line == 0 {
                Diagnostic::new(&rules::BEHAVIOR_PARSE, "end of input", error.message)
            } else {
                Diagnostic::new(
                    &rules::BEHAVIOR_PARSE,
                    format!("line {}:{}", error.line, error.col),
                    error.message,
                )
                .at(error.line, error.col)
            };
            d = d.with_hint("fix the syntax error; nothing past it was checked");
            LintReport::new(vec![d])
        }
    }
}

/// Runs every behavior rule over a parsed program: the checker's errors
/// plus the lint-only dataflow warnings, in stable order. Position-free
/// (the AST carries no spans); parse with [`lint_behavior`] to get
/// `line`/`col` and fixes.
pub fn lint_program(program: &Program, inputs: u8, outputs: u8, config: &LintConfig) -> LintReport {
    lint_program_impl(program, None, inputs, outputs, config)
}

fn lint_program_impl(
    program: &Program,
    src: Option<&Src<'_>>,
    inputs: u8,
    outputs: u8,
    _config: &LintConfig,
) -> LintReport {
    let mut out = Vec::new();
    for error in &check(program, inputs, outputs) {
        let mut d = diagnose_one(error);
        if let Some(s) = src {
            if let Some(span) = position_of(error, program, s.spans) {
                d = d.at(span.line, span.col);
            }
        }
        out.push(d);
    }
    state_rules(program, src, &mut out);
    for (i, handler) in program.handlers.iter().enumerate() {
        handler_rules(i, handler, src, &mut out);
    }
    port_rules(program, inputs, outputs, &mut out);
    dataflow_rules(program, src, inputs, outputs, &mut out);
    LintReport::new(out)
}

/// Converts checker errors into [`Diagnostic`]s — the shared reporting
/// model behind both `check` and `lint`.
pub fn diagnose_check(errors: &[CheckError]) -> Vec<Diagnostic> {
    errors.iter().map(diagnose_one).collect()
}

pub(crate) fn diagnose_one(error: &CheckError) -> Diagnostic {
    let message = error.to_string();
    match error {
        CheckError::DuplicateHandler { kind } => Diagnostic::new(
            &rules::DUPLICATE_HANDLER,
            format!("handler `{}`", label(*kind)),
            message,
        )
        .with_hint("merge the bodies into one handler"),
        CheckError::NonConstantStateInit { name, .. } => Diagnostic::new(
            &rules::NON_CONSTANT_STATE_INIT,
            format!("state `{name}`"),
            message,
        ),
        CheckError::DuplicateState { name } => {
            Diagnostic::new(&rules::DUPLICATE_STATE, format!("state `{name}`"), message)
        }
        CheckError::InputOutOfRange { port, .. } => Diagnostic::new(
            &rules::INPUT_OUT_OF_RANGE,
            format!("input `in{port}`"),
            message,
        ),
        CheckError::OutputOutOfRange { port, .. } => Diagnostic::new(
            &rules::OUTPUT_OUT_OF_RANGE,
            format!("output `out{port}`"),
            message,
        ),
        CheckError::AssignToInput { port } => Diagnostic::new(
            &rules::ASSIGN_TO_INPUT,
            format!("input `in{port}`"),
            message,
        ),
        CheckError::PossiblyUndefined { name } => Diagnostic::new(
            &rules::POSSIBLY_UNDEFINED,
            format!("variable `{name}`"),
            message,
        )
        .with_hint("assign it on every path before the read"),
        CheckError::InputReadInTick { .. } => {
            Diagnostic::new(&rules::INPUT_READ_IN_TICK, "handler `on tick`", message)
                .with_hint("latch the input into a state variable in `on input`")
        }
        // CheckError is #[non_exhaustive]; future checks surface under a
        // generic code rather than being dropped.
        other => Diagnostic::new(&rules::BEHAVIOR_CHECK, "program", other.to_string()),
    }
}

/// Best-effort source position for a checker error: the declaration,
/// handler, or first statement the error is about.
fn position_of(error: &CheckError, program: &Program, spans: &ProgramSpans) -> Option<Span> {
    match error {
        CheckError::DuplicateHandler { kind } => {
            let (i, _) = program
                .handlers
                .iter()
                .enumerate()
                .filter(|(_, h)| h.kind == *kind)
                .nth(1)?;
            Some(spans.handlers.get(i)?.span)
        }
        CheckError::NonConstantStateInit { name, .. } => decl_span(program, spans, name, 0),
        CheckError::DuplicateState { name } => decl_span(program, spans, name, 1),
        CheckError::InputOutOfRange { port, .. } => {
            let var = format!("in{port}");
            locate_any(program, spans, None, &|r, _| r.contains(&var))
        }
        CheckError::OutputOutOfRange { port, .. } => {
            let var = format!("out{port}");
            locate_any(program, spans, None, &|r, w| {
                w.contains(&var) || r.contains(&var)
            })
        }
        CheckError::AssignToInput { port } => {
            let var = format!("in{port}");
            locate_any(program, spans, None, &|_, w| w.contains(&var))
        }
        CheckError::PossiblyUndefined { name } => {
            locate_any(program, spans, None, &|r, _| r.contains(name.as_str()))
        }
        CheckError::InputReadInTick { port } => {
            let var = format!("in{port}");
            locate_any(program, spans, Some(HandlerKind::Tick), &|r, _| {
                r.contains(&var)
            })
        }
        _ => None,
    }
}

/// Span of the `n`-th declaration of state `name` (0-based).
fn decl_span(program: &Program, spans: &ProgramSpans, name: &str, n: usize) -> Option<Span> {
    let (i, _) = program
        .states
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name == name)
        .nth(n)?;
    spans.states.get(i).copied()
}

/// First statement (source order, conditions before branch bodies) whose
/// own reads/writes satisfy `pred`, restricted to handlers of `kind`
/// when given.
fn locate_any(
    program: &Program,
    spans: &ProgramSpans,
    kind: Option<HandlerKind>,
    pred: &dyn Fn(&BTreeSet<String>, &BTreeSet<String>) -> bool,
) -> Option<Span> {
    for (h, hs) in program.handlers.iter().zip(&spans.handlers) {
        if kind.is_some_and(|k| h.kind != k) {
            continue;
        }
        if let Some(s) = locate(&h.body, &hs.body, pred) {
            return Some(s);
        }
    }
    None
}

fn locate(
    body: &[Stmt],
    spans: &[StmtSpans],
    pred: &dyn Fn(&BTreeSet<String>, &BTreeSet<String>) -> bool,
) -> Option<Span> {
    for (stmt, ss) in body.iter().zip(spans) {
        match stmt {
            Stmt::Let(name, e) | Stmt::Assign(name, e) => {
                let mut reads = BTreeSet::new();
                e.vars(&mut reads);
                let writes: BTreeSet<String> = std::iter::once(name.clone()).collect();
                if pred(&reads, &writes) {
                    return Some(ss.span);
                }
            }
            Stmt::If(cond, then_body, else_body) => {
                let mut reads = BTreeSet::new();
                cond.vars(&mut reads);
                if pred(&reads, &BTreeSet::new()) {
                    return Some(ss.cond.unwrap_or(ss.span));
                }
                if let Some(s) = locate(then_body, &ss.then_body, pred) {
                    return Some(s);
                }
                if let Some(s) = locate(else_body, &ss.else_body, pred) {
                    return Some(s);
                }
            }
        }
    }
    None
}

fn label(kind: HandlerKind) -> &'static str {
    match kind {
        HandlerKind::Input => "on input",
        HandlerKind::Tick => "on tick",
    }
}

/// All reads and writes across every handler body (state initializer
/// references count as reads).
fn program_reads_writes(program: &Program) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    for h in &program.handlers {
        for s in &h.body {
            s.vars(&mut reads, &mut writes);
        }
    }
    for st in &program.states {
        st.init.vars(&mut reads);
    }
    (reads, writes)
}

/// W120/W121: states never read, and states read but never reassigned.
fn state_rules(program: &Program, src: Option<&Src<'_>>, out: &mut Vec<Diagnostic>) {
    let (reads, writes) = program_reads_writes(program);
    for (i, st) in program.states.iter().enumerate() {
        let span = src.and_then(|s| s.spans.states.get(i).copied());
        if !reads.contains(&st.name) {
            let mut d = Diagnostic::new(
                &rules::UNUSED_STATE,
                format!("state `{}`", st.name),
                format!("state `{}` is never read", st.name),
            )
            .with_hint("remove the declaration");
            if let (Some(src), Some(span)) = (src, span) {
                d = d
                    .at(span.line, span.col)
                    .with_fix(unused_state_fix(program, src.spans, &st.name, span));
            }
            out.push(d);
        } else if !writes.contains(&st.name) {
            let mut d = Diagnostic::new(
                &rules::UNASSIGNED_STATE,
                format!("state `{}`", st.name),
                format!(
                    "state `{}` is never reassigned; it always holds {}",
                    st.name, st.init
                ),
            )
            .with_hint(format!("fold the constant {} into its uses", st.init));
            if let Some(span) = span {
                d = d.at(span.line, span.col);
            }
            out.push(d);
        }
    }
}

/// Deleting an unused state removes its declaration and every assignment
/// to it — the variable is never read, so the writes are pure waste.
fn unused_state_fix(program: &Program, spans: &ProgramSpans, name: &str, decl: Span) -> Fix {
    let mut fix = Fix::delete(decl.start, decl.end);
    for (h, hs) in program.handlers.iter().zip(&spans.handlers) {
        let mut found = Vec::new();
        assign_spans(&h.body, &hs.body, name, &mut found);
        for span in found {
            fix.edits.push(crate::TextEdit {
                start: span.start,
                end: span.end,
                replacement: String::new(),
            });
        }
    }
    fix
}

fn assign_spans(body: &[Stmt], spans: &[StmtSpans], name: &str, into: &mut Vec<Span>) {
    for (stmt, ss) in body.iter().zip(spans) {
        match stmt {
            Stmt::Assign(n, _) if n == name => into.push(ss.span),
            Stmt::If(_, then_body, else_body) => {
                assign_spans(then_body, &ss.then_body, name, into);
                assign_spans(else_body, &ss.else_body, name, into);
            }
            _ => {}
        }
    }
}

fn let_spans(body: &[Stmt], spans: &[StmtSpans], name: &str, into: &mut Vec<Span>) {
    for (stmt, ss) in body.iter().zip(spans) {
        match stmt {
            Stmt::Let(n, _) if n == name => into.push(ss.span),
            Stmt::If(_, then_body, else_body) => {
                let_spans(then_body, &ss.then_body, name, into);
                let_spans(else_body, &ss.else_body, name, into);
            }
            _ => {}
        }
    }
}

/// W122/W124: per-handler dataflow warnings.
fn handler_rules(
    index: usize,
    handler: &Handler,
    src: Option<&Src<'_>>,
    out: &mut Vec<Diagnostic>,
) {
    let loc = format!("handler `{}`", label(handler.kind));
    let hspans = src.and_then(|s| s.spans.handlers.get(index));

    // W122: let bindings never read anywhere in the handler.
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    let mut lets = BTreeSet::new();
    for s in &handler.body {
        s.vars(&mut reads, &mut writes);
        collect_lets(std::slice::from_ref(s), &mut lets);
    }
    for name in &lets {
        if !reads.contains(name) {
            let mut d = Diagnostic::new(
                &rules::UNUSED_LOCAL,
                loc.clone(),
                format!("let binding `{name}` is never read"),
            )
            .with_hint("remove the binding");
            if let Some(hs) = hspans {
                let mut found = Vec::new();
                let_spans(&handler.body, &hs.body, name, &mut found);
                if let Some(first) = found.first() {
                    d = d.at(first.line, first.col);
                    let mut fix = Fix::delete(first.start, first.end);
                    for span in &found[1..] {
                        fix.edits.push(crate::TextEdit {
                            start: span.start,
                            end: span.end,
                            replacement: String::new(),
                        });
                    }
                    d = d.with_fix(fix);
                }
            }
            out.push(d);
        }
    }

    // W124: one activation sending twice to the same output port at the
    // same nesting level (the `out0 = false; if (..) { out0 = true; }`
    // default-then-override idiom lives at *different* levels and is fine).
    let mut conflicts = BTreeSet::new();
    conflicting_sends(&handler.body, &mut conflicts);
    for name in conflicts {
        let mut d = Diagnostic::new(
            &rules::CONFLICTING_SEND,
            loc.clone(),
            format!("`{name}` is assigned twice at the same nesting level; the first send is overwritten"),
        )
        .with_hint("drop the earlier assignment or guard them with a branch");
        if let Some(hs) = hspans {
            d = d.at(hs.span.line, hs.span.col);
        }
        out.push(d);
    }
}

fn collect_lets(body: &[Stmt], into: &mut BTreeSet<String>) {
    for stmt in body {
        match stmt {
            Stmt::Let(name, _) => {
                into.insert(name.clone());
            }
            Stmt::If(_, then_body, else_body) => {
                collect_lets(then_body, into);
                collect_lets(else_body, into);
            }
            Stmt::Assign(..) => {}
        }
    }
}

fn conflicting_sends(body: &[Stmt], conflicts: &mut BTreeSet<String>) {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for stmt in body {
        match stmt {
            Stmt::Assign(name, _) if output_port(name).is_some() && !seen.insert(name) => {
                conflicts.insert(name.clone());
            }
            Stmt::If(_, then_body, else_body) => {
                conflicting_sends(then_body, conflicts);
                conflicting_sends(else_body, conflicts);
            }
            _ => {}
        }
    }
}

/// W125/W126: ports inside the block's arity the program never touches.
fn port_rules(program: &Program, inputs: u8, outputs: u8, out: &mut Vec<Diagnostic>) {
    let read = program.inputs_read();
    let written = program.outputs_written();
    for port in 0..inputs {
        if !read.contains(&port) {
            out.push(
                Diagnostic::new(
                    &rules::UNREAD_INPUT,
                    format!("input `in{port}`"),
                    format!("input port in{port} is never read"),
                )
                .with_hint("read it or shrink the block's input arity"),
            );
        }
    }
    for port in 0..outputs {
        if !written.contains(&port) {
            out.push(
                Diagnostic::new(
                    &rules::UNWRITTEN_OUTPUT,
                    format!("output `out{port}`"),
                    format!("output port out{port} is never written"),
                )
                .with_hint("write it or shrink the block's output arity"),
            );
        }
    }
}

/// W123/W210/W211/W212/W213: value-precise rules from the abstract
/// interpreter, with inputs unconstrained (`Any`) — a standalone program
/// makes no claim about what arrives on its ports.
fn dataflow_rules(
    program: &Program,
    src: Option<&Src<'_>>,
    inputs: u8,
    outputs: u8,
    out: &mut Vec<Diagnostic>,
) {
    let input_sets = vec![ValueSet::Any; inputs as usize];
    let facts = analyze_program(program, &input_sets, outputs);

    for fact in &facts.conds {
        cond_rule(src, fact, out);
    }

    let written = program.outputs_written();
    for (port, set) in facts.outputs.iter().enumerate() {
        if let Some(v) = set.as_singleton() {
            out.push(
                Diagnostic::new(
                    &rules::CONSTANT_SIGNAL,
                    format!("output `out{port}`"),
                    format!("output port out{port} only ever carries {v}"),
                )
                .with_hint("replace the logic with a constant, or fix what feeds it"),
            );
        } else if set.is_bottom() && written.contains(&(port as u8)) {
            out.push(
                Diagnostic::new(
                    &rules::EDGE_NEVER_FIRES,
                    format!("output `out{port}`"),
                    format!(
                        "output port out{port} is written in the source but no feasible path reaches a write"
                    ),
                )
                .with_hint("the conditions guarding every write can never pass"),
            );
        }
    }

    let (reads, writes) = program_reads_writes(program);
    let mut seen = BTreeSet::new();
    for (i, st) in program.states.iter().enumerate() {
        if !seen.insert(st.name.as_str()) {
            continue; // duplicate declaration: E103 owns it
        }
        if !(reads.contains(&st.name) && writes.contains(&st.name)) {
            continue; // W120/W121 own the unread/unwritten cases
        }
        if let Some(v) = facts.states.get(&st.name).and_then(ValueSet::as_singleton) {
            let mut d = Diagnostic::new(
                &rules::CONSTANT_STATE,
                format!("state `{}`", st.name),
                format!(
                    "state `{}` is reassigned but provably always holds {v}",
                    st.name
                ),
            )
            .with_hint(format!("fold the constant {v} into its uses"));
            if let Some(span) = src.and_then(|s| s.spans.states.get(i)) {
                d = d.at(span.line, span.col);
            }
            out.push(d);
        }
    }
}

/// W123 (syntactically constant condition) and W211 (value-decided
/// condition), both with a branch-folding fix when the verdict is
/// decided and spans are available.
fn cond_rule(src: Option<&Src<'_>>, fact: &CondFact, out: &mut Vec<Diagnostic>) {
    let decided = fact.always_true() || fact.always_false();
    let loc = format!("handler `{}`", label(fact.kind));

    let mut d = if fact.syntactic {
        Diagnostic::new(
            &rules::CONSTANT_CONDITION,
            loc,
            format!(
                "condition `{}` reads no variables; one branch is dead",
                fact.display
            ),
        )
        .with_hint("fold the condition and delete the dead branch")
    } else if decided {
        let dead_len = if fact.always_true() {
            fact.else_len
        } else {
            fact.then_len
        };
        if dead_len == 0 {
            return; // invariant condition with no dead code behind it
        }
        let (verdict, branch) = if fact.always_true() {
            ("true", "else")
        } else {
            ("false", "then")
        };
        Diagnostic::new(
            &rules::VALUE_DEAD_BRANCH,
            loc,
            format!(
                "condition `{}` is always {verdict} for every value that can reach it; the {branch} branch never runs",
                fact.display
            ),
        )
        .with_hint("delete the unreachable branch")
    } else {
        return;
    };

    if let Some(s) = src {
        if let Some(ss) = resolve_stmt(&s.spans.handlers, fact.handler, &fact.path) {
            d = d.at(ss.span.line, ss.span.col);
            if decided {
                let live = if fact.always_true() {
                    &ss.then_body
                } else {
                    &ss.else_body
                };
                d = d.with_fix(fold_fix(ss.span, live, s.text));
            }
        }
    }
    out.push(d);
}

/// Replaces a decided `if` statement with its live branch's source text
/// (empty when the live branch has no statements). The replacement is a
/// subrange of the replaced span, so applying it strictly shrinks the
/// text — the fixpoint loop cannot oscillate.
fn fold_fix(whole: Span, live: &[StmtSpans], text: &str) -> Fix {
    let replacement = match (live.first(), live.last()) {
        (Some(first), Some(last)) => text
            .get(first.span.start..last.span.end)
            .unwrap_or("")
            .to_string(),
        _ => String::new(),
    };
    Fix::replace(whole.start, whole.end, replacement)
}

/// Walks a span table along a [`CondFact`] path to the `if`'s spans.
fn resolve_stmt<'a>(
    handlers: &'a [eblocks_behavior::HandlerSpans],
    handler: usize,
    path: &[PathElem],
) -> Option<&'a StmtSpans> {
    let mut list: &[StmtSpans] = &handlers.get(handler)?.body;
    let mut cur: Option<&StmtSpans> = None;
    for elem in path {
        match elem {
            PathElem::Stmt(i) => cur = list.get(*i),
            PathElem::Then => list = &cur?.then_body,
            PathElem::Else => list = &cur?.else_body,
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Applicability, Severity};

    fn codes(report: &LintReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    fn lint_src(src: &str, ni: u8, no: u8) -> LintReport {
        lint_behavior(src, ni, no, &LintConfig::default())
    }

    #[test]
    fn clean_programs_are_clean() {
        assert!(lint_src("on input { out0 = in0 && in1; }", 2, 1).is_clean());
        let toggle = "state q = false; state prev = false;\n\
                      on input { if (in0 && !prev) { q = !q; } prev = in0; out0 = q; }";
        assert!(
            lint_src(toggle, 1, 1).is_clean(),
            "{}",
            lint_src(toggle, 1, 1)
        );
    }

    #[test]
    fn e100_parse_failure() {
        let report = lint_src("on input { out0 = ; }", 1, 1);
        assert_eq!(codes(&report), ["E100"]);
        assert!(report.diagnostics[0].location.starts_with("line "));
        // The position is threaded as structured line/col too.
        assert!(report.diagnostics[0].line.is_some());
        assert!(report.diagnostics[0].col.is_some());
        let report = lint_src("on input {", 1, 1);
        assert_eq!(codes(&report), ["E100"]);
        assert_eq!(report.diagnostics[0].location, "end of input");
        assert_eq!(report.diagnostics[0].line, None);
    }

    #[test]
    fn check_errors_become_diagnostics() {
        // One run, many errors: duplicate handler, assign-to-input,
        // out-of-range output, undefined read, tick reading input.
        let report = lint_src(
            "on tick { out0 = in0; } on input { in0 = true; out3 = ghost; } on input { }",
            1,
            1,
        );
        let cs = codes(&report);
        for code in ["E101", "E105", "E106", "E107", "E108"] {
            assert!(cs.contains(&code), "{cs:?} missing {code}");
        }
        assert!(report.errors() >= 5);
        // Checker errors now carry positions pointing at the offending
        // statement or declaration.
        for d in &report.diagnostics {
            if d.code == "E106" {
                assert!(d.line.is_some(), "{d}");
            }
        }
    }

    #[test]
    fn e102_e103_e104_state_and_range() {
        let report = lint_src(
            "state a = b + 1; state a = 2; on input { out0 = in5; }",
            1,
            1,
        );
        let cs = codes(&report);
        for code in ["E102", "E103", "E104"] {
            assert!(cs.contains(&code), "{cs:?} missing {code}");
        }
        // Locations anchor to the offending item.
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "E102" && d.location == "state `a`"));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "E104" && d.location == "input `in5`"));
        // The duplicate-state position points at the SECOND declaration.
        let dup = report
            .diagnostics
            .iter()
            .find(|d| d.code == "E103")
            .unwrap();
        assert_eq!(dup.col, Some(18));
    }

    #[test]
    fn w120_unused_state() {
        let report = lint_src("state junk = 0; on input { out0 = in0; }", 1, 1);
        assert_eq!(codes(&report), ["W120"]);
        assert_eq!(report.diagnostics[0].location, "state `junk`");
        assert_eq!(report.diagnostics[0].severity, Severity::Warning);
        // The fix deletes the declaration.
        let fix = report.diagnostics[0].fix.as_ref().unwrap();
        assert_eq!(fix.applicability, Applicability::MachineApplicable);
        assert_eq!((fix.edits[0].start, fix.edits[0].end), (0, 15));
    }

    #[test]
    fn w120_fix_removes_writes_too() {
        let src = "state junk = 0; on input { junk = in0; out0 = in0; }";
        let report = lint_src(src, 1, 1);
        assert_eq!(codes(&report), ["W120"]);
        let fixed = crate::apply_machine_fixes(src, &report).unwrap();
        assert!(!fixed.contains("junk"), "{fixed}");
        assert!(lint_src(&fixed, 1, 1).is_clean(), "{fixed}");
    }

    #[test]
    fn w121_unassigned_state_is_constant() {
        let report = lint_src("state k = 5; on input { out0 = in0 > k; }", 1, 1);
        assert_eq!(codes(&report), ["W121"]);
        assert!(report.diagnostics[0].message.contains("always holds 5"));
        // Read by a later initializer but never in handlers: still W121,
        // not W120. The reassignment `b = b` keeps `b` at its initial 2,
        // so the dataflow layer adds W212 — and out0 is then provably
        // constant true (W210).
        let report = lint_src(
            "state a = 1; state b = a + 1; on input { out0 = b > 0; b = b; }",
            0,
            1,
        );
        assert_eq!(codes(&report), ["W121", "W210", "W212"]);
        assert_eq!(report.diagnostics[0].location, "state `a`");
        assert!(report.diagnostics[2].message.contains("always holds 2"));
    }

    #[test]
    fn w122_unused_local() {
        let report = lint_src("on input { let tmp = in0; out0 = in0; }", 1, 1);
        assert_eq!(codes(&report), ["W122"]);
        assert!(report.diagnostics[0].message.contains("`tmp`"));
        assert!(lint_src("on input { let tmp = in0; out0 = tmp; }", 1, 1).is_clean());
        // The fix deletes the binding and the result re-lints clean.
        let src = "on input { let tmp = in0; out0 = in0; }";
        let fixed = crate::apply_machine_fixes(src, &lint_src(src, 1, 1)).unwrap();
        assert_eq!(fixed, "on input {  out0 = in0; }");
        assert!(lint_src(&fixed, 1, 1).is_clean());
    }

    #[test]
    fn w123_constant_condition() {
        let report = lint_src(
            "on input { out0 = in0; if (1 < 2) { out0 = false; } }",
            1,
            1,
        );
        // The always-taken branch overwrites out0 with false on every
        // path, so the constant-signal rule fires alongside W123.
        assert_eq!(codes(&report), ["W123", "W210"]);
        assert!(report.diagnostics[0].message.contains("`1 < 2`"));
        // Folding the decided branch leaves the body inline.
        let src = "on input { out0 = in0; if (1 < 2) { out0 = false; } }";
        let fixed = crate::apply_machine_fixes(src, &lint_src(src, 1, 1)).unwrap();
        assert_eq!(fixed, "on input { out0 = in0; out0 = false; }");
        // Nested constant conditions are found too.
        let report = lint_src(
            "on input { out0 = in0; if (in0) { if (true) { out0 = false; } } }",
            1,
            1,
        );
        assert_eq!(codes(&report), ["W123"]);
    }

    #[test]
    fn w124_conflicting_send_same_level_only() {
        let report = lint_src("on input { out0 = in0; out0 = !in0; }", 1, 1);
        assert_eq!(codes(&report), ["W124"]);
        assert!(report.diagnostics[0].message.contains("`out0`"));
        // Default-then-override across nesting levels is idiomatic.
        assert!(lint_src("on input { out0 = false; if (in0) { out0 = true; } }", 1, 1).is_clean());
        // Conflicts inside a branch body are caught.
        let report = lint_src(
            "on input { out0 = in0; if (in0) { out1 = true; out1 = false; } else { out1 = in0; } }",
            1,
            2,
        );
        assert_eq!(codes(&report), ["W124"]);
    }

    #[test]
    fn w125_w126_untouched_ports() {
        let report = lint_src("on input { out0 = in0; }", 2, 2);
        assert_eq!(codes(&report), ["W125", "W126"]);
        assert_eq!(report.diagnostics[0].location, "output `out1`");
        assert_eq!(report.diagnostics[1].location, "input `in1`");
    }

    #[test]
    fn w211_value_decided_branch() {
        // `in0 && false` is not syntactically constant (it reads a
        // variable), but the value analysis decides it: the then branch
        // can never run.
        let src = "on input { out0 = in0; if (in0 && false) { out0 = true; } }";
        let report = lint_src(src, 1, 1);
        assert_eq!(codes(&report), ["W211"]);
        assert!(report.diagnostics[0].message.contains("always false"));
        let fixed = crate::apply_machine_fixes(src, &report).unwrap();
        assert_eq!(fixed, "on input { out0 = in0;  }");
        assert!(lint_src(&fixed, 1, 1).is_clean());
    }

    #[test]
    fn w213_output_that_can_never_fire() {
        let report = lint_src("on input { if (in0 && false) { out0 = true; } }", 1, 1);
        let cs = codes(&report);
        assert!(cs.contains(&"W213"), "{cs:?}");
    }

    #[test]
    fn diagnose_check_covers_every_variant() {
        let errors = [
            CheckError::DuplicateHandler {
                kind: HandlerKind::Tick,
            },
            CheckError::NonConstantStateInit {
                name: "a".into(),
                reference: "b".into(),
            },
            CheckError::DuplicateState { name: "a".into() },
            CheckError::InputOutOfRange { port: 9, arity: 2 },
            CheckError::OutputOutOfRange { port: 9, arity: 2 },
            CheckError::AssignToInput { port: 0 },
            CheckError::PossiblyUndefined { name: "x".into() },
            CheckError::InputReadInTick { port: 0 },
        ];
        let diags = diagnose_check(&errors);
        let expect = [
            "E101", "E102", "E103", "E104", "E105", "E106", "E107", "E108",
        ];
        for (d, (e, code)) in diags.iter().zip(errors.iter().zip(expect)) {
            assert_eq!(d.code, code);
            assert_eq!(d.severity, Severity::Error);
            assert_eq!(d.message, e.to_string());
        }
    }

    #[test]
    fn multi_defect_program_reports_everything_in_one_run() {
        let src = "state junk = 0;\n\
                   on input {\n\
                       let dead = in0;\n\
                       out0 = in0;\n\
                       out0 = !in0;\n\
                       if (false) { out1 = true; } else { out1 = true; }\n\
                   }";
        let report = lint_src(src, 1, 2);
        // Both arms of the constant condition send true, so out1 is a
        // provably constant signal on top of the original four findings.
        assert_eq!(codes(&report), ["W120", "W122", "W123", "W124", "W210"]);
    }
}
