//! Structured, machine-applicable fixes attached to diagnostics.
//!
//! A [`Fix`] is a list of byte-range [`TextEdit`]s against the *original*
//! file text plus an [`Applicability`] level, following the convention
//! established by rustc/clippy: only [`Applicability::MachineApplicable`]
//! fixes are applied by `lint --fix`; [`Applicability::MaybeIncorrect`]
//! ones are advisory (shown, serialized, never auto-applied).
//!
//! [`apply_machine_fixes`] turns one lint report into at most one rewrite
//! of the text. Overlapping edits are resolved conservatively (first in
//! byte order wins) and application is a single descending-order pass, so
//! the result is deterministic regardless of diagnostic order. Callers
//! that want the *fixpoint* — apply, re-lint, repeat until no
//! machine-applicable fixes remain — use [`fix_to_fixpoint`] with a
//! re-lint closure; cascades (removing a dead branch exposes a
//! now-unused state) resolve in a handful of rounds because every round
//! strictly rewrites the text.

use crate::LintReport;
use serde::{Deserialize, Serialize};

/// How confident the linter is that applying the fix preserves meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Applicability {
    /// Safe to apply without review; `lint --fix` applies these.
    #[serde(rename = "machine-applicable")]
    MachineApplicable,
    /// The suggested edit is plausible but may change behavior; shown
    /// and serialized, never auto-applied.
    #[serde(rename = "maybe-incorrect")]
    MaybeIncorrect,
}

/// One byte-range replacement against the original file text.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TextEdit {
    /// Byte offset of the first replaced byte.
    pub start: usize,
    /// Byte offset one past the last replaced byte (`start..end`).
    pub end: usize,
    /// Replacement text (empty = deletion).
    pub replacement: String,
}

/// A structured fix: edits plus the confidence they carry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fix {
    /// Byte edits against the original text, in any order.
    pub edits: Vec<TextEdit>,
    /// Whether `--fix` may apply this automatically.
    pub applicability: Applicability,
}

impl Fix {
    /// A machine-applicable deletion of `start..end`.
    #[must_use]
    pub fn delete(start: usize, end: usize) -> Self {
        Self {
            edits: vec![TextEdit {
                start,
                end,
                replacement: String::new(),
            }],
            applicability: Applicability::MachineApplicable,
        }
    }

    /// A machine-applicable replacement of `start..end` with `text`.
    #[must_use]
    pub fn replace(start: usize, end: usize, text: impl Into<String>) -> Self {
        Self {
            edits: vec![TextEdit {
                start,
                end,
                replacement: text.into(),
            }],
            applicability: Applicability::MachineApplicable,
        }
    }

    /// Downgrades the fix to advisory.
    #[must_use]
    pub fn maybe_incorrect(mut self) -> Self {
        self.applicability = Applicability::MaybeIncorrect;
        self
    }
}

/// Applies every machine-applicable fix in `report` to `text`.
///
/// Returns `None` when there is nothing to apply (no machine-applicable
/// edits, or all of them were dropped as out-of-bounds). Identical edits
/// are deduplicated (two diagnostics may legitimately suggest deleting
/// the same wire line); after sorting by byte position, an edit
/// overlapping an earlier-starting one is dropped — the fixpoint loop
/// picks it up on the next round if it still applies.
#[must_use]
pub fn apply_machine_fixes(text: &str, report: &LintReport) -> Option<String> {
    let mut edits: Vec<&TextEdit> = report
        .diagnostics
        .iter()
        .filter_map(|d| d.fix.as_ref())
        .filter(|f| f.applicability == Applicability::MachineApplicable)
        .flat_map(|f| f.edits.iter())
        .filter(|e| e.start <= e.end && e.end <= text.len())
        .collect();
    edits.sort();
    edits.dedup();

    let mut kept: Vec<&TextEdit> = Vec::with_capacity(edits.len());
    let mut last_end = 0usize;
    for e in edits {
        if e.start < last_end {
            continue; // overlaps the previous kept edit
        }
        last_end = e.end.max(e.start + 1); // zero-width edits still claim a byte boundary
        kept.push(e);
    }
    if kept.is_empty() {
        return None;
    }

    let mut out = text.to_string();
    for e in kept.iter().rev() {
        out.replace_range(e.start..e.end, &e.replacement);
    }
    Some(out)
}

/// Maximum apply-then-re-lint rounds before [`fix_to_fixpoint`] gives
/// up. Cascades are shallow in practice (each round exposes at most one
/// new layer of dead code); the cap only guards against a rule that
/// keeps suggesting edits which don't change the text.
pub const MAX_FIX_ROUNDS: usize = 32;

/// Repeatedly lints `text` with `lint` and applies machine-applicable
/// fixes until none remain (or [`MAX_FIX_ROUNDS`] is hit). Returns the
/// final text and the number of rounds that changed it; round count 0
/// means the input was already fix-free.
pub fn fix_to_fixpoint<F>(text: &str, mut lint: F) -> (String, usize)
where
    F: FnMut(&str) -> LintReport,
{
    let mut current = text.to_string();
    let mut rounds = 0usize;
    while rounds < MAX_FIX_ROUNDS {
        let report = lint(&current);
        match apply_machine_fixes(&current, &report) {
            Some(next) if next != current => {
                current = next;
                rounds += 1;
            }
            _ => break,
        }
    }
    (current, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rules, Diagnostic, LintReport};

    fn diag_with(fix: Fix) -> Diagnostic {
        Diagnostic::new(&rules::UNUSED_STATE, "state `x`", "test").with_fix(fix)
    }

    #[test]
    fn applies_in_descending_order_and_dedupes() {
        let text = "abcdef";
        let report = LintReport::new(vec![
            diag_with(Fix::delete(0, 1)),
            diag_with(Fix::delete(0, 1)), // duplicate: applied once
            diag_with(Fix::replace(3, 4, "XY")),
        ]);
        assert_eq!(apply_machine_fixes(text, &report).unwrap(), "bcXYef");
    }

    #[test]
    fn overlapping_edits_keep_the_first() {
        let text = "abcdef";
        let report = LintReport::new(vec![
            diag_with(Fix::delete(1, 4)),
            diag_with(Fix::replace(2, 5, "Z")), // overlaps 1..4: dropped
        ]);
        assert_eq!(apply_machine_fixes(text, &report).unwrap(), "aef");
    }

    #[test]
    fn advisory_and_out_of_bounds_edits_are_ignored() {
        let text = "abc";
        let report = LintReport::new(vec![
            diag_with(Fix::delete(0, 1).maybe_incorrect()),
            diag_with(Fix::delete(2, 99)),
        ]);
        assert_eq!(apply_machine_fixes(text, &report), None);
    }

    #[test]
    fn fixpoint_resolves_cascades() {
        // Toy cascade: each round deletes the first byte while the text
        // starts with 'x'.
        let (out, rounds) = fix_to_fixpoint("xxxab", |t| {
            if t.starts_with('x') {
                LintReport::new(vec![diag_with(Fix::delete(0, 1))])
            } else {
                LintReport::new(Vec::new())
            }
        });
        assert_eq!(out, "ab");
        assert_eq!(rounds, 3);
    }

    #[test]
    fn fixpoint_caps_nonterminating_suggesters() {
        // A pathological lint that suggests an edit which never changes
        // the text must not loop forever.
        let (out, rounds) = fix_to_fixpoint("ab", |_| {
            LintReport::new(vec![diag_with(Fix::replace(0, 1, "a"))])
        });
        assert_eq!(out, "ab");
        assert_eq!(rounds, 0);
    }
}
