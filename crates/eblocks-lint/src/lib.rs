//! Static analysis for eBlock designs and behavior programs.
//!
//! This crate is the synthesis flow's admission gate: a cheap, deterministic
//! pass that inspects a design (or raw netlist text) and a behavior program
//! (or raw DSL text) *before* any partitioning work is scheduled, and
//! reports every problem it finds in one run as structured [`Diagnostic`]s —
//! a stable rule code (`E001`, `W120`, …), a [`Severity`], a location, a
//! message, and an optional fix hint. The same reporting model carries
//! `eblocks-behavior`'s [`CheckError`]s (see [`diagnose_check`]), so the
//! checker and the linter speak one language.
//!
//! Determinism contract: for a given input and [`LintConfig`], the
//! diagnostics are byte-identical across runs, worker counts, and
//! platforms — rules run in a fixed order, blocks are visited in insertion
//! order, and the final report is sorted by (code, location, message).
//! Reports serialize through the vendored `serde` derives, so JSON output
//! is deterministic too.
//!
//! # Quickstart
//!
//! ```
//! use eblocks_lint::{lint_netlist, LintConfig, Severity};
//!
//! let report = lint_netlist(
//!     "eblocks-netlist v1\n\
//!      design demo\n\
//!      block btn sensor:button\n\
//!      block gate compute:logic2:AND\n\
//!      block led output:led\n\
//!      wire btn.0 -> gate.0\n\
//!      wire gate.0 -> led.0\n",
//!     &LintConfig::default(),
//! );
//! // gate.1 has no driver: one error, reported with a stable code.
//! assert_eq!(report.errors(), 1);
//! assert_eq!(report.diagnostics[0].code, "E001");
//! assert_eq!(report.diagnostics[0].severity, Severity::Error);
//! assert!(report.rejects(eblocks_lint::DenyLevel::Errors));
//! ```
//!
//! Behavior programs go through [`lint_program`] (parsed) or
//! [`lint_behavior`] (raw text); both fold in every
//! [`check`](eblocks_behavior::check()) error plus
//! the lint-only dataflow warnings (unused state, constant conditions,
//! conflicting sends, unread ports).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod dataflow;
pub mod design;
pub mod fix;

pub use behavior::{diagnose_check, lint_behavior, lint_program};
pub use design::{lint_design, lint_design_with_programs, lint_netlist};
pub use fix::{apply_machine_fixes, fix_to_fixpoint, Applicability, Fix, TextEdit};

use eblocks_behavior::CheckError;
use eblocks_core::ProgrammableSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but not fatal; rejected only under
    /// [`DenyLevel::Warnings`].
    #[serde(rename = "warning")]
    Warning,
    /// The input is broken; synthesis would fail or misbehave.
    #[serde(rename = "error")]
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Warning => "warning",
            Self::Error => "error",
        })
    }
}

/// Which severities cause a lint pass to reject its input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DenyLevel {
    /// Reject on errors only (the default); warnings are reported but
    /// admitted.
    #[default]
    #[serde(rename = "errors")]
    Errors,
    /// Reject on warnings too (`--deny warnings`).
    #[serde(rename = "warnings")]
    Warnings,
}

impl DenyLevel {
    /// Parses the CLI spelling (`errors` / `warnings`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "errors" => Some(Self::Errors),
            "warnings" => Some(Self::Warnings),
            _ => None,
        }
    }
}

impl fmt::Display for DenyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Errors => "errors",
            Self::Warnings => "warnings",
        })
    }
}

/// Configuration for a lint pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintConfig {
    /// Which severities reject the input (see [`LintReport::rejects`]).
    pub deny: DenyLevel,
    /// Fan-out budget: an output port driving more sinks than this trips
    /// [`rules::FANOUT_BUDGET`]. The eBlocks hardware fans out through
    /// splitter chains; 8 admits every shipped design while catching
    /// pathological broadcast hubs.
    pub max_fanout: usize,
    /// Pin budget programmable blocks are checked against
    /// ([`rules::PIN_BUDGET`]) — normally the partitioner's target spec.
    pub budget: ProgrammableSpec,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            deny: DenyLevel::Errors,
            max_fanout: 8,
            budget: ProgrammableSpec::default(),
        }
    }
}

impl LintConfig {
    /// A config with the given deny level, defaults otherwise.
    pub fn denying(deny: DenyLevel) -> Self {
        Self {
            deny,
            ..Self::default()
        }
    }
}

/// One finding: a stable rule code, severity, location, message, and an
/// optional fix hint.
///
/// Serializes with the `hint` field omitted when absent, so clean shapes
/// stay minimal and deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule code (`E001`, `W120`, …); see [`rules::ALL`].
    pub code: String,
    /// How serious the finding is.
    pub severity: Severity,
    /// Where the problem is, as a stable human-readable anchor
    /// (`` block `gate` ``, `` port `gate.1` ``, `line 3`, `` state `q` ``).
    pub location: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it, when the rule has a standard remedy.
    pub hint: Option<String>,
    /// 1-based source line of the finding, when the rule can point at
    /// one (omitted from JSON otherwise).
    pub line: Option<usize>,
    /// 1-based source column of the finding (omitted from JSON when
    /// absent; only ever present together with `line`).
    pub col: Option<usize>,
    /// A structured fix, when the rule can compute one (omitted from
    /// JSON otherwise). Machine-applicable fixes are applied by
    /// `lint --fix`; see [`fix::Applicability`].
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// Builds a diagnostic from a [`rules::Rule`] and its specifics.
    pub fn new(
        rule: &'static rules::Rule,
        location: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code: rule.code.to_string(),
            severity: rule.severity,
            location: location.into(),
            message: message.into(),
            hint: None,
            line: None,
            col: None,
            fix: None,
        }
    }

    /// Attaches a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// Attaches a 1-based source position (`file:line:col` rendering).
    pub fn at(mut self, line: usize, col: usize) -> Self {
        self.line = Some(line);
        self.col = Some(col);
        self
    }

    /// Attaches a structured fix.
    pub fn with_fix(mut self, fix: Fix) -> Self {
        self.fix = Some(fix);
        self
    }

    /// True when this diagnostic carries a machine-applicable fix.
    pub fn has_machine_fix(&self) -> bool {
        self.fix
            .as_ref()
            .is_some_and(|f| f.applicability == Applicability::MachineApplicable)
    }

    /// The stable sort key reports are ordered by.
    fn sort_key(&self) -> (&str, &str, &str) {
        (&self.code, &self.location, &self.message)
    }
}

impl fmt::Display for Diagnostic {
    /// `error[E001] at port `gate.1`: input port has no driver`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

/// Error/warning totals of one lint pass — the compact summary the farm
/// attaches to job reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintOutcome {
    /// Diagnostics with [`Severity::Error`].
    pub errors: usize,
    /// Diagnostics with [`Severity::Warning`].
    pub warnings: usize,
    /// Diagnostics carrying a machine-applicable fix; `Some` only when
    /// nonzero, so serialized shapes without fixes are unchanged.
    pub fixes: Option<usize>,
}

impl LintOutcome {
    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.errors == 0 && self.warnings == 0
    }

    /// Machine-applicable fix count (0 when none).
    pub fn fix_count(&self) -> usize {
        self.fixes.unwrap_or(0)
    }
}

impl fmt::Display for LintOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error(s), {} warning(s)", self.errors, self.warnings)
    }
}

/// Everything one lint pass found, sorted by (code, location, message).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// The findings, in stable order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// A report over `diagnostics`, sorted into the stable order.
    pub fn new(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        Self { diagnostics }
    }

    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics.len() - self.errors()
    }

    /// True when nothing was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of diagnostics carrying a machine-applicable fix.
    pub fn machine_fixes(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.has_machine_fix())
            .count()
    }

    /// The error/warning/fix totals.
    pub fn outcome(&self) -> LintOutcome {
        let fixes = self.machine_fixes();
        LintOutcome {
            errors: self.errors(),
            warnings: self.warnings(),
            fixes: (fixes > 0).then_some(fixes),
        }
    }

    /// Whether this report rejects its input under `deny`: errors always
    /// do, warnings only under [`DenyLevel::Warnings`].
    pub fn rejects(&self, deny: DenyLevel) -> bool {
        self.errors() > 0 || (deny == DenyLevel::Warnings && self.warnings() > 0)
    }

    /// Folds another report's findings in, restoring the stable order.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
        self.diagnostics
            .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
            if let Some(hint) = &d.hint {
                writeln!(f, "  hint: {hint}")?;
            }
        }
        write!(f, "{}", self.outcome())
    }
}

/// One file's findings, as rendered by `eblocks-cli lint --json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileReport {
    /// The path as given on the command line.
    pub file: String,
    /// The findings, in stable order.
    pub diagnostics: Vec<Diagnostic>,
}

/// A whole lint run (one or many files), as rendered by
/// `eblocks-cli lint --json`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-file findings, in command-line order.
    pub files: Vec<FileReport>,
    /// Error-severity findings across all files.
    pub errors: usize,
    /// Warning-severity findings across all files.
    pub warnings: usize,
    /// Machine-applicable fixes across all files; `Some` only when
    /// nonzero, so fix-free runs serialize exactly as before.
    pub fixes: Option<usize>,
}

impl RunReport {
    /// Appends one file's report, updating the totals.
    pub fn push(&mut self, file: impl Into<String>, report: &LintReport) {
        self.errors += report.errors();
        self.warnings += report.warnings();
        let fixes = report.machine_fixes();
        if fixes > 0 {
            self.fixes = Some(self.fixes.unwrap_or(0) + fixes);
        }
        self.files.push(FileReport {
            file: file.into(),
            diagnostics: report.diagnostics.clone(),
        });
    }

    /// The error/warning/fix totals.
    pub fn outcome(&self) -> LintOutcome {
        LintOutcome {
            errors: self.errors,
            warnings: self.warnings,
            fixes: self.fixes,
        }
    }

    /// Whether this run rejects under `deny` (see [`LintReport::rejects`]).
    pub fn rejects(&self, deny: DenyLevel) -> bool {
        self.errors > 0 || (deny == DenyLevel::Warnings && self.warnings > 0)
    }
}

/// The rule registry: every rule's stable code, severity, and summary.
pub mod rules {
    use super::Severity;

    /// One registered rule.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Rule {
        /// Stable code (`E001`…); never renumbered once shipped.
        pub code: &'static str,
        /// The severity every diagnostic of this rule carries.
        pub severity: Severity,
        /// Short kebab-case name.
        pub name: &'static str,
        /// One-line description (the README rule table).
        pub summary: &'static str,
    }

    macro_rules! rule {
        ($ident:ident, $code:literal, $sev:ident, $name:literal, $summary:literal) => {
            #[doc = $summary]
            pub const $ident: Rule = Rule {
                code: $code,
                severity: Severity::$sev,
                name: $name,
                summary: $summary,
            };
        };
    }

    // Design / netlist layer.
    rule!(
        UNCONNECTED_INPUT,
        "E001",
        Error,
        "unconnected-input",
        "an input port has no driver"
    );
    rule!(
        DANGLING_OUTPUT,
        "E002",
        Error,
        "dangling-output",
        "an output port drives nothing (sensors and programmable blocks exempt)"
    );
    rule!(
        COMBINATIONAL_CYCLE,
        "E003",
        Error,
        "combinational-cycle",
        "the netlist closes a wire cycle; eBlock networks are acyclic"
    );
    rule!(
        DUPLICATE_NAME,
        "E004",
        Error,
        "duplicate-name",
        "two blocks share one name"
    );
    rule!(
        NETLIST_ERROR,
        "E005",
        Error,
        "netlist-error",
        "the netlist text cannot be parsed into a design"
    );
    rule!(
        DEAD_BLOCK,
        "W006",
        Warning,
        "dead-block",
        "no sensor can influence this block"
    );
    rule!(
        UNUSED_RESULT,
        "W007",
        Warning,
        "unused-result",
        "this block's signal never reaches an output actuator"
    );
    rule!(
        FANOUT_BUDGET,
        "W008",
        Warning,
        "fanout-budget",
        "an output port drives more sinks than the fan-out budget"
    );
    rule!(
        PIN_BUDGET,
        "W009",
        Warning,
        "pin-budget",
        "a programmable block's pins exceed the partitioner's budget"
    );

    // Behavior layer.
    rule!(
        BEHAVIOR_PARSE,
        "E100",
        Error,
        "behavior-parse",
        "the behavior source cannot be parsed"
    );
    rule!(
        DUPLICATE_HANDLER,
        "E101",
        Error,
        "duplicate-handler",
        "two handlers respond to the same event"
    );
    rule!(
        NON_CONSTANT_STATE_INIT,
        "E102",
        Error,
        "non-constant-state-init",
        "a state initializer references something that is not a prior state"
    );
    rule!(
        DUPLICATE_STATE,
        "E103",
        Error,
        "duplicate-state",
        "a state variable is declared twice"
    );
    rule!(
        INPUT_OUT_OF_RANGE,
        "E104",
        Error,
        "input-out-of-range",
        "an input-port reference exceeds the block's arity"
    );
    rule!(
        OUTPUT_OUT_OF_RANGE,
        "E105",
        Error,
        "output-out-of-range",
        "an output-port reference exceeds the block's arity"
    );
    rule!(
        ASSIGN_TO_INPUT,
        "E106",
        Error,
        "assign-to-input",
        "the program assigns to an input port"
    );
    rule!(
        POSSIBLY_UNDEFINED,
        "E107",
        Error,
        "possibly-undefined",
        "a variable may be read before assignment"
    );
    rule!(
        INPUT_READ_IN_TICK,
        "E108",
        Error,
        "input-read-in-tick",
        "the `on tick` handler reads an input port"
    );
    rule!(
        BEHAVIOR_CHECK,
        "E199",
        Error,
        "behavior-check",
        "a semantic check failed (future checker rule)"
    );
    rule!(
        UNUSED_STATE,
        "W120",
        Warning,
        "unused-state",
        "a state variable is never read"
    );
    rule!(
        UNASSIGNED_STATE,
        "W121",
        Warning,
        "unassigned-state",
        "a state variable is never reassigned; it is a foldable constant"
    );
    rule!(
        UNUSED_LOCAL,
        "W122",
        Warning,
        "unused-local",
        "a let binding is never read"
    );
    rule!(
        CONSTANT_CONDITION,
        "W123",
        Warning,
        "constant-condition",
        "an if condition reads no variables; one branch is dead"
    );
    rule!(
        CONFLICTING_SEND,
        "W124",
        Warning,
        "conflicting-send",
        "one activation sends twice to the same output port; the second send wins"
    );
    rule!(
        UNWRITTEN_OUTPUT,
        "W125",
        Warning,
        "unwritten-output",
        "an output port within the block's arity is never written"
    );
    rule!(
        UNREAD_INPUT,
        "W126",
        Warning,
        "unread-input",
        "an input port within the block's arity is never read"
    );

    // Dataflow layer: abstract interpretation over value sets
    // (see [`crate::dataflow`]).
    rule!(
        PROTOCOL_MISMATCH,
        "E201",
        Error,
        "protocol-mismatch",
        "every value the sender can emit is one the receiver never matches"
    );
    rule!(
        CONSTANT_SIGNAL,
        "W210",
        Warning,
        "constant-signal",
        "dataflow proves this output port only ever carries one value"
    );
    rule!(
        VALUE_DEAD_BRANCH,
        "W211",
        Warning,
        "value-dead-branch",
        "dataflow decides this condition; the branch it guards never runs"
    );
    rule!(
        CONSTANT_STATE,
        "W212",
        Warning,
        "constant-state",
        "a reassigned state variable provably never leaves its initial value"
    );
    rule!(
        EDGE_NEVER_FIRES,
        "W213",
        Warning,
        "edge-never-fires",
        "an output port is written in the source but no feasible path reaches a write"
    );

    /// Every registered rule, in code order.
    pub const ALL: &[Rule] = &[
        UNCONNECTED_INPUT,
        DANGLING_OUTPUT,
        COMBINATIONAL_CYCLE,
        DUPLICATE_NAME,
        NETLIST_ERROR,
        DEAD_BLOCK,
        UNUSED_RESULT,
        FANOUT_BUDGET,
        PIN_BUDGET,
        BEHAVIOR_PARSE,
        DUPLICATE_HANDLER,
        NON_CONSTANT_STATE_INIT,
        DUPLICATE_STATE,
        INPUT_OUT_OF_RANGE,
        OUTPUT_OUT_OF_RANGE,
        ASSIGN_TO_INPUT,
        POSSIBLY_UNDEFINED,
        INPUT_READ_IN_TICK,
        BEHAVIOR_CHECK,
        UNUSED_STATE,
        UNASSIGNED_STATE,
        UNUSED_LOCAL,
        CONSTANT_CONDITION,
        CONFLICTING_SEND,
        UNWRITTEN_OUTPUT,
        UNREAD_INPUT,
        PROTOCOL_MISMATCH,
        CONSTANT_SIGNAL,
        VALUE_DEAD_BRANCH,
        CONSTANT_STATE,
        EDGE_NEVER_FIRES,
    ];

    /// Looks a rule up by code.
    pub fn by_code(code: &str) -> Option<&'static Rule> {
        ALL.iter().find(|r| r.code == code)
    }
}

/// Converts checker errors into the shared [`Diagnostic`] model — the one
/// reporting path `check` and `lint` both use.
pub fn diagnose_check_error(error: &CheckError) -> Diagnostic {
    behavior::diagnose_one(error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_codes_are_unique_and_match_severity() {
        let mut seen = std::collections::BTreeSet::new();
        for rule in rules::ALL {
            assert!(seen.insert(rule.code), "duplicate code {}", rule.code);
            let expected = if rule.code.starts_with('E') {
                Severity::Error
            } else {
                Severity::Warning
            };
            assert_eq!(rule.severity, expected, "{}", rule.code);
            assert_eq!(rules::by_code(rule.code), Some(rule));
        }
        assert_eq!(rules::by_code("E999"), None);
    }

    #[test]
    fn report_sorts_and_counts() {
        let report = LintReport::new(vec![
            Diagnostic::new(&rules::DEAD_BLOCK, "block `b`", "dead"),
            Diagnostic::new(&rules::UNCONNECTED_INPUT, "port `a.0`", "no driver"),
            Diagnostic::new(&rules::DEAD_BLOCK, "block `a`", "dead"),
        ]);
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, ["E001", "W006", "W006"]);
        assert_eq!(report.diagnostics[1].location, "block `a`");
        assert_eq!(report.errors(), 1);
        assert_eq!(report.warnings(), 2);
        assert!(!report.is_clean());
        assert!(report.rejects(DenyLevel::Errors));
        assert!(report.rejects(DenyLevel::Warnings));
    }

    #[test]
    fn deny_level_gates_warnings() {
        let warn_only = LintReport::new(vec![Diagnostic::new(
            &rules::DEAD_BLOCK,
            "block `b`",
            "dead",
        )]);
        assert!(!warn_only.rejects(DenyLevel::Errors));
        assert!(warn_only.rejects(DenyLevel::Warnings));
        assert!(!LintReport::default().rejects(DenyLevel::Warnings));
        assert_eq!(DenyLevel::parse("warnings"), Some(DenyLevel::Warnings));
        assert_eq!(DenyLevel::parse("errors"), Some(DenyLevel::Errors));
        assert_eq!(DenyLevel::parse("nope"), None);
    }

    #[test]
    fn diagnostic_display_and_json_shape() {
        let d = Diagnostic::new(
            &rules::UNCONNECTED_INPUT,
            "port `gate.1`",
            "input port has no driver",
        )
        .with_hint("wire a sensor or compute output into gate.1");
        assert_eq!(
            d.to_string(),
            "error[E001] at port `gate.1`: input port has no driver"
        );
        let json = serde::json::to_string(&d);
        assert!(json.contains(r#""code":"E001""#), "{json}");
        assert!(json.contains(r#""severity":"error""#), "{json}");
        assert!(json.contains(r#""hint":"wire a sensor"#), "{json}");

        // Hint-less diagnostics omit the field entirely (golden stability).
        let bare = Diagnostic::new(&rules::DEAD_BLOCK, "block `b`", "dead");
        let json = serde::json::to_string(&bare);
        assert!(!json.contains("hint"), "{json}");

        // Round trip through the vendored serde.
        let back: Diagnostic = serde::json::from_str(&serde::json::to_string(&d)).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn run_report_accumulates() {
        let mut run = RunReport::default();
        run.push(
            "a.netlist",
            &LintReport::new(vec![Diagnostic::new(
                &rules::UNCONNECTED_INPUT,
                "port `x.0`",
                "no driver",
            )]),
        );
        run.push("b.netlist", &LintReport::default());
        assert_eq!(run.files.len(), 2);
        assert_eq!(run.errors, 1);
        assert_eq!(run.warnings, 0);
        assert_eq!(run.outcome().to_string(), "1 error(s), 0 warning(s)");
        assert!(run.rejects(DenyLevel::Errors));
        let json = serde::json::to_string(&run);
        assert!(json.contains(r#""file":"a.netlist""#), "{json}");
        let back: RunReport = serde::json::from_str(&json).unwrap();
        assert_eq!(back, run);
    }

    #[test]
    fn merge_restores_stable_order() {
        let mut a = LintReport::new(vec![Diagnostic::new(
            &rules::DEAD_BLOCK,
            "block `z`",
            "dead",
        )]);
        let b = LintReport::new(vec![Diagnostic::new(
            &rules::UNCONNECTED_INPUT,
            "port `a.0`",
            "no driver",
        )]);
        a.merge(b);
        assert_eq!(a.diagnostics[0].code, "E001");
        assert_eq!(
            a.outcome(),
            LintOutcome {
                errors: 1,
                warnings: 1,
                fixes: None
            }
        );
    }
}
