//! Network rewriting: replace partitions with programmable blocks.

use crate::error::SynthError;
use eblocks_codegen::MergedProgram;
use eblocks_core::{BlockId, Design, ProgrammableSpec};
use std::collections::{HashMap, HashSet};

/// Builds the synthesized network: every partition's members are removed,
/// one programmable block per partition is added (named `prog0`, `prog1`,
/// …), and wires crossing a partition boundary are rerouted to the pin
/// assignment recorded in each [`MergedProgram`].
///
/// Returns the new design plus the id of each programmable block (indexed
/// like `partitions`).
///
/// # Errors
///
/// Propagates [`eblocks_core::DesignError`]s as [`SynthError::InvalidDesign`]
/// (only reachable if the partitioning or pin maps are inconsistent).
pub fn rewrite_network(
    design: &Design,
    partitions: &[Vec<BlockId>],
    merged: &[MergedProgram],
    spec: ProgrammableSpec,
) -> Result<(Design, Vec<BlockId>), SynthError> {
    assert_eq!(partitions.len(), merged.len(), "one program per partition");

    let mut covered: HashMap<BlockId, usize> = HashMap::new();
    for (i, partition) in partitions.iter().enumerate() {
        for &m in partition {
            covered.insert(m, i);
        }
    }

    let mut new_design = Design::new(format!("{}-synth", design.name()));

    // Copy every surviving block under its original name.
    let mut id_map: HashMap<BlockId, BlockId> = HashMap::new();
    for id in design.blocks() {
        if covered.contains_key(&id) {
            continue;
        }
        let block = design.block(id).expect("iterated block");
        let new_id = new_design.try_add_block(block.name(), block.kind())?;
        id_map.insert(id, new_id);
    }

    // One programmable block per partition.
    let mut prog_ids: Vec<BlockId> = Vec::new();
    for i in 0..partitions.len() {
        let id = new_design.try_add_block(format!("prog{i}"), spec)?;
        prog_ids.push(id);
    }

    // Resolve an original source (block, port) to the new network.
    let resolve_src = |b: BlockId, port: u8| -> (BlockId, u8) {
        match covered.get(&b) {
            Some(&i) => {
                let pin = merged[i]
                    .output_map
                    .iter()
                    .position(|&(mb, mp)| (mb, mp) == (b, port))
                    .expect("crossing source port must be in the output map");
                (prog_ids[i], pin as u8)
            }
            None => (id_map[&b], port),
        }
    };

    // Wires: internal-to-partition wires vanish; crossing wires reroute.
    // Several original wires can collapse onto one new wire (a signal
    // entering a partition occupies one pin regardless of how many members
    // consumed it), so dedup.
    let mut made: HashSet<((BlockId, u8), (BlockId, u8))> = HashSet::new();
    for w in design.wires() {
        let src_part = covered.get(&w.from).copied();
        let dst_part = covered.get(&w.to).copied();
        if src_part.is_some() && src_part == dst_part {
            continue; // internalized
        }
        let from = resolve_src(w.from, w.from_port);
        let to = match dst_part {
            Some(i) => {
                let pin = merged[i]
                    .input_map
                    .iter()
                    .position(|&(mb, mp)| (mb, mp) == (w.from, w.from_port))
                    .expect("crossing input signal must be in the input map");
                (prog_ids[i], pin as u8)
            }
            None => (id_map[&w.to], w.to_port),
        };
        if made.insert((from, to)) {
            new_design.connect(from, to)?;
        }
    }

    Ok((new_design, prog_ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_codegen::merge_partition;
    use eblocks_core::{ComputeKind, OutputKind, SensorKind};

    #[test]
    fn garage_rewrite_produces_programmable_network() {
        let mut d = Design::new("garage");
        let door = d.add_block("door", SensorKind::ContactSwitch);
        let light = d.add_block("light", SensorKind::Light);
        let inv = d.add_block("inv", ComputeKind::Not);
        let both = d.add_block("both", ComputeKind::and2());
        let led = d.add_block("led", OutputKind::Led);
        d.connect((door, 0), (both, 0)).unwrap();
        d.connect((light, 0), (inv, 0)).unwrap();
        d.connect((inv, 0), (both, 1)).unwrap();
        d.connect((both, 0), (led, 0)).unwrap();

        let spec = ProgrammableSpec::default();
        let partition = vec![inv, both];
        let merged = merge_partition(&d, &partition, spec).unwrap();
        let (synth, progs) =
            rewrite_network(&d, &[partition], std::slice::from_ref(&merged), spec).unwrap();

        synth.validate().unwrap();
        assert_eq!(progs.len(), 1);
        let census = synth.census();
        assert_eq!(census.inner, 0);
        assert_eq!(census.programmable, 1);
        assert_eq!(census.sensors, 2);
        assert_eq!(census.outputs, 1);
        // door and light feed distinct pins; the LED hangs off a prog pin.
        let p = progs[0];
        assert_eq!(synth.indegree(p), 2);
        assert_eq!(synth.outdegree(p), 1);
        assert!(synth.block_by_name("inv").is_none(), "members removed");
        assert!(synth.block_by_name("door").is_some(), "sensors survive");
    }

    #[test]
    fn shared_input_signal_collapses_to_one_wire() {
        // One sensor feeding two members through the same port: the
        // rewritten network must wire the sensor to the prog block once.
        let mut d = Design::new("share");
        let s = d.add_block("s", SensorKind::Button);
        let a = d.add_block("a", ComputeKind::Not);
        let b = d.add_block("b", ComputeKind::Toggle);
        let g = d.add_block("g", ComputeKind::and2());
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s, 0), (a, 0)).unwrap();
        d.connect((s, 0), (b, 0)).unwrap();
        d.connect((a, 0), (g, 0)).unwrap();
        d.connect((b, 0), (g, 1)).unwrap();
        d.connect((g, 0), (o, 0)).unwrap();

        let spec = ProgrammableSpec::default();
        let partition = vec![a, b, g];
        let merged = merge_partition(&d, &partition, spec).unwrap();
        assert_eq!(merged.input_map.len(), 1, "one shared signal");
        let (synth, progs) =
            rewrite_network(&d, &[partition], std::slice::from_ref(&merged), spec).unwrap();
        synth.validate().unwrap();
        assert_eq!(synth.indegree(progs[0]), 1);
    }

    #[test]
    fn uncovered_blocks_and_cross_wires_survive() {
        // chain: s -> x -> y -> o with only {x} ... single-member partitions
        // are not allowed, so partition {x, y} minus nothing; instead leave
        // z uncovered downstream: s -> x -> y -> z -> o, partition {x, y}.
        let mut d = Design::new("mix");
        let s = d.add_block("s", SensorKind::Button);
        let x = d.add_block("x", ComputeKind::Not);
        let y = d.add_block("y", ComputeKind::Toggle);
        let z = d.add_block("z", ComputeKind::Not);
        let o = d.add_block("o", OutputKind::Led);
        d.connect((s, 0), (x, 0)).unwrap();
        d.connect((x, 0), (y, 0)).unwrap();
        d.connect((y, 0), (z, 0)).unwrap();
        d.connect((z, 0), (o, 0)).unwrap();

        let spec = ProgrammableSpec::default();
        let partition = vec![x, y];
        let merged = merge_partition(&d, &partition, spec).unwrap();
        let (synth, progs) =
            rewrite_network(&d, &[partition], std::slice::from_ref(&merged), spec).unwrap();
        synth.validate().unwrap();
        let z_new = synth.block_by_name("z").unwrap();
        assert_eq!(synth.driver_of(z_new, 0).unwrap().from, progs[0]);
        assert_eq!(synth.census().inner, 1, "z stays pre-defined");
    }
}
