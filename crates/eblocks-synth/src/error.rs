//! Synthesis pipeline errors.

use crate::observe::{Stage, StageAbort};
use eblocks_codegen::CodegenError;
use eblocks_core::DesignError;
use eblocks_lint::LintReport;
use eblocks_partition::VerifyError;
use eblocks_sim::{EquivalenceReport, SimError};
use std::error::Error;
use std::fmt;

/// Errors raised by the synthesis pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthError {
    /// The lint stage rejected the design under the configured deny level
    /// (see [`eblocks_lint::LintConfig`]).
    LintRejected {
        /// Everything the linter found, in stable order.
        report: LintReport,
    },
    /// The input design failed validation.
    InvalidDesign(DesignError),
    /// The partitioner produced an inconsistent result (a pipeline bug).
    BadPartitioning(VerifyError),
    /// Code generation failed for a partition.
    Codegen {
        /// Index of the partition.
        partition: usize,
        /// The underlying error.
        error: CodegenError,
    },
    /// Simulation failed while verifying equivalence.
    Sim(SimError),
    /// Co-simulation found behavioral differences.
    VerificationFailed {
        /// The mismatching report.
        report: EquivalenceReport,
    },
    /// The attached observer refused to let a stage run (see
    /// [`Observer::before_stage`](crate::Observer::before_stage)) — a
    /// cooperative timeout or an injected fault.
    Aborted {
        /// The stage that was about to run.
        stage: Stage,
        /// Why the observer aborted it.
        abort: StageAbort,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::LintRejected { report } => {
                write!(f, "lint rejected the design: {}", report.outcome())?;
                if let Some(first) = report.diagnostics.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            Self::InvalidDesign(e) => write!(f, "invalid input design: {e}"),
            Self::BadPartitioning(e) => write!(f, "partitioner produced an invalid result: {e}"),
            Self::Codegen { partition, error } => {
                write!(
                    f,
                    "code generation failed for partition {partition}: {error}"
                )
            }
            Self::Sim(e) => write!(f, "verification simulation failed: {e}"),
            Self::VerificationFailed { report } => write!(
                f,
                "synthesized design diverges from the original at {} sample(s)",
                report.mismatches.len()
            ),
            Self::Aborted { stage, abort } => {
                write!(f, "stage {stage} aborted: {abort}")
            }
        }
    }
}

impl Error for SynthError {}

impl From<DesignError> for SynthError {
    fn from(e: DesignError) -> Self {
        Self::InvalidDesign(e)
    }
}
impl From<SimError> for SynthError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}
impl From<VerifyError> for SynthError {
    fn from(e: VerifyError) -> Self {
        Self::BadPartitioning(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = SynthError::Codegen {
            partition: 2,
            error: CodegenError::EmptyPartition,
        };
        assert!(e.to_string().contains("partition 2"));
    }
}
