//! Default verification stimulus.

use eblocks_core::Design;
use eblocks_sim::{Stimulus, Time};

/// Builds a stimulus that exercises every sensor of `design`: each sensor is
/// raised and lowered in turn with `spacing` ticks between edges, then all
/// sensors are raised together and released in reverse order.
///
/// Wide spacing lets both the original and the synthesized network settle
/// between changes, which is what the settled-value equivalence check
/// samples (see [`eblocks_sim::equivalence`]).
pub fn exercise_all_sensors(design: &Design, spacing: Time) -> Stimulus {
    let mut stim = Stimulus::new();
    let sensors: Vec<String> = design
        .sensors()
        .map(|s| design.block(s).expect("sensor").name().to_string())
        .collect();
    let mut t = spacing;
    for name in &sensors {
        stim = stim.set(t, name.clone(), true);
        t += spacing;
        stim = stim.set(t, name.clone(), false);
        t += spacing;
    }
    for name in &sensors {
        stim = stim.set(t, name.clone(), true);
        t += spacing;
    }
    for name in sensors.iter().rev() {
        stim = stim.set(t, name.clone(), false);
        t += spacing;
    }
    stim
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{ComputeKind, OutputKind, SensorKind};

    #[test]
    fn covers_every_sensor_both_ways() {
        let mut d = Design::new("t");
        let a = d.add_block("a", SensorKind::Button);
        let b = d.add_block("b", SensorKind::Motion);
        let g = d.add_block("g", ComputeKind::and2());
        let o = d.add_block("o", OutputKind::Led);
        d.connect((a, 0), (g, 0)).unwrap();
        d.connect((b, 0), (g, 1)).unwrap();
        d.connect((g, 0), (o, 0)).unwrap();

        let stim = exercise_all_sensors(&d, 10);
        let events = stim.events();
        // Per sensor: rise+fall individually, plus joint rise and release.
        assert_eq!(events.len(), 2 * 2 + 2 + 2);
        for name in ["a", "b"] {
            assert!(events.iter().any(|(_, n, v)| n == name && *v));
            assert!(events.iter().any(|(_, n, v)| n == name && !*v));
        }
        // Events strictly spaced.
        let times: Vec<_> = events.iter().map(|(t, _, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn no_sensors_no_events() {
        let d = Design::new("empty");
        assert_eq!(exercise_all_sensors(&d, 10).events().len(), 0);
    }
}
