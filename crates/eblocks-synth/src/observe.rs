//! Per-stage observation hooks for the synthesis [`Pipeline`].
//!
//! Each pipeline stage reports a [`StageReport`] (stage, wall-clock time, a
//! one-line detail) to the attached [`Observer`] as it completes. Closures
//! implement [`Observer`] directly, and [`StageTimings`] is a ready-made
//! collector for benchmarks and progress displays.
//!
//! [`Pipeline`]: crate::Pipeline

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// The stages of the synthesis pipeline, in execution order.
///
/// Serializes as the same lower-case token [`Display`](fmt::Display)
/// prints, so JSON reports and the `--timings` text agree on stage names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Statically analyze the input design (optional admission gate).
    #[serde(rename = "lint")]
    Lint,
    /// Partition the inner blocks.
    #[serde(rename = "partition")]
    Partition,
    /// Merge each partition's behaviors into one program.
    #[serde(rename = "merge")]
    Merge,
    /// Rewrite the network around programmable blocks.
    #[serde(rename = "rewrite")]
    Rewrite,
    /// Co-simulate original vs synthesized.
    #[serde(rename = "verify")]
    Verify,
    /// Emit C sources and size estimates.
    #[serde(rename = "emit-c")]
    EmitC,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Lint => "lint",
            Self::Partition => "partition",
            Self::Merge => "merge",
            Self::Rewrite => "rewrite",
            Self::Verify => "verify",
            Self::EmitC => "emit-c",
        })
    }
}

/// Why an observer refused to let a stage run (see
/// [`Observer::before_stage`]).
///
/// An abort is a *cooperative* cancellation: the pipeline stops cleanly at
/// a stage boundary and surfaces the abort as
/// [`SynthError::Aborted`](crate::SynthError::Aborted). The farm uses this
/// for per-job timeout enforcement and the chaos harness for injected
/// faults; `timeout` distinguishes deadline aborts from other injected
/// failures so reports can classify them separately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageAbort {
    /// Human-readable reason, surfaced verbatim in job reports. Keep it
    /// deterministic (no measured wall-clock values) if the report must be
    /// byte-stable across runs.
    pub message: String,
    /// True when the abort represents an exceeded time budget.
    pub timeout: bool,
}

impl StageAbort {
    /// An abort classified as a timeout (an exceeded job/stage budget).
    pub fn timeout(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            timeout: true,
        }
    }

    /// A non-timeout abort (an injected fault, a cancelled request).
    pub fn fault(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            timeout: false,
        }
    }
}

impl fmt::Display for StageAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// What one completed stage reports to the observer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// Which stage completed.
    pub stage: Stage,
    /// Wall-clock time the stage took.
    pub elapsed: Duration,
    /// One-line human-readable outcome (partition counts, sample counts, …).
    pub detail: String,
}

/// A callback invoked around each pipeline stage.
///
/// Any `FnMut(&StageReport)` closure is an observer. Observers are `Send`
/// so a pipeline (and the observer attached to it) can run on a worker
/// thread — the batch-synthesis farm drives one pipeline per job across a
/// thread pool and merges the collected [`StageTimings`] afterwards.
pub trait Observer: Send {
    /// Called once per completed stage, in execution order.
    fn on_stage(&mut self, report: &StageReport);

    /// Called before a fallible stage runs; returning `Err` aborts the
    /// pipeline cleanly with
    /// [`SynthError::Aborted`](crate::SynthError::Aborted).
    ///
    /// The default allows every stage. The farm's timeout enforcement and
    /// the chaos harness's fault injection both hang off this hook: it runs
    /// before `partition`, `merge`, `rewrite`, and `verify`. The infallible
    /// `emit-c` stage has no abort point (its signature predates this hook
    /// and returns the final result directly), so the latest a pipeline can
    /// be cancelled is just before verification.
    fn before_stage(&mut self, stage: Stage) -> Result<(), StageAbort> {
        let _ = stage;
        Ok(())
    }
}

impl<F: FnMut(&StageReport) + Send> Observer for F {
    fn on_stage(&mut self, report: &StageReport) {
        self(report);
    }
}

/// An [`Observer`] that records every report, for timing breakdowns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// The collected reports, in stage execution order.
    pub reports: Vec<StageReport>,
}

impl StageTimings {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The report for `stage`, if that stage ran.
    pub fn get(&self, stage: Stage) -> Option<&StageReport> {
        self.reports.iter().find(|r| r.stage == stage)
    }

    /// Total wall-clock time across all observed stages.
    pub fn total(&self) -> Duration {
        self.reports.iter().map(|r| r.elapsed).sum()
    }

    /// Appends every report from `other`, preserving order.
    ///
    /// A multi-run aggregator (the farm's batch report, a sweep harness)
    /// collects one `StageTimings` per run and folds them into one with
    /// this; [`summarize`](Self::summarize) then reports per-stage totals
    /// and maxima across all merged runs.
    pub fn merge(&mut self, other: &StageTimings) {
        self.reports.extend_from_slice(&other.reports);
    }

    /// Per-stage aggregates (run count, total and max elapsed) over every
    /// collected report, in pipeline stage order. Stages that never ran are
    /// omitted.
    pub fn summarize(&self) -> Vec<StageStat> {
        [
            Stage::Lint,
            Stage::Partition,
            Stage::Merge,
            Stage::Rewrite,
            Stage::Verify,
            Stage::EmitC,
        ]
        .into_iter()
        .filter_map(|stage| {
            let mut stat = StageStat {
                stage,
                runs: 0,
                total: Duration::ZERO,
                max: Duration::ZERO,
            };
            for r in self.reports.iter().filter(|r| r.stage == stage) {
                stat.runs += 1;
                stat.total += r.elapsed;
                stat.max = stat.max.max(r.elapsed);
            }
            (stat.runs > 0).then_some(stat)
        })
        .collect()
    }
}

/// Aggregate timing for one stage across every run merged into a
/// [`StageTimings`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStat {
    /// The stage being summarized.
    pub stage: Stage,
    /// How many reports of this stage were collected.
    pub runs: usize,
    /// Elapsed time summed over all runs.
    pub total: Duration,
    /// The single slowest run.
    pub max: Duration,
}

impl Observer for StageTimings {
    fn on_stage(&mut self, report: &StageReport) {
        self.reports.push(report.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_render() {
        let names: Vec<String> = [
            Stage::Lint,
            Stage::Partition,
            Stage::Merge,
            Stage::Rewrite,
            Stage::Verify,
            Stage::EmitC,
        ]
        .iter()
        .map(Stage::to_string)
        .collect();
        assert_eq!(
            names,
            ["lint", "partition", "merge", "rewrite", "verify", "emit-c"]
        );
    }

    #[test]
    fn stage_serialization_matches_display() {
        for stage in [
            Stage::Lint,
            Stage::Partition,
            Stage::Merge,
            Stage::Rewrite,
            Stage::Verify,
            Stage::EmitC,
        ] {
            let value = serde::Serialize::serialize(&stage);
            assert_eq!(value.as_str(), Some(stage.to_string().as_str()));
            assert_eq!(serde::Deserialize::deserialize(&value), Ok(stage));
        }
    }

    #[test]
    fn timings_collect_and_aggregate() {
        let mut t = StageTimings::new();
        t.on_stage(&StageReport {
            stage: Stage::Partition,
            elapsed: Duration::from_millis(3),
            detail: "2 partitions".into(),
        });
        t.on_stage(&StageReport {
            stage: Stage::Merge,
            elapsed: Duration::from_millis(4),
            detail: "2 programs".into(),
        });
        assert_eq!(t.reports.len(), 2);
        assert_eq!(t.get(Stage::Partition).unwrap().detail, "2 partitions");
        assert!(t.get(Stage::Verify).is_none());
        assert_eq!(t.total(), Duration::from_millis(7));
    }

    #[test]
    fn merge_concatenates_and_summarize_aggregates() {
        let report = |stage, ms| StageReport {
            stage,
            elapsed: Duration::from_millis(ms),
            detail: String::new(),
        };
        let mut a = StageTimings::new();
        a.on_stage(&report(Stage::Partition, 2));
        a.on_stage(&report(Stage::Merge, 5));
        let mut b = StageTimings::new();
        b.on_stage(&report(Stage::Partition, 6));
        a.merge(&b);
        a.merge(&StageTimings::new()); // merging empty is a no-op
        assert_eq!(a.reports.len(), 3);

        let stats = a.summarize();
        assert_eq!(stats.len(), 2, "verify/rewrite/emit-c never ran");
        assert_eq!(stats[0].stage, Stage::Partition);
        assert_eq!(stats[0].runs, 2);
        assert_eq!(stats[0].total, Duration::from_millis(8));
        assert_eq!(stats[0].max, Duration::from_millis(6));
        assert_eq!(stats[1].stage, Stage::Merge);
        assert_eq!(stats[1].runs, 1);
        assert_eq!(stats[1].total, Duration::from_millis(5));
        assert_eq!(stats[1].max, Duration::from_millis(5));
    }

    #[test]
    fn timings_cross_threads() {
        // Observer is Send: a pipeline and its observer can run on a worker.
        let mut timings = StageTimings::new();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                timings.on_stage(&StageReport {
                    stage: Stage::Partition,
                    elapsed: Duration::from_millis(1),
                    detail: "on a worker".into(),
                });
            });
        });
        assert_eq!(timings.reports.len(), 1);
    }

    #[test]
    fn closures_are_observers() {
        let mut seen = Vec::new();
        {
            let mut obs = |r: &StageReport| seen.push(r.stage);
            let report = StageReport {
                stage: Stage::EmitC,
                elapsed: Duration::ZERO,
                detail: String::new(),
            };
            Observer::on_stage(&mut obs, &report);
        }
        assert_eq!(seen, [Stage::EmitC]);
    }
}
