//! Per-stage observation hooks for the synthesis [`Pipeline`].
//!
//! Each pipeline stage reports a [`StageReport`] (stage, wall-clock time, a
//! one-line detail) to the attached [`Observer`] as it completes. Closures
//! implement [`Observer`] directly, and [`StageTimings`] is a ready-made
//! collector for benchmarks and progress displays.
//!
//! [`Pipeline`]: crate::Pipeline

use std::fmt;
use std::time::Duration;

/// The stages of the synthesis pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Partition the inner blocks.
    Partition,
    /// Merge each partition's behaviors into one program.
    Merge,
    /// Rewrite the network around programmable blocks.
    Rewrite,
    /// Co-simulate original vs synthesized.
    Verify,
    /// Emit C sources and size estimates.
    EmitC,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Partition => "partition",
            Self::Merge => "merge",
            Self::Rewrite => "rewrite",
            Self::Verify => "verify",
            Self::EmitC => "emit-c",
        })
    }
}

/// What one completed stage reports to the observer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// Which stage completed.
    pub stage: Stage,
    /// Wall-clock time the stage took.
    pub elapsed: Duration,
    /// One-line human-readable outcome (partition counts, sample counts, …).
    pub detail: String,
}

/// A callback invoked after each pipeline stage completes.
///
/// Any `FnMut(&StageReport)` closure is an observer.
pub trait Observer {
    /// Called once per completed stage, in execution order.
    fn on_stage(&mut self, report: &StageReport);
}

impl<F: FnMut(&StageReport)> Observer for F {
    fn on_stage(&mut self, report: &StageReport) {
        self(report);
    }
}

/// An [`Observer`] that records every report, for timing breakdowns.
#[derive(Debug, Clone, Default)]
pub struct StageTimings {
    /// The collected reports, in stage execution order.
    pub reports: Vec<StageReport>,
}

impl StageTimings {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The report for `stage`, if that stage ran.
    pub fn get(&self, stage: Stage) -> Option<&StageReport> {
        self.reports.iter().find(|r| r.stage == stage)
    }

    /// Total wall-clock time across all observed stages.
    pub fn total(&self) -> Duration {
        self.reports.iter().map(|r| r.elapsed).sum()
    }
}

impl Observer for StageTimings {
    fn on_stage(&mut self, report: &StageReport) {
        self.reports.push(report.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_render() {
        let names: Vec<String> = [
            Stage::Partition,
            Stage::Merge,
            Stage::Rewrite,
            Stage::Verify,
            Stage::EmitC,
        ]
        .iter()
        .map(Stage::to_string)
        .collect();
        assert_eq!(names, ["partition", "merge", "rewrite", "verify", "emit-c"]);
    }

    #[test]
    fn timings_collect_and_aggregate() {
        let mut t = StageTimings::new();
        t.on_stage(&StageReport {
            stage: Stage::Partition,
            elapsed: Duration::from_millis(3),
            detail: "2 partitions".into(),
        });
        t.on_stage(&StageReport {
            stage: Stage::Merge,
            elapsed: Duration::from_millis(4),
            detail: "2 programs".into(),
        });
        assert_eq!(t.reports.len(), 2);
        assert_eq!(t.get(Stage::Partition).unwrap().detail, "2 partitions");
        assert!(t.get(Stage::Verify).is_none());
        assert_eq!(t.total(), Duration::from_millis(7));
    }

    #[test]
    fn closures_are_observers() {
        let mut seen = Vec::new();
        {
            let mut obs = |r: &StageReport| seen.push(r.stage);
            let report = StageReport {
                stage: Stage::EmitC,
                elapsed: Duration::ZERO,
                detail: String::new(),
            };
            Observer::on_stage(&mut obs, &report);
        }
        assert_eq!(seen, [Stage::EmitC]);
    }
}
