//! The synthesis pipeline driver.

use crate::error::SynthError;
use crate::rewrite::rewrite_network;
use crate::stimulus::exercise_all_sensors;
use eblocks_behavior::Program;
use eblocks_codegen::{emit_c, estimate_size, merge_partition, MergedProgram, SizeEstimate};
use eblocks_core::{BlockId, Design};
use eblocks_partition::{
    aggregation, exhaustive, pare_down, ExhaustiveOptions, PartitionConstraints, Partitioning,
};
use eblocks_sim::{equivalence, EquivalenceReport, Simulator, Time};
use std::collections::HashMap;

/// Which partitioning algorithm drives synthesis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's PareDown decomposition heuristic (§4.2) — the default.
    #[default]
    PareDown,
    /// Optimal exhaustive search (§4.1); practical to roughly 13 inner
    /// blocks.
    Exhaustive,
    /// The greedy aggregation strawman (§4.2 ¶1).
    Aggregation,
}

/// Options controlling [`synthesize`].
#[derive(Debug, Clone, Copy)]
pub struct SynthesisOptions {
    /// Partition feasibility constraints (pin budget etc.).
    pub constraints: PartitionConstraints,
    /// Partitioning algorithm.
    pub algorithm: Algorithm,
    /// Co-simulate original vs synthesized network and fail on divergence.
    pub verify: bool,
    /// Stimulus spacing used by verification (ticks between sensor edges).
    pub verify_spacing: Time,
    /// Timing-skew tolerance for verification (see
    /// [`eblocks_sim::equivalence`]); merging removes internal wire hops,
    /// shifting pulse windows by a few ticks.
    pub verify_tolerance: Time,
    /// Run the behavior-tree optimizer on merged programs before emitting C
    /// and sizing them (see [`eblocks_behavior::optimize`](fn@eblocks_behavior::optimize)).
    pub optimize: bool,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        Self {
            constraints: PartitionConstraints::default(),
            algorithm: Algorithm::PareDown,
            verify: true,
            verify_spacing: 64,
            verify_tolerance: 8,
            optimize: true,
        }
    }
}

/// Everything synthesis produces for one design.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The rewritten network (programmable blocks named `prog0`, `prog1`, …).
    pub synthesized: Design,
    /// The partitioning that was applied.
    pub partitioning: Partitioning,
    /// Merged program and pin maps per partition.
    pub merged: Vec<MergedProgram>,
    /// Behavior program per programmable block in `synthesized`.
    pub programs: HashMap<BlockId, Program>,
    /// Generated C source per programmable block, keyed by block name.
    pub c_sources: Vec<(String, String)>,
    /// PIC16F628 size estimate per programmable block, keyed by block name.
    pub size_estimates: Vec<(String, SizeEstimate)>,
    /// Equivalence report when verification ran.
    pub report: Option<EquivalenceReport>,
}

impl SynthesisResult {
    /// Inner blocks before synthesis.
    pub fn inner_before(&self) -> usize {
        self.partitioning.covered() + self.partitioning.uncovered().len()
    }

    /// Inner blocks after synthesis (pre-defined + programmable) — the
    /// paper's *Inner Blocks (Total)*.
    pub fn inner_after(&self) -> usize {
        self.partitioning.inner_total()
    }
}

/// Runs the full pipeline: partition → merge → rewrite → (optionally)
/// verify.
///
/// # Errors
///
/// Any [`SynthError`]; notably [`SynthError::VerificationFailed`] if the
/// synthesized network diverges behaviorally from the original under the
/// all-sensors stimulus.
pub fn synthesize(
    design: &Design,
    options: &SynthesisOptions,
) -> Result<SynthesisResult, SynthError> {
    design.validate()?;

    // Realizability: a non-convex partition has a path that leaves it and
    // re-enters, which becomes a wire cycle between programmable blocks in
    // the rewritten network — eBlock networks must stay acyclic (§3.3).
    // The paper's condition 2 ("replaceable by a programmable block that can
    // provide equivalent functionality") implicitly requires this, so the
    // pipeline enforces convexity regardless of the caller's setting. Pure
    // partition *analysis* (Tables 1–2) uses the caller's constraints as-is
    // via `eblocks_partition` directly.
    let constraints = PartitionConstraints {
        require_convex: true,
        ..options.constraints
    };

    let partitioning = match options.algorithm {
        Algorithm::PareDown => pare_down(design, &constraints),
        Algorithm::Exhaustive => exhaustive(design, &constraints, ExhaustiveOptions::default()),
        Algorithm::Aggregation => aggregation(design, &constraints),
    };
    // Contracting several partitions at once can close a wire cycle even
    // when each partition is convex; dissolve offending partitions so the
    // rewritten network stays a DAG (see `eblocks_partition::quotient`).
    let partitioning = eblocks_partition::dissolve_cycles(design, partitioning);
    partitioning.verify(design, &constraints)?;

    let mut merged: Vec<MergedProgram> = Vec::new();
    for (i, partition) in partitioning.partitions().iter().enumerate() {
        let m = merge_partition(design, partition, options.constraints.spec).map_err(|error| {
            SynthError::Codegen {
                partition: i,
                error,
            }
        })?;
        merged.push(m);
    }

    let (synthesized, prog_ids) = rewrite_network(
        design,
        partitioning.partitions(),
        &merged,
        options.constraints.spec,
    )?;

    let mut programs: HashMap<BlockId, Program> = HashMap::new();
    let mut c_sources = Vec::new();
    let mut size_estimates = Vec::new();
    for (i, &pid) in prog_ids.iter().enumerate() {
        let name = synthesized
            .block(pid)
            .expect("fresh programmable block")
            .name()
            .to_string();
        let program = if options.optimize {
            eblocks_behavior::optimize(&merged[i].program)
        } else {
            merged[i].program.clone()
        };
        c_sources.push((
            name.clone(),
            emit_c(
                &format!("{}/{name}", design.name()),
                &program,
                options.constraints.spec.inputs,
                options.constraints.spec.outputs,
            ),
        ));
        size_estimates.push((name, estimate_size(&program)));
        programs.insert(pid, program);
    }

    let report = if options.verify {
        let original_sim = Simulator::new(design)?;
        let synth_sim = Simulator::with_programs(&synthesized, programs.clone())?;
        let stim = exercise_all_sensors(design, options.verify_spacing);
        let report = equivalence(
            &original_sim,
            &synth_sim,
            &stim,
            options.verify_spacing / 2,
            options.verify_tolerance,
        )?;
        if !report.is_equivalent() {
            return Err(SynthError::VerificationFailed { report });
        }
        Some(report)
    } else {
        None
    };

    Ok(SynthesisResult {
        synthesized,
        partitioning,
        merged,
        programs,
        c_sources,
        size_estimates,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{ComputeKind, OutputKind, SensorKind};

    fn garage() -> Design {
        let mut d = Design::new("garage");
        let door = d.add_block("door", SensorKind::ContactSwitch);
        let light = d.add_block("light", SensorKind::Light);
        let inv = d.add_block("inv", ComputeKind::Not);
        let both = d.add_block("both", ComputeKind::and2());
        let led = d.add_block("led", OutputKind::Led);
        d.connect((door, 0), (both, 0)).unwrap();
        d.connect((light, 0), (inv, 0)).unwrap();
        d.connect((inv, 0), (both, 1)).unwrap();
        d.connect((both, 0), (led, 0)).unwrap();
        d
    }

    #[test]
    fn garage_synthesis_verified() {
        let result = synthesize(&garage(), &SynthesisOptions::default()).unwrap();
        assert_eq!(result.inner_before(), 2);
        assert_eq!(result.inner_after(), 1);
        assert_eq!(result.synthesized.census().programmable, 1);
        assert!(result.report.unwrap().is_equivalent());
        assert_eq!(result.c_sources.len(), 1);
        assert!(result.c_sources[0].1.contains("eblock_on_input"));
        assert!(result.size_estimates[0].1.fits_pic16f628());
    }

    #[test]
    fn all_algorithms_produce_verified_networks() {
        for algorithm in [
            Algorithm::PareDown,
            Algorithm::Exhaustive,
            Algorithm::Aggregation,
        ] {
            let options = SynthesisOptions {
                algorithm,
                ..Default::default()
            };
            let result = synthesize(&garage(), &options).unwrap();
            assert!(result.report.unwrap().is_equivalent(), "{algorithm:?}");
        }
    }

    #[test]
    fn no_verify_skips_report() {
        let options = SynthesisOptions {
            verify: false,
            ..Default::default()
        };
        let result = synthesize(&garage(), &options).unwrap();
        assert!(result.report.is_none());
    }

    #[test]
    fn sequential_chain_verified() {
        // button -> toggle -> pulse -> delay chain exercises on-tick merge.
        let mut d = Design::new("seq");
        let b = d.add_block("btn", SensorKind::Button);
        let t = d.add_block("tog", ComputeKind::Toggle);
        let p = d.add_block("pg", ComputeKind::PulseGen { ticks: 4 });
        let o = d.add_block("buzzer", OutputKind::Buzzer);
        d.connect((b, 0), (t, 0)).unwrap();
        d.connect((t, 0), (p, 0)).unwrap();
        d.connect((p, 0), (o, 0)).unwrap();
        let result = synthesize(&d, &SynthesisOptions::default()).unwrap();
        assert_eq!(result.inner_after(), 1);
        assert!(result.report.unwrap().is_equivalent());
    }

    #[test]
    fn invalid_design_rejected() {
        let mut d = Design::new("bad");
        d.add_block("g", ComputeKind::and2());
        assert!(matches!(
            synthesize(&d, &SynthesisOptions::default()),
            Err(SynthError::InvalidDesign(_))
        ));
    }
}

#[cfg(test)]
mod optimizer_tests {
    use super::*;
    use eblocks_codegen::estimate_size;

    #[test]
    fn optimizer_never_grows_programs_and_preserves_equivalence() {
        // Verification runs against the optimized programs, so a successful
        // default synthesis already proves behavior; compare sizes too.
        for entry in eblocks_designs::all() {
            let optimized = synthesize(&entry.design, &SynthesisOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            let raw = synthesize(
                &entry.design,
                &SynthesisOptions {
                    optimize: false,
                    verify: false,
                    ..Default::default()
                },
            )
            .unwrap();
            for ((name_a, a), (name_b, b)) in
                optimized.size_estimates.iter().zip(&raw.size_estimates)
            {
                assert_eq!(name_a, name_b);
                assert!(
                    a.words <= b.words,
                    "{}/{name_a}: optimized {} > raw {}",
                    entry.name,
                    a.words,
                    b.words
                );
            }
            // Spot check: the merged AND/NOT tables actually shrink
            // somewhere in the library.
            let _ = estimate_size;
        }
    }
}
