//! The staged synthesis pipeline.
//!
//! [`Pipeline`] decomposes synthesis into typed stages — each stage method
//! consumes the previous stage's value and returns the next, so callers can
//! stop early, inspect intermediates, or swap the partitioning strategy:
//!
//! ```text
//! Pipeline::new(design)
//!     .partition_with(&strategy)?   -> Partitioned
//!     .merge()?                     -> Merged
//!     .rewrite()?                   -> Rewritten
//!     .verify(VerifyOptions)?       -> Verified   (or .skip_verify())
//!     .emit_c()                     -> SynthesisResult
//! ```
//!
//! Attach an [`Observer`] with [`Pipeline::observe`] for per-stage timing
//! and progress. The classic one-call [`synthesize`] entry point survives as
//! a thin shim over this API.

use crate::error::SynthError;
use crate::observe::{Observer, Stage, StageReport};
use crate::rewrite::rewrite_network;
use crate::stimulus::exercise_all_sensors;
use eblocks_behavior::Program;
use eblocks_codegen::{emit_c, estimate_size, merge_partition, MergedProgram, SizeEstimate};
use eblocks_core::{BlockId, Design};
use eblocks_lint::{lint_design, LintConfig, LintOutcome};
use eblocks_partition::strategy;
use eblocks_partition::{PartitionConstraints, Partitioner, Partitioning};
use eblocks_sim::{equivalence, EquivalenceReport, Simulator, Time};
use std::collections::HashMap;
use std::time::Instant;

/// Which partitioning algorithm drives [`synthesize`] (compatibility enum;
/// the staged [`Pipeline`] accepts any [`Partitioner`] instead, including
/// the `refine` and `anneal` strategies this enum predates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's PareDown decomposition heuristic (§4.2) — the default.
    #[default]
    PareDown,
    /// Optimal exhaustive search (§4.1); practical to roughly 13 inner
    /// blocks.
    Exhaustive,
    /// The greedy aggregation strawman (§4.2 ¶1).
    Aggregation,
}

impl Algorithm {
    /// The equivalent [`Partitioner`] strategy with default configuration.
    pub fn partitioner(self) -> Box<dyn Partitioner> {
        match self {
            Self::PareDown => Box::new(strategy::PareDown),
            Self::Exhaustive => Box::new(strategy::Exhaustive::default()),
            Self::Aggregation => Box::new(strategy::Aggregation),
        }
    }
}

/// Options controlling [`synthesize`].
#[derive(Debug, Clone, Copy)]
pub struct SynthesisOptions {
    /// Partition feasibility constraints (pin budget etc.).
    pub constraints: PartitionConstraints,
    /// Partitioning algorithm.
    pub algorithm: Algorithm,
    /// Co-simulate original vs synthesized network and fail on divergence.
    pub verify: bool,
    /// Stimulus spacing used by verification (ticks between sensor edges).
    pub verify_spacing: Time,
    /// Timing-skew tolerance for verification (see
    /// [`eblocks_sim::equivalence`]); merging removes internal wire hops,
    /// shifting pulse windows by a few ticks.
    pub verify_tolerance: Time,
    /// Run the behavior-tree optimizer on merged programs before emitting C
    /// and sizing them (see [`eblocks_behavior::optimize`](fn@eblocks_behavior::optimize)).
    pub optimize: bool,
    /// Run the lint stage before partitioning; `None` (the default) skips
    /// it, preserving the historical pipeline shape.
    pub lint: Option<LintConfig>,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        Self {
            constraints: PartitionConstraints::default(),
            algorithm: Algorithm::PareDown,
            verify: true,
            verify_spacing: 64,
            verify_tolerance: 8,
            optimize: true,
            lint: None,
        }
    }
}

/// Options for the [`Rewritten::verify`] stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Stimulus spacing (ticks between sensor edges).
    pub spacing: Time,
    /// Timing-skew tolerance (merging removes internal wire hops, shifting
    /// pulse windows by a few ticks).
    pub tolerance: Time,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        Self {
            spacing: 64,
            tolerance: 8,
        }
    }
}

/// Everything synthesis produces for one design.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The rewritten network (programmable blocks named `prog0`, `prog1`, …).
    pub synthesized: Design,
    /// The partitioning that was applied.
    pub partitioning: Partitioning,
    /// Merged program and pin maps per partition.
    pub merged: Vec<MergedProgram>,
    /// Behavior program per programmable block in `synthesized`.
    pub programs: HashMap<BlockId, Program>,
    /// Generated C source per programmable block, keyed by block name.
    pub c_sources: Vec<(String, String)>,
    /// PIC16F628 size estimate per programmable block, keyed by block name.
    pub size_estimates: Vec<(String, SizeEstimate)>,
    /// Equivalence report when verification ran.
    pub report: Option<EquivalenceReport>,
    /// Lint totals when the lint stage ran (and admitted the design).
    pub lint: Option<LintOutcome>,
}

impl SynthesisResult {
    /// Inner blocks before synthesis.
    pub fn inner_before(&self) -> usize {
        self.partitioning.covered() + self.partitioning.uncovered().len()
    }

    /// Inner blocks after synthesis (pre-defined + programmable) — the
    /// paper's *Inner Blocks (Total)*.
    pub fn inner_after(&self) -> usize {
        self.partitioning.inner_total()
    }
}

/// Shared state threaded through the pipeline stages.
struct Ctx<'a> {
    design: &'a Design,
    /// Constraints with convexity forced on (see [`Pipeline::partition_with`]).
    constraints: PartitionConstraints,
    optimize: bool,
    observer: Option<&'a mut dyn Observer>,
    /// Totals from the lint stage, when it ran.
    lint: Option<LintOutcome>,
}

impl Ctx<'_> {
    /// Asks the observer for permission to run `stage`, mapping a refusal
    /// to [`SynthError::Aborted`].
    fn begin(&mut self, stage: Stage) -> Result<(), SynthError> {
        if let Some(observer) = self.observer.as_deref_mut() {
            observer
                .before_stage(stage)
                .map_err(|abort| SynthError::Aborted { stage, abort })?;
        }
        Ok(())
    }

    fn report(&mut self, stage: Stage, started: Instant, detail: String) {
        if let Some(observer) = self.observer.as_deref_mut() {
            observer.on_stage(&StageReport {
                stage,
                elapsed: started.elapsed(),
                detail,
            });
        }
    }
}

/// Entry point of the staged synthesis pipeline.
///
/// # Example
///
/// ```
/// use eblocks_designs::podium_timer_3;
/// use eblocks_partition::strategy::PareDown;
/// use eblocks_synth::{Pipeline, VerifyOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let design = podium_timer_3();
/// let result = Pipeline::new(&design)
///     .partition_with(&PareDown)?
///     .merge()?
///     .rewrite()?
///     .verify(VerifyOptions::default())?
///     .emit_c();
/// assert_eq!(result.synthesized.census().inner_total(), 3);
/// # Ok(())
/// # }
/// ```
pub struct Pipeline<'a> {
    design: &'a Design,
    constraints: PartitionConstraints,
    optimize: bool,
    observer: Option<&'a mut dyn Observer>,
    lint: Option<LintConfig>,
}

impl<'a> Pipeline<'a> {
    /// A pipeline over `design` with default constraints, the behavior
    /// optimizer enabled, no lint stage, and no observer.
    pub fn new(design: &'a Design) -> Self {
        Self {
            design,
            constraints: PartitionConstraints::default(),
            optimize: true,
            observer: None,
            lint: None,
        }
    }

    /// Sets the partition feasibility constraints (pin budget etc.).
    pub fn constraints(mut self, constraints: PartitionConstraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Enables or disables the behavior-tree optimizer (default: enabled).
    pub fn optimize(mut self, optimize: bool) -> Self {
        self.optimize = optimize;
        self
    }

    /// Attaches an observer that receives a [`StageReport`] after each
    /// stage completes.
    pub fn observe(mut self, observer: &'a mut dyn Observer) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Enables the lint stage: the design is statically analyzed before
    /// partitioning and rejected with [`SynthError::LintRejected`] under
    /// the config's deny level. Off by default.
    pub fn lint(mut self, config: LintConfig) -> Self {
        self.lint = Some(config);
        self
    }

    /// Runs the partition stage with the given strategy.
    ///
    /// Realizability: a non-convex partition has a path that leaves it and
    /// re-enters, which becomes a wire cycle between programmable blocks in
    /// the rewritten network — eBlock networks must stay acyclic (§3.3).
    /// The paper's condition 2 ("replaceable by a programmable block that
    /// can provide equivalent functionality") implicitly requires this, so
    /// the pipeline enforces convexity regardless of the caller's setting.
    /// Pure partition *analysis* (Tables 1–2) uses the caller's constraints
    /// as-is via `eblocks_partition` directly. Contracting several
    /// partitions at once can still close a wire cycle even when each
    /// partition is convex; offending partitions are dissolved (see
    /// [`eblocks_partition::dissolve_cycles`]).
    ///
    /// # Errors
    ///
    /// [`SynthError::LintRejected`] if the (optional) lint stage rejects
    /// the design, [`SynthError::InvalidDesign`] if the design fails
    /// validation, [`SynthError::BadPartitioning`] if the strategy returns
    /// an inconsistent result (a strategy bug), and [`SynthError::Aborted`]
    /// when the attached observer vetoes a stage.
    pub fn partition_with(
        mut self,
        partitioner: &dyn Partitioner,
    ) -> Result<Partitioned<'a>, SynthError> {
        let mut lint_outcome = None;
        if let Some(config) = self.lint {
            let lint_started = Instant::now();
            if let Some(observer) = self.observer.as_deref_mut() {
                observer
                    .before_stage(Stage::Lint)
                    .map_err(|abort| SynthError::Aborted {
                        stage: Stage::Lint,
                        abort,
                    })?;
            }
            let report = lint_design(self.design, &config);
            let outcome = report.outcome();
            if let Some(observer) = self.observer.as_deref_mut() {
                observer.on_stage(&StageReport {
                    stage: Stage::Lint,
                    elapsed: lint_started.elapsed(),
                    detail: outcome.to_string(),
                });
            }
            if report.rejects(config.deny) {
                return Err(SynthError::LintRejected { report });
            }
            lint_outcome = Some(outcome);
        }

        let started = Instant::now();
        if let Some(observer) = self.observer.as_deref_mut() {
            observer
                .before_stage(Stage::Partition)
                .map_err(|abort| SynthError::Aborted {
                    stage: Stage::Partition,
                    abort,
                })?;
        }
        self.design.validate()?;
        let constraints = PartitionConstraints {
            require_convex: true,
            ..self.constraints
        };
        let partitioning = partitioner.partition(self.design, &constraints);
        let partitioning = eblocks_partition::dissolve_cycles(self.design, partitioning);
        partitioning.verify(self.design, &constraints)?;

        let mut ctx = Ctx {
            design: self.design,
            constraints,
            optimize: self.optimize,
            observer: self.observer,
            lint: lint_outcome,
        };
        // The Partitioning's Display already leads with its algorithm label.
        ctx.report(Stage::Partition, started, partitioning.to_string());
        Ok(Partitioned { ctx, partitioning })
    }
}

/// Stage 1 output: the design partitioned onto candidate programmable
/// blocks.
pub struct Partitioned<'a> {
    ctx: Ctx<'a>,
    partitioning: Partitioning,
}

impl<'a> Partitioned<'a> {
    /// The partitioning this stage produced.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Consumes the stage, yielding the partitioning alone — for callers
    /// that only wanted partition analysis.
    pub fn into_partitioning(self) -> Partitioning {
        self.partitioning
    }

    /// Runs the merge stage: one combined behavior program per partition.
    ///
    /// # Errors
    ///
    /// [`SynthError::Codegen`] when a partition's behaviors cannot merge,
    /// and [`SynthError::Aborted`] when the attached observer vetoes the
    /// stage.
    pub fn merge(mut self) -> Result<Merged<'a>, SynthError> {
        self.ctx.begin(Stage::Merge)?;
        let started = Instant::now();
        let mut merged: Vec<MergedProgram> = Vec::new();
        for (i, partition) in self.partitioning.partitions().iter().enumerate() {
            let m = merge_partition(self.ctx.design, partition, self.ctx.constraints.spec)
                .map_err(|error| SynthError::Codegen {
                    partition: i,
                    error,
                })?;
            merged.push(m);
        }
        self.ctx.report(
            Stage::Merge,
            started,
            format!("{} merged program(s)", merged.len()),
        );
        Ok(Merged {
            ctx: self.ctx,
            partitioning: self.partitioning,
            merged,
        })
    }
}

/// Stage 2 output: merged behavior programs, one per partition.
pub struct Merged<'a> {
    ctx: Ctx<'a>,
    partitioning: Partitioning,
    merged: Vec<MergedProgram>,
}

impl<'a> Merged<'a> {
    /// The merged programs, in partition order.
    pub fn merged(&self) -> &[MergedProgram] {
        &self.merged
    }

    /// The partitioning being synthesized.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Runs the rewrite stage: partition members disappear, programmable
    /// blocks appear, crossing wires reroute to assigned pins. Programs are
    /// optimized here when the pipeline's optimizer flag is on.
    ///
    /// # Errors
    ///
    /// Propagates network-construction failures as [`SynthError`], and
    /// [`SynthError::Aborted`] when the attached observer vetoes the stage.
    pub fn rewrite(mut self) -> Result<Rewritten<'a>, SynthError> {
        self.ctx.begin(Stage::Rewrite)?;
        let started = Instant::now();
        let (synthesized, prog_ids) = rewrite_network(
            self.ctx.design,
            self.partitioning.partitions(),
            &self.merged,
            self.ctx.constraints.spec,
        )?;

        let mut programs: HashMap<BlockId, Program> = HashMap::new();
        for (i, &pid) in prog_ids.iter().enumerate() {
            let program = if self.ctx.optimize {
                eblocks_behavior::optimize(&self.merged[i].program)
            } else {
                self.merged[i].program.clone()
            };
            programs.insert(pid, program);
        }
        self.ctx.report(
            Stage::Rewrite,
            started,
            format!(
                "{} -> {} block(s), {} programmable",
                self.ctx.design.census().inner_total(),
                synthesized.census().inner_total(),
                prog_ids.len()
            ),
        );
        Ok(Rewritten {
            ctx: self.ctx,
            partitioning: self.partitioning,
            merged: self.merged,
            synthesized,
            prog_ids,
            programs,
        })
    }
}

/// Stage 3 output: the rewritten network and its per-block programs.
pub struct Rewritten<'a> {
    ctx: Ctx<'a>,
    partitioning: Partitioning,
    merged: Vec<MergedProgram>,
    synthesized: Design,
    prog_ids: Vec<BlockId>,
    programs: HashMap<BlockId, Program>,
}

impl<'a> Rewritten<'a> {
    /// The rewritten network.
    pub fn synthesized(&self) -> &Design {
        &self.synthesized
    }

    /// Behavior program per programmable block.
    pub fn programs(&self) -> &HashMap<BlockId, Program> {
        &self.programs
    }

    /// The partitioning being synthesized.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Runs the verification stage: co-simulates the original and
    /// synthesized networks under a stimulus that exercises every sensor.
    ///
    /// # Errors
    ///
    /// [`SynthError::Sim`] when either simulation fails to build or run,
    /// [`SynthError::VerificationFailed`] on behavioral divergence, and
    /// [`SynthError::Aborted`] when the attached observer vetoes the stage.
    pub fn verify(mut self, options: VerifyOptions) -> Result<Verified<'a>, SynthError> {
        self.ctx.begin(Stage::Verify)?;
        let started = Instant::now();
        let original_sim = Simulator::new(self.ctx.design)?;
        let synth_sim = Simulator::with_programs(&self.synthesized, self.programs.clone())?;
        let stim = exercise_all_sensors(self.ctx.design, options.spacing);
        let report = equivalence(
            &original_sim,
            &synth_sim,
            &stim,
            options.spacing / 2,
            options.tolerance,
        )?;
        if !report.is_equivalent() {
            return Err(SynthError::VerificationFailed { report });
        }
        self.ctx.report(
            Stage::Verify,
            started,
            format!("equivalent at {} sample(s)", report.sample_times.len()),
        );
        Ok(Verified {
            ctx: self.ctx,
            partitioning: self.partitioning,
            merged: self.merged,
            synthesized: self.synthesized,
            prog_ids: self.prog_ids,
            programs: self.programs,
            report: Some(report),
        })
    }

    /// Skips verification, passing straight to the emit stage (the
    /// resulting [`SynthesisResult::report`] is `None`).
    pub fn skip_verify(self) -> Verified<'a> {
        Verified {
            ctx: self.ctx,
            partitioning: self.partitioning,
            merged: self.merged,
            synthesized: self.synthesized,
            prog_ids: self.prog_ids,
            programs: self.programs,
            report: None,
        }
    }
}

/// Stage 4 output: a (possibly) verified synthesized network.
pub struct Verified<'a> {
    ctx: Ctx<'a>,
    partitioning: Partitioning,
    merged: Vec<MergedProgram>,
    synthesized: Design,
    prog_ids: Vec<BlockId>,
    programs: HashMap<BlockId, Program>,
    report: Option<EquivalenceReport>,
}

impl Verified<'_> {
    /// The equivalence report, when the verify stage ran.
    pub fn report(&self) -> Option<&EquivalenceReport> {
        self.report.as_ref()
    }

    /// Runs the final stage: emits one C source and size estimate per
    /// programmable block and assembles the [`SynthesisResult`].
    pub fn emit_c(mut self) -> SynthesisResult {
        let started = Instant::now();
        let mut c_sources = Vec::new();
        let mut size_estimates = Vec::new();
        for &pid in &self.prog_ids {
            let name = self
                .synthesized
                .block(pid)
                .expect("fresh programmable block")
                .name()
                .to_string();
            let program = &self.programs[&pid];
            c_sources.push((
                name.clone(),
                emit_c(
                    &format!("{}/{name}", self.ctx.design.name()),
                    program,
                    self.ctx.constraints.spec.inputs,
                    self.ctx.constraints.spec.outputs,
                ),
            ));
            size_estimates.push((name, estimate_size(program)));
        }
        self.ctx.report(
            Stage::EmitC,
            started,
            format!("{} C source(s)", c_sources.len()),
        );
        SynthesisResult {
            synthesized: self.synthesized,
            partitioning: self.partitioning,
            merged: self.merged,
            programs: self.programs,
            c_sources,
            size_estimates,
            report: self.report,
            lint: self.ctx.lint,
        }
    }
}

/// Runs the full pipeline: partition → merge → rewrite → (optionally)
/// verify → emit C.
///
/// This is a compatibility shim over [`Pipeline`]; new code that wants to
/// pick a strategy at runtime, stop early, or observe stage timings should
/// use the staged API directly.
///
/// # Errors
///
/// Any [`SynthError`]; notably [`SynthError::VerificationFailed`] if the
/// synthesized network diverges behaviorally from the original under the
/// all-sensors stimulus.
pub fn synthesize(
    design: &Design,
    options: &SynthesisOptions,
) -> Result<SynthesisResult, SynthError> {
    let partitioner = options.algorithm.partitioner();
    let mut pipeline = Pipeline::new(design)
        .constraints(options.constraints)
        .optimize(options.optimize);
    if let Some(config) = options.lint {
        pipeline = pipeline.lint(config);
    }
    let rewritten = pipeline
        .partition_with(partitioner.as_ref())?
        .merge()?
        .rewrite()?;
    let verified = if options.verify {
        rewritten.verify(VerifyOptions {
            spacing: options.verify_spacing,
            tolerance: options.verify_tolerance,
        })?
    } else {
        rewritten.skip_verify()
    };
    Ok(verified.emit_c())
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{ComputeKind, OutputKind, SensorKind};

    fn garage() -> Design {
        let mut d = Design::new("garage");
        let door = d.add_block("door", SensorKind::ContactSwitch);
        let light = d.add_block("light", SensorKind::Light);
        let inv = d.add_block("inv", ComputeKind::Not);
        let both = d.add_block("both", ComputeKind::and2());
        let led = d.add_block("led", OutputKind::Led);
        d.connect((door, 0), (both, 0)).unwrap();
        d.connect((light, 0), (inv, 0)).unwrap();
        d.connect((inv, 0), (both, 1)).unwrap();
        d.connect((both, 0), (led, 0)).unwrap();
        d
    }

    #[test]
    fn garage_synthesis_verified() {
        let result = synthesize(&garage(), &SynthesisOptions::default()).unwrap();
        assert_eq!(result.inner_before(), 2);
        assert_eq!(result.inner_after(), 1);
        assert_eq!(result.synthesized.census().programmable, 1);
        assert!(result.report.unwrap().is_equivalent());
        assert_eq!(result.c_sources.len(), 1);
        assert!(result.c_sources[0].1.contains("eblock_on_input"));
        assert!(result.size_estimates[0].1.fits_pic16f628());
    }

    #[test]
    fn all_algorithms_produce_verified_networks() {
        for algorithm in [
            Algorithm::PareDown,
            Algorithm::Exhaustive,
            Algorithm::Aggregation,
        ] {
            let options = SynthesisOptions {
                algorithm,
                ..Default::default()
            };
            let result = synthesize(&garage(), &options).unwrap();
            assert!(result.report.unwrap().is_equivalent(), "{algorithm:?}");
        }
    }

    #[test]
    fn all_five_strategies_drive_the_pipeline() {
        let design = garage();
        let registry = eblocks_partition::Registry::builtin();
        for name in registry.names() {
            let strategy = registry.from_str(name).unwrap();
            let result = Pipeline::new(&design)
                .partition_with(strategy.as_ref())
                .and_then(Partitioned::merge)
                .and_then(Merged::rewrite)
                .and_then(|r| r.verify(VerifyOptions::default()))
                .map(Verified::emit_c)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(result.report.unwrap().is_equivalent(), "{name}");
        }
    }

    #[test]
    fn pipeline_supports_early_stop() {
        let design = garage();
        let partitioned = Pipeline::new(&design)
            .partition_with(&strategy::PareDown)
            .unwrap();
        assert_eq!(partitioned.partitioning().num_partitions(), 1);
        let partitioning = partitioned.into_partitioning();
        assert_eq!(partitioning.inner_total(), 1);
        // No merge/rewrite/verify ever ran.
    }

    #[test]
    fn observer_sees_every_stage_in_order() {
        use crate::observe::StageTimings;
        let design = garage();
        let mut timings = StageTimings::new();
        let result = Pipeline::new(&design)
            .observe(&mut timings)
            .partition_with(&strategy::PareDown)
            .unwrap()
            .merge()
            .unwrap()
            .rewrite()
            .unwrap()
            .verify(VerifyOptions::default())
            .unwrap()
            .emit_c();
        assert!(result.report.is_some());
        let stages: Vec<Stage> = timings.reports.iter().map(|r| r.stage).collect();
        assert_eq!(
            stages,
            [
                Stage::Partition,
                Stage::Merge,
                Stage::Rewrite,
                Stage::Verify,
                Stage::EmitC
            ]
        );
        assert!(timings
            .get(Stage::Partition)
            .unwrap()
            .detail
            .contains("pare-down"));
        assert!(timings
            .get(Stage::Verify)
            .unwrap()
            .detail
            .contains("sample"));
    }

    #[test]
    fn closure_observer_works() {
        let design = garage();
        let mut count = 0usize;
        let mut obs = |_: &StageReport| count += 1;
        Pipeline::new(&design)
            .observe(&mut obs)
            .partition_with(&strategy::PareDown)
            .unwrap()
            .merge()
            .unwrap()
            .rewrite()
            .unwrap()
            .skip_verify()
            .emit_c();
        assert_eq!(count, 4, "partition, merge, rewrite, emit-c");
    }

    #[test]
    fn shim_matches_staged_api() {
        let design = garage();
        let via_shim = synthesize(&design, &SynthesisOptions::default()).unwrap();
        let via_stages = Pipeline::new(&design)
            .partition_with(&strategy::PareDown)
            .unwrap()
            .merge()
            .unwrap()
            .rewrite()
            .unwrap()
            .verify(VerifyOptions::default())
            .unwrap()
            .emit_c();
        assert_eq!(via_shim.partitioning, via_stages.partitioning);
        assert_eq!(via_shim.c_sources, via_stages.c_sources);
        assert_eq!(via_shim.size_estimates, via_stages.size_estimates);
    }

    #[test]
    fn no_verify_skips_report() {
        let options = SynthesisOptions {
            verify: false,
            ..Default::default()
        };
        let result = synthesize(&garage(), &options).unwrap();
        assert!(result.report.is_none());
    }

    #[test]
    fn sequential_chain_verified() {
        // button -> toggle -> pulse -> delay chain exercises on-tick merge.
        let mut d = Design::new("seq");
        let b = d.add_block("btn", SensorKind::Button);
        let t = d.add_block("tog", ComputeKind::Toggle);
        let p = d.add_block("pg", ComputeKind::PulseGen { ticks: 4 });
        let o = d.add_block("buzzer", OutputKind::Buzzer);
        d.connect((b, 0), (t, 0)).unwrap();
        d.connect((t, 0), (p, 0)).unwrap();
        d.connect((p, 0), (o, 0)).unwrap();
        let result = synthesize(&d, &SynthesisOptions::default()).unwrap();
        assert_eq!(result.inner_after(), 1);
        assert!(result.report.unwrap().is_equivalent());
    }

    #[test]
    fn observer_can_abort_any_fallible_stage() {
        use crate::observe::StageAbort;

        /// Vetoes one chosen stage, allows the rest.
        struct Veto(Stage);
        impl Observer for Veto {
            fn on_stage(&mut self, _: &StageReport) {}
            fn before_stage(&mut self, stage: Stage) -> Result<(), StageAbort> {
                if stage == self.0 {
                    Err(StageAbort::fault(format!("injected at {stage}")))
                } else {
                    Ok(())
                }
            }
        }

        let design = garage();
        for target in [
            Stage::Partition,
            Stage::Merge,
            Stage::Rewrite,
            Stage::Verify,
        ] {
            let mut veto = Veto(target);
            let err = Pipeline::new(&design)
                .observe(&mut veto)
                .partition_with(&strategy::PareDown)
                .and_then(Partitioned::merge)
                .and_then(Merged::rewrite)
                .and_then(|r| r.verify(VerifyOptions::default()))
                .map(Verified::emit_c)
                .expect_err("the vetoed stage must abort");
            match err {
                SynthError::Aborted { stage, abort } => {
                    assert_eq!(stage, target);
                    assert!(!abort.timeout);
                    assert_eq!(abort.message, format!("injected at {target}"));
                    assert_eq!(
                        err_display(target),
                        format!("{}", SynthError::Aborted { stage, abort })
                    );
                }
                other => panic!("expected Aborted, got {other:?}"),
            }
        }

        fn err_display(stage: Stage) -> String {
            format!("stage {stage} aborted: injected at {stage}")
        }
    }

    #[test]
    fn timeout_aborts_are_classified() {
        use crate::observe::StageAbort;
        let abort = StageAbort::timeout("job timed out before merge");
        assert!(abort.timeout);
        assert_eq!(abort.to_string(), "job timed out before merge");
    }

    #[test]
    fn default_before_stage_allows_everything() {
        // A plain closure observer (no explicit before_stage) never aborts.
        let design = garage();
        let mut count = 0usize;
        let mut obs = |_: &StageReport| count += 1;
        let result = Pipeline::new(&design)
            .observe(&mut obs)
            .partition_with(&strategy::PareDown)
            .unwrap()
            .merge()
            .unwrap()
            .rewrite()
            .unwrap()
            .verify(VerifyOptions::default())
            .unwrap()
            .emit_c();
        assert!(result.report.is_some());
        assert_eq!(count, 5);
    }

    #[test]
    fn lint_stage_runs_first_and_records_outcome() {
        use crate::observe::StageTimings;
        let design = garage();
        let mut timings = StageTimings::new();
        let result = Pipeline::new(&design)
            .lint(LintConfig::default())
            .observe(&mut timings)
            .partition_with(&strategy::PareDown)
            .unwrap()
            .merge()
            .unwrap()
            .rewrite()
            .unwrap()
            .skip_verify()
            .emit_c();
        assert_eq!(result.lint, Some(LintOutcome::default()));
        let stages: Vec<Stage> = timings.reports.iter().map(|r| r.stage).collect();
        assert_eq!(
            stages,
            [
                Stage::Lint,
                Stage::Partition,
                Stage::Merge,
                Stage::Rewrite,
                Stage::EmitC
            ]
        );
        assert_eq!(
            timings.get(Stage::Lint).unwrap().detail,
            "0 error(s), 0 warning(s)"
        );
        // Without .lint() the stage never runs and the result records None.
        let result = Pipeline::new(&design)
            .partition_with(&strategy::PareDown)
            .unwrap()
            .merge()
            .unwrap()
            .rewrite()
            .unwrap()
            .skip_verify()
            .emit_c();
        assert_eq!(result.lint, None);
    }

    #[test]
    fn lint_stage_rejects_under_deny_level() {
        use eblocks_lint::DenyLevel;
        let design = garage();
        // max_fanout 0 makes every wired output port a W008 warning; only
        // deny=warnings turns that into a rejection.
        let warny = LintConfig {
            max_fanout: 0,
            ..LintConfig::default()
        };
        let ok = Pipeline::new(&design)
            .lint(warny)
            .partition_with(&strategy::PareDown)
            .unwrap();
        assert!(ok.partitioning().num_partitions() > 0);

        let strict = LintConfig {
            deny: DenyLevel::Warnings,
            ..warny
        };
        let err = match Pipeline::new(&design)
            .lint(strict)
            .partition_with(&strategy::PareDown)
        {
            Err(e) => e,
            Ok(_) => panic!("warnings denied"),
        };
        match err {
            SynthError::LintRejected { report } => {
                assert!(report.errors() == 0 && report.warnings() > 0);
                let display = SynthError::LintRejected { report }.to_string();
                assert!(
                    display.starts_with("lint rejected the design:"),
                    "{display}"
                );
                assert!(display.contains("W008"), "{display}");
            }
            other => panic!("expected LintRejected, got {other:?}"),
        }
    }

    #[test]
    fn lint_stage_can_be_vetoed() {
        use crate::observe::StageAbort;
        struct VetoLint;
        impl Observer for VetoLint {
            fn on_stage(&mut self, _: &StageReport) {}
            fn before_stage(&mut self, stage: Stage) -> Result<(), StageAbort> {
                if stage == Stage::Lint {
                    Err(StageAbort::fault("injected at lint"))
                } else {
                    Ok(())
                }
            }
        }
        let design = garage();
        let mut veto = VetoLint;
        let err = match Pipeline::new(&design)
            .lint(LintConfig::default())
            .observe(&mut veto)
            .partition_with(&strategy::PareDown)
        {
            Err(e) => e,
            Ok(_) => panic!("lint stage vetoed"),
        };
        assert!(matches!(
            err,
            SynthError::Aborted {
                stage: Stage::Lint,
                ..
            }
        ));
    }

    #[test]
    fn shim_applies_lint_option() {
        let options = SynthesisOptions {
            lint: Some(LintConfig::default()),
            verify: false,
            ..Default::default()
        };
        let result = synthesize(&garage(), &options).unwrap();
        assert_eq!(result.lint, Some(LintOutcome::default()));
    }

    #[test]
    fn invalid_design_rejected() {
        let mut d = Design::new("bad");
        d.add_block("g", ComputeKind::and2());
        assert!(matches!(
            synthesize(&d, &SynthesisOptions::default()),
            Err(SynthError::InvalidDesign(_))
        ));
        // The staged API rejects it at the partition stage too.
        assert!(matches!(
            Pipeline::new(&d).partition_with(&strategy::PareDown),
            Err(SynthError::InvalidDesign(_))
        ));
    }
}

#[cfg(test)]
mod optimizer_tests {
    use super::*;
    use eblocks_codegen::estimate_size;

    #[test]
    fn optimizer_never_grows_programs_and_preserves_equivalence() {
        // Verification runs against the optimized programs, so a successful
        // default synthesis already proves behavior; compare sizes too.
        for entry in eblocks_designs::all() {
            let optimized = synthesize(&entry.design, &SynthesisOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            let raw = synthesize(
                &entry.design,
                &SynthesisOptions {
                    optimize: false,
                    verify: false,
                    ..Default::default()
                },
            )
            .unwrap();
            for ((name_a, a), (name_b, b)) in
                optimized.size_estimates.iter().zip(&raw.size_estimates)
            {
                assert_eq!(name_a, name_b);
                assert!(
                    a.words <= b.words,
                    "{}/{name_a}: optimized {} > raw {}",
                    entry.name,
                    a.words,
                    b.words
                );
            }
            // Spot check: the merged AND/NOT tables actually shrink
            // somewhere in the library.
            let _ = estimate_size;
        }
    }
}
