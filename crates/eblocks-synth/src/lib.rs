//! End-to-end eBlock system synthesis (Fig. 2 of the paper).
//!
//! The pipeline takes a user design of pre-defined blocks and produces an
//! optimized network in which clusters of compute blocks are replaced by
//! programmable blocks with automatically generated software:
//!
//! 1. **partition** the inner blocks ([`eblocks_partition`]) — any
//!    [`Partitioner`](eblocks_partition::Partitioner) strategy: PareDown by
//!    default, or exhaustive / aggregation / refine / anneal by name via
//!    [`eblocks_partition::Registry`];
//! 2. **generate code** for each partition ([`eblocks_codegen`]): a merged
//!    behavior program, its C translation, and a PIC16F628 size estimate;
//! 3. **rewrite the network**: partition members disappear, programmable
//!    blocks appear, and every crossing wire is rerouted to the assigned
//!    physical pin;
//! 4. optionally **verify** by co-simulating the original and synthesized
//!    networks under a stimulus that exercises every sensor
//!    ([`eblocks_sim::equivalence`]).
//!
//! # Example
//!
//! The staged [`Pipeline`] lets callers pick a strategy at runtime, stop at
//! any stage, and observe per-stage timing; [`synthesize`] remains as a
//! one-call shim:
//!
//! ```
//! use eblocks_designs::podium_timer_3;
//! use eblocks_partition::strategy::PareDown;
//! use eblocks_synth::{Pipeline, VerifyOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = podium_timer_3();
//! let result = Pipeline::new(&design)
//!     .partition_with(&PareDown)?
//!     .merge()?
//!     .rewrite()?
//!     .verify(VerifyOptions::default())?
//!     .emit_c();
//! // 8 pre-defined compute blocks become 2 programmable + 1 pre-defined.
//! assert_eq!(result.synthesized.census().inner_total(), 3);
//! assert!(result.report.as_ref().is_some_and(|r| r.is_equivalent()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod observe;
pub mod pipeline;
pub mod rewrite;
pub mod stimulus;

pub use eblocks_lint::{DenyLevel, LintConfig, LintOutcome, LintReport};
pub use error::SynthError;
pub use observe::{Observer, Stage, StageAbort, StageReport, StageStat, StageTimings};
pub use pipeline::{
    synthesize, Algorithm, Merged, Partitioned, Pipeline, Rewritten, SynthesisOptions,
    SynthesisResult, Verified, VerifyOptions,
};
pub use rewrite::rewrite_network;
pub use stimulus::exercise_all_sensors;
