//! Batch determinism: the same manifest must produce a byte-identical
//! (timings-off) `BatchReport` regardless of worker count, and a poisoned
//! job must be reported as failed without taking down the batch.

use eblocks_farm::{run_batch, Batch, FarmConfig, JobStatus, JsonOptions};

const MANIFEST: &str = "\
# mixed sources, mixed strategies, mixed modes
default partitioner=pare-down
job library=\"Ignition Illuminator\"
job library=\"Podium Timer 3\" partitioner=refine
job library=\"Two-Zone Security\" partitioner=aggregation verify=false
job generated=12 seed=7 mode=partition
job generated=20 seed=9 mode=partition partitioner=anneal
job library=\"No Such Design\"                     # deliberate failure
";

#[test]
fn same_manifest_same_bytes_for_1_and_8_workers() {
    let batch = Batch::parse(MANIFEST).unwrap();
    let sequential = run_batch(&batch, &FarmConfig::with_workers(1));
    let parallel = run_batch(&batch, &FarmConfig::with_workers(8));

    assert_eq!(sequential.workers, 1);
    assert_eq!(parallel.workers, batch.jobs.len().min(8));
    assert_eq!(sequential.succeeded(), batch.jobs.len() - 1);
    assert_eq!(sequential.failed(), 1);

    let options = JsonOptions::default(); // timings off: deterministic
    assert_eq!(
        sequential.to_json(&options),
        parallel.to_json(&options),
        "sorted reports must be byte-identical across worker counts"
    );

    // Re-running the same batch is also byte-stable.
    let again = run_batch(&batch, &FarmConfig::with_workers(8));
    assert_eq!(parallel.to_json(&options), again.to_json(&options));

    // With timings on the reports still agree on everything but clocks.
    let timed = sequential.to_json(&JsonOptions { timings: true });
    assert!(timed.contains("elapsed_ms"), "{timed}");
}

#[test]
fn poisoned_job_is_isolated() {
    use eblocks_core::Design;
    use eblocks_partition::{PartitionConstraints, Partitioner, Partitioning};

    struct Poison;
    impl Partitioner for Poison {
        fn name(&self) -> &'static str {
            "poison"
        }
        fn partition(&self, _: &Design, _: &PartitionConstraints) -> Partitioning {
            panic!("injected failure")
        }
    }

    let batch = Batch::parse(
        "job library=\"Ignition Illuminator\"\n\
         job library=\"Carpool Alert\" partitioner=poison\n\
         job library=\"Night Lamp Controller\"\n",
    )
    .unwrap();
    let mut config = FarmConfig::with_workers(3);
    config.registry.register("poison", || Box::new(Poison));

    let report = run_batch(&batch, &config);
    assert_eq!(report.jobs.len(), 3, "the batch ran to completion");
    assert_eq!(report.succeeded(), 2);
    assert!(matches!(
        &report.jobs[1].status,
        JobStatus::Panicked(message) if message.contains("injected failure")
    ));
    assert!(report.jobs[0].status.is_ok());
    assert!(report.jobs[2].status.is_ok());
}
