//! Batch determinism: the same manifest must produce a byte-identical
//! (timings-off) `BatchReport` regardless of worker count, a poisoned
//! job must be reported as failed without taking down the batch, and
//! `BatchProgress` notifications must respect the scheduler's ordering
//! contract at every worker count.

use eblocks_farm::{
    run_batch, run_batch_with_progress, Batch, BatchProgress, FarmConfig, Job, JobReport,
    JobStatus, JsonOptions,
};
use std::sync::Mutex;

const MANIFEST: &str = "\
# mixed sources, mixed strategies, mixed modes
default partitioner=pare-down
job library=\"Ignition Illuminator\"
job library=\"Podium Timer 3\" partitioner=refine
job library=\"Two-Zone Security\" partitioner=aggregation verify=false
job generated=12 seed=7 mode=partition
job generated=20 seed=9 mode=partition partitioner=anneal
job library=\"No Such Design\"                     # deliberate failure
";

#[test]
fn same_manifest_same_bytes_for_1_and_8_workers() {
    let batch = Batch::parse(MANIFEST).unwrap();
    let sequential = run_batch(&batch, &FarmConfig::with_workers(1));
    let parallel = run_batch(&batch, &FarmConfig::with_workers(8));

    assert_eq!(sequential.workers, 1);
    assert_eq!(parallel.workers, batch.jobs.len().min(8));
    assert_eq!(sequential.succeeded(), batch.jobs.len() - 1);
    assert_eq!(sequential.failed(), 1);

    let options = JsonOptions::default(); // timings off: deterministic
    assert_eq!(
        sequential.to_json(&options),
        parallel.to_json(&options),
        "sorted reports must be byte-identical across worker counts"
    );

    // Re-running the same batch is also byte-stable.
    let again = run_batch(&batch, &FarmConfig::with_workers(8));
    assert_eq!(parallel.to_json(&options), again.to_json(&options));

    // With timings on the reports still agree on everything but clocks.
    let timed = sequential.to_json(&JsonOptions { timings: true });
    assert!(timed.contains("elapsed_ms"), "{timed}");
}

#[test]
fn poisoned_job_is_isolated() {
    use eblocks_core::Design;
    use eblocks_partition::{PartitionConstraints, Partitioner, Partitioning};

    struct Poison;
    impl Partitioner for Poison {
        fn name(&self) -> &'static str {
            "poison"
        }
        fn partition(&self, _: &Design, _: &PartitionConstraints) -> Partitioning {
            panic!("injected failure")
        }
    }

    let batch = Batch::parse(
        "job library=\"Ignition Illuminator\"\n\
         job library=\"Carpool Alert\" partitioner=poison\n\
         job library=\"Night Lamp Controller\"\n",
    )
    .unwrap();
    let mut config = FarmConfig::with_workers(3);
    config.registry.register("poison", || Box::new(Poison));

    let report = run_batch(&batch, &config);
    assert_eq!(report.jobs.len(), 3, "the batch ran to completion");
    assert_eq!(report.succeeded(), 2);
    assert!(matches!(
        &report.jobs[1].status,
        JobStatus::Panicked(message) if message.contains("injected failure")
    ));
    assert!(report.jobs[0].status.is_ok());
    assert!(report.jobs[2].status.is_ok());
}

/// One progress notification, in arrival order.
#[derive(Debug, Clone, PartialEq)]
enum Event {
    Started(usize),
    Finished(usize, String),
}

/// Records every notification; `Sync` via the interior mutex.
#[derive(Default)]
struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl BatchProgress for Recorder {
    fn job_started(&self, index: usize, _job: &Job) {
        self.events.lock().unwrap().push(Event::Started(index));
    }
    fn job_finished(&self, index: usize, report: &JobReport) {
        self.events
            .lock()
            .unwrap()
            .push(Event::Finished(index, format!("{:?}", report.status)));
    }
}

#[test]
fn progress_events_respect_the_ordering_contract() {
    // At every worker count: each job starts exactly once, finishes
    // exactly once, starts strictly before it finishes, and the status a
    // listener hears is exactly the row the final report holds.
    let batch = Batch::parse(MANIFEST).unwrap();
    for workers in [1, 2, 8] {
        let recorder = Recorder::default();
        let report = run_batch_with_progress(&batch, &FarmConfig::with_workers(workers), &recorder);
        let events = recorder.events.into_inner().unwrap();
        assert_eq!(
            events.len(),
            batch.jobs.len() * 2,
            "{workers} workers: one start and one finish per job"
        );
        for index in 0..batch.jobs.len() {
            let started: Vec<usize> = events
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e, Event::Started(i) if *i == index))
                .map(|(at, _)| at)
                .collect();
            let finished: Vec<usize> = events
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e, Event::Finished(i, _) if *i == index))
                .map(|(at, _)| at)
                .collect();
            assert_eq!(
                started.len(),
                1,
                "{workers} workers: job {index} started once"
            );
            assert_eq!(
                finished.len(),
                1,
                "{workers} workers: job {index} finished once"
            );
            assert!(
                started[0] < finished[0],
                "{workers} workers: job {index} finished before it started"
            );
            let Event::Finished(_, heard) = &events[finished[0]] else {
                unreachable!()
            };
            assert_eq!(
                heard,
                &format!("{:?}", report.jobs[index].status),
                "{workers} workers: listener heard a different status than the report"
            );
        }
    }

    // Sequential execution additionally pins the interleaving: submission
    // order, start immediately followed by finish.
    let recorder = Recorder::default();
    run_batch_with_progress(&batch, &FarmConfig::with_workers(1), &recorder);
    let events = recorder.events.into_inner().unwrap();
    for (index, pair) in events.chunks(2).enumerate() {
        assert_eq!(pair[0], Event::Started(index));
        assert!(matches!(&pair[1], Event::Finished(i, _) if *i == index));
    }
}

#[test]
fn panicking_listener_never_corrupts_the_report() {
    // A listener that panics on every notification must not change the
    // deterministic report by a single byte, at any worker count.
    struct Grenade;
    impl BatchProgress for Grenade {
        fn job_started(&self, _: usize, _: &Job) {
            panic!("listener panic on start");
        }
        fn job_finished(&self, _: usize, _: &JobReport) {
            panic!("listener panic on finish");
        }
    }

    let batch = Batch::parse(MANIFEST).unwrap();
    let options = JsonOptions::default();
    let baseline = run_batch(&batch, &FarmConfig::with_workers(1)).to_json(&options);
    for workers in [1, 8] {
        let report = run_batch_with_progress(&batch, &FarmConfig::with_workers(workers), &Grenade);
        assert_eq!(
            report.to_json(&options),
            baseline,
            "{workers} workers: panicking listener changed the report"
        );
    }
}
