//! Manifest parsers under fire: `Batch::parse` and `Batch::from_json`
//! must return `Ok` or `Err` on *any* input — arbitrary text, and
//! targeted mutations of valid manifests — and never panic. The seeds
//! are pinned, so every CI run replays the same case set.

use eblocks_farm::Batch;
use proptest::prelude::*;

/// A valid v1 (line-oriented) manifest used as a mutation substrate.
const VALID_MANIFEST: &str = "\
# fuzz substrate (v1)
default partitioner=pare-down verify=false

job library=\"Podium Timer 3\" partitioner=refine name=pt3
job generated=20 seed=7 mode=partition
job library=\"Carpool Alert\" optimize=true
";

/// A valid v2 (JSON) manifest used as a mutation substrate.
const VALID_JSON: &str = r#"{
  "default_partitioner": "pare-down",
  "jobs": [
    {"source": {"library": "Ignition Illuminator"}},
    {"source": {"generated": {"inner": 12, "seed": 5}},
     "options": {"mode": "partition"}}
  ]
}"#;

/// Characters the manifest grammar cares about, plus newline (which the
/// printable-string strategy never emits but the line parser pivots on).
const SPICE: &[char] = &[
    '\n', '"', '=', '#', '{', '}', '[', ']', ':', ',', '\\', '\t',
];

/// One proptest-chosen edit applied to `text`: insert, delete, replace,
/// or truncate at a character boundary.
fn mutate(text: &str, op: u8, position: usize, spice: usize) -> String {
    let chars: Vec<char> = text.chars().collect();
    let at = if chars.is_empty() {
        0
    } else {
        position % chars.len()
    };
    let c = SPICE[spice % SPICE.len()];
    let mut out = chars.clone();
    match op % 4 {
        0 => out.insert(at, c),
        1 => {
            if !out.is_empty() {
                out.remove(at);
            }
        }
        2 => {
            if !out.is_empty() {
                out[at] = c;
            }
        }
        _ => out.truncate(at),
    }
    out.into_iter().collect()
}

/// Both parsers over one input; only a panic can fail the calling test.
fn feed(text: &str) {
    let _ = Batch::parse(text);
    let _ = Batch::from_json(text);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256).with_rng_seed(0xEB10C5))]

    #[test]
    fn parsers_never_panic_on_arbitrary_text(text in "\\PC*") {
        feed(&text);
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_lines(
        lines in proptest::collection::vec("\\PC*", 0..8)
    ) {
        feed(&lines.join("\n"));
    }

    #[test]
    fn parsers_never_panic_on_mutated_manifests(
        edits in proptest::collection::vec(
            (any::<u8>(), any::<usize>(), any::<usize>()),
            1..6,
        )
    ) {
        for substrate in [VALID_MANIFEST, VALID_JSON] {
            let mut text = substrate.to_string();
            for (op, position, spice) in &edits {
                text = mutate(&text, *op, *position, *spice);
            }
            feed(&text);
        }
    }
}

#[test]
fn fuzz_substrates_are_valid() {
    // Guard the substrates: mutation fuzzing of an already-broken input
    // would only ever exercise the error path.
    assert_eq!(Batch::parse(VALID_MANIFEST).unwrap().jobs.len(), 3);
    assert_eq!(Batch::from_json(VALID_JSON).unwrap().jobs.len(), 2);
}
