//! The typed request/response API for synthesis — the surface an RPC
//! server (or spool-directory watcher) would speak, and the one the CLI's
//! `batch --json` / `synth` commands are thin front ends for.
//!
//! Everything here is derive-serialized through the vendored `serde`'s
//! [`Value`](serde::Value) tree, so a batch can arrive as JSON (manifest
//! format v2, [`Batch::from_json`]) and a report leaves as JSON through the
//! same types:
//!
//! * **Requests**: [`BatchRequest`] (a list of [`JobSpec`]s plus a default
//!   strategy) and [`SynthRequest`] (one design through the full
//!   pipeline). [`DesignSource`] names where a design comes from;
//!   [`SynthOptions`] carries the optional pipeline knobs — every field is
//!   optional, and omitted fields keep the engine defaults.
//! * **Responses**: [`BatchResponse`] (wrapping a
//!   [`BatchReport`]) and [`SynthResponse`] (stats
//!   plus the synthesized netlist text and C sources). Wall-clock fields
//!   are `Option`s populated only when timings were requested, so the
//!   deterministic report is byte-identical across worker counts.
//!
//! # Example
//!
//! A request round-trips from JSON through the same types `run_batch`
//! consumes:
//!
//! ```
//! use eblocks_farm::api::BatchRequest;
//! use eblocks_farm::{run_batch, FarmConfig, JsonOptions};
//! use eblocks_farm::api::BatchResponse;
//!
//! let request: BatchRequest = serde::json::from_str(
//!     r#"{
//!         "default_partitioner": "refine",
//!         "jobs": [
//!             {"source": {"library": "Ignition Illuminator"}},
//!             {"source": {"generated": {"inner": 10, "seed": 3}},
//!              "options": {"mode": "partition"}}
//!         ]
//!     }"#,
//! ).unwrap();
//! let report = run_batch(&request.to_batch(), &FarmConfig::with_workers(2));
//! let response = BatchResponse::from_report(&report, &JsonOptions::default());
//! assert_eq!(response.batch.succeeded, 2);
//! println!("{}", serde::json::to_string(&response));
//! ```

use crate::job::{Batch, Job, JobMode, JobSource};
use crate::report::{BatchReport, JobReport, JobStatus, JsonOptions};
use eblocks_lint::{DenyLevel, LintConfig};
use eblocks_partition::Registry;
use eblocks_synth::{Stage, StageTimings};
use serde::{Deserialize, Serialize};

/// Where a request's design comes from (the wire name for
/// [`JobSource`]): `{"netlist": "path"}`, `{"library": "Name"}`, or
/// `{"generated": {"inner": N, "seed": S}}`.
pub use crate::job::JobSource as DesignSource;

/// Optional pipeline knobs for one job. Every field is an `Option`;
/// omitted fields keep the engine defaults (synth mode, verify on,
/// optimize on, the paper's 2-in/2-out pin budget).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthOptions {
    /// Full pipeline (`"synth"`, default) or partition analysis only
    /// (`"partition"`).
    pub mode: Option<JobMode>,
    /// Co-simulate original vs synthesized (default true).
    pub verify: Option<bool>,
    /// Run the behavior-tree optimizer before emitting C (default true).
    pub optimize: Option<bool>,
    /// Programmable-block input pins (default 2).
    pub inputs: Option<u8>,
    /// Programmable-block output pins (default 2).
    pub outputs: Option<u8>,
    /// Run the lint stage before synthesis (default: the farm's
    /// engine-level setting, usually off).
    pub lint: Option<bool>,
    /// Which severities reject the design when lint runs:
    /// `"errors"` (default) or `"warnings"`. Implies `lint: true`
    /// unless `lint: false` is set explicitly.
    pub lint_deny: Option<DenyLevel>,
}

impl SynthOptions {
    /// Applies the set fields onto `job`, leaving the rest untouched.
    fn apply(&self, job: &mut Job) {
        if let Some(mode) = self.mode {
            job.mode = mode;
        }
        if let Some(verify) = self.verify {
            job.verify = verify;
        }
        if let Some(optimize) = self.optimize {
            job.optimize = optimize;
        }
        if let Some(inputs) = self.inputs {
            job.spec.inputs = inputs;
        }
        if let Some(outputs) = self.outputs {
            job.spec.outputs = outputs;
        }
        match (self.lint, self.lint_deny) {
            (Some(false), _) => job.lint = None,
            (Some(true), deny) => {
                job.lint = Some(LintConfig::denying(deny.unwrap_or_default()));
            }
            (None, Some(deny)) => job.lint = Some(LintConfig::denying(deny)),
            (None, None) => {}
        }
    }

    /// Captures every knob from `job` (all fields `Some`).
    fn capture(job: &Job) -> Self {
        Self {
            mode: Some(job.mode),
            verify: Some(job.verify),
            optimize: Some(job.optimize),
            inputs: Some(job.spec.inputs),
            outputs: Some(job.spec.outputs),
            lint: Some(job.lint.is_some()),
            lint_deny: job.lint.map(|config| config.deny),
        }
    }
}

/// One job of a [`BatchRequest`]: a design source plus optional name,
/// strategy, and pipeline options.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Display name; defaults to the source's natural name (file stem,
    /// library name, `gen<inner>-<seed>`).
    pub name: Option<String>,
    /// Where the design comes from.
    pub source: DesignSource,
    /// Strategy name; `None` falls back to the batch/engine default.
    pub partitioner: Option<String>,
    /// Pipeline knobs; omitted fields keep the engine defaults.
    #[serde(default)]
    pub options: SynthOptions,
}

impl JobSpec {
    /// A spec over `source` with everything else defaulted.
    pub fn new(source: DesignSource) -> Self {
        Self {
            name: None,
            source,
            partitioner: None,
            options: SynthOptions::default(),
        }
    }

    /// The farm [`Job`] this spec describes.
    pub fn to_job(&self) -> Job {
        let mut job = match &self.source {
            JobSource::Netlist(path) => Job::netlist(path.clone()),
            JobSource::Library(name) => Job::library(name.clone()),
            JobSource::Generated { inner, seed } => Job::generated(*inner, *seed),
        };
        if let Some(name) = &self.name {
            job = job.named(name.clone());
        }
        job.partitioner = self.partitioner.clone();
        self.options.apply(&mut job);
        job
    }

    /// The spec describing `job` exactly (every option pinned).
    pub fn from_job(job: &Job) -> Self {
        Self {
            name: Some(job.name.clone()),
            source: job.source.clone(),
            partitioner: job.partitioner.clone(),
            options: SynthOptions::capture(job),
        }
    }
}

/// A batch of jobs as it would arrive over RPC — manifest format v2.
///
/// [`Batch::from_json`] parses one from JSON text; [`BatchRequest::to_batch`]
/// and [`BatchRequest::from_batch`] convert to and from the engine's
/// [`Batch`] losslessly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchRequest {
    /// Strategy for jobs that set none (the manifest's
    /// `default partitioner=…`); the engine-level override still wins.
    pub default_partitioner: Option<String>,
    /// The jobs, in submission order.
    pub jobs: Vec<JobSpec>,
}

impl BatchRequest {
    /// The engine [`Batch`] this request describes.
    pub fn to_batch(&self) -> Batch {
        Batch {
            jobs: self.jobs.iter().map(JobSpec::to_job).collect(),
            default_partitioner: self.default_partitioner.clone(),
        }
    }

    /// The request describing `batch` exactly.
    pub fn from_batch(batch: &Batch) -> Self {
        Self {
            default_partitioner: batch.default_partitioner.clone(),
            jobs: batch.jobs.iter().map(JobSpec::from_job).collect(),
        }
    }
}

/// How one job of a [`BatchResponse`] ended. Serializes as
/// `"ok"` / `"failed"` / `"panicked"` / `"timed-out"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// The job completed; its stat fields are populated.
    #[serde(rename = "ok")]
    Ok,
    /// The job returned an error (see the `error` field).
    #[serde(rename = "failed")]
    Failed,
    /// The job panicked; the worker caught it (see the `error` field).
    #[serde(rename = "panicked")]
    Panicked,
    /// The job exceeded its per-attempt time budget (see the `error`
    /// field).
    #[serde(rename = "timed-out")]
    TimedOut,
}

/// One pipeline stage's wall-clock time in a response (`stages_ms`
/// arrays). Only present when timings were requested.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMs {
    /// Which stage.
    pub stage: Stage,
    /// Wall-clock milliseconds, rounded to 3 decimals.
    pub ms: f64,
    /// The stage's one-line outcome ("2 partitions", "33 samples", …).
    pub detail: String,
}

/// Per-stage aggregate over a whole batch (runs, total and slowest run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSummary {
    /// Which stage.
    pub stage: Stage,
    /// How many jobs ran this stage.
    pub runs: usize,
    /// Milliseconds summed over all runs.
    pub total_ms: f64,
    /// The single slowest run, in milliseconds.
    pub max_ms: f64,
}

/// One row of a [`BatchResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResponse {
    /// The job's display name.
    pub name: String,
    /// The strategy that actually ran (after default resolution).
    pub partitioner: String,
    /// How the job ended.
    pub status: JobOutcome,
    /// The error message, for failed/panicked/timed-out jobs.
    pub error: Option<String>,
    /// Retry attempts consumed beyond the first try; omitted when 0 so
    /// retry-free reports keep their historical byte layout.
    pub retries: Option<u32>,
    /// Inner blocks before partitioning (successful jobs only).
    pub inner_before: Option<usize>,
    /// Inner blocks after partitioning.
    pub inner_after: Option<usize>,
    /// Programmable blocks produced.
    pub partitions: Option<usize>,
    /// Whether the strategy ran to completion.
    pub complete: Option<bool>,
    /// Whether equivalence verification ran and passed.
    pub verified: Option<bool>,
    /// Total bytes of emitted C.
    pub c_bytes: Option<usize>,
    /// Error-severity lint findings; omitted when lint was off or found
    /// none, so lint-free reports keep their historical byte layout.
    pub lint_errors: Option<usize>,
    /// Warning-severity lint findings; omitted when lint was off or
    /// found none.
    pub lint_warnings: Option<usize>,
    /// Lint findings carrying a machine-applicable fix; omitted when
    /// lint was off or none were fixable.
    pub lint_fixes: Option<usize>,
    /// Per-stage wall-clock times; only with timings.
    pub stages_ms: Option<Vec<StageMs>>,
    /// Whole-job wall-clock milliseconds; only with timings.
    pub elapsed_ms: Option<f64>,
}

impl JobResponse {
    fn from_report(report: &JobReport, timings: bool) -> Self {
        let (status, error) = match &report.status {
            JobStatus::Ok => (JobOutcome::Ok, None),
            JobStatus::Failed(e) => (JobOutcome::Failed, Some(e.clone())),
            JobStatus::Panicked(e) => (JobOutcome::Panicked, Some(e.clone())),
            JobStatus::TimedOut(e) => (JobOutcome::TimedOut, Some(e.clone())),
        };
        let stats = report.stats.as_ref();
        Self {
            name: report.name.clone(),
            partitioner: report.partitioner.clone(),
            status,
            error,
            retries: (report.retries > 0).then_some(report.retries),
            inner_before: stats.map(|s| s.inner_before),
            inner_after: stats.map(|s| s.inner_after),
            partitions: stats.map(|s| s.partitions),
            complete: stats.map(|s| s.complete),
            verified: stats.map(|s| s.verified),
            c_bytes: stats.map(|s| s.c_bytes),
            lint_errors: stats
                .and_then(|s| s.lint)
                .map(|l| l.errors)
                .filter(|&n| n > 0),
            lint_warnings: stats
                .and_then(|s| s.lint)
                .map(|l| l.warnings)
                .filter(|&n| n > 0),
            lint_fixes: stats
                .and_then(|s| s.lint)
                .map(|l| l.fix_count())
                .filter(|&n| n > 0),
            stages_ms: stats.filter(|_| timings).map(|s| stage_ms_rows(&s.timings)),
            elapsed_ms: timings.then(|| ms(report.elapsed)),
        }
    }
}

/// Batch-level aggregates of a [`BatchResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSummary {
    /// Total jobs in the batch.
    pub jobs: usize,
    /// Jobs that completed successfully.
    pub succeeded: usize,
    /// Jobs that failed, panicked, or timed out.
    pub failed: usize,
    /// Sum of per-job retry counts; omitted when no job retried so
    /// retry-free reports keep their historical byte layout.
    pub retries: Option<u32>,
    /// Sum of per-job `inner_before` over successful jobs.
    pub inner_before: usize,
    /// Sum of per-job `inner_after` over successful jobs.
    pub inner_after: usize,
    /// Sum of per-job `partitions` over successful jobs.
    pub partitions: usize,
    /// Sum of per-job `c_bytes` over successful jobs.
    pub c_bytes: usize,
    /// Sum of per-job lint errors; omitted when zero so lint-free
    /// reports keep their historical byte layout.
    pub lint_errors: Option<usize>,
    /// Sum of per-job lint warnings; omitted when zero.
    pub lint_warnings: Option<usize>,
    /// Sum of per-job machine-fixable lint findings; omitted when zero.
    pub lint_fixes: Option<usize>,
    /// Workers the pool used; only with timings.
    pub workers: Option<usize>,
    /// Batch wall-clock milliseconds; only with timings.
    pub elapsed_ms: Option<f64>,
    /// Per-stage aggregates over all jobs; only with timings.
    pub stages: Option<Vec<StageSummary>>,
}

/// A whole batch run as it would leave over RPC: aggregates plus one
/// [`JobResponse`] per job, in submission order.
///
/// With timings off (the default) every field is deterministic, so the
/// serialized response is byte-identical across worker counts and runs —
/// the property the CLI's golden-report test pins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchResponse {
    /// Batch-level aggregates.
    pub batch: BatchSummary,
    /// Per-job rows, in submission order.
    pub results: Vec<JobResponse>,
}

impl BatchResponse {
    /// A response view of `report`. `options.timings` populates the
    /// wall-clock fields (and makes the output nondeterministic).
    pub fn from_report(report: &BatchReport, options: &JsonOptions) -> Self {
        let timings = options.timings;
        let sum = |f: fn(&crate::report::JobStats) -> usize| -> usize {
            report
                .jobs
                .iter()
                .filter_map(|j| j.stats.as_ref())
                .map(f)
                .sum()
        };
        let retries: u32 = report.jobs.iter().map(|j| j.retries).sum();
        let lint_sum = |f: fn(&eblocks_lint::LintOutcome) -> usize| -> usize {
            report
                .jobs
                .iter()
                .filter_map(|j| j.stats.as_ref())
                .filter_map(|s| s.lint.as_ref())
                .map(f)
                .sum()
        };
        let lint_errors = lint_sum(|l| l.errors);
        let lint_warnings = lint_sum(|l| l.warnings);
        let lint_fixes = lint_sum(|l| l.fix_count());
        Self {
            batch: BatchSummary {
                jobs: report.jobs.len(),
                succeeded: report.succeeded(),
                failed: report.failed(),
                retries: (retries > 0).then_some(retries),
                inner_before: sum(|s| s.inner_before),
                inner_after: sum(|s| s.inner_after),
                partitions: sum(|s| s.partitions),
                c_bytes: sum(|s| s.c_bytes),
                lint_errors: (lint_errors > 0).then_some(lint_errors),
                lint_warnings: (lint_warnings > 0).then_some(lint_warnings),
                lint_fixes: (lint_fixes > 0).then_some(lint_fixes),
                workers: timings.then_some(report.workers),
                elapsed_ms: timings.then(|| ms(report.elapsed)),
                stages: timings.then(|| {
                    report
                        .stage_timings()
                        .summarize()
                        .into_iter()
                        .map(|stat| StageSummary {
                            stage: stat.stage,
                            runs: stat.runs,
                            total_ms: ms(stat.total),
                            max_ms: ms(stat.max),
                        })
                        .collect()
                }),
            },
            results: report
                .jobs
                .iter()
                .map(|job| JobResponse::from_report(job, timings))
                .collect(),
        }
    }
}

/// One design through the full synthesis pipeline, as a typed request.
///
/// The single-design sibling of [`BatchRequest`] — what `eblocks-cli
/// synth` builds from its argv, and what a synthesis RPC endpoint would
/// accept.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthRequest {
    /// Where the design comes from.
    pub source: DesignSource,
    /// Strategy name; `None` means `pare-down`.
    pub partitioner: Option<String>,
    /// Pipeline knobs. `mode` must be absent or `"synth"`: a synth
    /// request always runs the full pipeline (use a [`BatchRequest`] job
    /// with `"mode": "partition"` for partition-only analysis).
    #[serde(default)]
    pub options: SynthOptions,
}

impl SynthRequest {
    /// A request over `source` with everything else defaulted.
    pub fn new(source: DesignSource) -> Self {
        Self {
            source,
            partitioner: None,
            options: SynthOptions::default(),
        }
    }
}

/// One emitted C program of a [`SynthResponse`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CSource {
    /// The programmable block the program targets (`prog0`, …).
    pub block: String,
    /// The C source text.
    pub code: String,
}

/// Everything one [`synthesize`] call produced: stats, the synthesized
/// netlist text, and the per-block C programs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthResponse {
    /// The original design's name.
    pub design: String,
    /// The synthesized design's name (the netlist text's `design` header).
    pub synthesized: String,
    /// The strategy that ran.
    pub partitioner: String,
    /// Inner blocks before partitioning.
    pub inner_before: usize,
    /// Inner blocks after partitioning.
    pub inner_after: usize,
    /// Programmable blocks produced.
    pub partitions: usize,
    /// Whether the strategy ran to completion.
    pub complete: bool,
    /// Sample count at which equivalence was verified; `None` when
    /// verification was skipped.
    pub verified_samples: Option<usize>,
    /// Error-severity lint findings; omitted when lint was off or found
    /// none (a deny level of `"errors"` rejects before reaching here).
    pub lint_errors: Option<usize>,
    /// Warning-severity lint findings; omitted when lint was off or
    /// found none.
    pub lint_warnings: Option<usize>,
    /// The synthesized design, in netlist text format.
    pub netlist: String,
    /// One C program per programmable block.
    pub c_sources: Vec<CSource>,
    /// Per-stage wall-clock times (always populated; wall-clock, so not
    /// deterministic).
    pub stages_ms: Vec<StageMs>,
}

/// Runs `request` through the full pipeline with the built-in strategy
/// registry.
///
/// # Errors
///
/// A human-readable message: unknown strategy, unreadable/invalid design,
/// pipeline failure, or failed equivalence verification.
pub fn synthesize(request: &SynthRequest) -> Result<SynthResponse, String> {
    synthesize_with(request, &Registry::builtin())
}

/// [`synthesize`] against a caller-supplied strategy [`Registry`].
pub fn synthesize_with(
    request: &SynthRequest,
    registry: &Registry,
) -> Result<SynthResponse, String> {
    if request.options.mode == Some(JobMode::Partition) {
        return Err(
            "a synth request runs the full pipeline; use a batch job with \"mode\": \"partition\" for partition-only analysis"
                .to_string(),
        );
    }
    let spec = JobSpec {
        name: None,
        source: request.source.clone(),
        partitioner: request.partitioner.clone(),
        options: request.options,
    };
    let job = spec.to_job();
    let partitioner_name = request.partitioner.as_deref().unwrap_or("pare-down");
    let partitioner = crate::scheduler::resolve_strategy(registry, partitioner_name)?;
    let design = job.load_design()?;

    // The exact pipeline invocation the batch scheduler runs, so the RPC
    // and batch paths cannot drift.
    let mut timings = StageTimings::new();
    let result = crate::scheduler::run_synth_pipeline(
        &design,
        &job,
        job.lint,
        partitioner.as_ref(),
        &mut timings,
    )
    .map_err(|e| e.to_string())?;

    Ok(SynthResponse {
        design: design.name().to_string(),
        synthesized: result.synthesized.name().to_string(),
        partitioner: partitioner_name.to_string(),
        inner_before: result.inner_before(),
        inner_after: result.inner_after(),
        partitions: result.partitioning.num_partitions(),
        complete: result.partitioning.is_complete(),
        verified_samples: result.report.as_ref().map(|r| r.sample_times.len()),
        lint_errors: result.lint.map(|l| l.errors).filter(|&n| n > 0),
        lint_warnings: result.lint.map(|l| l.warnings).filter(|&n| n > 0),
        netlist: eblocks_core::netlist::to_netlist(&result.synthesized),
        c_sources: result
            .c_sources
            .iter()
            .map(|(block, code)| CSource {
                block: block.clone(),
                code: code.clone(),
            })
            .collect(),
        stages_ms: stage_ms_rows(&timings),
    })
}

// --------------------------------------------------------------- serve
// The service-mode envelope: what a long-running daemon (`eblocks-serve`)
// speaks over its line-delimited socket protocol, wrapping the request
// and response types above. Spool-directory traffic uses the bare
// payloads (a `BatchRequest` file in, a `BatchResponse` file out); the
// envelope exists so one socket connection can multiplex requests by id
// and interleave streamed progress with final replies.

/// One line of the socket protocol, client → server: an optional request
/// id (echoed on every reply; the server assigns `r0`, `r1`, … when
/// absent) plus the request itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Client-chosen correlation id, echoed on every reply to this
    /// request.
    pub id: Option<String>,
    /// The request.
    pub request: ServeRequest,
}

/// Everything a service-mode front end accepts. Externally tagged:
/// payload requests arrive as `{"batch": {...}}` / `{"synth": {...}}`,
/// control requests as the bare strings `"stats"` / `"shutdown"`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeRequest {
    /// Run a whole batch ([`BatchRequest`]) and reply with a
    /// [`BatchResponse`].
    #[serde(rename = "batch")]
    Batch(BatchRequest),
    /// Run one design through the full pipeline ([`SynthRequest`]) and
    /// reply with a [`SynthResponse`].
    #[serde(rename = "synth")]
    Synth(SynthRequest),
    /// Report the daemon's [`ServeStats`]; answered immediately, never
    /// queued.
    #[serde(rename = "stats")]
    Stats,
    /// Begin a graceful drain: stop admitting, finish everything already
    /// accepted, flush the outbox, exit 0.
    #[serde(rename = "shutdown")]
    Shutdown,
}

/// One line of the socket protocol, server → client: the request's id
/// plus one reply. A queued request produces an `admission` reply
/// immediately, zero or more `progress` replies while it runs, and
/// exactly one final `batch`/`synth`/`error` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplyEnvelope {
    /// The id of the request this reply answers (`None` only for errors
    /// that could not be matched to a request, e.g. unparseable lines).
    pub id: Option<String>,
    /// The reply.
    pub reply: ServeReply,
}

/// Everything the service-mode daemon sends back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServeReply {
    /// The admission verdict for a payload request, sent before any work
    /// happens.
    #[serde(rename = "admission")]
    Admission(AdmissionReply),
    /// A streamed per-job progress event for an accepted batch.
    #[serde(rename = "progress")]
    Progress(ProgressEvent),
    /// The final reply to an accepted `batch` request.
    #[serde(rename = "batch")]
    Batch(BatchResponse),
    /// The final reply to an accepted `synth` request.
    #[serde(rename = "synth")]
    Synth(SynthResponse),
    /// The reply to a `stats` request.
    #[serde(rename = "stats")]
    Stats(ServeStats),
    /// A request that failed outside the farm (unparseable line, synth
    /// error, rejected at admission after acceptance was impossible).
    #[serde(rename = "error")]
    Error(String),
    /// Acknowledges a `shutdown` request; the daemon drains and exits.
    #[serde(rename = "shutdown")]
    Shutdown,
}

/// The admission verdict for a payload request: `"accepted"`,
/// `"queue-full"`, or `"lint-rejected"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Admission {
    /// The request is in the work queue; a final reply will follow.
    #[serde(rename = "accepted")]
    Accepted,
    /// The bounded work queue is full; retry later. No work was done.
    #[serde(rename = "queue-full")]
    QueueFull,
    /// The admission lint gate rejected a design before any synthesis
    /// ran; `detail` names the offending job.
    #[serde(rename = "lint-rejected")]
    LintRejected,
}

/// The admission reply for a payload request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionReply {
    /// The verdict.
    pub status: Admission,
    /// Human-readable context for rejections (which job, which lint
    /// findings); omitted on acceptance.
    pub detail: Option<String>,
}

/// Which edge of a job's execution a [`ProgressEvent`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProgressKind {
    /// A worker claimed the job and is about to run it.
    #[serde(rename = "started")]
    Started,
    /// The job finished; `status`/`error` say how.
    #[serde(rename = "finished")]
    Finished,
}

/// One streamed per-job progress event, mirrored from the farm's
/// `BatchProgress` callbacks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressEvent {
    /// The job's index in submission order.
    pub job: usize,
    /// The job's display name.
    pub name: String,
    /// Started or finished.
    pub event: ProgressKind,
    /// How the job ended; only on `finished` events.
    pub status: Option<JobOutcome>,
    /// The error message for failed/panicked/timed-out jobs.
    pub error: Option<String>,
}

impl ProgressEvent {
    /// The `started` event for `job` at `index`.
    pub fn started(index: usize, job: &Job) -> Self {
        Self {
            job: index,
            name: job.name.clone(),
            event: ProgressKind::Started,
            status: None,
            error: None,
        }
    }

    /// The `finished` event for `report` at `index`.
    pub fn finished(index: usize, report: &JobReport) -> Self {
        let (status, error) = match &report.status {
            JobStatus::Ok => (JobOutcome::Ok, None),
            JobStatus::Failed(e) => (JobOutcome::Failed, Some(e.clone())),
            JobStatus::Panicked(e) => (JobOutcome::Panicked, Some(e.clone())),
            JobStatus::TimedOut(e) => (JobOutcome::TimedOut, Some(e.clone())),
        };
        Self {
            job: index,
            name: report.name.clone(),
            event: ProgressKind::Finished,
            status: Some(status),
            error,
        }
    }
}

/// A snapshot of the daemon's counters, answered for `stats` requests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Requests waiting in the bounded work queue.
    pub queue_depth: usize,
    /// Requests a worker is executing right now.
    pub in_flight: usize,
    /// Payload requests admitted to the queue since startup.
    pub accepted: u64,
    /// Payload requests turned away (queue full, lint rejection,
    /// malformed spool files) since startup.
    pub rejected: u64,
    /// Accepted requests fully answered since startup.
    pub completed: u64,
    /// Per-stage wall-clock aggregates over every job the daemon has
    /// completed (wall-clock, so not deterministic).
    pub stages: Vec<StageSummary>,
}

impl ServeStats {
    /// The [`StageSummary`] rows for `timings` (merged over completed
    /// jobs), in first-report order.
    pub fn summarize_stages(timings: &StageTimings) -> Vec<StageSummary> {
        timings
            .summarize()
            .into_iter()
            .map(|stat| StageSummary {
                stage: stat.stage,
                runs: stat.runs,
                total_ms: ms(stat.total),
                max_ms: ms(stat.max),
            })
            .collect()
    }
}

/// The structured error file the spool front end writes next to a
/// rejected input (and the outbox payload for requests that failed
/// outside the farm): `{"error": "..."}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorReply {
    /// What went wrong, human-readable.
    pub error: String,
}

/// Milliseconds rounded to 3 decimals (the precision the old hand-rolled
/// emitter printed).
fn ms(d: std::time::Duration) -> f64 {
    (d.as_secs_f64() * 1e6).round() / 1e3
}

fn stage_ms_rows(timings: &StageTimings) -> Vec<StageMs> {
    timings
        .reports
        .iter()
        .map(|r| StageMs {
            stage: r.stage,
            ms: ms(r.elapsed),
            detail: r.detail.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_batch, FarmConfig};

    fn request_json() -> &'static str {
        r#"{
            "default_partitioner": "refine",
            "jobs": [
                {"source": {"library": "Ignition Illuminator"}},
                {"name": "g10",
                 "source": {"generated": {"inner": 10, "seed": 3}},
                 "partitioner": "aggregation",
                 "options": {"mode": "partition", "verify": false}}
            ]
        }"#
    }

    #[test]
    fn requests_parse_and_convert() {
        let request: BatchRequest = serde::json::from_str(request_json()).unwrap();
        assert_eq!(request.default_partitioner.as_deref(), Some("refine"));
        assert_eq!(request.jobs.len(), 2);
        let batch = request.to_batch();
        assert_eq!(batch.jobs[0].name, "Ignition Illuminator");
        assert_eq!(batch.jobs[0].mode, JobMode::Synth);
        assert!(batch.jobs[0].verify, "unset options keep engine defaults");
        assert_eq!(batch.jobs[1].name, "g10");
        assert_eq!(batch.jobs[1].mode, JobMode::Partition);
        assert!(!batch.jobs[1].verify);
        assert_eq!(batch.jobs[1].partitioner.as_deref(), Some("aggregation"));

        // Batch -> request -> batch is lossless.
        let request2 = BatchRequest::from_batch(&batch);
        assert_eq!(request2.to_batch(), batch);
        // Request JSON re-serialization is byte-stable.
        let text = serde::json::to_string(&request2);
        let request3: BatchRequest = serde::json::from_str(&text).unwrap();
        assert_eq!(serde::json::to_string(&request3), text);
    }

    #[test]
    fn request_errors_carry_paths() {
        let err = serde::json::from_str::<BatchRequest>(
            r#"{"default_partitioner": null, "jobs": [{"source": {"libary": "X"}}]}"#,
        )
        .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("jobs[0].source"), "{text}");
        assert!(text.contains("unknown variant `libary`"), "{text}");
        assert!(text.contains("netlist, library, generated"), "{text}");

        let err = serde::json::from_str::<BatchRequest>(r#"{"jobs": [{}]}"#).unwrap_err();
        assert!(
            err.to_string().contains("missing field `source`"),
            "{}",
            err
        );
    }

    #[test]
    fn response_round_trips_through_json() {
        let request: BatchRequest = serde::json::from_str(request_json()).unwrap();
        let report = run_batch(&request.to_batch(), &FarmConfig::with_workers(2));
        assert!(report.all_ok(), "{}", report.render_text(false));

        for options in [JsonOptions::default(), JsonOptions { timings: true }] {
            let response = BatchResponse::from_report(&report, &options);
            let text = serde::json::to_string(&response);
            let back: BatchResponse = serde::json::from_str(&text).unwrap();
            assert_eq!(back, response);
            assert_eq!(serde::json::to_string(&back), text);
        }

        let deterministic = BatchResponse::from_report(&report, &JsonOptions::default());
        assert_eq!(deterministic.batch.workers, None);
        assert_eq!(deterministic.batch.elapsed_ms, None);
        assert_eq!(deterministic.results[0].status, JobOutcome::Ok);
        assert_eq!(deterministic.results[0].error, None);
        assert!(deterministic.results[0].c_bytes.unwrap() > 0);
        assert_eq!(
            deterministic.results[1].c_bytes,
            Some(0),
            "partition mode emits no C"
        );

        let timed = BatchResponse::from_report(&report, &JsonOptions { timings: true });
        assert_eq!(timed.batch.workers, Some(2));
        let stages = timed.batch.stages.as_ref().unwrap();
        assert_eq!(stages[0].stage, Stage::Partition);
        assert_eq!(stages[0].runs, 2);
    }

    #[test]
    fn lint_options_round_trip_and_surface_counts() {
        // `lint_deny` alone implies lint on; the capture/apply round
        // trip through JobSpec is lossless.
        let spec: JobSpec = serde::json::from_str(
            r#"{"source": {"library": "Ignition Illuminator"},
                "options": {"lint_deny": "warnings"}}"#,
        )
        .unwrap();
        let job = spec.to_job();
        assert_eq!(job.lint.map(|c| c.deny), Some(DenyLevel::Warnings));
        assert_eq!(JobSpec::from_job(&job).to_job(), job);

        // An explicit `lint: false` wins over a stray deny level.
        let spec: JobSpec = serde::json::from_str(
            r#"{"source": {"library": "Ignition Illuminator"},
                "options": {"lint": false, "lint_deny": "warnings"}}"#,
        )
        .unwrap();
        assert_eq!(spec.to_job().lint, None);

        // A linted clean job omits the count fields entirely, so
        // committed goldens are untouched by turning lint on.
        let request: BatchRequest = serde::json::from_str(
            r#"{"default_partitioner": null, "jobs": [
                {"source": {"library": "Ignition Illuminator"},
                 "options": {"lint": true}}
            ]}"#,
        )
        .unwrap();
        let report = run_batch(&request.to_batch(), &FarmConfig::with_workers(1));
        assert!(report.all_ok(), "{}", report.render_text(false));
        let response = BatchResponse::from_report(&report, &JsonOptions::default());
        assert_eq!(response.results[0].lint_errors, None);
        assert_eq!(response.results[0].lint_warnings, None);
        assert_eq!(response.batch.lint_errors, None);
        let text = serde::json::to_string(&response);
        assert!(!text.contains("lint"), "clean report layout: {text}");
    }

    #[test]
    fn synth_request_runs_end_to_end() {
        let request: SynthRequest = serde::json::from_str(
            r#"{"source": {"library": "Ignition Illuminator"}, "partitioner": "refine"}"#,
        )
        .unwrap();
        let response = synthesize(&request).unwrap();
        assert_eq!(response.design, "ignition-illuminator");
        assert_eq!(response.partitioner, "refine");
        assert_eq!(response.inner_before, 2);
        assert_eq!(response.inner_after, 1);
        assert!(response.verified_samples.unwrap() > 0);
        assert!(
            response.netlist.contains("programmable"),
            "{}",
            response.netlist
        );
        assert!(response.c_sources[0].code.contains("eblock_on_input"));
        assert!(!response.stages_ms.is_empty());
        // The response round-trips through JSON.
        let text = serde::json::to_string(&response);
        let back: SynthResponse = serde::json::from_str(&text).unwrap();
        assert_eq!(back, response);

        // Verification can be skipped through the options.
        let mut request = request;
        request.options.verify = Some(false);
        let response = synthesize(&request).unwrap();
        assert_eq!(response.verified_samples, None);
    }

    #[test]
    fn serve_envelopes_round_trip() {
        // Control requests are bare strings, payload requests tagged
        // objects — both through the same externally-tagged enum.
        let stats: RequestEnvelope =
            serde::json::from_str(r#"{"id": "r1", "request": "stats"}"#).unwrap();
        assert_eq!(stats.request, ServeRequest::Stats);
        let text = serde::json::to_string(&stats);
        assert_eq!(text, r#"{"id":"r1","request":"stats"}"#);

        let batch: RequestEnvelope = serde::json::from_str(
            r#"{"request": {"batch": {"default_partitioner": null, "jobs": [
                {"source": {"library": "Ignition Illuminator"}}
            ]}}}"#,
        )
        .unwrap();
        assert_eq!(batch.id, None);
        let ServeRequest::Batch(request) = &batch.request else {
            panic!("{:?}", batch.request);
        };
        assert_eq!(request.jobs.len(), 1);
        let text = serde::json::to_string(&batch);
        let back: RequestEnvelope = serde::json::from_str(&text).unwrap();
        assert_eq!(back, batch);

        // Replies round-trip the same way, including the nested
        // BatchResponse payload.
        let report = run_batch(&request.to_batch(), &FarmConfig::with_workers(1));
        let reply = ReplyEnvelope {
            id: Some("r1".into()),
            reply: ServeReply::Batch(BatchResponse::from_report(&report, &JsonOptions::default())),
        };
        let text = serde::json::to_string(&reply);
        let back: ReplyEnvelope = serde::json::from_str(&text).unwrap();
        assert_eq!(back, reply);
        assert_eq!(serde::json::to_string(&back), text);

        for reply in [
            ServeReply::Admission(AdmissionReply {
                status: Admission::QueueFull,
                detail: Some("queue at capacity 4".into()),
            }),
            ServeReply::Error("boom".into()),
            ServeReply::Shutdown,
            ServeReply::Stats(ServeStats {
                queue_depth: 1,
                in_flight: 2,
                accepted: 3,
                rejected: 4,
                completed: 5,
                stages: Vec::new(),
            }),
        ] {
            let envelope = ReplyEnvelope { id: None, reply };
            let text = serde::json::to_string(&envelope);
            let back: ReplyEnvelope = serde::json::from_str(&text).unwrap();
            assert_eq!(back, envelope);
        }
    }

    #[test]
    fn serve_envelopes_reject_unknown_keys_and_variants() {
        let err = serde::json::from_str::<RequestEnvelope>(
            r#"{"id": "r1", "request": "stats", "priority": 9}"#,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("unknown field `priority`"),
            "{err}"
        );

        let err = serde::json::from_str::<RequestEnvelope>(r#"{"request": "reboot"}"#).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("unknown variant `reboot`"), "{text}");
        assert!(text.contains("batch, synth, stats, shutdown"), "{text}");

        // A payload variant written as a bare string gets a pointed
        // error, not "unknown variant".
        let err = serde::json::from_str::<RequestEnvelope>(r#"{"request": "batch"}"#).unwrap_err();
        assert!(err.to_string().contains("takes a payload"), "{err}");

        let err = serde::json::from_str::<ReplyEnvelope>(
            r#"{"id": null, "reply": {"admission": {"status": "accepted", "rank": 1}}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown field `rank`"), "{err}");
    }

    #[test]
    fn progress_events_mirror_job_reports() {
        let job = Job::library("Ignition Illuminator");
        let event = ProgressEvent::started(3, &job);
        assert_eq!(event.event, ProgressKind::Started);
        assert_eq!(event.name, "Ignition Illuminator");
        assert_eq!(event.status, None);

        let report = JobReport {
            name: job.name.clone(),
            partitioner: "pare-down".into(),
            status: JobStatus::TimedOut("too slow".into()),
            elapsed: std::time::Duration::ZERO,
            retries: 2,
            stats: None,
        };
        let event = ProgressEvent::finished(3, &report);
        assert_eq!(event.status, Some(JobOutcome::TimedOut));
        assert_eq!(event.error.as_deref(), Some("too slow"));
        let text = serde::json::to_string(&event);
        assert!(text.contains(r#""event":"finished""#), "{text}");
        let back: ProgressEvent = serde::json::from_str(&text).unwrap();
        assert_eq!(back, event);
    }

    #[test]
    fn synth_request_rejects_partition_mode_and_bad_strategies() {
        let mut request = SynthRequest::new(DesignSource::Library("Ignition Illuminator".into()));
        request.options.mode = Some(JobMode::Partition);
        let err = synthesize(&request).unwrap_err();
        assert!(err.contains("batch"), "{err}");

        let request = SynthRequest {
            partitioner: Some("magic".into()),
            ..SynthRequest::new(DesignSource::Library("Ignition Illuminator".into()))
        };
        let err = synthesize(&request).unwrap_err();
        assert!(err.contains("unknown partitioner `magic`"), "{err}");

        let request = SynthRequest::new(DesignSource::Library("No Such Design".into()));
        let err = synthesize(&request).unwrap_err();
        assert!(err.contains("unknown library design"), "{err}");
    }
}
