//! Parallel batch synthesis — the many-design driver over the staged
//! [`Pipeline`](eblocks_synth::Pipeline).
//!
//! The paper's workflow synthesizes one design at a time; this crate scales
//! that to production batches. A [`Batch`] of [`Job`]s (each job = a design
//! source × a partitioning strategy × pipeline options) runs across a
//! scoped-thread worker pool and comes back as one [`BatchReport`] with
//! per-job status, partition statistics, stage timings, and emitted-C
//! sizes, plus batch-level aggregates. Reports serialize through a
//! hand-rolled JSON writer (the vendored `serde` derives are no-ops).
//!
//! * jobs come from netlist files, the Table-1 design library, or the
//!   seeded generator ([`JobSource`]), and batches parse from a
//!   line-oriented manifest file ([`Batch::parse`], [`Batch::from_file`]);
//! * the scheduler is a shared queue drained greedily by `--jobs N` workers
//!   ([`run_batch`], [`FarmConfig`]); job panics are isolated per worker;
//! * results are deterministic: the same batch yields byte-identical
//!   [`BatchReport::to_json`] output (timings off) for any worker count.
//!
//! # Example
//!
//! ```
//! use eblocks_farm::{run_batch, Batch, FarmConfig, Job};
//!
//! let batch = Batch::new(vec![
//!     Job::library("Ignition Illuminator"),
//!     Job::library("Carpool Alert").with_partitioner("refine"),
//! ]);
//! let report = run_batch(&batch, &FarmConfig::with_workers(2));
//! assert!(report.all_ok());
//! assert_eq!(report.jobs.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod json;
pub mod manifest;
pub mod report;
pub mod scheduler;

pub use job::{Batch, Job, JobMode, JobSource};
pub use manifest::ManifestError;
pub use report::{BatchReport, JobReport, JobStats, JobStatus, JsonOptions};
pub use scheduler::{run_batch, FarmConfig};
