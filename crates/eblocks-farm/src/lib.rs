//! Parallel batch synthesis — the many-design driver over the staged
//! [`Pipeline`](eblocks_synth::Pipeline).
//!
//! The paper's workflow synthesizes one design at a time; this crate scales
//! that to production batches. A [`Batch`] of [`Job`]s (each job = a design
//! source × a partitioning strategy × pipeline options) runs across a
//! scoped-thread worker pool and comes back as one [`BatchReport`] with
//! per-job status, partition statistics, stage timings, and emitted-C
//! sizes, plus batch-level aggregates.
//!
//! * jobs come from netlist files, the Table-1 design library, or the
//!   seeded generator ([`JobSource`]), and batches parse from a
//!   line-oriented manifest file ([`Batch::parse`]) or a typed JSON
//!   request — manifest format v2, the serialized [`api::BatchRequest`]
//!   ([`Batch::from_json`]; [`Batch::from_file`] sniffs the format);
//! * the scheduler is a shared queue drained greedily by `--jobs N` workers
//!   ([`run_batch`], [`FarmConfig`]); job panics are isolated per worker;
//!   [`run_batch_with_progress`] streams job started/finished callbacks to
//!   a [`BatchProgress`] listener while the batch runs;
//! * a lint admission gate ([`FarmConfig::lint`] engine-wide,
//!   [`Job::lint`] per job) statically analyzes each design before it
//!   runs and records per-job [`LintOutcome`] counts in [`JobStats`]; a
//!   rejecting deny level fails the job instead of synthesizing garbage;
//! * resilience policies live on [`FarmConfig`]: a per-job retry budget
//!   (`max_retries`, surfaced as [`JobReport::retries`]) and a cooperative
//!   per-attempt timeout (`job_timeout`, surfaced as
//!   [`JobStatus::TimedOut`]); the [`FaultInjector`] seam lets a harness
//!   (see `eblocks-chaos`) perturb pickup order and inject delays, panics,
//!   and aborts at stage boundaries;
//! * reports serialize through the derive path: [`BatchReport`] wraps into
//!   the typed [`api::BatchResponse`] and out through `serde::json`, and
//!   the deterministic (timings-off) output is byte-identical for any
//!   worker count;
//! * [`api`] is the request/response surface an RPC service mode would
//!   speak — [`api::BatchRequest`]/[`api::SynthRequest`] in,
//!   [`api::BatchResponse`]/[`api::SynthResponse`] out.
//!
//! # Example
//!
//! ```
//! use eblocks_farm::{run_batch, Batch, FarmConfig, Job};
//!
//! let batch = Batch::new(vec![
//!     Job::library("Ignition Illuminator"),
//!     Job::library("Carpool Alert").with_partitioner("refine"),
//! ]);
//! let report = run_batch(&batch, &FarmConfig::with_workers(2));
//! assert!(report.all_ok());
//! assert_eq!(report.jobs.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod job;
pub mod manifest;
pub mod report;
pub mod scheduler;

pub use eblocks_lint::{DenyLevel, LintConfig, LintOutcome};
pub use job::{Batch, Job, JobMode, JobSource};
pub use manifest::ManifestError;
pub use report::{BatchReport, JobReport, JobStats, JobStatus, JsonOptions};
pub use scheduler::{
    run_batch, run_batch_with_progress, BatchProgress, FarmConfig, Fault, FaultInjector,
};
