//! Per-job and batch-level results, with text and JSON rendering.
//!
//! JSON rendering goes through the typed response API: [`BatchReport`]
//! wraps into a derive-serialized [`BatchResponse`]
//! and out through `serde::json` (PR 5 replaced the hand-rolled emitter).
//! Output is deterministic by default — wall-clock fields are opt-in via
//! [`JsonOptions::timings`] — so the same batch serializes to identical
//! bytes regardless of worker count.

use crate::api::BatchResponse;
use eblocks_lint::LintOutcome;
use eblocks_synth::StageTimings;
use std::fmt::Write as _;
use std::time::Duration;

/// How one job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// The job completed; its measurements are in [`JobReport::stats`].
    Ok,
    /// The job returned an error (bad source, unknown strategy, failed
    /// verification, …).
    Failed(String),
    /// The job panicked; the worker caught it and carried on.
    Panicked(String),
    /// The job exceeded the configured per-attempt time budget
    /// ([`FarmConfig::job_timeout`](crate::FarmConfig::job_timeout)) and
    /// was cancelled at a stage boundary.
    TimedOut(String),
}

impl JobStatus {
    /// True for [`JobStatus::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, Self::Ok)
    }

    fn label(&self) -> &'static str {
        match self {
            Self::Ok => "ok",
            Self::Failed(_) => "failed",
            Self::Panicked(_) => "panicked",
            Self::TimedOut(_) => "timed-out",
        }
    }

    fn error(&self) -> Option<&str> {
        match self {
            Self::Ok => None,
            Self::Failed(e) | Self::Panicked(e) | Self::TimedOut(e) => Some(e),
        }
    }
}

/// Measurements from one successfully completed job.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Inner blocks in the original design.
    pub inner_before: usize,
    /// Inner blocks after partitioning (pre-defined + programmable).
    pub inner_after: usize,
    /// Programmable blocks (number of partitions).
    pub partitions: usize,
    /// Whether the strategy ran to completion (false: a time-limited
    /// search returned its incumbent).
    pub complete: bool,
    /// Total bytes of emitted C across the job's programmable blocks
    /// (0 in partition-only mode).
    pub c_bytes: usize,
    /// Whether equivalence verification ran and passed.
    pub verified: bool,
    /// Lint diagnostic counts, when the job ran the lint stage (`None`
    /// when lint was off). An `Ok` row can only carry counts the job's
    /// deny level admitted.
    pub lint: Option<LintOutcome>,
    /// Per-stage wall-clock timings from the pipeline observer.
    pub timings: StageTimings,
}

/// One row of the batch report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// The job's display name.
    pub name: String,
    /// The strategy that actually ran (after default resolution).
    pub partitioner: String,
    /// How the job ended (the outcome of the final attempt).
    pub status: JobStatus,
    /// Whole-job wall-clock time (load + pipeline, summed over every
    /// attempt), as seen by the worker.
    pub elapsed: Duration,
    /// Retry attempts the job consumed beyond the first try (0 when the
    /// first attempt settled it; at most
    /// [`FarmConfig::max_retries`](crate::FarmConfig::max_retries)).
    pub retries: u32,
    /// Measurements, when the job succeeded.
    pub stats: Option<JobStats>,
}

/// Everything one [`run_batch`](crate::run_batch) call produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// Per-job rows, in batch submission order (independent of which
    /// worker ran what when).
    pub jobs: Vec<JobReport>,
    /// Workers the pool actually used.
    pub workers: usize,
    /// Batch wall-clock time.
    pub elapsed: Duration,
}

/// What the JSON rendering includes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JsonOptions {
    /// Include wall-clock fields (per-job elapsed and stage timings, batch
    /// elapsed, worker count). Off by default so that reports are
    /// byte-identical across worker counts and runs.
    pub timings: bool,
}

fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

impl BatchReport {
    /// Rows that completed successfully.
    pub fn succeeded(&self) -> usize {
        self.jobs.iter().filter(|j| j.status.is_ok()).count()
    }

    /// Rows that failed or panicked.
    pub fn failed(&self) -> usize {
        self.jobs.len() - self.succeeded()
    }

    /// True when every job completed successfully.
    pub fn all_ok(&self) -> bool {
        self.failed() == 0
    }

    /// Every successful job's stage timings merged into one accumulator
    /// (see [`StageTimings::merge`]); summarize with
    /// [`StageTimings::summarize`] for per-stage totals and maxima.
    pub fn stage_timings(&self) -> StageTimings {
        let mut merged = StageTimings::new();
        for job in &self.jobs {
            if let Some(stats) = &job.stats {
                merged.merge(&stats.timings);
            }
        }
        merged
    }

    /// Renders the report as compact JSON via the derive path: the typed
    /// [`BatchResponse`] view serialized with `serde::json` (see
    /// [`JsonOptions`]).
    pub fn to_json(&self, options: &JsonOptions) -> String {
        serde::json::to_string(&BatchResponse::from_report(self, options))
    }

    /// [`to_json`](Self::to_json) with 2-space-indent pretty printing.
    pub fn to_json_pretty(&self, options: &JsonOptions) -> String {
        serde::json::to_string_pretty(&BatchResponse::from_report(self, options))
    }

    /// Renders the report as fixed-width text. `with_timings` appends the
    /// per-stage totals/max table from the merged observers.
    pub fn render_text(&self, with_timings: bool) -> String {
        let mut out = format!(
            "batch: {} job(s), {} ok, {} failed, {} worker(s), {}\n",
            self.jobs.len(),
            self.succeeded(),
            self.failed(),
            self.workers,
            fmt_elapsed(self.elapsed),
        );
        let name_w = self
            .jobs
            .iter()
            .map(|j| j.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let _ = writeln!(
            out,
            "  {:<name_w$}  {:<12} {:<8} {:>6} {:>6} {:>5} {:>9}",
            "name", "partitioner", "status", "inner", "total", "prog", "c-bytes"
        );
        for job in &self.jobs {
            let retries = if job.retries > 0 {
                format!(
                    "  [{} retr{}]",
                    job.retries,
                    if job.retries == 1 { "y" } else { "ies" }
                )
            } else {
                String::new()
            };
            match (&job.status, &job.stats) {
                (JobStatus::Ok, Some(stats)) => {
                    let lint = match stats.lint {
                        Some(outcome) if !outcome.is_clean() => format!("  [lint: {outcome}]"),
                        _ => String::new(),
                    };
                    let _ = writeln!(
                        out,
                        "  {:<name_w$}  {:<12} {:<8} {:>6} {:>6} {:>5} {:>9}{}{}{}",
                        job.name,
                        job.partitioner,
                        "ok",
                        stats.inner_before,
                        stats.inner_after,
                        stats.partitions,
                        stats.c_bytes,
                        if stats.complete { "" } else { "  (timeout)" },
                        lint,
                        retries,
                    );
                }
                (status, _) => {
                    let _ = writeln!(
                        out,
                        "  {:<name_w$}  {:<12} {:<8} {}{}",
                        job.name,
                        job.partitioner,
                        status.label(),
                        status.error().unwrap_or(""),
                        retries,
                    );
                }
            }
        }
        if with_timings {
            out.push_str("stage totals over all jobs:\n");
            for stat in self.stage_timings().summarize() {
                let _ = writeln!(
                    out,
                    "  {:<9} {:>10}ms total, {:>9}ms max, {:>4} run(s)",
                    stat.stage.to_string(),
                    ms(stat.total),
                    ms(stat.max),
                    stat.runs,
                );
            }
        }
        out
    }
}

fn fmt_elapsed(d: Duration) -> String {
    if d.as_secs_f64() >= 1.0 {
        format!("{:.2}s", d.as_secs_f64())
    } else {
        format!("{:.2}ms", d.as_secs_f64() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_synth::{Stage, StageReport};

    fn sample() -> BatchReport {
        let mut timings = StageTimings::new();
        timings.reports.push(StageReport {
            stage: Stage::Partition,
            elapsed: Duration::from_millis(2),
            detail: "1 partition".into(),
        });
        BatchReport {
            jobs: vec![
                JobReport {
                    name: "garage".into(),
                    partitioner: "pare-down".into(),
                    status: JobStatus::Ok,
                    elapsed: Duration::from_millis(5),
                    retries: 0,
                    stats: Some(JobStats {
                        inner_before: 2,
                        inner_after: 1,
                        partitions: 1,
                        complete: true,
                        c_bytes: 512,
                        verified: true,
                        lint: Some(LintOutcome {
                            errors: 0,
                            warnings: 2,
                            fixes: None,
                        }),
                        timings,
                    }),
                },
                JobReport {
                    name: "broken \"job\"".into(),
                    partitioner: "anneal".into(),
                    status: JobStatus::Failed("cannot read x".into()),
                    elapsed: Duration::from_millis(1),
                    retries: 2,
                    stats: None,
                },
            ],
            workers: 4,
            elapsed: Duration::from_millis(6),
        }
    }

    #[test]
    fn aggregates_count() {
        let r = sample();
        assert_eq!(r.succeeded(), 1);
        assert_eq!(r.failed(), 1);
        assert!(!r.all_ok());
        assert_eq!(r.stage_timings().reports.len(), 1);
    }

    #[test]
    fn json_is_deterministic_without_timings() {
        let r = sample();
        let json = r.to_json(&JsonOptions::default());
        assert!(json.contains(r#""status":"ok""#), "{json}");
        assert!(json.contains(r#""error":"cannot read x""#), "{json}");
        assert!(json.contains(r#""broken \"job\"""#), "escaped: {json}");
        assert!(json.contains(r#""c_bytes":512"#), "{json}");
        assert!(json.contains(r#""retries":2"#), "{json}");
        assert!(!json.contains("elapsed_ms"), "no wall-clock: {json}");
        assert!(!json.contains("workers"), "no pool shape: {json}");

        let timed = r.to_json(&JsonOptions { timings: true });
        assert!(timed.contains("elapsed_ms"), "{timed}");
        assert!(timed.contains(r#""workers":4"#), "{timed}");
        assert!(timed.contains(r#""stages""#), "{timed}");
        assert!(timed.contains("total_ms"), "{timed}");
        assert!(timed.contains("max_ms"), "{timed}");
    }

    #[test]
    fn text_report_lists_rows() {
        let r = sample();
        let text = r.render_text(true);
        assert!(text.contains("2 job(s), 1 ok, 1 failed"), "{text}");
        assert!(text.contains("garage"), "{text}");
        assert!(text.contains("cannot read x"), "{text}");
        assert!(text.contains("[2 retries]"), "{text}");
        assert!(text.contains("[lint: 0 error(s), 2 warning(s)]"), "{text}");
        assert!(text.contains("stage totals"), "{text}");
        assert!(text.contains("partition"), "{text}");
        let no_t = r.render_text(false);
        assert!(!no_t.contains("stage totals"), "{no_t}");
    }
}
