//! The worker pool: a shared job queue drained by scoped threads.
//!
//! Scheduling is a single shared cursor over the batch's job list — each
//! worker claims the next unclaimed index, runs it start-to-finish, and
//! writes the report into that job's slot. This is the work-stealing-style
//! "shared queue, greedy workers" shape (cf. the dslab job schedulers):
//! long jobs never block short ones behind a static round-robin split, and
//! the report order is the submission order regardless of which worker
//! finished what when.
//!
//! A panicking job (a buggy strategy, a pathological design) is caught on
//! the worker, reported as [`JobStatus::Panicked`], and the worker moves on
//! — one poisoned job cannot take down the batch.

use crate::job::{Batch, Job, JobMode};
use crate::report::{BatchReport, JobReport, JobStats, JobStatus};
use eblocks_core::Design;
use eblocks_partition::{PartitionConstraints, Partitioner, Registry};
use eblocks_synth::{Pipeline, Stage, StageReport, StageTimings, SynthesisResult, VerifyOptions};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Engine configuration for [`run_batch`].
pub struct FarmConfig {
    /// Worker threads; `None` uses [`std::thread::available_parallelism`].
    /// The pool never spawns more workers than there are jobs.
    pub workers: Option<usize>,
    /// Overrides the batch's default strategy for jobs that set none
    /// (the CLI's `--partitioner` flag lands here). Per-job `partitioner=`
    /// settings still win.
    pub partitioner_override: Option<String>,
    /// Strategy registry jobs resolve their partitioner names against.
    /// Defaults to [`Registry::builtin`]; register custom strategies (a
    /// time-limited exhaustive, a test double) before running.
    pub registry: Registry,
}

impl Default for FarmConfig {
    fn default() -> Self {
        Self {
            workers: None,
            partitioner_override: None,
            registry: Registry::builtin(),
        }
    }
}

impl FarmConfig {
    /// A config pinned to `workers` threads.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: Some(workers),
            ..Self::default()
        }
    }

    fn effective_workers(&self, jobs: usize) -> usize {
        let requested = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        requested.clamp(1, jobs.max(1))
    }
}

/// Streaming observation of a running batch — the hook a service mode
/// (spool watcher, RPC server) uses to push per-job progress to clients
/// while the batch is still running.
///
/// Callbacks fire **on the worker thread that ran the job** (hence the
/// `Sync` bound), and a finished job's [`JobReport`] carries its full
/// [`StageTimings`], so a listener can stream per-stage breakdowns without
/// waiting for the final [`BatchReport`]. Job indices refer to submission
/// order; jobs on different workers start and finish interleaved.
///
/// Both methods default to no-ops, so listeners implement only what they
/// need. A panicking callback is caught and discarded — the farm's
/// per-job panic isolation extends to listeners, so a buggy progress hook
/// cannot take down the batch or lose completed results.
pub trait BatchProgress: Sync {
    /// A worker claimed `job` (index `index` in submission order) and is
    /// about to run it.
    fn job_started(&self, index: usize, job: &Job) {
        let _ = (index, job);
    }

    /// The job at `index` finished (ok, failed, or panicked); `report` is
    /// exactly the row the final [`BatchReport`] will hold.
    fn job_finished(&self, index: usize, report: &JobReport) {
        let _ = (index, report);
    }
}

/// The default listener: hears nothing.
struct Silent;

impl BatchProgress for Silent {}

/// Runs every job in `batch` across the configured worker pool and
/// aggregates the per-job outcomes into a [`BatchReport`].
///
/// Job execution is deterministic (all built-in strategies are), so the
/// per-job results are identical for any worker count; only wall-clock
/// fields differ.
pub fn run_batch(batch: &Batch, config: &FarmConfig) -> BatchReport {
    run_batch_with_progress(batch, config, &Silent)
}

/// [`run_batch`] with a [`BatchProgress`] listener receiving job
/// started/finished callbacks as workers process the queue.
pub fn run_batch_with_progress(
    batch: &Batch,
    config: &FarmConfig,
    progress: &dyn BatchProgress,
) -> BatchReport {
    let started = Instant::now();
    let workers = config.effective_workers(batch.jobs.len());
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<JobReport>>> = Mutex::new(vec![None; batch.jobs.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                let Some(job) = batch.jobs.get(index) else {
                    break;
                };
                // Listener panics are swallowed (they run outside
                // run_job's catch) so a buggy hook cannot abort the
                // scoped pool and lose the batch's results.
                let _ = catch_unwind(AssertUnwindSafe(|| progress.job_started(index, job)));
                let report = run_job(job, batch, config);
                let _ = catch_unwind(AssertUnwindSafe(|| progress.job_finished(index, &report)));
                slots.lock().expect("farm result lock")[index] = Some(report);
            });
        }
    });

    let jobs = slots
        .into_inner()
        .expect("farm result lock")
        .into_iter()
        .map(|slot| slot.expect("every claimed job reports"))
        .collect();
    BatchReport {
        jobs,
        workers,
        elapsed: started.elapsed(),
    }
}

/// Resolves the job's strategy name: job > engine override > batch default
/// > `pare-down`.
fn partitioner_name<'a>(job: &'a Job, batch: &'a Batch, config: &'a FarmConfig) -> &'a str {
    job.partitioner
        .as_deref()
        .or(config.partitioner_override.as_deref())
        .or(batch.default_partitioner.as_deref())
        .unwrap_or("pare-down")
}

/// Runs one job on the calling worker thread, catching panics.
fn run_job(job: &Job, batch: &Batch, config: &FarmConfig) -> JobReport {
    let started = Instant::now();
    let name = partitioner_name(job, batch, config);
    let outcome = catch_unwind(AssertUnwindSafe(|| execute(job, name, config)));
    let (status, stats) = match outcome {
        Ok(Ok(stats)) => (JobStatus::Ok, Some(stats)),
        Ok(Err(error)) => (JobStatus::Failed(error), None),
        Err(payload) => (JobStatus::Panicked(panic_message(payload)), None),
    };
    JobReport {
        name: job.name.clone(),
        partitioner: name.to_string(),
        status,
        elapsed: started.elapsed(),
        stats,
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolves a strategy name against `registry`, with the standard
/// "unknown partitioner" message listing what is available. Shared by the
/// batch path here and the request API ([`crate::api::synthesize_with`]).
pub(crate) fn resolve_strategy(
    registry: &Registry,
    name: &str,
) -> Result<Box<dyn Partitioner>, String> {
    registry.from_str(name).ok_or_else(|| {
        format!(
            "unknown partitioner `{name}` (available: {})",
            registry.names().join(", ")
        )
    })
}

/// Runs `design` through the full synthesis pipeline with `job`'s options
/// (partition → merge → rewrite → verify or skip → emit C), feeding
/// `timings`. The one pipeline invocation both the batch scheduler and
/// the request API execute, so the two paths cannot drift.
pub(crate) fn run_synth_pipeline(
    design: &Design,
    job: &Job,
    partitioner: &dyn Partitioner,
    timings: &mut StageTimings,
) -> Result<SynthesisResult, String> {
    let rewritten = Pipeline::new(design)
        .constraints(PartitionConstraints::with_spec(job.spec))
        .optimize(job.optimize)
        .observe(timings)
        .partition_with(partitioner)
        .map_err(|e| e.to_string())?
        .merge()
        .map_err(|e| e.to_string())?
        .rewrite()
        .map_err(|e| e.to_string())?;
    let verified = if job.verify {
        rewritten
            .verify(VerifyOptions::default())
            .map_err(|e| e.to_string())?
    } else {
        rewritten.skip_verify()
    };
    Ok(verified.emit_c())
}

/// The fallible body of one job.
fn execute(job: &Job, partitioner_name: &str, config: &FarmConfig) -> Result<JobStats, String> {
    let partitioner = resolve_strategy(&config.registry, partitioner_name)?;
    let design = job.load_design()?;
    match job.mode {
        JobMode::Partition => {
            let constraints = PartitionConstraints::with_spec(job.spec);
            design.validate().map_err(|e| e.to_string())?;
            let started = Instant::now();
            let partitioning = partitioner.partition(&design, &constraints);
            let elapsed = started.elapsed();
            partitioning
                .verify(&design, &constraints)
                .map_err(|e| e.to_string())?;
            let mut timings = StageTimings::new();
            timings.reports.push(StageReport {
                stage: Stage::Partition,
                elapsed,
                detail: partitioning.to_string(),
            });
            Ok(JobStats {
                inner_before: partitioning.covered() + partitioning.uncovered().len(),
                inner_after: partitioning.inner_total(),
                partitions: partitioning.num_partitions(),
                complete: partitioning.is_complete(),
                c_bytes: 0,
                verified: false,
                timings,
            })
        }
        JobMode::Synth => {
            let mut timings = StageTimings::new();
            let result = run_synth_pipeline(&design, job, partitioner.as_ref(), &mut timings)?;
            Ok(JobStats {
                inner_before: result.inner_before(),
                inner_after: result.inner_after(),
                partitions: result.partitioning.num_partitions(),
                complete: result.partitioning.is_complete(),
                c_bytes: result.c_sources.iter().map(|(_, c)| c.len()).sum(),
                verified: result.report.as_ref().is_some_and(|r| r.is_equivalent()),
                timings,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::report::JsonOptions;
    use eblocks_core::Design;
    use eblocks_partition::{Partitioner, Partitioning};

    fn library_batch() -> Batch {
        Batch::new(vec![
            Job::library("Ignition Illuminator"),
            Job::library("Podium Timer 3").with_partitioner("refine"),
            Job::generated(10, 3).with_mode(JobMode::Partition),
        ])
    }

    #[test]
    fn batch_runs_and_aggregates() {
        let report = run_batch(&library_batch(), &FarmConfig::with_workers(2));
        assert_eq!(report.jobs.len(), 3);
        assert!(report.all_ok(), "{}", report.render_text(false));
        assert_eq!(report.workers, 2);
        let stats = report.jobs[0].stats.as_ref().unwrap();
        assert_eq!(stats.inner_before, 2);
        assert_eq!(stats.inner_after, 1);
        assert!(stats.verified);
        assert!(stats.c_bytes > 0);
        assert_eq!(report.jobs[1].partitioner, "refine");
        let part = report.jobs[2].stats.as_ref().unwrap();
        assert_eq!(part.c_bytes, 0, "partition mode emits no C");
        assert!(!part.verified);
        assert_eq!(part.timings.reports.len(), 1, "only the partition stage");
    }

    #[test]
    fn worker_count_is_clamped_to_jobs() {
        let report = run_batch(
            &library_batch(),
            &FarmConfig {
                workers: Some(64),
                ..Default::default()
            },
        );
        assert_eq!(report.workers, 3);
        let empty = run_batch(&Batch::default(), &FarmConfig::with_workers(8));
        assert_eq!(empty.jobs.len(), 0);
        assert!(empty.all_ok());
    }

    #[test]
    fn partitioner_resolution_precedence() {
        let mut batch = Batch::new(vec![
            Job::library("Ignition Illuminator"),
            Job::library("Carpool Alert").with_partitioner("aggregation"),
        ]);
        batch.default_partitioner = Some("refine".into());

        // Batch default applies when nothing else is set.
        let report = run_batch(&batch, &FarmConfig::with_workers(1));
        assert_eq!(report.jobs[0].partitioner, "refine");
        assert_eq!(report.jobs[1].partitioner, "aggregation");

        // The engine override beats the batch default, not the per-job pick.
        let config = FarmConfig {
            workers: Some(1),
            partitioner_override: Some("anneal".into()),
            ..Default::default()
        };
        let report = run_batch(&batch, &config);
        assert_eq!(report.jobs[0].partitioner, "anneal");
        assert_eq!(report.jobs[1].partitioner, "aggregation");
    }

    #[test]
    fn failures_are_reported_not_fatal() {
        let batch = Batch::new(vec![
            Job::netlist("/nonexistent/x.netlist"),
            Job::library("Ignition Illuminator").with_partitioner("magic"),
            Job::library("Ignition Illuminator"),
        ]);
        let report = run_batch(&batch, &FarmConfig::with_workers(2));
        assert_eq!(report.succeeded(), 1);
        assert_eq!(report.failed(), 2);
        let JobStatus::Failed(e) = &report.jobs[0].status else {
            panic!("{:?}", report.jobs[0].status);
        };
        assert!(e.contains("cannot read"), "{e}");
        let JobStatus::Failed(e) = &report.jobs[1].status else {
            panic!("{:?}", report.jobs[1].status);
        };
        assert!(
            e.contains("unknown partitioner `magic`") && e.contains("pare-down"),
            "lists the registered names: {e}"
        );
        assert!(report.jobs[2].status.is_ok());
    }

    /// A listener recording every callback, guarded for cross-thread use.
    #[derive(Default)]
    struct Recorder {
        started: Mutex<Vec<(usize, String)>>,
        finished: Mutex<Vec<(usize, JobReport)>>,
    }

    impl BatchProgress for Recorder {
        fn job_started(&self, index: usize, job: &Job) {
            self.started.lock().unwrap().push((index, job.name.clone()));
        }

        fn job_finished(&self, index: usize, report: &JobReport) {
            self.finished.lock().unwrap().push((index, report.clone()));
        }
    }

    #[test]
    fn progress_listener_sees_every_job_start_and_finish() {
        let batch = library_batch();
        let recorder = Recorder::default();
        let report = run_batch_with_progress(&batch, &FarmConfig::with_workers(2), &recorder);

        let mut started = recorder.started.into_inner().unwrap();
        started.sort();
        assert_eq!(
            started,
            vec![
                (0, "Ignition Illuminator".to_string()),
                (1, "Podium Timer 3".to_string()),
                (2, "gen10-3".to_string()),
            ]
        );

        let mut finished = recorder.finished.into_inner().unwrap();
        finished.sort_by_key(|(i, _)| *i);
        assert_eq!(finished.len(), 3);
        for (index, row) in &finished {
            assert_eq!(
                *row, report.jobs[*index],
                "streamed rows match the final report"
            );
        }
        // The streamed rows carry the per-job stage timings already.
        assert!(!finished[0]
            .1
            .stats
            .as_ref()
            .unwrap()
            .timings
            .reports
            .is_empty());
    }

    #[test]
    fn panicking_listener_does_not_lose_the_batch() {
        struct Grenade;

        impl BatchProgress for Grenade {
            fn job_started(&self, _: usize, _: &Job) {
                panic!("listener bug on start");
            }

            fn job_finished(&self, _: usize, _: &JobReport) {
                panic!("listener bug on finish");
            }
        }

        let report =
            run_batch_with_progress(&library_batch(), &FarmConfig::with_workers(2), &Grenade);
        assert_eq!(report.jobs.len(), 3);
        assert!(report.all_ok(), "{}", report.render_text(false));
    }

    #[test]
    fn progress_listener_hears_panicked_jobs_too() {
        let mut config = FarmConfig::with_workers(1);
        config.registry.register("poison", || Box::new(Poison));
        let batch = Batch::new(vec![
            Job::library("Ignition Illuminator").with_partitioner("poison")
        ]);
        let recorder = Recorder::default();
        run_batch_with_progress(&batch, &config, &recorder);
        let finished = recorder.finished.into_inner().unwrap();
        assert!(matches!(finished[0].1.status, JobStatus::Panicked(_)));
    }

    /// A strategy that always panics, for poisoned-job isolation tests.
    struct Poison;

    impl Partitioner for Poison {
        fn name(&self) -> &'static str {
            "poison"
        }

        fn partition(&self, _: &Design, _: &PartitionConstraints) -> Partitioning {
            panic!("poisoned strategy")
        }
    }

    #[test]
    fn poisoned_job_does_not_take_down_the_batch() {
        let mut config = FarmConfig::with_workers(2);
        config.registry.register("poison", || Box::new(Poison));
        let batch = Batch::new(vec![
            Job::library("Ignition Illuminator"),
            Job::library("Carpool Alert").with_partitioner("poison"),
            Job::library("Night Lamp Controller"),
        ]);
        let report = run_batch(&batch, &config);
        assert_eq!(report.succeeded(), 2);
        let JobStatus::Panicked(message) = &report.jobs[1].status else {
            panic!("expected a panic report, got {:?}", report.jobs[1].status);
        };
        assert!(message.contains("poisoned strategy"), "{message}");
        assert!(report.jobs[0].status.is_ok());
        assert!(report.jobs[2].status.is_ok());
        let json = report.to_json(&JsonOptions::default());
        assert!(json.contains(r#""status":"panicked""#), "{json}");
    }
}
