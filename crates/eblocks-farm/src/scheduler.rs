//! The worker pool: a shared job queue drained by scoped threads.
//!
//! Scheduling is a single shared cursor over the batch's job list — each
//! worker claims the next unclaimed index, runs it start-to-finish, and
//! writes the report into that job's slot. This is the work-stealing-style
//! "shared queue, greedy workers" shape (cf. the dslab job schedulers):
//! long jobs never block short ones behind a static round-robin split, and
//! the report order is the submission order regardless of which worker
//! finished what when.
//!
//! A panicking job (a buggy strategy, a pathological design) is caught on
//! the worker, reported as [`JobStatus::Panicked`], and the worker moves on
//! — one poisoned job cannot take down the batch.

use crate::job::{Batch, Job, JobMode};
use crate::report::{BatchReport, JobReport, JobStats, JobStatus};
use eblocks_core::Design;
use eblocks_lint::{lint_design, LintConfig, LintOutcome};
use eblocks_partition::{PartitionConstraints, Partitioner, Registry};
use eblocks_synth::{
    Observer, Pipeline, Stage, StageAbort, StageReport, StageTimings, SynthError, SynthesisResult,
    VerifyOptions,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A fault a [`FaultInjector`] can order at a stage boundary.
///
/// Faults are injected *cooperatively*: a worker consults the injector
/// before each pipeline stage and enacts whatever it returns, inside the
/// same panic isolation that protects real job failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Sleep for the given duration before running the stage. The
    /// per-attempt deadline is re-checked after the sleep, so a delay at
    /// or past [`FarmConfig::job_timeout`] deterministically times the
    /// attempt out.
    Delay(Duration),
    /// Panic with the given message, exercising the worker's per-job
    /// panic isolation ([`JobStatus::Panicked`]).
    Panic(String),
    /// Abort the stage with the given [`StageAbort`]; `timeout` aborts
    /// surface as [`JobStatus::TimedOut`], the rest as
    /// [`JobStatus::Failed`].
    Abort(StageAbort),
}

/// The fault-injection seam of the farm — the hook `eblocks-chaos` drives.
///
/// An injector is shared by every worker (hence `Sync + Send`) and
/// consulted at three points: once per batch for a pickup-order
/// permutation, once per job claim for an artificial scheduling delay, and
/// once per (job, attempt, stage) for an injected fault. All default
/// implementations inject nothing, so an injector overrides only the seams
/// it cares about.
///
/// Determinism contract: injectors that decide faults as pure functions of
/// their arguments (never of wall-clock time or worker identity) keep
/// batch reports byte-identical across runs and worker counts — the
/// property the chaos harness's replayable traces rely on.
pub trait FaultInjector: Sync + Send {
    /// The order workers claim jobs in, as a permutation of `0..jobs`.
    /// `None` (the default) keeps submission order. A returned vector that
    /// is not a permutation of `0..jobs` is ignored.
    fn pickup_order(&self, jobs: usize) -> Option<Vec<usize>> {
        let _ = jobs;
        None
    }

    /// An artificial delay inserted after a worker claims job `job`,
    /// before it starts running — a scheduling perturbation that shifts
    /// which worker gets which later job.
    fn pickup_delay(&self, job: usize) -> Option<Duration> {
        let _ = job;
        None
    }

    /// A fault to enact just before `stage` of attempt `attempt` (0-based)
    /// of job `job`, or `None` to let the stage run.
    fn before_stage(&self, job: usize, attempt: u32, stage: Stage) -> Option<Fault> {
        let _ = (job, attempt, stage);
        None
    }
}

/// Engine configuration for [`run_batch`].
pub struct FarmConfig {
    /// Worker threads; `None` uses [`std::thread::available_parallelism`].
    /// The pool never spawns more workers than there are jobs, and a
    /// requested count of 0 is clamped to 1 (the pool always has at least
    /// one worker; see [`FarmConfig::with_workers`]).
    pub workers: Option<usize>,
    /// Overrides the batch's default strategy for jobs that set none
    /// (the CLI's `--partitioner` flag lands here). Per-job `partitioner=`
    /// settings still win.
    pub partitioner_override: Option<String>,
    /// Retry budget per job: a job whose attempt fails, panics, or times
    /// out is re-run on the same worker up to this many more times, and
    /// the attempts actually consumed are surfaced as
    /// [`JobReport::retries`]. Default 0 (one attempt, no retries).
    /// Deterministic failures (an unknown strategy, a bad netlist) burn
    /// their whole budget and still fail; the knob exists for injected
    /// and transient faults.
    pub max_retries: u32,
    /// Per-attempt time budget. Enforcement is cooperative: the deadline
    /// is checked at every pipeline stage boundary, so a job is cancelled
    /// *between* stages (work inside a stage always runs to completion)
    /// and reported as [`JobStatus::TimedOut`]. The timeout message quotes
    /// this configured limit, never measured time, keeping reports
    /// deterministic. Default `None` (no limit).
    pub job_timeout: Option<Duration>,
    /// Lint stage default for jobs that set none (a per-job
    /// [`Job::lint`] still wins). `None` (the default) leaves lint off,
    /// so existing batches and their committed goldens are untouched.
    pub lint: Option<LintConfig>,
    /// The fault-injection hook, shared by every worker. Default `None`
    /// (no injection); the chaos harness installs its seeded injector
    /// here.
    pub faults: Option<Arc<dyn FaultInjector>>,
    /// Cooperative drain flag — the hook a service mode uses to cut a
    /// running batch short. When the flag is set, workers stop claiming
    /// new jobs; jobs already claimed run to completion, and every
    /// never-claimed job is reported as
    /// [`JobStatus::Failed`]`("cancelled: batch drain requested")`. The
    /// report still has one row per job in submission order. Default
    /// `None` (batches always run to completion). Note that a
    /// mid-batch drain makes the report depend on scheduling, so it
    /// forfeits the byte-identical-across-worker-counts guarantee.
    pub stop: Option<Arc<std::sync::atomic::AtomicBool>>,
    /// Strategy registry jobs resolve their partitioner names against.
    /// Defaults to [`Registry::builtin`]; register custom strategies (a
    /// time-limited exhaustive, a test double) before running.
    pub registry: Registry,
}

impl Default for FarmConfig {
    fn default() -> Self {
        Self {
            workers: None,
            partitioner_override: None,
            max_retries: 0,
            job_timeout: None,
            lint: None,
            faults: None,
            stop: None,
            registry: Registry::builtin(),
        }
    }
}

impl FarmConfig {
    /// A config pinned to `workers` threads.
    ///
    /// The pool always runs at least one worker: a requested count of 0
    /// is clamped to 1 rather than rejected, so `with_workers(0)` behaves
    /// exactly like `with_workers(1)` (and [`BatchReport::workers`]
    /// reports the clamped count actually used).
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: Some(workers),
            ..Self::default()
        }
    }

    /// Sets the per-job retry budget (see [`FarmConfig::max_retries`]).
    pub fn retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets the per-attempt time budget (see [`FarmConfig::job_timeout`]).
    pub fn timeout(mut self, limit: Duration) -> Self {
        self.job_timeout = Some(limit);
        self
    }

    /// Installs a fault injector (see [`FarmConfig::faults`]).
    pub fn inject(mut self, faults: Arc<dyn FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Turns the lint stage on for every job that does not set its own
    /// (see [`FarmConfig::lint`]).
    pub fn lint(mut self, config: LintConfig) -> Self {
        self.lint = Some(config);
        self
    }

    /// Installs a cooperative drain flag (see [`FarmConfig::stop`]).
    pub fn stop_on(mut self, flag: Arc<std::sync::atomic::AtomicBool>) -> Self {
        self.stop = Some(flag);
        self
    }

    fn effective_workers(&self, jobs: usize) -> usize {
        let requested = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        requested.clamp(1, jobs.max(1))
    }
}

/// Streaming observation of a running batch — the hook a service mode
/// (spool watcher, RPC server) uses to push per-job progress to clients
/// while the batch is still running.
///
/// Callbacks fire **on the worker thread that ran the job** (hence the
/// `Sync` bound), and a finished job's [`JobReport`] carries its full
/// [`StageTimings`], so a listener can stream per-stage breakdowns without
/// waiting for the final [`BatchReport`]. Job indices refer to submission
/// order; jobs on different workers start and finish interleaved.
///
/// Both methods default to no-ops, so listeners implement only what they
/// need. A panicking callback is caught and discarded — the farm's
/// per-job panic isolation extends to listeners, so a buggy progress hook
/// cannot take down the batch or lose completed results.
pub trait BatchProgress: Sync {
    /// A worker claimed `job` (index `index` in submission order) and is
    /// about to run it.
    fn job_started(&self, index: usize, job: &Job) {
        let _ = (index, job);
    }

    /// The job at `index` finished (ok, failed, or panicked); `report` is
    /// exactly the row the final [`BatchReport`] will hold.
    fn job_finished(&self, index: usize, report: &JobReport) {
        let _ = (index, report);
    }
}

/// The default listener: hears nothing.
struct Silent;

impl BatchProgress for Silent {}

/// Runs every job in `batch` across the configured worker pool and
/// aggregates the per-job outcomes into a [`BatchReport`].
///
/// Job execution is deterministic (all built-in strategies are), so the
/// per-job results are identical for any worker count; only wall-clock
/// fields differ.
pub fn run_batch(batch: &Batch, config: &FarmConfig) -> BatchReport {
    run_batch_with_progress(batch, config, &Silent)
}

/// [`run_batch`] with a [`BatchProgress`] listener receiving job
/// started/finished callbacks as workers process the queue.
pub fn run_batch_with_progress(
    batch: &Batch,
    config: &FarmConfig,
    progress: &dyn BatchProgress,
) -> BatchReport {
    let started = Instant::now();
    let workers = config.effective_workers(batch.jobs.len());
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<JobReport>>> = Mutex::new(vec![None; batch.jobs.len()]);
    let faults = config.faults.as_deref();
    let order = pickup_order(faults, batch.jobs.len());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // The drain hook: a set flag stops workers from claiming
                // further jobs; claimed jobs always run to completion.
                if config
                    .stop
                    .as_ref()
                    .is_some_and(|flag| flag.load(Ordering::Relaxed))
                {
                    break;
                }
                let slot = next.fetch_add(1, Ordering::Relaxed);
                let Some(&index) = order.get(slot) else {
                    break;
                };
                let job = &batch.jobs[index];
                if let Some(delay) = faults.and_then(|f| f.pickup_delay(index)) {
                    std::thread::sleep(delay);
                }
                // Listener panics are swallowed (they run outside
                // run_job's catch) so a buggy hook cannot abort the
                // scoped pool and lose the batch's results.
                let _ = catch_unwind(AssertUnwindSafe(|| progress.job_started(index, job)));
                let report = run_job(job, index, batch, config);
                let _ = catch_unwind(AssertUnwindSafe(|| progress.job_finished(index, &report)));
                slots.lock().expect("farm result lock")[index] = Some(report);
            });
        }
    });

    // Without a drain every slot is filled (claimed jobs always report);
    // under a drain the never-claimed jobs get a cancellation row so the
    // report still has one row per job in submission order.
    let jobs = slots
        .into_inner()
        .expect("farm result lock")
        .into_iter()
        .enumerate()
        .map(|(index, slot)| {
            slot.unwrap_or_else(|| {
                debug_assert!(config.stop.is_some(), "every claimed job reports");
                let job = &batch.jobs[index];
                JobReport {
                    name: job.name.clone(),
                    partitioner: partitioner_name(job, batch, config).to_string(),
                    status: JobStatus::Failed("cancelled: batch drain requested".to_string()),
                    elapsed: Duration::ZERO,
                    retries: 0,
                    stats: None,
                }
            })
        })
        .collect();
    BatchReport {
        jobs,
        workers,
        elapsed: started.elapsed(),
    }
}

/// The pickup order workers drain the queue in: the injector's
/// permutation when it supplies a valid one, submission order otherwise.
fn pickup_order(faults: Option<&dyn FaultInjector>, jobs: usize) -> Vec<usize> {
    if let Some(order) = faults.and_then(|f| f.pickup_order(jobs)) {
        let mut seen = vec![false; jobs];
        let valid = order.len() == jobs
            && order
                .iter()
                .all(|&i| i < jobs && !std::mem::replace(&mut seen[i], true));
        if valid {
            return order;
        }
    }
    (0..jobs).collect()
}

/// Resolves the job's strategy name: job > engine override > batch default
/// > `pare-down`.
fn partitioner_name<'a>(job: &'a Job, batch: &'a Batch, config: &'a FarmConfig) -> &'a str {
    job.partitioner
        .as_deref()
        .or(config.partitioner_override.as_deref())
        .or(batch.default_partitioner.as_deref())
        .unwrap_or("pare-down")
}

/// Runs one job on the calling worker thread, catching panics and
/// retrying failed attempts up to the configured budget.
fn run_job(job: &Job, index: usize, batch: &Batch, config: &FarmConfig) -> JobReport {
    let started = Instant::now();
    let name = partitioner_name(job, batch, config);
    let mut attempt: u32 = 0;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute(job, index, attempt, name, config)
        }));
        let (status, stats) = match outcome {
            Ok(Ok(stats)) => (JobStatus::Ok, Some(stats)),
            Ok(Err(ExecError::Failed(error))) => (JobStatus::Failed(error), None),
            Ok(Err(ExecError::TimedOut(error))) => (JobStatus::TimedOut(error), None),
            Err(payload) => (JobStatus::Panicked(panic_message(payload)), None),
        };
        if status.is_ok() || attempt >= config.max_retries {
            return JobReport {
                name: job.name.clone(),
                partitioner: name.to_string(),
                status,
                elapsed: started.elapsed(),
                retries: attempt,
                stats,
            };
        }
        attempt += 1;
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolves a strategy name against `registry`, with the standard
/// "unknown partitioner" message listing what is available. Shared by the
/// batch path here and the request API ([`crate::api::synthesize_with`]).
pub(crate) fn resolve_strategy(
    registry: &Registry,
    name: &str,
) -> Result<Box<dyn Partitioner>, String> {
    registry.from_str(name).ok_or_else(|| {
        format!(
            "unknown partitioner `{name}` (available: {})",
            registry.names().join(", ")
        )
    })
}

/// Runs `design` through the full synthesis pipeline with `job`'s options
/// (partition → merge → rewrite → verify or skip → emit C), feeding
/// `observer`. The one pipeline invocation both the batch scheduler and
/// the request API execute, so the two paths cannot drift.
pub(crate) fn run_synth_pipeline(
    design: &Design,
    job: &Job,
    lint: Option<LintConfig>,
    partitioner: &dyn Partitioner,
    observer: &mut dyn Observer,
) -> Result<SynthesisResult, SynthError> {
    let mut pipeline = Pipeline::new(design)
        .constraints(PartitionConstraints::with_spec(job.spec))
        .optimize(job.optimize);
    if let Some(config) = lint {
        pipeline = pipeline.lint(config);
    }
    let rewritten = pipeline
        .observe(observer)
        .partition_with(partitioner)?
        .merge()?
        .rewrite()?;
    let verified = if job.verify {
        rewritten.verify(VerifyOptions::default())?
    } else {
        rewritten.skip_verify()
    };
    Ok(verified.emit_c())
}

/// How one attempt of a job's fallible body ended short of success.
enum ExecError {
    /// The attempt returned an error.
    Failed(String),
    /// The attempt was cancelled at a stage boundary by the per-attempt
    /// deadline (or an injected timeout abort).
    TimedOut(String),
}

/// Maps a stage-boundary abort to the attempt outcome it represents.
fn abort_error(stage: Stage, abort: StageAbort) -> ExecError {
    if abort.timeout {
        ExecError::TimedOut(abort.message)
    } else {
        ExecError::Failed(format!("stage {stage} aborted: {}", abort.message))
    }
}

/// The per-attempt pipeline observer: collects stage timings, enforces
/// the cooperative per-attempt deadline, and enacts injected faults at
/// every stage boundary.
struct StageGuard<'a> {
    timings: StageTimings,
    /// The wall-clock deadline of this attempt, when a timeout is set.
    deadline: Option<Instant>,
    /// The configured limit, quoted (not measured time) in timeout
    /// messages so reports stay deterministic.
    limit: Option<Duration>,
    faults: Option<&'a dyn FaultInjector>,
    job: usize,
    attempt: u32,
}

impl<'a> StageGuard<'a> {
    fn new(config: &'a FarmConfig, job: usize, attempt: u32) -> Self {
        Self {
            timings: StageTimings::new(),
            deadline: config.job_timeout.map(|limit| Instant::now() + limit),
            limit: config.job_timeout,
            faults: config.faults.as_deref(),
            job,
            attempt,
        }
    }

    fn deadline_abort(&self, stage: Stage) -> Option<StageAbort> {
        match (self.deadline, self.limit) {
            (Some(deadline), Some(limit)) if Instant::now() >= deadline => Some(
                StageAbort::timeout(format!("job timed out before {stage} (limit {limit:?})")),
            ),
            _ => None,
        }
    }

    /// The gate every stage passes through: deadline first, then the
    /// injector's verdict. A `Delay` sleeps and re-checks the deadline, a
    /// `Panic` panics into the worker's per-job isolation, an `Abort`
    /// returns as-is.
    fn check(&self, stage: Stage) -> Result<(), StageAbort> {
        if let Some(abort) = self.deadline_abort(stage) {
            return Err(abort);
        }
        let Some(fault) = self
            .faults
            .and_then(|f| f.before_stage(self.job, self.attempt, stage))
        else {
            return Ok(());
        };
        match fault {
            Fault::Delay(delay) => {
                std::thread::sleep(delay);
                match self.deadline_abort(stage) {
                    Some(abort) => Err(abort),
                    None => Ok(()),
                }
            }
            Fault::Panic(message) => panic!("{message}"),
            Fault::Abort(abort) => Err(abort),
        }
    }
}

impl Observer for StageGuard<'_> {
    fn on_stage(&mut self, report: &StageReport) {
        self.timings.on_stage(report);
    }

    fn before_stage(&mut self, stage: Stage) -> Result<(), StageAbort> {
        self.check(stage)
    }
}

/// The fallible body of one attempt of one job.
fn execute(
    job: &Job,
    index: usize,
    attempt: u32,
    partitioner_name: &str,
    config: &FarmConfig,
) -> Result<JobStats, ExecError> {
    let partitioner =
        resolve_strategy(&config.registry, partitioner_name).map_err(ExecError::Failed)?;
    let design = job.load_design().map_err(ExecError::Failed)?;
    let lint = job.lint.or(config.lint);
    let mut guard = StageGuard::new(config, index, attempt);
    match job.mode {
        JobMode::Partition => {
            // Partition-only jobs run outside the pipeline, so the lint
            // admission gate is replayed here with the same stage
            // gating, observer report, and deny semantics.
            let lint_outcome = run_lint_stage(&design, lint, &mut guard)?;
            guard
                .check(Stage::Partition)
                .map_err(|abort| abort_error(Stage::Partition, abort))?;
            let constraints = PartitionConstraints::with_spec(job.spec);
            design
                .validate()
                .map_err(|e| ExecError::Failed(e.to_string()))?;
            let started = Instant::now();
            let partitioning = partitioner.partition(&design, &constraints);
            let elapsed = started.elapsed();
            partitioning
                .verify(&design, &constraints)
                .map_err(|e| ExecError::Failed(e.to_string()))?;
            guard.on_stage(&StageReport {
                stage: Stage::Partition,
                elapsed,
                detail: partitioning.to_string(),
            });
            Ok(JobStats {
                inner_before: partitioning.covered() + partitioning.uncovered().len(),
                inner_after: partitioning.inner_total(),
                partitions: partitioning.num_partitions(),
                complete: partitioning.is_complete(),
                c_bytes: 0,
                verified: false,
                lint: lint_outcome,
                timings: guard.timings,
            })
        }
        JobMode::Synth => {
            let result = run_synth_pipeline(&design, job, lint, partitioner.as_ref(), &mut guard)
                .map_err(|e| match e {
                SynthError::Aborted { stage, abort } => abort_error(stage, abort),
                other => ExecError::Failed(other.to_string()),
            })?;
            Ok(JobStats {
                inner_before: result.inner_before(),
                inner_after: result.inner_after(),
                partitions: result.partitioning.num_partitions(),
                complete: result.partitioning.is_complete(),
                c_bytes: result.c_sources.iter().map(|(_, c)| c.len()).sum(),
                verified: result.report.as_ref().is_some_and(|r| r.is_equivalent()),
                lint: result.lint,
                timings: guard.timings,
            })
        }
    }
}

/// The lint admission gate replayed for partition-only jobs (synth jobs
/// get theirs from the pipeline): gate the stage, lint, feed the
/// observer, reject per the config's deny level.
fn run_lint_stage(
    design: &Design,
    lint: Option<LintConfig>,
    guard: &mut StageGuard<'_>,
) -> Result<Option<LintOutcome>, ExecError> {
    let Some(config) = lint else {
        return Ok(None);
    };
    guard
        .check(Stage::Lint)
        .map_err(|abort| abort_error(Stage::Lint, abort))?;
    let started = Instant::now();
    let report = lint_design(design, &config);
    let outcome = report.outcome();
    guard.on_stage(&StageReport {
        stage: Stage::Lint,
        elapsed: started.elapsed(),
        detail: outcome.to_string(),
    });
    if report.rejects(config.deny) {
        return Err(ExecError::Failed(
            SynthError::LintRejected { report }.to_string(),
        ));
    }
    Ok(Some(outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::report::JsonOptions;
    use eblocks_core::Design;
    use eblocks_partition::{Partitioner, Partitioning};

    fn library_batch() -> Batch {
        Batch::new(vec![
            Job::library("Ignition Illuminator"),
            Job::library("Podium Timer 3").with_partitioner("refine"),
            Job::generated(10, 3).with_mode(JobMode::Partition),
        ])
    }

    #[test]
    fn batch_runs_and_aggregates() {
        let report = run_batch(&library_batch(), &FarmConfig::with_workers(2));
        assert_eq!(report.jobs.len(), 3);
        assert!(report.all_ok(), "{}", report.render_text(false));
        assert_eq!(report.workers, 2);
        let stats = report.jobs[0].stats.as_ref().unwrap();
        assert_eq!(stats.inner_before, 2);
        assert_eq!(stats.inner_after, 1);
        assert!(stats.verified);
        assert!(stats.c_bytes > 0);
        assert_eq!(report.jobs[1].partitioner, "refine");
        let part = report.jobs[2].stats.as_ref().unwrap();
        assert_eq!(part.c_bytes, 0, "partition mode emits no C");
        assert!(!part.verified);
        assert_eq!(part.timings.reports.len(), 1, "only the partition stage");
    }

    #[test]
    fn lint_gate_reports_and_rejects() {
        // Farm-level default: every job lints first, in both modes.
        let config = FarmConfig::with_workers(2).lint(LintConfig::default());
        let report = run_batch(&library_batch(), &config);
        assert!(report.all_ok(), "{}", report.render_text(false));
        for job in &report.jobs {
            let stats = job.stats.as_ref().unwrap();
            assert!(stats.lint.is_some(), "{}: lint outcome recorded", job.name);
            assert_eq!(stats.timings.reports[0].stage, Stage::Lint);
        }

        // A per-job zero fan-out budget under deny-warnings rejects the
        // job; its sibling without the override stays lint-free.
        let strict = LintConfig {
            deny: eblocks_lint::DenyLevel::Warnings,
            max_fanout: 0,
            ..LintConfig::default()
        };
        let batch = Batch::new(vec![
            Job::library("Ignition Illuminator").with_lint(strict),
            Job::library("Ignition Illuminator"),
        ]);
        let report = run_batch(&batch, &FarmConfig::with_workers(1));
        let JobStatus::Failed(message) = &report.jobs[0].status else {
            panic!("{:?}", report.jobs[0].status);
        };
        assert!(message.contains("lint rejected the design"), "{message}");
        assert!(message.contains("W008"), "{message}");
        let stats = report.jobs[1].stats.as_ref().unwrap();
        assert_eq!(stats.lint, None, "lint is off unless configured");
    }

    /// A scripted injector: an optional pickup order plus faults pinned
    /// to exact (job, attempt, stage) points.
    struct Script {
        order: Option<Vec<usize>>,
        faults: Vec<((usize, u32, Stage), Fault)>,
    }

    impl Script {
        fn faults(faults: Vec<((usize, u32, Stage), Fault)>) -> Self {
            Self {
                order: None,
                faults,
            }
        }
    }

    impl FaultInjector for Script {
        fn pickup_order(&self, _jobs: usize) -> Option<Vec<usize>> {
            self.order.clone()
        }

        fn before_stage(&self, job: usize, attempt: u32, stage: Stage) -> Option<Fault> {
            self.faults
                .iter()
                .find(|((j, a, s), _)| (*j, *a, *s) == (job, attempt, stage))
                .map(|(_, fault)| fault.clone())
        }
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        // with_workers(0) is documented to behave exactly like
        // with_workers(1): the pool always has at least one worker.
        let report = run_batch(&library_batch(), &FarmConfig::with_workers(0));
        assert_eq!(report.workers, 1);
        assert!(report.all_ok(), "{}", report.render_text(false));
        let baseline = run_batch(&library_batch(), &FarmConfig::with_workers(1));
        assert_eq!(
            report.to_json(&JsonOptions::default()),
            baseline.to_json(&JsonOptions::default())
        );
    }

    #[test]
    fn drain_flag_cancels_unclaimed_jobs() {
        use std::sync::atomic::AtomicBool;

        // A pre-set flag drains before any job is claimed: every row is
        // a cancellation, in submission order, with its resolved
        // strategy name.
        let flag = Arc::new(AtomicBool::new(true));
        let report = run_batch(&library_batch(), &FarmConfig::with_workers(2).stop_on(flag));
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(report.succeeded(), 0);
        for job in &report.jobs {
            let JobStatus::Failed(message) = &job.status else {
                panic!("{:?}", job.status);
            };
            assert_eq!(message, "cancelled: batch drain requested");
        }
        assert_eq!(report.jobs[1].partitioner, "refine");

        // A flag set from a progress hook after the first job finishes
        // (one worker, so scheduling is sequential) lets that job keep
        // its real report and cancels the rest deterministically.
        struct StopAfterFirst(Arc<AtomicBool>);
        impl BatchProgress for StopAfterFirst {
            fn job_finished(&self, _: usize, _: &JobReport) {
                self.0.store(true, Ordering::Relaxed);
            }
        }
        let flag = Arc::new(AtomicBool::new(false));
        let config = FarmConfig::with_workers(1).stop_on(flag.clone());
        let report = run_batch_with_progress(&library_batch(), &config, &StopAfterFirst(flag));
        assert!(report.jobs[0].status.is_ok(), "{:?}", report.jobs[0].status);
        assert_eq!(report.succeeded(), 1);
        assert_eq!(report.failed(), 2);
    }

    #[test]
    fn retries_recover_from_transient_faults() {
        // A panic injected only on attempt 0 of job 0: with a retry
        // budget the second attempt succeeds, and only the retry counter
        // distinguishes the report from a fault-free run.
        let script = Script::faults(vec![(
            (0, 0, Stage::Partition),
            Fault::Panic("injected panic".into()),
        )]);
        let config = FarmConfig::with_workers(2)
            .retries(1)
            .inject(Arc::new(script));
        let report = run_batch(&library_batch(), &config);
        assert!(report.all_ok(), "{}", report.render_text(false));
        assert_eq!(report.jobs[0].retries, 1);
        assert_eq!(report.jobs[1].retries, 0);
        assert_eq!(report.jobs[2].retries, 0);
        let json = report.to_json(&JsonOptions::default());
        assert!(json.contains(r#""retries":1"#), "{json}");

        // Without the budget the same fault is a terminal panic.
        let script = Script::faults(vec![(
            (0, 0, Stage::Partition),
            Fault::Panic("injected panic".into()),
        )]);
        let config = FarmConfig::with_workers(2).inject(Arc::new(script));
        let report = run_batch(&library_batch(), &config);
        let JobStatus::Panicked(message) = &report.jobs[0].status else {
            panic!("{:?}", report.jobs[0].status);
        };
        assert_eq!(message, "injected panic");
        assert_eq!(report.jobs[0].retries, 0);
    }

    #[test]
    fn exhausted_retry_budget_keeps_the_failure() {
        // A fault injected on every attempt: the job burns its whole
        // budget, reports the final failure, and no job is lost or
        // duplicated.
        let script = Script::faults(
            (0..3)
                .map(|attempt| {
                    (
                        (1, attempt, Stage::Partition),
                        Fault::Abort(StageAbort::fault("injected fault")),
                    )
                })
                .collect(),
        );
        let config = FarmConfig::with_workers(2)
            .retries(2)
            .inject(Arc::new(script));
        let report = run_batch(&library_batch(), &config);
        assert_eq!(report.jobs.len(), 3);
        assert_eq!(report.succeeded(), 2);
        let JobStatus::Failed(message) = &report.jobs[1].status else {
            panic!("{:?}", report.jobs[1].status);
        };
        assert_eq!(message, "stage partition aborted: injected fault");
        assert_eq!(report.jobs[1].retries, 2);
    }

    #[test]
    fn injected_timeout_reports_timed_out() {
        let script = Script::faults(vec![(
            (0, 0, Stage::Merge),
            Fault::Abort(StageAbort::timeout("injected timeout before merge")),
        )]);
        let config = FarmConfig::with_workers(1).inject(Arc::new(script));
        let report = run_batch(&library_batch(), &config);
        let JobStatus::TimedOut(message) = &report.jobs[0].status else {
            panic!("{:?}", report.jobs[0].status);
        };
        assert_eq!(message, "injected timeout before merge");
        let json = report.to_json(&JsonOptions::default());
        assert!(json.contains(r#""status":"timed-out""#), "{json}");
        assert!(report.jobs[1].status.is_ok());
        assert!(report.jobs[2].status.is_ok());
    }

    #[test]
    fn deadline_trips_deterministically_after_injected_delay() {
        // A Delay at least as long as the budget forces the post-sleep
        // deadline re-check to trip; the message quotes the configured
        // limit (never measured time), so it is byte-stable across runs.
        let script = Script::faults(vec![(
            (0, 0, Stage::Merge),
            Fault::Delay(Duration::from_millis(40)),
        )]);
        let config = FarmConfig::with_workers(1)
            .timeout(Duration::from_millis(30))
            .inject(Arc::new(script));
        let report = run_batch(&library_batch(), &config);
        let JobStatus::TimedOut(message) = &report.jobs[0].status else {
            panic!("{:?}", report.jobs[0].status);
        };
        assert_eq!(message, "job timed out before merge (limit 30ms)");
        assert_eq!(report.jobs[0].retries, 0);
        assert!(report.jobs[1].status.is_ok());
    }

    #[test]
    fn pickup_order_perturbs_scheduling_not_results() {
        let baseline = run_batch(&library_batch(), &FarmConfig::with_workers(1));

        // A reversed pickup order changes when jobs start, not the report:
        // rows stay in submission order and (timings off) byte-identical.
        let script = Script {
            order: Some(vec![2, 1, 0]),
            faults: vec![],
        };
        let config = FarmConfig::with_workers(1).inject(Arc::new(script));
        let recorder = Recorder::default();
        let report = run_batch_with_progress(&library_batch(), &config, &recorder);
        let started: Vec<usize> = recorder
            .started
            .into_inner()
            .unwrap()
            .iter()
            .map(|(i, _)| *i)
            .collect();
        assert_eq!(started, vec![2, 1, 0]);
        assert_eq!(
            report.to_json(&JsonOptions::default()),
            baseline.to_json(&JsonOptions::default())
        );

        // An invalid permutation (wrong length, duplicates, out of range)
        // is ignored in favor of submission order.
        for bad in [vec![0, 1], vec![0, 0, 1], vec![0, 1, 7]] {
            let script = Script {
                order: Some(bad),
                faults: vec![],
            };
            let config = FarmConfig::with_workers(1).inject(Arc::new(script));
            let recorder = Recorder::default();
            run_batch_with_progress(&library_batch(), &config, &recorder);
            let started: Vec<usize> = recorder
                .started
                .into_inner()
                .unwrap()
                .iter()
                .map(|(i, _)| *i)
                .collect();
            assert_eq!(started, vec![0, 1, 2]);
        }
    }

    #[test]
    fn worker_count_is_clamped_to_jobs() {
        let report = run_batch(
            &library_batch(),
            &FarmConfig {
                workers: Some(64),
                ..Default::default()
            },
        );
        assert_eq!(report.workers, 3);
        let empty = run_batch(&Batch::default(), &FarmConfig::with_workers(8));
        assert_eq!(empty.jobs.len(), 0);
        assert!(empty.all_ok());
    }

    #[test]
    fn partitioner_resolution_precedence() {
        let mut batch = Batch::new(vec![
            Job::library("Ignition Illuminator"),
            Job::library("Carpool Alert").with_partitioner("aggregation"),
        ]);
        batch.default_partitioner = Some("refine".into());

        // Batch default applies when nothing else is set.
        let report = run_batch(&batch, &FarmConfig::with_workers(1));
        assert_eq!(report.jobs[0].partitioner, "refine");
        assert_eq!(report.jobs[1].partitioner, "aggregation");

        // The engine override beats the batch default, not the per-job pick.
        let config = FarmConfig {
            workers: Some(1),
            partitioner_override: Some("anneal".into()),
            ..Default::default()
        };
        let report = run_batch(&batch, &config);
        assert_eq!(report.jobs[0].partitioner, "anneal");
        assert_eq!(report.jobs[1].partitioner, "aggregation");
    }

    #[test]
    fn failures_are_reported_not_fatal() {
        let batch = Batch::new(vec![
            Job::netlist("/nonexistent/x.netlist"),
            Job::library("Ignition Illuminator").with_partitioner("magic"),
            Job::library("Ignition Illuminator"),
        ]);
        let report = run_batch(&batch, &FarmConfig::with_workers(2));
        assert_eq!(report.succeeded(), 1);
        assert_eq!(report.failed(), 2);
        let JobStatus::Failed(e) = &report.jobs[0].status else {
            panic!("{:?}", report.jobs[0].status);
        };
        assert!(e.contains("cannot read"), "{e}");
        let JobStatus::Failed(e) = &report.jobs[1].status else {
            panic!("{:?}", report.jobs[1].status);
        };
        assert!(
            e.contains("unknown partitioner `magic`") && e.contains("pare-down"),
            "lists the registered names: {e}"
        );
        assert!(report.jobs[2].status.is_ok());
    }

    /// A listener recording every callback, guarded for cross-thread use.
    #[derive(Default)]
    struct Recorder {
        started: Mutex<Vec<(usize, String)>>,
        finished: Mutex<Vec<(usize, JobReport)>>,
    }

    impl BatchProgress for Recorder {
        fn job_started(&self, index: usize, job: &Job) {
            self.started.lock().unwrap().push((index, job.name.clone()));
        }

        fn job_finished(&self, index: usize, report: &JobReport) {
            self.finished.lock().unwrap().push((index, report.clone()));
        }
    }

    #[test]
    fn progress_listener_sees_every_job_start_and_finish() {
        let batch = library_batch();
        let recorder = Recorder::default();
        let report = run_batch_with_progress(&batch, &FarmConfig::with_workers(2), &recorder);

        let mut started = recorder.started.into_inner().unwrap();
        started.sort();
        assert_eq!(
            started,
            vec![
                (0, "Ignition Illuminator".to_string()),
                (1, "Podium Timer 3".to_string()),
                (2, "gen10-3".to_string()),
            ]
        );

        let mut finished = recorder.finished.into_inner().unwrap();
        finished.sort_by_key(|(i, _)| *i);
        assert_eq!(finished.len(), 3);
        for (index, row) in &finished {
            assert_eq!(
                *row, report.jobs[*index],
                "streamed rows match the final report"
            );
        }
        // The streamed rows carry the per-job stage timings already.
        assert!(!finished[0]
            .1
            .stats
            .as_ref()
            .unwrap()
            .timings
            .reports
            .is_empty());
    }

    #[test]
    fn panicking_listener_does_not_lose_the_batch() {
        struct Grenade;

        impl BatchProgress for Grenade {
            fn job_started(&self, _: usize, _: &Job) {
                panic!("listener bug on start");
            }

            fn job_finished(&self, _: usize, _: &JobReport) {
                panic!("listener bug on finish");
            }
        }

        let report =
            run_batch_with_progress(&library_batch(), &FarmConfig::with_workers(2), &Grenade);
        assert_eq!(report.jobs.len(), 3);
        assert!(report.all_ok(), "{}", report.render_text(false));
    }

    #[test]
    fn progress_listener_hears_panicked_jobs_too() {
        let mut config = FarmConfig::with_workers(1);
        config.registry.register("poison", || Box::new(Poison));
        let batch = Batch::new(vec![
            Job::library("Ignition Illuminator").with_partitioner("poison")
        ]);
        let recorder = Recorder::default();
        run_batch_with_progress(&batch, &config, &recorder);
        let finished = recorder.finished.into_inner().unwrap();
        assert!(matches!(finished[0].1.status, JobStatus::Panicked(_)));
    }

    /// A strategy that always panics, for poisoned-job isolation tests.
    struct Poison;

    impl Partitioner for Poison {
        fn name(&self) -> &'static str {
            "poison"
        }

        fn partition(&self, _: &Design, _: &PartitionConstraints) -> Partitioning {
            panic!("poisoned strategy")
        }
    }

    #[test]
    fn poisoned_job_does_not_take_down_the_batch() {
        let mut config = FarmConfig::with_workers(2);
        config.registry.register("poison", || Box::new(Poison));
        let batch = Batch::new(vec![
            Job::library("Ignition Illuminator"),
            Job::library("Carpool Alert").with_partitioner("poison"),
            Job::library("Night Lamp Controller"),
        ]);
        let report = run_batch(&batch, &config);
        assert_eq!(report.succeeded(), 2);
        let JobStatus::Panicked(message) = &report.jobs[1].status else {
            panic!("expected a panic report, got {:?}", report.jobs[1].status);
        };
        assert!(message.contains("poisoned strategy"), "{message}");
        assert!(report.jobs[0].status.is_ok());
        assert!(report.jobs[2].status.is_ok());
        let json = report.to_json(&JsonOptions::default());
        assert!(json.contains(r#""status":"panicked""#), "{json}");
    }
}
