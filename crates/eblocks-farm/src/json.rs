//! A minimal hand-rolled JSON emitter.
//!
//! The workspace's vendored `serde` derives are no-ops (offline stand-ins),
//! so the farm's report module owns its own serialization. This is a writer
//! only — reports are produced, never parsed back — and it emits compact,
//! deterministic output: object keys appear in insertion order and numbers
//! print through Rust's `Display`, so identical reports serialize to
//! identical bytes.

use std::fmt::Write;

/// Escapes `s` per RFC 8259 and appends it, quoted, to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An object or array being written. Tracks whether a comma is due.
#[derive(Debug)]
pub struct Node {
    buf: String,
    first: bool,
    close: char,
}

impl Node {
    /// Starts an object (`{`).
    pub fn object() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
            close: '}',
        }
    }

    /// Starts an array (`[`).
    pub fn array() -> Self {
        Self {
            buf: String::from("["),
            first: true,
            close: ']',
        }
    }

    fn comma(&mut self) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
    }

    fn key(&mut self, key: &str) {
        self.comma();
        write_str(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Adds `"key": "value"` (escaped).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        write_str(&mut self.buf, value);
        self
    }

    /// Adds `"key": value` for any integer/float/bool already rendered by
    /// `Display` (the caller guarantees it is valid JSON).
    pub fn raw(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds `"key": <finished node>`.
    pub fn node(&mut self, key: &str, value: Node) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.finish());
        self
    }

    /// Appends a finished node as the next array element.
    pub fn push(&mut self, value: Node) -> &mut Self {
        self.comma();
        self.buf.push_str(&value.finish());
        self
    }

    /// Appends a string as the next array element.
    pub fn push_str(&mut self, value: &str) -> &mut Self {
        self.comma();
        write_str(&mut self.buf, value);
        self
    }

    /// Closes the node and returns its text.
    pub fn finish(mut self) -> String {
        self.buf.push(self.close);
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn objects_and_arrays_nest() {
        let mut inner = Node::array();
        inner.push_str("x").push_str("y");
        let mut obj = Node::object();
        obj.str("name", "n").raw("count", 2).raw("ok", true);
        obj.node("items", inner);
        assert_eq!(
            obj.finish(),
            r#"{"name":"n","count":2,"ok":true,"items":["x","y"]}"#
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Node::object().finish(), "{}");
        assert_eq!(Node::array().finish(), "[]");
    }
}
