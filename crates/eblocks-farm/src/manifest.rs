//! The line-oriented batch manifest format.
//!
//! A manifest is a plain text file, one directive per line; `#` starts a
//! comment and blank lines are ignored:
//!
//! ```text
//! # Three ways to name a design, one job per line.
//! default partitioner=pare-down verify=false
//!
//! job netlist="netlists/garage-open-at-night.netlist"
//! job library="Podium Timer 3" partitioner=refine name=pt3
//! job generated=20 seed=7 mode=partition
//! ```
//!
//! * `job` lines take `key=value` pairs. Exactly one of `netlist=PATH`,
//!   `library=NAME`, or `generated=INNER` names the design source; the
//!   remaining keys (`name`, `partitioner`, `seed`, `mode=synth|partition`,
//!   `verify`, `optimize`, `inputs`, `outputs`) are optional. Values with
//!   spaces go in double quotes.
//! * `default` lines set option defaults for the job lines **after** them
//!   (same keys, minus the source keys). `default partitioner=…` is special:
//!   it becomes the batch-level fallback ([`Batch::default_partitioner`]),
//!   which an engine-level override — the CLI's `--partitioner` flag —
//!   beats, while a per-job `partitioner=` beats both.
//!
//! Relative `netlist=` paths are resolved against the manifest file's
//! directory by [`Batch::from_file`]; [`Batch::parse`] leaves them as-is.

use crate::api::BatchRequest;
use crate::job::{Batch, Job, JobMode, JobSource};
use eblocks_core::ProgrammableSpec;
use std::path::{Path, PathBuf};

/// A manifest error: what went wrong, on which 1-based line, and — when it
/// came through [`Batch::from_file`] — in which file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// The manifest file, when known ([`Batch::from_file`] fills this in;
    /// the text-level parsers leave it `None`).
    pub path: Option<PathBuf>,
    /// 1-based line the error was found on; 0 when no line applies (an
    /// unreadable file, a JSON shape error).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ManifestError {
    fn at_line(line: usize, message: String) -> Self {
        Self {
            path: None,
            line,
            message,
        }
    }

    /// The same error, attributed to `path`.
    #[must_use]
    pub fn with_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.path = Some(path.into());
        self
    }
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(path) = &self.path {
            write!(f, "{}: ", path.display())?;
        }
        if self.line > 0 {
            write!(f, "manifest line {}: {}", self.line, self.message)
        } else {
            write!(f, "manifest: {}", self.message)
        }
    }
}

impl std::error::Error for ManifestError {}

/// Option defaults carried between `default` lines and applied to jobs.
#[derive(Debug, Clone, Copy)]
struct Defaults {
    mode: JobMode,
    verify: bool,
    optimize: bool,
    spec: ProgrammableSpec,
}

impl Default for Defaults {
    fn default() -> Self {
        Self {
            mode: JobMode::Synth,
            verify: true,
            optimize: true,
            spec: ProgrammableSpec::default(),
        }
    }
}

/// Splits a directive line into words, honoring double quotes (which may
/// enclose a whole word or just the value half of a `key=value` pair). An
/// unquoted `#` starts a comment; inside quotes it is literal.
fn tokenize(line: &str) -> Result<Vec<String>, String> {
    let mut words = Vec::new();
    let mut word = String::new();
    let mut in_word = false;
    let mut quoted = false;
    for c in line.chars() {
        match c {
            '"' => {
                quoted = !quoted;
                in_word = true; // `a=""` is a present-but-empty value
            }
            '#' if !quoted => break,
            c if c.is_whitespace() && !quoted => {
                if in_word {
                    words.push(std::mem::take(&mut word));
                    in_word = false;
                }
            }
            c => {
                word.push(c);
                in_word = true;
            }
        }
    }
    if quoted {
        return Err("unterminated quote".into());
    }
    if in_word {
        words.push(word);
    }
    Ok(words)
}

fn parse_bool(key: &str, value: &str) -> Result<bool, String> {
    match value {
        "true" | "yes" | "1" => Ok(true),
        "false" | "no" | "0" => Ok(false),
        other => Err(format!("bad boolean `{other}` for `{key}`")),
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("bad number `{value}` for `{key}`"))
}

fn parse_mode(value: &str) -> Result<JobMode, String> {
    match value {
        "synth" => Ok(JobMode::Synth),
        "partition" => Ok(JobMode::Partition),
        other => Err(format!("bad mode `{other}` (expected synth|partition)")),
    }
}

/// Applies one option `key=value` shared by `job` and `default` lines.
/// Returns false when the key is not an option key.
fn apply_option(d: &mut Defaults, key: &str, value: &str) -> Result<bool, String> {
    match key {
        "mode" => d.mode = parse_mode(value)?,
        "verify" => d.verify = parse_bool(key, value)?,
        "optimize" => d.optimize = parse_bool(key, value)?,
        "inputs" => d.spec.inputs = parse_num(key, value)?,
        "outputs" => d.spec.outputs = parse_num(key, value)?,
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_job(pairs: &[(String, String)], defaults: &Defaults) -> Result<Job, String> {
    let mut source: Option<JobSource> = None;
    let mut name: Option<String> = None;
    let mut partitioner: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut opts = *defaults;
    for (key, value) in pairs {
        let mut set_source = |s: JobSource| {
            if source.is_some() {
                Err("more than one of netlist=/library=/generated=".to_string())
            } else {
                source = Some(s);
                Ok(())
            }
        };
        match key.as_str() {
            "netlist" => set_source(JobSource::Netlist(value.into()))?,
            "library" => set_source(JobSource::Library(value.clone()))?,
            "generated" => set_source(JobSource::Generated {
                inner: parse_num(key, value)?,
                seed: 0,
            })?,
            "seed" => seed = Some(parse_num(key, value)?),
            "name" => name = Some(value.clone()),
            "partitioner" => partitioner = Some(value.clone()),
            key => {
                if !apply_option(&mut opts, key, value)? {
                    return Err(format!("unknown job key `{key}`"));
                }
            }
        }
    }
    let mut source = source.ok_or("job needs one of netlist=/library=/generated=")?;
    match (&mut source, seed) {
        (JobSource::Generated { seed, .. }, Some(s)) => *seed = s,
        (JobSource::Generated { .. }, None) => {}
        (_, Some(_)) => return Err("seed= only applies to generated= jobs".into()),
        _ => {}
    }
    let mut job = match source {
        JobSource::Netlist(path) => Job::netlist(path),
        JobSource::Library(name) => Job::library(name),
        JobSource::Generated { inner, seed } => Job::generated(inner, seed),
    };
    if let Some(name) = name {
        job = job.named(name);
    }
    job.partitioner = partitioner;
    job.mode = opts.mode;
    job.verify = opts.verify;
    job.optimize = opts.optimize;
    job.spec = opts.spec;
    Ok(job)
}

impl Batch {
    /// Parses a manifest. Relative `netlist=` paths are kept as written;
    /// use [`Batch::from_file`] to resolve them against the manifest's
    /// directory.
    ///
    /// # Errors
    ///
    /// [`ManifestError`] with the offending 1-based line number.
    pub fn parse(text: &str) -> Result<Self, ManifestError> {
        let mut batch = Batch::default();
        let mut defaults = Defaults::default();
        for (i, raw) in text.lines().enumerate() {
            let err = |message: String| ManifestError::at_line(i + 1, message);
            // Comments are stripped inside tokenize (quote-aware: a `#` in
            // a quoted value is literal), so a comment-only line tokenizes
            // to nothing.
            let words = tokenize(raw).map_err(err)?;
            let Some((directive, rest)) = words.split_first() else {
                continue;
            };
            let pairs: Vec<(String, String)> = rest
                .iter()
                .map(|w| {
                    w.split_once('=')
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                        .ok_or_else(|| err(format!("expected key=value, got `{w}`")))
                })
                .collect::<Result<_, _>>()?;
            match directive.as_str() {
                "job" => batch.jobs.push(parse_job(&pairs, &defaults).map_err(err)?),
                "default" => {
                    for (key, value) in &pairs {
                        if key == "partitioner" {
                            batch.default_partitioner = Some(value.clone());
                        } else if !apply_option(&mut defaults, key, value).map_err(err)? {
                            return Err(err(format!("unknown default key `{key}`")));
                        }
                    }
                }
                other => return Err(err(format!("unknown directive `{other}`"))),
            }
        }
        Ok(batch)
    }

    /// Parses a manifest-v2 JSON batch: the serialized form of
    /// [`BatchRequest`] (see [`crate::api`]).
    ///
    /// Relative `netlist` paths are kept as written, as in
    /// [`Batch::parse`]; [`Batch::from_file`] resolves them.
    ///
    /// # Errors
    ///
    /// [`ManifestError`] carrying the JSON syntax error's line (or line 0
    /// with the value path for shape errors, e.g.
    /// `jobs[0].source: unknown variant`).
    pub fn from_json(text: &str) -> Result<Self, ManifestError> {
        match serde::json::from_str::<BatchRequest>(text) {
            Ok(request) => Ok(request.to_batch()),
            Err(serde::json::Error::Syntax(e)) => Err(ManifestError::at_line(
                e.line,
                format!("column {}: {}", e.column, e.message),
            )),
            Err(serde::json::Error::Data(e)) => Err(ManifestError::at_line(0, e.to_string())),
        }
    }

    /// Reads and parses a manifest file — line-oriented (v1) or JSON (v2,
    /// detected by a leading `{`) — resolving relative `netlist` paths
    /// against the file's directory.
    ///
    /// # Errors
    ///
    /// [`ManifestError`] carrying the file path (unreadable file, syntax
    /// error, or JSON shape error).
    pub fn from_file(path: impl AsRef<Path>) -> Result<Self, ManifestError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| ManifestError::at_line(0, format!("cannot read: {e}")).with_path(path))?;
        // Strip a UTF-8 BOM (Windows tooling) before sniffing the format —
        // it is not whitespace, so trim_start() alone would misroute a
        // BOM-prefixed JSON manifest to the v1 line parser.
        let text = text.strip_prefix('\u{feff}').unwrap_or(&text);
        let parsed = if text.trim_start().starts_with('{') {
            Self::from_json(text)
        } else {
            Self::parse(text)
        };
        let mut batch = parsed.map_err(|e| e.with_path(path))?;
        if let Some(base) = path.parent() {
            for job in &mut batch.jobs {
                if let JobSource::Netlist(p) = &mut job.source {
                    if p.is_relative() {
                        *p = base.join(&*p);
                    }
                }
            }
        }
        Ok(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_manifest_parses() {
        let batch = Batch::parse(
            "# a comment\n\
             default partitioner=anneal verify=false\n\
             \n\
             job netlist=\"a dir/garage.netlist\"  # trailing comment\n\
             job library=\"Podium Timer 3\" partitioner=refine name=pt3\n\
             default verify=true inputs=3\n\
             job generated=20 seed=7 mode=partition optimize=false\n",
        )
        .unwrap();
        assert_eq!(batch.default_partitioner.as_deref(), Some("anneal"));
        assert_eq!(batch.jobs.len(), 3);

        let j = &batch.jobs[0];
        assert_eq!(j.name, "garage");
        assert_eq!(j.source, JobSource::Netlist("a dir/garage.netlist".into()));
        assert_eq!(j.partitioner, None, "batch default applies at run time");
        assert!(!j.verify, "default verify=false was in effect");

        let j = &batch.jobs[1];
        assert_eq!(j.name, "pt3");
        assert_eq!(j.source, JobSource::Library("Podium Timer 3".into()));
        assert_eq!(j.partitioner.as_deref(), Some("refine"));

        let j = &batch.jobs[2];
        assert_eq!(j.source, JobSource::Generated { inner: 20, seed: 7 });
        assert_eq!(j.mode, JobMode::Partition);
        assert!(j.verify, "later default line flipped it back");
        assert!(!j.optimize);
        assert_eq!(j.spec.inputs, 3, "default inputs=3 was in effect");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let check = |text: &str, line: usize, needle: &str| {
            let e = Batch::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{e}");
            assert!(e.message.contains(needle), "{e}");
            assert!(e.to_string().contains(&format!("line {line}")));
        };
        check("frob x=1\n", 1, "unknown directive");
        check("\njob\n", 2, "needs one of");
        check("job netlist=a library=b\n", 1, "more than one");
        check("job netlist=a bogus=1\n", 1, "unknown job key");
        check("job netlist=a verify=maybe\n", 1, "bad boolean");
        check("job generated=many\n", 1, "bad number");
        check("job netlist=a mode=walk\n", 1, "bad mode");
        check("job netlist=a seed\n", 1, "expected key=value");
        check("job netlist=\"a\n", 1, "unterminated quote");
        check("default frob=1\n", 1, "unknown default key");
        check("job library=x seed=3\n", 1, "only applies to generated");
    }

    #[test]
    fn from_file_resolves_relative_netlists() {
        let dir = std::env::temp_dir().join(format!("eblocks-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("batch.manifest");
        std::fs::write(
            &manifest,
            "job netlist=rel.netlist\njob netlist=/abs.netlist\n",
        )
        .unwrap();
        let batch = Batch::from_file(&manifest).unwrap();
        assert_eq!(
            batch.jobs[0].source,
            JobSource::Netlist(dir.join("rel.netlist"))
        );
        assert_eq!(
            batch.jobs[1].source,
            JobSource::Netlist("/abs.netlist".into())
        );
        let missing = dir.join("missing.manifest");
        let err = Batch::from_file(&missing).unwrap_err();
        assert_eq!(err.path.as_deref(), Some(missing.as_path()));
        assert!(err.to_string().contains("cannot read"), "{err}");
        assert!(
            err.to_string().contains("missing.manifest"),
            "the Display output names the file: {err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_file_errors_carry_the_path() {
        let dir = std::env::temp_dir().join(format!("eblocks-manifest-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("broken.manifest");
        std::fs::write(&manifest, "job netlist=a\nfrob x=1\n").unwrap();
        let err = Batch::from_file(&manifest).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.path.as_deref(), Some(manifest.as_path()));
        let text = err.to_string();
        assert!(
            text.contains("broken.manifest") && text.contains("line 2"),
            "path and line: {text}"
        );
        // Text-level parsing leaves the path empty.
        let err = Batch::parse("frob x=1\n").unwrap_err();
        assert_eq!(err.path, None);
        assert_eq!(err.to_string(), "manifest line 1: unknown directive `frob`");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_manifests_parse_as_v2() {
        let batch = Batch::from_json(
            r#"{
                "default_partitioner": "anneal",
                "jobs": [
                    {"source": {"library": "Podium Timer 3"}, "partitioner": "refine"},
                    {"source": {"generated": {"inner": 20, "seed": 7}},
                     "options": {"mode": "partition", "optimize": false}}
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(batch.default_partitioner.as_deref(), Some("anneal"));
        assert_eq!(batch.jobs.len(), 2);
        assert_eq!(batch.jobs[0].partitioner.as_deref(), Some("refine"));
        assert_eq!(
            batch.jobs[1].source,
            JobSource::Generated { inner: 20, seed: 7 }
        );
        assert_eq!(batch.jobs[1].mode, JobMode::Partition);
        assert!(!batch.jobs[1].optimize);
        assert!(batch.jobs[1].verify, "unset options keep defaults");

        // Syntax errors carry the JSON line; shape errors carry the path
        // into the value tree.
        let err = Batch::from_json("{\n  \"jobs\": [,]\n}").unwrap_err();
        assert_eq!(err.line, 2, "{err}");
        let err = Batch::from_json(r#"{"jobs": [{"source": {"library": 3}}]}"#).unwrap_err();
        assert!(err.message.contains("jobs[0].source.library"), "{err}");
    }

    #[test]
    fn from_file_sniffs_json_and_resolves_netlists() {
        let dir =
            std::env::temp_dir().join(format!("eblocks-manifest-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("batch.json");
        std::fs::write(
            &manifest,
            r#"  {"jobs": [{"source": {"netlist": "rel.netlist"}}]}"#,
        )
        .unwrap();
        let batch = Batch::from_file(&manifest).unwrap();
        assert_eq!(
            batch.jobs[0].source,
            JobSource::Netlist(dir.join("rel.netlist")),
            "v2 manifests get the same relative-path resolution as v1"
        );
        std::fs::write(&manifest, r#"{"jobs": [{"sauce": 1}]}"#).unwrap();
        let err = Batch::from_file(&manifest).unwrap_err();
        assert!(err.to_string().contains("batch.json"), "{err}");
        assert!(err.message.contains("unknown field `sauce`"), "{err}");
        // A UTF-8 BOM (Windows tooling) must not defeat the sniffing.
        std::fs::write(&manifest, "\u{feff}{\"jobs\": []}").unwrap();
        let batch = Batch::from_file(&manifest).unwrap();
        assert!(batch.jobs.is_empty(), "BOM-prefixed JSON parses as v2");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quoting_edge_cases() {
        let batch = Batch::parse("job library=\"A B\" name=\"\"\n").unwrap();
        assert_eq!(batch.jobs[0].source, JobSource::Library("A B".into()));
        assert_eq!(batch.jobs[0].name, "", "explicit empty name is kept");
    }

    #[test]
    fn hash_in_quoted_value_is_literal() {
        let batch =
            Batch::parse("job netlist=\"dir/garage#1.netlist\" name=\"a#b\"  # real comment\n")
                .unwrap();
        assert_eq!(
            batch.jobs[0].source,
            JobSource::Netlist("dir/garage#1.netlist".into())
        );
        assert_eq!(batch.jobs[0].name, "a#b");
        // Unquoted `#` still starts a comment mid-line.
        let batch = Batch::parse("job library=X partitioner=refine # verify=false\n").unwrap();
        assert!(batch.jobs[0].verify, "commented-out key was ignored");
        // A quote opened after a real comment marker is not an error.
        assert!(Batch::parse("# just \"a comment\n")
            .unwrap()
            .jobs
            .is_empty());
    }
}
