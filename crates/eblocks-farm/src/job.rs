//! The unit of work the farm schedules: one design × one strategy × options.

use eblocks_core::{Design, ProgrammableSpec};
use eblocks_lint::LintConfig;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Where a job's design comes from.
///
/// This is also the wire type [`DesignSource`](crate::api::DesignSource) of
/// the JSON request API: `{"netlist": "path"}`, `{"library": "Name"}`, or
/// `{"generated": {"inner": 20, "seed": 7}}` (`seed` defaults to 0).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobSource {
    /// A netlist file on disk (parsed with
    /// [`eblocks_core::netlist::from_netlist`]).
    #[serde(rename = "netlist")]
    Netlist(PathBuf),
    /// A Table-1 library design, looked up by name via
    /// [`eblocks_designs::by_name`].
    #[serde(rename = "library")]
    Library(String),
    /// A seeded random design from [`eblocks_gen::generate`].
    #[serde(rename = "generated")]
    Generated {
        /// Target inner-block count.
        inner: usize,
        /// Generator seed (same seed ⇒ same design).
        #[serde(default)]
        seed: u64,
    },
}

/// How far the job runs the synthesis pipeline.
///
/// Serializes as `"synth"` / `"partition"`, matching the manifest `mode=`
/// tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum JobMode {
    /// The full pipeline: partition → merge → rewrite → (verify) → emit C.
    #[default]
    #[serde(rename = "synth")]
    Synth,
    /// Partition analysis only (the Tables 1–2 workload) — no merge,
    /// rewrite, verification, or C emission.
    #[serde(rename = "partition")]
    Partition,
}

/// One schedulable unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Display name, used to key the job's row in the batch report.
    pub name: String,
    /// Where the design comes from.
    pub source: JobSource,
    /// Strategy name resolved against the farm's registry; `None` falls
    /// back to the batch/engine default (see
    /// [`FarmConfig`](crate::FarmConfig)).
    pub partitioner: Option<String>,
    /// How far to run the pipeline.
    pub mode: JobMode,
    /// Co-simulate original vs synthesized (synth mode only).
    pub verify: bool,
    /// Run the behavior-tree optimizer before emitting C.
    pub optimize: bool,
    /// Programmable-block pin budget.
    pub spec: ProgrammableSpec,
    /// Lint the design before synthesis; `None` falls back to the farm's
    /// [`FarmConfig::lint`](crate::FarmConfig::lint) default (usually off).
    pub lint: Option<LintConfig>,
}

impl Job {
    fn with_source(name: String, source: JobSource) -> Self {
        Self {
            name,
            source,
            partitioner: None,
            mode: JobMode::Synth,
            verify: true,
            optimize: true,
            spec: ProgrammableSpec::default(),
            lint: None,
        }
    }

    /// A job over a netlist file, named after the file stem.
    pub fn netlist(path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        Self::with_source(name, JobSource::Netlist(path))
    }

    /// A job over a Table-1 library design, named after it.
    pub fn library(name: impl Into<String>) -> Self {
        let name = name.into();
        Self::with_source(name.clone(), JobSource::Library(name))
    }

    /// A job over a generated design, named `gen<inner>-<seed>`.
    pub fn generated(inner: usize, seed: u64) -> Self {
        Self::with_source(
            format!("gen{inner}-{seed}"),
            JobSource::Generated { inner, seed },
        )
    }

    /// Renames the job.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Pins the partitioning strategy (otherwise the batch default applies).
    pub fn with_partitioner(mut self, name: impl Into<String>) -> Self {
        self.partitioner = Some(name.into());
        self
    }

    /// Sets how far the pipeline runs.
    pub fn with_mode(mut self, mode: JobMode) -> Self {
        self.mode = mode;
        self
    }

    /// Enables or disables equivalence verification.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Enables or disables the behavior-tree optimizer.
    pub fn with_optimize(mut self, optimize: bool) -> Self {
        self.optimize = optimize;
        self
    }

    /// Sets the programmable-block pin budget.
    pub fn with_spec(mut self, spec: ProgrammableSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Enables the lint stage for this job (overriding the farm default).
    pub fn with_lint(mut self, config: LintConfig) -> Self {
        self.lint = Some(config);
        self
    }

    /// Loads the job's design from its source (read + parse a netlist
    /// file, look up a library design, or run the seeded generator).
    /// Public so front ends like the service mode's admission lint gate
    /// can inspect a design before committing the farm to running it.
    ///
    /// # Errors
    ///
    /// A human-readable message: unreadable or invalid netlist file,
    /// unknown library design.
    pub fn load_design(&self) -> Result<Design, String> {
        match &self.source {
            JobSource::Netlist(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                eblocks_core::netlist::from_netlist(&text).map_err(|e| e.to_string())
            }
            JobSource::Library(name) => eblocks_designs::by_name(name)
                .map(|entry| entry.design)
                .ok_or_else(|| format!("unknown library design `{name}`")),
            JobSource::Generated { inner, seed } => Ok(eblocks_gen::generate(
                &eblocks_gen::GeneratorConfig::new(*inner),
                *seed,
            )),
        }
    }
}

/// An ordered collection of jobs plus batch-level defaults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Batch {
    /// The jobs, in submission order (report rows keep this order).
    pub jobs: Vec<Job>,
    /// Strategy for jobs that set none, from the manifest's
    /// `default partitioner=…` line. The engine-level override in
    /// [`FarmConfig`](crate::FarmConfig) takes precedence over this; the
    /// built-in fallback is `pare-down`.
    pub default_partitioner: Option<String>,
}

impl Batch {
    /// A batch over the given jobs with no batch-level default strategy.
    pub fn new(jobs: Vec<Job>) -> Self {
        Self {
            jobs,
            default_partitioner: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_fill_names_and_defaults() {
        let j = Job::netlist("/tmp/deep/garage.netlist");
        assert_eq!(j.name, "garage");
        assert!(matches!(j.source, JobSource::Netlist(_)));
        assert_eq!(j.partitioner, None);
        assert_eq!(j.mode, JobMode::Synth);
        assert!(j.verify && j.optimize);

        let j = Job::library("Podium Timer 3")
            .with_partitioner("refine")
            .with_mode(JobMode::Partition)
            .with_verify(false)
            .named("pt3");
        assert_eq!(j.name, "pt3");
        assert_eq!(j.partitioner.as_deref(), Some("refine"));
        assert_eq!(j.mode, JobMode::Partition);

        let j = Job::generated(20, 7);
        assert_eq!(j.name, "gen20-7");
    }

    #[test]
    fn sources_load() {
        assert!(Job::library("Podium Timer 3").load_design().is_ok());
        assert!(Job::library("No Such Design")
            .load_design()
            .unwrap_err()
            .contains("unknown library design"));
        assert!(Job::netlist("/nonexistent/x.netlist")
            .load_design()
            .unwrap_err()
            .contains("cannot read"));
        let d = Job::generated(8, 42).load_design().unwrap();
        let same = eblocks_gen::generate(&eblocks_gen::GeneratorConfig::new(8), 42);
        assert_eq!(
            eblocks_core::netlist::to_netlist(&d),
            eblocks_core::netlist::to_netlist(&same),
            "generated source is seed-deterministic"
        );
    }
}
