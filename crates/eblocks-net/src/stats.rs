//! Fleet run statistics: per-fleet, per-node, and per-link counters.
//!
//! Reports ride the same vendored serde stack as the batch `api` module,
//! so `fleet --json` output is deterministic and golden-diffable: map keys
//! are emitted in struct-field order, floats render canonically, and
//! `None` fields are omitted.

use serde::{Deserialize, Serialize};

/// The full outcome of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Fleet name.
    pub name: String,
    /// Node count.
    pub nodes: u32,
    /// Topology label (`star(8)`, `grid(4x3)`, …).
    pub topology: String,
    /// The fleet seed (baseline link loss, spec-generated stimulus).
    pub seed: u64,
    /// The run horizon, inclusive.
    pub until: u64,
    /// Engine events processed: node instants stepped plus network
    /// calendar events.
    pub events: u64,
    /// Packets sent into the network (per egress channel).
    pub packets_sent: u64,
    /// Packets delivered to an ingress sensor.
    pub packets_delivered: u64,
    /// Packets lost (seeded loss, injected faults, crashed destinations,
    /// or unroutable end-of-time arrivals).
    pub packets_dropped: u64,
    /// Packets still traveling when the horizon closed.
    pub packets_in_flight: u64,
    /// Nodes that crashed during the run.
    pub crashes: u32,
    /// Per-node counters, in node-rank order.
    pub node_stats: Vec<NodeStats>,
    /// Per-half-link counters, sorted by `(from, to)` site index; only
    /// half-links that carried traffic appear.
    pub link_stats: Vec<LinkStats>,
}

/// One node's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Node name.
    pub name: String,
    /// The site hosting the node.
    pub site: String,
    /// Packets this node's egress taps sent.
    pub sent: u64,
    /// Packets delivered to this node's ingress sensors.
    pub received: u64,
    /// Local wire/radio transmissions inside the node's own design (the
    /// per-block energy accounting basis).
    pub transmissions: u64,
    /// Estimated energy over the run, in nanojoules (transmissions plus
    /// idle, via [`eblocks_sim::estimate_energy`]).
    pub energy_nj: f64,
    /// When the node crashed, if it did.
    #[serde(default)]
    pub crashed_at: Option<u64>,
}

/// One directed half-link's counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// The half-link, rendered `fromSite->toSite` with site names.
    pub link: String,
    /// Packets that entered the half-link.
    pub packets: u64,
    /// Packets lost on it.
    pub dropped: u64,
    /// Ticks spent serializing.
    pub busy_ticks: u64,
    /// Total ticks packets queued behind earlier traffic.
    pub wait_ticks: u64,
    /// Longest single queueing wait.
    pub max_wait: u64,
}

impl FleetReport {
    /// Deterministic single-line JSON (golden-diffable).
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Deterministic pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        serde::json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_json() {
        let report = FleetReport {
            name: "demo".into(),
            nodes: 2,
            topology: "switch(2)".into(),
            seed: 7,
            until: 100,
            events: 42,
            packets_sent: 3,
            packets_delivered: 2,
            packets_dropped: 1,
            packets_in_flight: 0,
            crashes: 1,
            node_stats: vec![NodeStats {
                name: "n0".into(),
                site: "port0".into(),
                sent: 3,
                received: 0,
                transmissions: 9,
                energy_nj: 1250.5,
                crashed_at: Some(60),
            }],
            link_stats: vec![LinkStats {
                link: "port0->port1".into(),
                packets: 3,
                dropped: 1,
                busy_ticks: 3,
                wait_ticks: 0,
                max_wait: 0,
            }],
        };
        let json = report.to_json();
        let back: FleetReport = serde::json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), json, "serialization is stable");
        assert!(json.contains("\"crashed_at\":60"));
        // None fields are omitted entirely.
        let mut healthy = report;
        healthy.node_stats[0].crashed_at = None;
        assert!(!healthy.to_json().contains("crashed_at"));
    }
}
