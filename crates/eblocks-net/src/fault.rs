//! The network fault seam.
//!
//! Mirrors the `FaultInjector` pattern of the batch chaos harness: the
//! fleet engine consults an injector at every decision point, and the
//! injector must answer as a *pure function* of its seed and the decision
//! coordinates — never of wall-clock time or call order — so a chaotic
//! run is replayable from the seed alone. `eblocks-chaos` provides the
//! standard implementation (link flaps, partitions, node crashes); tests
//! can implement the trait directly for scripted faults.

use eblocks_sim::Time;

/// What happens to one packet attempting one hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// The hop proceeds normally.
    Deliver,
    /// The packet is lost at this hop.
    Drop,
    /// The hop succeeds but takes this many extra ticks.
    Delay(Time),
}

/// Deterministic fault decisions for a fleet run.
///
/// Both methods must be pure functions of `self` and their arguments.
/// Sites are named by their dense substrate indices
/// ([`eblocks_place::SiteId::index`]), nodes by fleet node rank.
pub trait NetFaultInjector: Sync {
    /// The fate of packet `seq` entering the directed half-link
    /// `from → to` at instant `t`. Default: deliver.
    fn packet_fate(&self, from: usize, to: usize, t: Time, seq: u64) -> PacketFate {
        let _ = (from, to, t, seq);
        PacketFate::Deliver
    }

    /// Whether `node` is down at instant `t`. The engine treats the first
    /// `true` it observes as a permanent crash: the node never steps
    /// again and packets addressed to it are dropped.
    fn node_down(&self, node: usize, t: Time) -> bool {
        let _ = (node, t);
        false
    }
}

/// The null injector: a healthy network.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl NetFaultInjector for NoFaults {}
