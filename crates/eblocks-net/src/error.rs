//! Fleet co-simulation errors.

use eblocks_core::DesignError;
use eblocks_sim::SimError;
use std::error::Error;
use std::fmt;

/// Errors raised while building or running a fleet.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// The fleet has no nodes.
    EmptyFleet,
    /// A node's simulator failed to build or its run faulted.
    Sim {
        /// The node's name.
        node: String,
        /// The underlying simulator error.
        error: SimError,
    },
    /// A design failed to load or validate (fleet specs).
    Design(DesignError),
    /// A channel cannot be bridged (bad endpoint, unknown node, no route).
    Channel {
        /// The channel, rendered `src:block.port -> dst:sensor`.
        channel: String,
        /// Why it cannot be bridged.
        message: String,
    },
    /// The topology cannot host the fleet (unknown kind, capacity,
    /// disconnected substrate).
    Topology {
        /// What went wrong.
        message: String,
    },
    /// A fleet spec could not be parsed or resolved.
    Spec {
        /// 1-based line number for line-oriented specs.
        line: Option<usize>,
        /// What went wrong.
        message: String,
    },
}

impl NetError {
    pub(crate) fn spec(message: impl Into<String>) -> Self {
        Self::Spec {
            line: None,
            message: message.into(),
        }
    }

    pub(crate) fn spec_at(line: usize, message: impl Into<String>) -> Self {
        Self::Spec {
            line: Some(line),
            message: message.into(),
        }
    }

    pub(crate) fn topology(message: impl Into<String>) -> Self {
        Self::Topology {
            message: message.into(),
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyFleet => write!(f, "fleet has no nodes"),
            Self::Sim { node, error } => write!(f, "node `{node}`: {error}"),
            Self::Design(e) => write!(f, "design error: {e}"),
            Self::Channel { channel, message } => {
                write!(f, "channel {channel}: {message}")
            }
            Self::Topology { message } => write!(f, "topology error: {message}"),
            Self::Spec {
                line: Some(line),
                message,
            } => write!(f, "fleet spec line {line}: {message}"),
            Self::Spec {
                line: None,
                message,
            } => write!(f, "fleet spec: {message}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Sim { error, .. } => Some(error),
            Self::Design(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DesignError> for NetError {
    fn from(e: DesignError) -> Self {
        Self::Design(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::Sim {
            node: "n3".into(),
            error: SimError::InvalidTickPeriod,
        };
        assert!(e.to_string().contains("n3"));
        let e = NetError::spec_at(4, "unknown key `foo`");
        assert!(e.to_string().contains("line 4"));
        let e = NetError::Channel {
            channel: "n0:both.0 -> n1:door".into(),
            message: "no route".into(),
        };
        assert!(e.to_string().contains("both.0"));
        assert!(NetError::EmptyFleet.to_string().contains("no nodes"));
    }
}
