//! The fleet event trace: a deterministic, line-oriented log.
//!
//! Like the chaos harness's replay trace (and unlike a binary dump), the
//! fleet trace is meant to be committed as a golden file and diffed: one
//! event per line, fields in fixed order, every line a pure function of
//! the fleet spec and seeds. The per-node packet histories remain
//! available as ordinary [`eblocks_sim::Trace`]s (renderable with
//! [`eblocks_sim::to_vcd`]); this log records what happened *between*
//! nodes.

use eblocks_sim::Time;
use std::fmt::Write as _;

/// Collects fleet events in engine order. `None`-like behavior (skip all
/// formatting) is handled by the engine simply not constructing one.
#[derive(Debug, Default)]
pub(crate) struct TraceLog {
    text: String,
}

impl TraceLog {
    pub(crate) fn new(name: &str, nodes: usize, topology: &str, seed: u64, until: Time) -> Self {
        let mut log = Self::default();
        let _ = writeln!(log.text, "# eblocks-fleet-trace v1");
        let _ = writeln!(
            log.text,
            "# fleet={name} nodes={nodes} topology={topology} seed={seed} until={until}"
        );
        log
    }

    pub(crate) fn send(&mut self, t: Time, node: &str, chan: usize, seq: u64, value: bool) {
        let v = u8::from(value);
        let _ = writeln!(self.text, "t={t} send {node} ch{chan} seq={seq} v={v}");
    }

    pub(crate) fn hop(&mut self, t: Time, chan: usize, seq: u64, from: &str, to: &str) {
        let _ = writeln!(self.text, "t={t} hop ch{chan} seq={seq} {from}->{to}");
    }

    pub(crate) fn deliver(&mut self, t: Time, node: &str, chan: usize, seq: u64, value: bool) {
        let v = u8::from(value);
        let _ = writeln!(self.text, "t={t} deliver {node} ch{chan} seq={seq} v={v}");
    }

    pub(crate) fn drop(&mut self, t: Time, chan: usize, seq: u64, at: &str, cause: &str) {
        let _ = writeln!(
            self.text,
            "t={t} drop ch{chan} seq={seq} at={at} cause={cause}"
        );
    }

    pub(crate) fn crash(&mut self, t: Time, node: &str) {
        let _ = writeln!(self.text, "t={t} crash {node}");
    }

    pub(crate) fn finish(self) -> String {
        self.text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_stable() {
        let mut log = TraceLog::new("demo", 2, "switch(2)", 7, 100);
        log.send(0, "n0", 0, 0, false);
        log.hop(0, 0, 0, "port0", "port1");
        log.deliver(2, "n1", 0, 0, false);
        log.drop(5, 1, 3, "port1->port0", "loss");
        log.crash(9, "n1");
        let text = log.finish();
        assert_eq!(
            text,
            "# eblocks-fleet-trace v1\n\
             # fleet=demo nodes=2 topology=switch(2) seed=7 until=100\n\
             t=0 send n0 ch0 seq=0 v=0\n\
             t=0 hop ch0 seq=0 port0->port1\n\
             t=2 deliver n1 ch0 seq=0 v=0\n\
             t=5 drop ch1 seq=3 at=port1->port0 cause=loss\n\
             t=9 crash n1\n"
        );
    }
}
