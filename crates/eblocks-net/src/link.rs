//! Link model: latency, bandwidth (serialization + queueing), loss.
//!
//! Every physical link in the substrate is a pair of independent directed
//! half-links, each a FIFO store-and-forward channel (the dslab-network
//! shape): a packet entering a busy half-link waits for the packets ahead
//! of it, then occupies the link for its serialization delay, then
//! propagates for the link's latency. Loss is decided per hop from the
//! fleet seed, never from queue state, so a lossy run is replayable.

use eblocks_sim::Time;

/// Uniform parameters for every link in a fleet.
///
/// eBlocks packets are tiny (a boolean plus framing), so the defaults —
/// 8-bit packets at 8 bits/tick over 1-tick-latency links — give one tick
/// of serialization and one of propagation per hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Propagation delay per hop, in ticks.
    pub latency: Time,
    /// Serialization rate, in bits per tick; `0` means infinite bandwidth
    /// (no serialization delay, no queueing).
    pub bits_per_tick: u64,
    /// Packet size on the wire, in bits.
    pub packet_bits: u64,
    /// Per-hop loss probability, per mille, decided from the fleet seed.
    pub loss_pm: u16,
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self {
            latency: 1,
            bits_per_tick: 8,
            packet_bits: 8,
            loss_pm: 0,
        }
    }
}

impl LinkSpec {
    /// Ticks a packet occupies a link while serializing onto it.
    pub fn serialization_delay(&self) -> Time {
        if self.bits_per_tick == 0 {
            0
        } else {
            self.packet_bits.div_ceil(self.bits_per_tick)
        }
    }
}

/// Mutable per-half-link state: the FIFO horizon plus counters.
#[derive(Debug, Clone, Default)]
pub(crate) struct LinkState {
    /// The instant the half-link finishes serializing its current queue.
    pub busy_until: Time,
    /// Packets that entered this half-link.
    pub packets: u64,
    /// Packets lost on this half-link (seeded loss or injected faults).
    pub dropped: u64,
    /// Total ticks spent serializing.
    pub busy_ticks: u64,
    /// Total ticks packets waited behind earlier traffic (queue occupancy).
    pub wait_ticks: u64,
    /// Longest single queueing wait.
    pub max_wait: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_rounds_up() {
        let spec = LinkSpec {
            bits_per_tick: 8,
            packet_bits: 8,
            ..Default::default()
        };
        assert_eq!(spec.serialization_delay(), 1);
        let spec = LinkSpec {
            bits_per_tick: 3,
            packet_bits: 8,
            ..Default::default()
        };
        assert_eq!(spec.serialization_delay(), 3);
        let infinite = LinkSpec {
            bits_per_tick: 0,
            ..Default::default()
        };
        assert_eq!(infinite.serialization_delay(), 0);
    }
}
