//! Fleet topologies: the physical substrate plus node placement.
//!
//! A [`FleetTopology`] wraps an [`eblocks_place::Topology`] — the same
//! site/link graph the placement layer optimizes over, so placement
//! results map directly onto fleet nodes — and assigns fleet nodes to
//! sites in deterministic site order, respecting site capacities.

use crate::error::NetError;
use eblocks_place::{SiteId, Topology};

/// A physical substrate for a fleet, with a deterministic node→site
/// assignment rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetTopology {
    label: String,
    substrate: Topology,
}

impl FleetTopology {
    /// A hub-and-spoke substrate for `n` nodes: every node on its own
    /// leaf, the hub a pure relay site hosting nothing.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn star(n: usize) -> Self {
        Self {
            label: format!("star({n})"),
            substrate: Topology::star(n, 0),
        }
    }

    /// A line of `n` sites, one node each.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn chain(n: usize) -> Self {
        Self {
            label: format!("chain({n})"),
            substrate: Topology::line(n),
        }
    }

    /// A near-square mesh with at least `n` sites (width `⌈√n⌉`), one
    /// node per site.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn grid(n: usize) -> Self {
        assert!(n > 0, "a grid needs at least one node");
        let width = (n as f64).sqrt().ceil() as usize;
        let height = n.div_ceil(width);
        Self::grid_dims(width, height)
    }

    /// An explicit `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid_dims(width: usize, height: usize) -> Self {
        Self {
            label: format!("grid({width}x{height})"),
            substrate: Topology::grid(width, height),
        }
    }

    /// A non-blocking switch fabric: every node one hop from every other
    /// (a full mesh of `n` ports).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn switch(n: usize) -> Self {
        Self {
            label: format!("switch({n})"),
            substrate: Topology::full_mesh(n),
        }
    }

    /// Any custom substrate — e.g. one a placement run was solved
    /// against. Nodes fill sites in site order, `capacity` nodes per site.
    pub fn custom(label: impl Into<String>, substrate: Topology) -> Self {
        Self {
            label: label.into(),
            substrate,
        }
    }

    /// Parses a CLI/spec topology kind: `star`, `chain`, `grid`,
    /// `grid:WxH`, or `switch`, sized for `n` nodes.
    ///
    /// # Errors
    ///
    /// [`NetError::Topology`] for unknown kinds, malformed dimensions, or
    /// `n == 0`.
    pub fn parse(kind: &str, n: usize) -> Result<Self, NetError> {
        if n == 0 {
            return Err(NetError::topology("fleet needs at least one node"));
        }
        match kind {
            "star" => Ok(Self::star(n)),
            "chain" => Ok(Self::chain(n)),
            "grid" => Ok(Self::grid(n)),
            "switch" => Ok(Self::switch(n)),
            _ => {
                if let Some(dims) = kind.strip_prefix("grid:") {
                    let (w, h) = dims
                        .split_once('x')
                        .and_then(|(w, h)| Some((w.parse().ok()?, h.parse().ok()?)))
                        .filter(|&(w, h): &(usize, usize)| w > 0 && h > 0)
                        .ok_or_else(|| {
                            NetError::topology(format!("bad grid dimensions `{dims}` (want WxH)"))
                        })?;
                    Ok(Self::grid_dims(w, h))
                } else {
                    Err(NetError::topology(format!(
                        "unknown topology `{kind}` (star, chain, grid, grid:WxH, switch)"
                    )))
                }
            }
        }
    }

    /// The display label (`star(8)`, `grid(4x3)`, …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The underlying site/link graph.
    pub fn substrate(&self) -> &Topology {
        &self.substrate
    }

    /// Assigns `n` nodes to sites: sites in id order, each hosting up to
    /// its capacity.
    ///
    /// # Errors
    ///
    /// [`NetError::Topology`] if total capacity is below `n`.
    pub fn assign(&self, n: usize) -> Result<Vec<SiteId>, NetError> {
        let mut sites = Vec::with_capacity(n);
        'fill: for site in self.substrate.sites() {
            let capacity = self.substrate.site(site).expect("iterated site").capacity();
            for _ in 0..capacity {
                sites.push(site);
                if sites.len() == n {
                    break 'fill;
                }
            }
        }
        if sites.len() < n {
            return Err(NetError::topology(format!(
                "{} nodes exceed the substrate's capacity of {}",
                n,
                self.substrate.total_capacity()
            )));
        }
        Ok(sites)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_keeps_the_hub_free() {
        let t = FleetTopology::star(4);
        let sites = t.assign(4).unwrap();
        assert_eq!(sites.len(), 4);
        let hub = t.substrate().site_by_name("hub").unwrap();
        assert!(sites.iter().all(|&s| s != hub), "hub hosts no node");
        assert!(t.assign(5).is_err(), "only 4 leaves");
    }

    #[test]
    fn grid_is_near_square() {
        assert_eq!(FleetTopology::grid(10).label(), "grid(4x3)");
        assert_eq!(FleetTopology::grid(9).label(), "grid(3x3)");
        assert_eq!(FleetTopology::grid(1000).label(), "grid(32x32)");
        assert!(FleetTopology::grid(10).assign(10).is_ok());
    }

    #[test]
    fn parse_kinds() {
        assert_eq!(FleetTopology::parse("star", 3).unwrap().label(), "star(3)");
        assert_eq!(
            FleetTopology::parse("grid:5x2", 10).unwrap().label(),
            "grid(5x2)"
        );
        assert!(FleetTopology::parse("grid:0x2", 1).is_err());
        assert!(FleetTopology::parse("grid:ax2", 1).is_err());
        assert!(FleetTopology::parse("ring", 3).is_err());
        assert!(FleetTopology::parse("star", 0).is_err());
    }

    #[test]
    fn custom_assignment_respects_capacity() {
        let mut sub = Topology::new();
        let closet = sub.add_site("closet", 3);
        let room = sub.add_site("room", 1);
        sub.link(closet, room);
        let t = FleetTopology::custom("house", sub);
        assert_eq!(t.assign(4).unwrap(), vec![closet, closet, closet, room]);
        assert!(t.assign(5).is_err());
    }
}
