//! The [`Fleet`] builder and the global co-simulation engine.
//!
//! The engine keeps one global virtual clock. Each iteration picks the
//! earliest instant with work anywhere — a node's own calendar or the
//! network's — and processes it in the three documented phases (network,
//! nodes, egress; see the crate docs for the full ordering contract).
//! Nodes are [`eblocks_sim::NodeRunner`]s: the same arena a standalone
//! simulation uses, stepped instant-by-instant.

use crate::error::NetError;
use crate::fault::{NetFaultInjector, NoFaults, PacketFate};
use crate::link::{LinkSpec, LinkState};
use crate::stats::{FleetReport, LinkStats, NodeStats};
use crate::topo::FleetTopology;
use crate::trace::TraceLog;
use crate::{mix, SALT_LOSS};
use eblocks_core::{BlockKind, Design, PortRef};
use eblocks_sim::time as sim_time;
use eblocks_sim::{
    estimate_energy, CapturedPacket, EnergyModel, NodeRunner, SensorRef, Simulator, Stimulus,
    TapId, Time, Trace,
};
use std::collections::BTreeMap;

/// Handle to a design registered with [`Fleet::add_design`]. Designs are
/// shared: any number of nodes may instantiate the same one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DesignId(pub(crate) usize);

/// Handle to a node added with [`Fleet::add_node`]. The wrapped index is
/// the node's *rank* — the tiebreak of the deterministic ordering
/// contract and the index of its row in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's rank (its index in the fleet).
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    design: usize,
    stimulus: Stimulus,
}

#[derive(Debug, Clone)]
struct Channel {
    src: usize,
    src_port: PortRef,
    dst: usize,
    dst_sensor: String,
}

/// The result of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Aggregated fleet, node, and link statistics.
    pub report: FleetReport,
    /// The deterministic fleet event trace, when requested.
    pub trace: Option<String>,
    /// Each node's ordinary packet-history trace, in node-rank order
    /// (renderable with [`eblocks_sim::to_vcd`]).
    pub node_traces: Vec<Trace>,
}

/// A fleet of node instances bridged over a modeled network.
///
/// Build with [`new`](Fleet::new), register shared designs and nodes,
/// bridge ports with [`connect`](Fleet::connect), then
/// [`run`](Fleet::run). See the crate docs for an example and the
/// deterministic ordering contract.
#[derive(Debug, Clone)]
pub struct Fleet {
    name: String,
    topology: FleetTopology,
    link: LinkSpec,
    seed: u64,
    designs: Vec<Design>,
    nodes: Vec<Node>,
    channels: Vec<Channel>,
}

impl Fleet {
    /// An empty fleet over `topology`.
    pub fn new(name: impl Into<String>, topology: FleetTopology) -> Self {
        Self {
            name: name.into(),
            topology,
            link: LinkSpec::default(),
            seed: 0,
            designs: Vec::new(),
            nodes: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// Sets the uniform link parameters.
    pub fn set_link(&mut self, link: LinkSpec) {
        self.link = link;
    }

    /// Sets the fleet seed (baseline link loss; spec-generated stimulus).
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// The fleet name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Registers a design for nodes to instantiate.
    pub fn add_design(&mut self, design: Design) -> DesignId {
        self.designs.push(design);
        DesignId(self.designs.len() - 1)
    }

    /// Adds a node instantiating `design`. Rank (and report order) is the
    /// order of addition.
    ///
    /// # Panics
    ///
    /// Panics if `design` is not a handle from this fleet's
    /// [`add_design`](Fleet::add_design).
    pub fn add_node(&mut self, name: impl Into<String>, design: DesignId) -> NodeId {
        assert!(design.0 < self.designs.len(), "unknown design handle");
        self.nodes.push(Node {
            name: name.into(),
            design: design.0,
            stimulus: Stimulus::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Sets `node`'s local environment script (sensor changes driven by
    /// its own surroundings, as opposed to network ingress).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a handle from this fleet.
    pub fn set_stimulus(&mut self, node: NodeId, stimulus: Stimulus) {
        self.nodes[node.0].stimulus = stimulus;
    }

    /// Bridges `src`'s output port `src_port` to sensor `dst_sensor` of
    /// `dst`: every packet the port transmits is routed from `src`'s site
    /// to `dst`'s site and, if it survives the links, drives the sensor.
    ///
    /// # Errors
    ///
    /// [`NetError::Channel`] if either endpoint does not exist on the
    /// node's design, the port is out of range, or the destination is not
    /// a sensor. (Routability is checked at [`run`](Fleet::run), once
    /// sites are assigned.)
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` is not a handle from this fleet.
    pub fn connect(
        &mut self,
        src: NodeId,
        src_port: PortRef,
        dst: NodeId,
        dst_sensor: impl Into<String>,
    ) -> Result<(), NetError> {
        let dst_sensor = dst_sensor.into();
        let channel = Channel {
            src: src.0,
            src_port,
            dst: dst.0,
            dst_sensor,
        };
        let label = self.render_channel(&channel);
        let bad = |message: String| NetError::Channel {
            channel: label.clone(),
            message,
        };
        channel
            .src_port
            .resolve(&self.designs[self.nodes[channel.src].design])
            .map_err(|e| bad(e.to_string()))?;
        let dst_design = &self.designs[self.nodes[channel.dst].design];
        let is_sensor = dst_design
            .block_by_name(&channel.dst_sensor)
            .and_then(|b| dst_design.block(b))
            .is_some_and(|blk| matches!(blk.kind(), BlockKind::Sensor(_)));
        if !is_sensor {
            return Err(bad(format!(
                "`{}` is not a sensor of the destination design",
                channel.dst_sensor
            )));
        }
        self.channels.push(channel);
        Ok(())
    }

    fn render_channel(&self, ch: &Channel) -> String {
        format!(
            "{}:{} -> {}:{}",
            self.nodes[ch.src].name, ch.src_port, self.nodes[ch.dst].name, ch.dst_sensor
        )
    }

    /// Runs the fleet until `until` (inclusive) on a healthy network.
    ///
    /// # Errors
    ///
    /// See [`run_with`](Fleet::run_with).
    pub fn run(&self, until: Time) -> Result<FleetOutcome, NetError> {
        self.run_with(until, false, &NoFaults)
    }

    /// [`run`](Fleet::run), recording the fleet event trace.
    ///
    /// # Errors
    ///
    /// See [`run_with`](Fleet::run_with).
    pub fn run_traced(&self, until: Time) -> Result<FleetOutcome, NetError> {
        self.run_with(until, true, &NoFaults)
    }

    /// Runs the fleet until `until` (inclusive), optionally recording the
    /// event trace, with `faults` deciding link and node failures.
    ///
    /// # Errors
    ///
    /// [`NetError::EmptyFleet`] for a fleet with no nodes,
    /// [`NetError::Topology`] if the substrate cannot host it,
    /// [`NetError::Channel`] for unroutable channels, and
    /// [`NetError::Sim`] if a node fails to build or its run faults.
    pub fn run_with(
        &self,
        until: Time,
        record_trace: bool,
        faults: &dyn NetFaultInjector,
    ) -> Result<FleetOutcome, NetError> {
        if self.nodes.is_empty() {
            return Err(NetError::EmptyFleet);
        }
        let n = self.nodes.len();
        let sites = self.topology.assign(n)?;
        let substrate = self.topology.substrate();
        let site_names: Vec<String> = substrate
            .sites()
            .map(|s| substrate.site(s).expect("iterated site").name().to_string())
            .collect();

        // One simulator per distinct design; every node borrows its own
        // runner arena from the shared simulator.
        let sims = self
            .designs
            .iter()
            .map(Simulator::new)
            .collect::<Result<Vec<_>, _>>()
            .map_err(|error| NetError::Sim {
                node: "design".into(),
                error,
            })?;
        let mut runners: Vec<NodeRunner> = Vec::with_capacity(n);
        for node in &self.nodes {
            let mut runner =
                NodeRunner::new(&sims[node.design]).map_err(|error| NetError::Sim {
                    node: node.name.clone(),
                    error,
                })?;
            runner
                .load_stimulus(&node.stimulus)
                .map_err(|error| NetError::Sim {
                    node: node.name.clone(),
                    error,
                })?;
            runners.push(runner);
        }

        // Resolve channels: tap egress ports, pre-resolve ingress
        // sensors, and route each channel once over the substrate.
        let paths = substrate.path_matrix_for(self.channels.iter().map(|ch| sites[ch.src]));
        let mut channels = Vec::with_capacity(self.channels.len());
        for ch in &self.channels {
            let label = self.render_channel(ch);
            let bad = |message: String| NetError::Channel {
                channel: label.clone(),
                message,
            };
            let tap = runners[ch.src]
                .tap_output(&ch.src_port.block, ch.src_port.port)
                .map_err(|e| bad(e.to_string()))?;
            let sensor = runners[ch.dst]
                .sensor_ref(&ch.dst_sensor)
                .map_err(|e| bad(e.to_string()))?;
            let path = paths.path(sites[ch.src], sites[ch.dst]).ok_or_else(|| {
                bad(format!(
                    "no route from {} to {}",
                    site_names[sites[ch.src].index()],
                    site_names[sites[ch.dst].index()]
                ))
            })?;
            channels.push(Resolved {
                tap,
                sensor,
                dst: ch.dst,
                path,
            });
        }
        // Per node: tap id → channel indices, in channel order.
        let mut by_tap: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n];
        for (ci, (resolved, ch)) in channels.iter().zip(&self.channels).enumerate() {
            let taps = &mut by_tap[ch.src];
            let slot = resolved.tap as usize;
            if taps.len() <= slot {
                taps.resize(slot + 1, Vec::new());
            }
            taps[slot].push(ci);
        }

        let node_names: Vec<&str> = self.nodes.iter().map(|nd| nd.name.as_str()).collect();
        let mut net = NetEngine {
            spec: self.link,
            seed: self.seed,
            faults,
            channels,
            site_names: &site_names,
            calendar: BTreeMap::new(),
            links: BTreeMap::new(),
            log: record_trace
                .then(|| TraceLog::new(&self.name, n, self.topology.label(), self.seed, until)),
            sent: 0,
            delivered: 0,
            dropped: 0,
            events: 0,
            next_seq: 0,
        };
        let mut crashed: Vec<Option<Time>> = vec![None; n];
        let mut sent_by_node = vec![0u64; n];
        let mut received_by_node = vec![0u64; n];
        let mut captured: Vec<CapturedPacket> = Vec::new();

        loop {
            let node_next = runners
                .iter()
                .zip(&crashed)
                .filter(|(_, c)| c.is_none())
                .filter_map(|(r, _)| r.next_event_time())
                .min();
            let t = match (node_next, net.next_time()) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if t > until {
                break;
            }

            // Phase 1: network events, in global packet-seq order.
            // Deliveries inject before any node steps; hops only schedule
            // strictly-future events, so draining the bucket is safe.
            if let Some(mut bucket) = net.calendar.remove(&t) {
                bucket.sort_unstable_by_key(|&(seq, _)| seq);
                for (seq, ev) in bucket {
                    net.events += 1;
                    match ev {
                        NetEvent::Hop { chan, hop, value } => net.hop(t, chan, hop, seq, value),
                        NetEvent::Deliver { chan, value } => {
                            let dst = net.channels[chan].dst;
                            let down = crashed[dst].is_some() || faults.node_down(dst, t);
                            if down {
                                if crashed[dst].is_none() {
                                    crashed[dst] = Some(t);
                                    if let Some(log) = &mut net.log {
                                        log.crash(t, node_names[dst]);
                                    }
                                }
                                net.dropped += 1;
                                if let Some(log) = &mut net.log {
                                    log.drop(t, chan, seq, node_names[dst], "crashed");
                                }
                            } else {
                                let sensor = net.channels[chan].sensor;
                                runners[dst].inject(t, sensor, value);
                                received_by_node[dst] += 1;
                                net.delivered += 1;
                                if let Some(log) = &mut net.log {
                                    log.deliver(t, node_names[dst], chan, seq, value);
                                }
                            }
                        }
                    }
                }
            }

            // Phase 2: step nodes with work at this instant, in rank order.
            for i in 0..n {
                if crashed[i].is_some() {
                    continue;
                }
                if faults.node_down(i, t) {
                    crashed[i] = Some(t);
                    if let Some(log) = &mut net.log {
                        log.crash(t, node_names[i]);
                    }
                    continue;
                }
                if runners[i].next_event_time() == Some(t) {
                    net.events += 1;
                    runners[i]
                        .step_at(t, until)
                        .map_err(|error| NetError::Sim {
                            node: node_names[i].to_string(),
                            error,
                        })?;
                }
            }

            // Phase 3: collect egress in (rank, capture, channel) order;
            // each packet gets the next global seq and starts its first
            // hop immediately.
            for i in 0..n {
                if crashed[i].is_some() {
                    continue;
                }
                runners[i].drain_captured(&mut captured);
                for p in captured.drain(..) {
                    let Some(chans) = by_tap[i].get(p.tap as usize) else {
                        continue;
                    };
                    for &chan in chans {
                        let seq = net.next_seq;
                        net.next_seq += 1;
                        net.sent += 1;
                        sent_by_node[i] += 1;
                        if let Some(log) = &mut net.log {
                            log.send(t, node_names[i], chan, seq, p.value);
                        }
                        net.hop(t, chan, 0, seq, p.value);
                    }
                }
            }
        }

        // Finalize: fold node traces, energy, and link counters.
        let model = EnergyModel::default();
        let mut node_stats = Vec::with_capacity(n);
        let mut node_traces = Vec::with_capacity(n);
        for (i, runner) in runners.into_iter().enumerate() {
            let trace = runner.finish();
            let design = &self.designs[self.nodes[i].design];
            let energy = estimate_energy(design, &trace, &model, until);
            node_stats.push(NodeStats {
                name: self.nodes[i].name.clone(),
                site: site_names[sites[i].index()].clone(),
                sent: sent_by_node[i],
                received: received_by_node[i],
                transmissions: trace.total_transmissions(),
                energy_nj: energy.total_nj(),
                crashed_at: crashed[i],
            });
            node_traces.push(trace);
        }
        let link_stats = net
            .links
            .iter()
            .map(|(&(a, b), s)| LinkStats {
                link: format!("{}->{}", site_names[a], site_names[b]),
                packets: s.packets,
                dropped: s.dropped,
                busy_ticks: s.busy_ticks,
                wait_ticks: s.wait_ticks,
                max_wait: s.max_wait,
            })
            .collect();
        let report = FleetReport {
            name: self.name.clone(),
            nodes: n as u32,
            topology: self.topology.label().to_string(),
            seed: self.seed,
            until,
            events: net.events,
            packets_sent: net.sent,
            packets_delivered: net.delivered,
            packets_dropped: net.dropped,
            packets_in_flight: net.sent - net.delivered - net.dropped,
            crashes: crashed.iter().filter(|c| c.is_some()).count() as u32,
            node_stats,
            link_stats,
        };
        Ok(FleetOutcome {
            report,
            trace: net.log.map(TraceLog::finish),
            node_traces,
        })
    }
}

/// One resolved channel: everything the per-packet hot path needs.
#[derive(Debug)]
struct Resolved {
    tap: TapId,
    sensor: SensorRef,
    dst: usize,
    /// The routed site path, inclusive of both endpoints.
    path: Vec<eblocks_place::SiteId>,
}

/// A future network event; the global packet seq rides alongside in the
/// calendar bucket and totally orders same-instant events.
#[derive(Debug, Clone, Copy)]
enum NetEvent {
    /// Packet enters hop `hop` of its channel's path.
    Hop {
        chan: usize,
        hop: usize,
        value: bool,
    },
    /// Packet reaches its destination node's ingress sensor.
    Deliver { chan: usize, value: bool },
}

/// The network half of the engine: calendar, half-link FIFOs, counters.
struct NetEngine<'a> {
    spec: LinkSpec,
    seed: u64,
    faults: &'a dyn NetFaultInjector,
    channels: Vec<Resolved>,
    site_names: &'a [String],
    calendar: BTreeMap<Time, Vec<(u64, NetEvent)>>,
    links: BTreeMap<(usize, usize), LinkState>,
    log: Option<TraceLog>,
    sent: u64,
    delivered: u64,
    dropped: u64,
    events: u64,
    next_seq: u64,
}

impl NetEngine<'_> {
    fn next_time(&self) -> Option<Time> {
        self.calendar.keys().next().copied()
    }

    fn schedule(&mut self, at: Time, seq: u64, ev: NetEvent) {
        self.calendar.entry(at).or_default().push((seq, ev));
    }

    /// Packet `seq` of `chan` attempts hop `hop` at instant `t`.
    fn hop(&mut self, t: Time, chan: usize, hop: usize, seq: u64, value: bool) {
        let path = &self.channels[chan].path;
        if path.len() == 1 {
            // Source and destination share a site; travel still costs one
            // tick so a delivery never lands in the instant that sent it.
            match sim_time::after(t, 1) {
                Some(at) => self.schedule(at, seq, NetEvent::Deliver { chan, value }),
                None => {
                    self.dropped += 1;
                    if let Some(log) = &mut self.log {
                        log.drop(
                            t,
                            chan,
                            seq,
                            &self.site_names[path[0].index()],
                            "end-of-time",
                        );
                    }
                }
            }
            return;
        }
        let (a, b) = (path[hop].index(), path[hop + 1].index());
        // Injected faults decide first: a downed link refuses the packet
        // at its ingress …
        let extra = match self.faults.packet_fate(a, b, t, seq) {
            PacketFate::Drop => {
                self.drop_on_link(t, chan, seq, a, b, "fault");
                return;
            }
            PacketFate::Delay(d) => d,
            PacketFate::Deliver => 0,
        };
        // … then the seeded baseline loss, a pure function of the fleet
        // seed and the hop coordinates.
        if self.spec.loss_pm > 0
            && mix(&[self.seed, SALT_LOSS, a as u64, b as u64, seq]) % 1000
                < u64::from(self.spec.loss_pm)
        {
            self.drop_on_link(t, chan, seq, a, b, "loss");
            return;
        }
        let ser = self.spec.serialization_delay();
        let state = self.links.entry((a, b)).or_default();
        let start = t.max(state.busy_until);
        let wait = start - t;
        state.busy_until = sim_time::clamp_after(start, ser);
        state.packets += 1;
        state.busy_ticks += ser;
        state.wait_ticks += wait;
        state.max_wait = state.max_wait.max(wait);
        if let Some(log) = &mut self.log {
            log.hop(t, chan, seq, &self.site_names[a], &self.site_names[b]);
        }
        // Departure = queue wait + serialization + propagation + injected
        // delay, and never the same instant (every hop costs ≥ 1 tick).
        let arrival = sim_time::after(start, ser)
            .and_then(|x| sim_time::after(x, self.spec.latency))
            .and_then(|x| sim_time::after(x, extra))
            .map(|x| x.max(sim_time::clamp_after(t, 1)));
        match arrival {
            Some(at) if at > t => {
                let next = if hop + 2 == path.len() {
                    NetEvent::Deliver { chan, value }
                } else {
                    NetEvent::Hop {
                        chan,
                        hop: hop + 1,
                        value,
                    }
                };
                self.schedule(at, seq, next);
            }
            // Unrepresentable arrival: the packet falls off the end of
            // time (it could never be processed anyway).
            _ => self.drop_on_link(t, chan, seq, a, b, "end-of-time"),
        }
    }

    fn drop_on_link(&mut self, t: Time, chan: usize, seq: u64, a: usize, b: usize, cause: &str) {
        self.links.entry((a, b)).or_default().dropped += 1;
        self.dropped += 1;
        if let Some(log) = &mut self.log {
            let at = format!("{}->{}", self.site_names[a], self.site_names[b]);
            log.drop(t, chan, seq, &at, cause);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eblocks_core::{Design, OutputKind, SensorKind};

    /// rx (button) -> lamp (led): the minimal relay node.
    fn relay_design() -> Design {
        let mut d = Design::new("relay");
        let rx = d.add_block("rx", SensorKind::Button);
        let lamp = d.add_block("lamp", OutputKind::Led);
        d.connect((rx, 0), (lamp, 0)).unwrap();
        d
    }

    fn two_node_fleet() -> Fleet {
        let mut fleet = Fleet::new("pair", FleetTopology::chain(2));
        let d = fleet.add_design(relay_design());
        let a = fleet.add_node("n0", d);
        let b = fleet.add_node("n1", d);
        fleet.set_stimulus(a, Stimulus::new().set(10, "rx", true));
        fleet.connect(a, PortRef::new("rx", 0), b, "rx").unwrap();
        fleet
    }

    #[test]
    fn packet_arrives_with_link_latency() {
        // One hop, defaults: 1 tick serialization + 1 tick propagation.
        let fleet = two_node_fleet();
        let outcome = fleet.run(100).unwrap();
        // Power-on announcement (v=0) plus the press (v=1).
        assert_eq!(outcome.report.packets_sent, 2);
        assert_eq!(outcome.report.packets_delivered, 2);
        assert_eq!(outcome.report.packets_dropped, 0);
        // n1's lamp: power-on false at 0, injected false at 2 (suppressed
        // by its sensor's change detection — already false and announced),
        // injected true at 12.
        assert_eq!(
            outcome.node_traces[1].history("lamp"),
            &[(0, false), (12, true)]
        );
        let n1 = &outcome.report.node_stats[1];
        assert_eq!((n1.received, n1.sent), (2, 0));
        assert!(n1.energy_nj > 0.0);
    }

    #[test]
    fn runs_are_byte_identical() {
        let fleet = two_node_fleet();
        let a = fleet.run_traced(100).unwrap();
        let b = fleet.run_traced(100).unwrap();
        assert_eq!(a.report.to_json(), b.report.to_json());
        assert_eq!(a.trace, b.trace);
        assert!(a.trace.as_deref().unwrap().contains("deliver n1"));
    }

    #[test]
    fn queueing_delays_back_to_back_packets() {
        // Slow serialization (4 ticks/packet): two packets sent in quick
        // succession must queue on the shared half-link.
        let mut fleet = Fleet::new("q", FleetTopology::chain(2));
        let d = fleet.add_design(relay_design());
        let a = fleet.add_node("n0", d);
        let b = fleet.add_node("n1", d);
        fleet.set_link(LinkSpec {
            latency: 1,
            bits_per_tick: 2,
            packet_bits: 8,
            loss_pm: 0,
        });
        fleet.set_stimulus(a, Stimulus::new().set(10, "rx", true).set(11, "rx", false));
        fleet.connect(a, PortRef::new("rx", 0), b, "rx").unwrap();
        let outcome = fleet.run(100).unwrap();
        let link = &outcome.report.link_stats[0];
        assert_eq!(link.packets, 3, "announcement + rise + fall");
        assert!(link.wait_ticks > 0, "the fall queued behind the rise");
        assert_eq!(outcome.report.packets_delivered, 3);
        // Rise sent at 10 arrives at 15 (4 ser + 1 latency); fall sent at
        // 11 waits 3 ticks for the link, arrives at 19.
        assert_eq!(
            outcome.node_traces[1].history("lamp"),
            &[(0, false), (15, true), (19, false)]
        );
    }

    #[test]
    fn seeded_loss_is_deterministic_and_seed_sensitive() {
        let mut fleet = Fleet::new("lossy", FleetTopology::chain(2));
        let d = fleet.add_design(relay_design());
        let a = fleet.add_node("n0", d);
        let b = fleet.add_node("n1", d);
        fleet.set_link(LinkSpec {
            loss_pm: 500,
            ..LinkSpec::default()
        });
        let mut stim = Stimulus::new();
        for k in 0..20 {
            stim = stim.set(10 + 2 * k, "rx", k % 2 == 0);
        }
        fleet.set_stimulus(a, stim);
        fleet.connect(a, PortRef::new("rx", 0), b, "rx").unwrap();
        fleet.set_seed(7);
        let first = fleet.run(100).unwrap();
        assert!(first.report.packets_dropped > 0, "50% loss must bite");
        assert!(first.report.packets_delivered > 0, "and must not kill all");
        assert_eq!(
            first.report.to_json(),
            fleet.run(100).unwrap().report.to_json()
        );
        fleet.set_seed(8);
        let other = fleet.run(100).unwrap();
        assert_ne!(
            first.report.packets_dropped, other.report.packets_dropped,
            "a different seed loses different packets"
        );
    }

    #[test]
    fn fan_out_channels_share_one_tap() {
        // One egress port feeding two destinations: two channels, one tap.
        let mut fleet = Fleet::new("fan", FleetTopology::star(3));
        let d = fleet.add_design(relay_design());
        let a = fleet.add_node("n0", d);
        let b = fleet.add_node("n1", d);
        let c = fleet.add_node("n2", d);
        fleet.set_stimulus(a, Stimulus::new().set(10, "rx", true));
        fleet.connect(a, PortRef::new("rx", 0), b, "rx").unwrap();
        fleet.connect(a, PortRef::new("rx", 0), c, "rx").unwrap();
        let outcome = fleet.run(100).unwrap();
        assert_eq!(outcome.report.packets_sent, 4, "2 events × 2 channels");
        assert_eq!(outcome.report.packets_delivered, 4);
        // Two hops at ser+latency = 2 each, plus 1 tick queued behind the
        // sibling channel's copy on the shared leaf→hub link: 10+2+2+1.
        assert_eq!(
            outcome.node_traces[2].history("lamp"),
            &[(0, false), (15, true)]
        );
    }

    #[test]
    fn crashes_are_permanent_and_traced() {
        struct CrashAt(Time);
        impl NetFaultInjector for CrashAt {
            fn node_down(&self, node: usize, t: Time) -> bool {
                node == 1 && t >= self.0
            }
        }
        let fleet = two_node_fleet();
        let outcome = fleet.run_with(100, true, &CrashAt(5)).unwrap();
        assert_eq!(outcome.report.crashes, 1);
        let n1 = &outcome.report.node_stats[1];
        // Down from t=5, observed at the first processed instant after:
        // the fleet-wide stimulus step at t=10.
        assert_eq!(n1.crashed_at, Some(10));
        // The press at t=10 reaches a dead node: dropped, not delivered.
        assert!(outcome.report.packets_dropped > 0);
        let trace = outcome.trace.unwrap();
        assert!(trace.contains("crash n1"));
        assert!(trace.contains("cause=crashed"));
        // Node 1 froze at its crash: only the power-on packet made it.
        assert_eq!(outcome.node_traces[1].history("lamp"), &[(0, false)]);
    }

    #[test]
    fn unroutable_channel_is_rejected() {
        let mut substrate = eblocks_place::Topology::new();
        substrate.add_site("island-a", 1);
        substrate.add_site("island-b", 1);
        let mut fleet = Fleet::new("split", FleetTopology::custom("islands", substrate));
        let d = fleet.add_design(relay_design());
        let a = fleet.add_node("n0", d);
        let b = fleet.add_node("n1", d);
        fleet.connect(a, PortRef::new("rx", 0), b, "rx").unwrap();
        assert!(matches!(fleet.run(10), Err(NetError::Channel { .. })));
    }

    #[test]
    fn bad_endpoints_are_rejected_eagerly() {
        let mut fleet = Fleet::new("bad", FleetTopology::chain(2));
        let d = fleet.add_design(relay_design());
        let a = fleet.add_node("n0", d);
        let b = fleet.add_node("n1", d);
        assert!(fleet.connect(a, PortRef::new("ghost", 0), b, "rx").is_err());
        assert!(fleet.connect(a, PortRef::new("rx", 3), b, "rx").is_err());
        assert!(fleet.connect(a, PortRef::new("rx", 0), b, "lamp").is_err());
        assert!(matches!(
            Fleet::new("empty", FleetTopology::chain(1)).run(10),
            Err(NetError::EmptyFleet)
        ));
    }
}
